//! Offline stand-in for [rayon](https://crates.io/crates/rayon).
//!
//! The build environment has no registry access, so this crate provides the
//! small slice of rayon's API the workspace actually uses — `par_iter` with
//! `map`/`filter_map`/`collect`, and `par_chunks_mut().enumerate().for_each` —
//! implemented on `std::thread::scope`. Work is split into one contiguous
//! range per worker, so `collect` preserves order exactly like rayon's
//! indexed parallel iterators.

use std::num::NonZeroUsize;

/// Worker count: `available_parallelism`, overridable with
/// `OOCISO_THREADS` (handy for benchmarking scaling curves).
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("OOCISO_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Split `len` items into at most `workers` contiguous `(start, end)` ranges.
fn split_ranges(len: usize, workers: usize) -> Vec<(usize, usize)> {
    let workers = workers.clamp(1, len.max(1));
    let base = len / workers;
    let extra = len % workers;
    let mut out = Vec::with_capacity(workers);
    let mut at = 0;
    for w in 0..workers {
        let take = base + usize::from(w < extra);
        out.push((at, at + take));
        at += take;
    }
    out
}

/// Run `f` over each range of `len` items on a scoped worker pool, collecting
/// the per-range outputs in range order.
fn run_ranges<R: Send>(len: usize, f: impl Fn(usize, usize) -> R + Sync) -> Vec<R> {
    let ranges = split_ranges(len, current_num_threads());
    if ranges.len() <= 1 {
        return ranges.into_iter().map(|(a, b)| f(a, b)).collect();
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|&(a, b)| {
                let f = &f;
                scope.spawn(move || f(a, b))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rayon-shim worker panicked"))
            .collect()
    })
}

pub mod iter {
    use super::run_ranges;

    /// Parallel iterator over `&[T]`.
    pub struct ParIter<'a, T> {
        slice: &'a [T],
    }

    /// `par_iter().map(f)` adapter.
    pub struct ParMap<'a, T, F> {
        slice: &'a [T],
        f: F,
    }

    /// `par_iter().filter_map(f)` adapter.
    pub struct ParFilterMap<'a, T, F> {
        slice: &'a [T],
        f: F,
    }

    impl<'a, T: Sync> ParIter<'a, T> {
        pub fn map<O, F: Fn(&'a T) -> O + Sync>(self, f: F) -> ParMap<'a, T, F> {
            ParMap {
                slice: self.slice,
                f,
            }
        }

        pub fn filter_map<O, F: Fn(&'a T) -> Option<O> + Sync>(
            self,
            f: F,
        ) -> ParFilterMap<'a, T, F> {
            ParFilterMap {
                slice: self.slice,
                f,
            }
        }
    }

    impl<'a, T: Sync, O: Send, F: Fn(&'a T) -> O + Sync> ParMap<'a, T, F> {
        pub fn collect<C: FromParts<O>>(self) -> C {
            let parts = run_ranges(self.slice.len(), |a, b| {
                self.slice[a..b].iter().map(&self.f).collect::<Vec<O>>()
            });
            C::from_parts(parts)
        }
    }

    impl<'a, T: Sync, O: Send, F: Fn(&'a T) -> Option<O> + Sync> ParFilterMap<'a, T, F> {
        pub fn collect<C: FromParts<O>>(self) -> C {
            let parts = run_ranges(self.slice.len(), |a, b| {
                self.slice[a..b]
                    .iter()
                    .filter_map(&self.f)
                    .collect::<Vec<O>>()
            });
            C::from_parts(parts)
        }
    }

    /// Order-preserving concatenation of per-worker outputs.
    pub trait FromParts<O> {
        fn from_parts(parts: Vec<Vec<O>>) -> Self;
    }

    impl<O> FromParts<O> for Vec<O> {
        fn from_parts(parts: Vec<Vec<O>>) -> Self {
            let total = parts.iter().map(Vec::len).sum();
            let mut out = Vec::with_capacity(total);
            for p in parts {
                out.extend(p);
            }
            out
        }
    }

    /// Parallel iterator over mutable chunks with their chunk index.
    pub struct ParChunksMutEnumerate<'a, T> {
        chunks: Vec<(usize, &'a mut [T])>,
    }

    pub struct ParChunksMut<'a, T> {
        chunks: Vec<(usize, &'a mut [T])>,
    }

    impl<'a, T: Send> ParChunksMut<'a, T> {
        pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
            ParChunksMutEnumerate {
                chunks: self.chunks,
            }
        }

        pub fn for_each<F: Fn(&mut [T]) + Sync>(self, f: F) {
            ParChunksMutEnumerate {
                chunks: self.chunks,
            }
            .for_each(move |(_, c)| f(c));
        }
    }

    impl<'a, T: Send> ParChunksMutEnumerate<'a, T> {
        pub fn for_each<F: Fn((usize, &mut [T])) + Sync>(self, f: F) {
            let workers = super::current_num_threads();
            if workers <= 1 || self.chunks.len() <= 1 {
                for (i, c) in self.chunks {
                    f((i, c));
                }
                return;
            }
            let groups = super::split_ranges(self.chunks.len(), workers);
            let mut chunks = self.chunks;
            std::thread::scope(|scope| {
                // peel groups off the back so each worker owns its chunks
                for &(a, b) in groups.iter().rev() {
                    let group: Vec<(usize, &mut [T])> = chunks.drain(a..b).collect();
                    let f = &f;
                    scope.spawn(move || {
                        for (i, c) in group {
                            f((i, c));
                        }
                    });
                }
            });
        }
    }

    pub trait IntoParallelRefIterator<'a> {
        type Item: 'a;
        fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = T;
        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { slice: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = T;
        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { slice: self }
        }
    }

    pub trait ParallelSliceMut<T: Send> {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
            assert!(chunk_size > 0, "chunk size must be positive");
            ParChunksMut {
                chunks: self.chunks_mut(chunk_size).enumerate().collect(),
            }
        }
    }
}

pub mod prelude {
    pub use crate::iter::{IntoParallelRefIterator, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_collect_preserves_order() {
        let v: Vec<u32> = (0..10_000).collect();
        let doubled: Vec<u64> = v.par_iter().map(|&x| x as u64 * 2).collect();
        assert_eq!(doubled.len(), 10_000);
        assert!(doubled.iter().enumerate().all(|(i, &d)| d == i as u64 * 2));
        let odds: Vec<u32> = v
            .par_iter()
            .filter_map(|&x| (x % 2 == 1).then_some(x))
            .collect();
        assert_eq!(odds.len(), 5_000);
        assert!(odds.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn par_chunks_mut_touches_every_chunk_once() {
        let mut data = vec![0u32; 1000];
        data.par_chunks_mut(7).enumerate().for_each(|(i, chunk)| {
            for v in chunk {
                *v += i as u32 + 1;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, (i / 7) as u32 + 1);
        }
    }

    #[test]
    fn split_ranges_cover() {
        let r = super::split_ranges(10, 3);
        assert_eq!(r, vec![(0, 4), (4, 7), (7, 10)]);
        assert_eq!(super::split_ranges(0, 4), vec![(0, 0)]);
        assert_eq!(super::split_ranges(2, 8), vec![(0, 1), (1, 2)]);
    }
}
