//! Offline stand-in for [memmap2](https://crates.io/crates/memmap2).
//!
//! The build environment has no registry access (and no `libc` to call
//! `mmap(2)` directly), so `Mmap` here is a read-only snapshot of the file
//! loaded eagerly into an anonymous buffer. Callers see the same API and the
//! same `Deref<Target = [u8]>` semantics; the difference is purely that pages
//! are materialized up front instead of faulted in lazily. The exio device
//! layer accounts I/O identically for both backings, so modeled costs are
//! unaffected.

use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom};
use std::ops::Deref;

/// An immutable "memory map" of a file.
pub struct Mmap {
    data: Vec<u8>,
}

impl Mmap {
    /// Snapshot `file` from start to end.
    ///
    /// # Safety
    ///
    /// Kept `unsafe` for signature compatibility with the real crate (where
    /// the caller must guarantee the file is not truncated/mutated while
    /// mapped). This implementation copies, so there is no actual UB hazard.
    pub unsafe fn map(file: &File) -> io::Result<Mmap> {
        let mut f = file.try_clone()?;
        f.seek(SeekFrom::Start(0))?;
        let len = f.metadata()?.len() as usize;
        let mut data = Vec::with_capacity(len);
        f.read_to_end(&mut data)?;
        Ok(Mmap { data })
    }

    /// Length of the mapped region in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the mapped region is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Mmap {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Mmap {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn map_reflects_file_contents() {
        let mut p = std::env::temp_dir();
        p.push(format!("memmap2_shim_{}.bin", std::process::id()));
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::File::create(&p)
            .unwrap()
            .write_all(&payload)
            .unwrap();
        let f = File::open(&p).unwrap();
        let m = unsafe { Mmap::map(&f).unwrap() };
        assert_eq!(m.len(), payload.len());
        assert_eq!(&m[..], &payload[..]);
        assert_eq!(&m[777..790], &payload[777..790]);
        std::fs::remove_file(&p).ok();
    }
}
