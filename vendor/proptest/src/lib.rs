//! Offline stand-in for [proptest](https://crates.io/crates/proptest).
//!
//! The build environment has no registry access, so this crate implements the
//! subset of proptest's API that the workspace's property tests use:
//!
//! * the [`proptest!`] macro (multiple `#[test]` functions, optional
//!   `#![proptest_config(...)]` header),
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * strategies: integer and float ranges, tuples, [`strategy::Just`],
//!   [`arbitrary::any`], [`collection::vec`], [`sample::select`], and
//!   [`strategy::Strategy::prop_map`].
//!
//! Differences from real proptest: generation is a fixed deterministic
//! sequence per test name (seeded by a hash of the test's module path and
//! name), and failing cases are reported but **not shrunk**. Each reported
//! failure prints the generated argument values, which for the generators
//! here is enough to reproduce by hand.

pub mod test_runner {
    /// Deterministic splitmix64 RNG; the whole shim draws from this.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test identifier so every run of a given test sees the
        /// same case sequence.
        pub fn from_name(name: &str) -> TestRng {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h | 1 }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be positive.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // multiply-shift; bias is negligible for test generation
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod config {
    /// Runner configuration; only `cases` is honoured.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A value generator. Unlike real proptest there is no intermediate
    /// `ValueTree`: strategies produce values directly and nothing shrinks.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// `strategy.prop_map(f)`.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Constant strategy.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let t = rng.unit_f64() as $t;
                    self.start + (self.end - self.start) * t
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range generator.
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// `any::<T>()` — the full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f32 {
        /// Finite floats spanning many magnitudes (no NaN/inf).
        fn arbitrary(rng: &mut TestRng) -> f32 {
            let mag = (rng.unit_f64() * 80.0 - 40.0) as f32; // exp in [-40, 40]
            let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
            sign * (rng.unit_f64() as f32) * mag.exp2()
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> [T; N] {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// `vec(element, len_range)` — a `Vec` of strategy-generated elements.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// `select(options)` — pick one of the given values.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }
}

/// Run property-test functions over generated inputs.
///
/// Supports the classic proptest surface used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn name(x in 0u32..100, seed in any::<u64>()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::config::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..cfg.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let desc = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (move || { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(msg) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}:\n  inputs: {}\n  {}",
                        stringify!($name), case + 1, cfg.cases, desc, msg,
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::config::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert inside a `proptest!` body; failure aborts the case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n  right: {:?}",
                stringify!($a), stringify!($b), lhs, rhs,
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::std::result::Result::Err(format!(
                "{}\n  left: {:?}\n  right: {:?}",
                format!($($fmt)+), lhs, rhs,
            ));
        }
    }};
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::config::ProptestConfig;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, proptest};

    /// Path-compatible alias so `prop::collection::vec` etc. resolve.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..10_000 {
            let v = (5u32..17).generate(&mut rng);
            assert!((5..17).contains(&v));
            let f = (1.5f32..2.5).generate(&mut rng);
            assert!((1.5..2.5).contains(&f));
            let t = (0u8..3, 10i64..12).generate(&mut rng);
            assert!(t.0 < 3 && (10..12).contains(&t.1));
        }
    }

    #[test]
    fn deterministic_per_name() {
        let seq = |name: &str| {
            let mut rng = TestRng::from_name(name);
            (0..16).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(seq("a"), seq("a"));
        assert_ne!(seq("a"), seq("b"));
    }

    #[test]
    fn collection_and_select() {
        let mut rng = TestRng::from_name("coll");
        for _ in 0..1000 {
            let v = crate::collection::vec(0u32..5, 1..9).generate(&mut rng);
            assert!((1..9).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
            let s = crate::sample::select(vec![3u64, 5, 9]).generate(&mut rng);
            assert!([3, 5, 9].contains(&s));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_asserts(x in 0u32..100, pair in (0u8..4, any::<u64>())) {
            prop_assert!(x < 100);
            prop_assert!(pair.0 < 4, "pair.0 was {}", pair.0);
            prop_assert_eq!(x + 1, 1 + x);
        }
    }

    proptest! {
        #[test]
        fn macro_without_config(v in prop::collection::vec(any::<u8>(), 1..20)) {
            prop_assert!(!v.is_empty());
        }
    }
}
