//! Offline stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! The build environment has no registry access, so this crate implements the
//! API shape the workspace's benches use (`criterion_group!`/`criterion_main!`,
//! `Criterion::benchmark_group`, `bench_function`, `bench_with_input`,
//! `Throughput`, `BenchmarkId`) over a simple wall-clock harness: a warm-up
//! pass, then `sample_size` timed samples, reporting median/min per iteration
//! and derived throughput.
//!
//! Environment knobs:
//!
//! * `OOCISO_BENCH_SAMPLES` — override every group's sample count.
//! * `OOCISO_BENCH_JSON`    — append one JSON object per benchmark to this
//!   file (used to record baselines under `docs/`).

use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput basis for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// A `group/parameter` benchmark identifier.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Times one closure; handed to bench closures as `b`.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Run the routine once per sample after one warm-up call.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up: page in code and data
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
        }
    }

    /// Run a routine that does its own timing: called with an iteration
    /// count, it returns the measured duration for that many iterations
    /// (letting per-iteration setup and teardown stay off the clock). The
    /// shim samples one iteration at a time.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut routine: F) {
        black_box(routine(1)); // warm-up
        for _ in 0..self.sample_size {
            self.samples.push(routine(1));
        }
    }
}

/// The harness entry point; one per `criterion_group!` run.
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let default_samples = std::env::var("OOCISO_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10);
        Criterion { default_samples }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            sample_size: self.default_samples,
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let samples = self.default_samples;
        run_one(None, &id.into().id, samples, None, f);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _c: &'a Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if std::env::var("OOCISO_BENCH_SAMPLES").is_err() {
            self.sample_size = n.max(1);
        }
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_one(
            Some(&self.name),
            &id.into().id,
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(&mut self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: Option<&str>,
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{full:<44} (no samples)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let min = b.samples[0];
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(n) => (n as f64 / median.as_secs_f64(), "B/s"),
        Throughput::Elements(n) => (n as f64 / median.as_secs_f64(), "elem/s"),
    });
    match rate {
        Some((r, unit)) => println!(
            "{full:<44} median {:>12} min {:>12}   {} {unit}",
            fmt_dur(median),
            fmt_dur(min),
            fmt_rate(r),
        ),
        None => println!(
            "{full:<44} median {:>12} min {:>12}",
            fmt_dur(median),
            fmt_dur(min),
        ),
    }
    if let Ok(path) = std::env::var("OOCISO_BENCH_JSON") {
        let (tp, unit) = rate.unwrap_or((0.0, ""));
        let line = format!(
            "{{\"bench\":\"{full}\",\"median_ns\":{},\"min_ns\":{},\"samples\":{},\"throughput\":{tp:.1},\"throughput_unit\":\"{unit}\"}}\n",
            median.as_nanos(),
            min.as_nanos(),
            b.samples.len(),
        );
        if let Ok(mut fh) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            let _ = fh.write_all(line.as_bytes());
        }
    }
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn fmt_rate(r: f64) -> String {
    if r >= 1e9 {
        format!("{:.2} G", r / 1e9)
    } else if r >= 1e6 {
        format!("{:.2} M", r / 1e6)
    } else if r >= 1e3 {
        format!("{:.2} k", r / 1e3)
    } else {
        format!("{r:.1} ")
    }
}

/// Define a group-runner function from bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Define `main` running the given groups (CLI args are accepted and ignored).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes --bench (and possibly filters); this minimal
            // harness runs everything and ignores the arguments.
            let _args: Vec<String> = std::env::args().collect();
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shimtest");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        let mut runs = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                std::hint::black_box(runs)
            })
        });
        group.finish();
        assert!(runs >= 4); // warm-up + samples
    }

    #[test]
    fn iter_custom_records_reported_durations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shimtest");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function("custom", |b| {
            b.iter_custom(|iters| {
                assert_eq!(iters, 1);
                calls += 1;
                Duration::from_micros(5)
            })
        });
        group.finish();
        assert_eq!(calls, 4); // warm-up + samples
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("compact", 500).id, "compact/500");
    }
}
