//! # oociso — out-of-core isosurface extraction and rendering
//!
//! Facade crate re-exporting the whole `oociso` workspace: a from-scratch Rust
//! reproduction of *"An Efficient and Scalable Parallel Algorithm for
//! Out-of-Core Isosurface Extraction and Rendering"* (Qin Wang, Joseph JaJa,
//! Amitabh Varshney; IPDPS 2006).
//!
//! ## Layered architecture
//!
//! * [`volume`] — structured grids, synthetic Richtmyer–Meshkov proxy, dataset zoo.
//! * [`exio`] — block devices, I/O cost model (50 MB/s disk of the paper's
//!   cluster), brick stores, round-robin striping.
//! * [`metacell`] — 9×9×9 metacell partitioning and preprocessing (734-byte
//!   records, constant-metacell culling).
//! * [`itree`] — the paper's **compact interval tree** plus the standard
//!   interval tree and BBIO-style external tree baselines.
//! * [`march`] — Marching Cubes (validated 256-case tables) and Marching
//!   Tetrahedra.
//! * [`render`] — software rasterizer, z-buffer, sort-last compositing, 10 Gbps
//!   interconnect model.
//! * [`cluster`] — simulated visualization cluster: p nodes × (local disk +
//!   local index + local framebuffer), phase timings.
//! * [`core`] — the public API: [`core::IsoDatabase`],
//!   [`core::TimeVaryingDatabase`], [`core::ClusterDatabase`].
//! * [`serve`] — TCP query server (versioned wire protocol, LRU result
//!   cache), blocking client, and the real-socket compositing transport.
//!
//! ## Quickstart
//!
//! ```no_run
//! use oociso::core::{IsoDatabase, PreprocessOptions};
//! use oociso::volume::{RmProxy, Dims3};
//!
//! let vol = RmProxy::with_seed(1).volume(250, Dims3::new(64, 64, 60));
//! let dir = std::env::temp_dir().join("oociso-quickstart");
//! let db = IsoDatabase::preprocess(&vol, &dir, &PreprocessOptions::default()).unwrap();
//! let surface = db.extract(128.0).unwrap();
//! println!("{} triangles", surface.mesh.len());
//! ```

pub use oociso_cluster as cluster;
pub use oociso_core as core;
pub use oociso_exio as exio;
pub use oociso_itree as itree;
pub use oociso_march as march;
pub use oociso_metacell as metacell;
pub use oociso_render as render;
pub use oociso_serve as serve;
pub use oociso_volume as volume;
