//! Chaos suite: the serving layer under overload, disk faults, flaky
//! transport, and shutdown-under-load.
//!
//! The invariant every test here enforces is the strong one: a client may
//! see a bit-correct result, an honest structured `ERR_BUSY` with a retry
//! hint, or a response *flagged* as a degraded LOD — but never a wrong
//! mesh, and never a wedged server. Fault schedules are seeded
//! (`FaultPlan`) or scripted per connection (`ChaosProxy`), so every
//! failure either reproduces deterministically or is asserted through
//! counters that reconcile exactly with what the clients observed.

mod common;

use common::tmpdir;
use oociso::core::{ClusterDatabase, PreprocessOptions};
use oociso::exio::{DiskFarm, FaultPlan, FaultyDevice, MemDevice, RecordStore, ThrottledDevice};
use oociso::march::IndexedMesh;
use oociso::serve::protocol::{
    self, encode_frame_at, read_frame_limited, FrameIn, ERR_INTERNAL, MAX_REQUEST_PAYLOAD,
};
use oociso::serve::{
    ChaosProxy, Client, ClientOptions, ConnFault, IsoServer, Message, ServeOptions, ServerError,
    ERR_BUSY,
};
use oociso::volume::field::{FieldExt, SphereField};
use oociso::volume::{Dims3, Volume};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

fn test_volume() -> Volume<u8> {
    SphereField::centered(0.32, 128.0).sample(Dims3::cube(29))
}

/// Which serving core a scenario exercises. Every server-side fault
/// scenario in this suite runs against both cores with the *same*
/// assertions — the reactor's overload/fault semantics are required to be
/// indistinguishable from the threaded core's.
#[derive(Clone, Copy, Debug)]
enum Core {
    Threaded,
    #[cfg(target_os = "linux")]
    Reactor,
}

impl Core {
    fn options(self, opts: ServeOptions) -> ServeOptions {
        match self {
            Core::Threaded => ServeOptions {
                reactor_threads: 0,
                ..opts
            },
            #[cfg(target_os = "linux")]
            Core::Reactor => ServeOptions {
                reactor_threads: 2,
                ..opts
            },
        }
    }

    fn suffix(self) -> &'static str {
        match self {
            Core::Threaded => "threaded",
            #[cfg(target_os = "linux")]
            Core::Reactor => "reactor",
        }
    }
}

/// A 1-node database on disk plus an independent direct-access handle on
/// the same directory for ground truth.
fn build_db(name: &str) -> (PathBuf, ClusterDatabase<u8>, ClusterDatabase<u8>) {
    let dir = tmpdir(name);
    let vol = test_volume();
    let served = ClusterDatabase::preprocess(&vol, &dir, &PreprocessOptions::default()).unwrap();
    let direct = ClusterDatabase::<u8>::open(&dir, false).unwrap();
    (dir, served, direct)
}

/// Swap the served database's single store for a throttled in-memory copy
/// (byte-identical data), so one extraction takes a few hundred ms — long
/// enough that tests can overlap events with it deterministically.
fn throttle_db(dir: &Path, db: &mut ClusterDatabase<u8>, bytes_per_sec_factor: f64) {
    let bricks = std::fs::read(DiskFarm::new(dir, 1).store_path(0)).unwrap();
    let rate = bricks.len() as f64 * bytes_per_sec_factor;
    db.replace_store(
        0,
        RecordStore::from_device(Box::new(ThrottledDevice::new(
            MemDevice::new(bricks),
            Duration::from_micros(200),
            rate,
        ))),
    );
}

fn assert_same_mesh(a: &IndexedMesh, b: &IndexedMesh, ctx: &str) {
    assert_eq!(
        a.positions().len(),
        b.positions().len(),
        "{ctx}: vertex count"
    );
    for (i, (x, y)) in a.positions().iter().zip(b.positions()).enumerate() {
        assert_eq!(x.x.to_bits(), y.x.to_bits(), "{ctx}: vertex {i}.x");
        assert_eq!(x.y.to_bits(), y.y.to_bits(), "{ctx}: vertex {i}.y");
        assert_eq!(x.z.to_bits(), y.z.to_bits(), "{ctx}: vertex {i}.z");
    }
    assert_eq!(a.indices(), b.indices(), "{ctx}: indices");
}

/// The acceptance storm: 16 clients against 2 extraction slots. Every
/// reply must be a bit-correct mesh or an honest `ERR_BUSY` carrying a
/// retry hint — and the server's shed counter must reconcile exactly with
/// the busy replies the clients counted.
fn storm_with_two_slots_scenario(core: Core) {
    let (dir, served, direct) = build_db(&format!("chaos_storm_{}", core.suffix()));
    let server = IsoServer::bind(
        served,
        ("127.0.0.1", 0),
        core.options(ServeOptions {
            extraction_slots: Some(2),
            ..Default::default()
        }),
    )
    .unwrap();
    let addr = server.addr();
    let isovalues = [90.0f32, 105.0, 120.0, 150.0];
    let truth: Vec<IndexedMesh> = isovalues
        .iter()
        .map(|&iso| direct.extract(iso).unwrap().mesh)
        .collect();

    let ok = AtomicU64::new(0);
    let busy = AtomicU64::new(0);
    let threads = 16;
    let per_thread = 3;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let (ok, busy, truth) = (&ok, &busy, &truth);
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for i in 0..per_thread {
                    let which = (t + i) % isovalues.len();
                    match client.query_mesh(isovalues[which], None) {
                        Ok(reply) => {
                            assert!(!reply.degraded, "no degradation configured");
                            assert_same_mesh(&reply.mesh, &truth[which], "storm");
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            let se = ServerError::from_io(&e)
                                .unwrap_or_else(|| panic!("unstructured failure: {e}"));
                            assert_eq!(se.code, ERR_BUSY, "{}", se.detail);
                            let hint = se.retry_after_ms.expect("busy carries a retry hint");
                            assert!((25..=10_000).contains(&hint), "hint {hint} ms");
                            busy.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    let (ok, busy) = (ok.load(Ordering::Relaxed), busy.load(Ordering::Relaxed));
    assert_eq!(
        ok + busy,
        (threads * per_thread) as u64,
        "every request answered"
    );
    assert!(ok > 0, "some requests must get through 2 slots");
    let report = server.stop();
    assert_eq!(
        report.shed, busy,
        "server sheds reconcile with client busys"
    );
    assert_eq!(report.requests, (threads * per_thread) as u64);
    assert_eq!(report.timed_out, 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn storm_with_two_slots_never_serves_a_wrong_mesh() {
    storm_with_two_slots_scenario(Core::Threaded);
}

#[cfg(target_os = "linux")]
#[test]
fn storm_with_two_slots_never_serves_a_wrong_mesh_reactor() {
    storm_with_two_slots_scenario(Core::Reactor);
}

/// `extraction_slots: Some(0)` sheds every miss deterministically — the
/// read-only-replica configuration, and the exact-count anchor for the
/// shed counter and the retry hint's clamp window (which the cold-start
/// hint, EWMA with zero samples, must sit at the floor of).
fn zero_slots_scenario(core: Core) {
    let (dir, served, _direct) = build_db(&format!("chaos_zeroslots_{}", core.suffix()));
    let server = IsoServer::bind(
        served,
        ("127.0.0.1", 0),
        core.options(ServeOptions {
            extraction_slots: Some(0),
            ..Default::default()
        }),
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    for attempt in 0..3 {
        let e = client
            .query_mesh(120.0, None)
            .expect_err("no slots: must shed");
        let se = ServerError::from_io(&e).expect("structured busy");
        assert_eq!(se.code, ERR_BUSY, "attempt {attempt}: {}", se.detail);
        assert!(se.detail.contains("retry in"), "{}", se.detail);
        let hint = se.retry_after_ms.expect("hint present");
        assert!((25..=10_000).contains(&hint));
    }
    // the connection survived three sheds, and non-extraction work still runs
    client.ping(64).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.shed, 3);
    assert_eq!(stats.degraded, 0);
    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn zero_slots_shed_every_miss_with_retry_hint() {
    zero_slots_scenario(Core::Threaded);
}

#[cfg(target_os = "linux")]
#[test]
fn zero_slots_shed_every_miss_with_retry_hint_reactor() {
    zero_slots_scenario(Core::Reactor);
}

/// Graceful degradation: a miss that cannot win the (single, occupied)
/// extraction slot is served from the cached coarser LOD of the same
/// isovalue — flagged `degraded`, with the `served_lod` it actually got,
/// and bit-identical to what that level serves normally.
fn degraded_fallback_scenario(core: Core) {
    let (dir, mut served, direct) = build_db(&format!("chaos_degrade_{}", core.suffix()));
    // slow extraction (~0.5 s) so another request reliably arrives while
    // the only slot is held
    throttle_db(&dir, &mut served, 1.0);
    // budget one byte under the full-resolution mesh: level 0 passes
    // through uncached while the coarse pyramid levels stay resident —
    // the exact state graceful degradation exists for
    let full = direct.extract(120.0).unwrap().mesh;
    let full_bytes =
        (std::mem::size_of_val(full.positions()) + std::mem::size_of_val(full.indices())) as u64;
    let server = IsoServer::bind(
        served,
        ("127.0.0.1", 0),
        core.options(ServeOptions {
            cache_bytes: full_bytes - 1,
            lod_ratios: vec![0.25, 0.06],
            extraction_slots: Some(1),
            degrade: true,
            ..Default::default()
        }),
    )
    .unwrap();
    let addr = server.addr();

    // warm: build the 120.0 pyramid (slow), then snapshot what lod 1
    // serves normally (a cache hit — needs no slot)
    let mut client = Client::connect(addr).unwrap();
    let reply = client.query_mesh(120.0, None).unwrap();
    assert!(!reply.degraded);
    assert_same_mesh(&reply.mesh, &full, "warm");
    let lod1 = client.query_mesh_lod(120.0, None, 1).unwrap();
    assert!(lod1.cache_hit, "coarse levels are resident");
    assert!(!lod1.mesh.is_empty());

    std::thread::scope(|scope| {
        // occupy the only slot with a slow extraction of another isovalue
        let slot_holder = scope.spawn(move || {
            let mut b = Client::connect(addr).unwrap();
            b.query_mesh(90.0, None).unwrap()
        });
        std::thread::sleep(Duration::from_millis(100));
        // full resolution of 120.0 misses (uncached) and can't extract:
        // served the resident lod-1 mesh, honestly flagged
        let degraded = client.query_mesh(120.0, None).unwrap();
        assert!(degraded.degraded, "reply must be flagged");
        assert_eq!(degraded.served_lod, 1, "finest resident coarser level");
        assert!(degraded.cache_hit);
        assert_same_mesh(&degraded.mesh, &lod1.mesh, "degraded");
        let held = slot_holder.join().unwrap();
        assert!(!held.degraded, "the slot holder extracted normally");
    });
    let report = server.stop();
    assert_eq!(report.degraded, 1);
    assert_eq!(report.shed, 0, "degradation prevented the shed");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn degraded_fallback_serves_flagged_cached_coarser_lod() {
    degraded_fallback_scenario(Core::Threaded);
}

#[cfg(target_os = "linux")]
#[test]
fn degraded_fallback_serves_flagged_cached_coarser_lod_reactor() {
    degraded_fallback_scenario(Core::Reactor);
}

/// The connection cap: an over-cap connection gets one structured
/// `ERR_BUSY` and a close — never a silent drop — and the capped server
/// keeps serving its admitted client.
fn connection_cap_scenario(core: Core) {
    let (dir, served, _direct) = build_db(&format!("chaos_conncap_{}", core.suffix()));
    let server = IsoServer::bind(
        served,
        ("127.0.0.1", 0),
        core.options(ServeOptions {
            max_connections: Some(1),
            ..Default::default()
        }),
    )
    .unwrap();
    let addr = server.addr();
    let mut admitted = Client::connect(addr).unwrap();
    // once this completes, the admitted connection's handler is live and
    // the cap is provably full
    admitted.query_mesh(120.0, None).unwrap();

    let mut overflow = Client::connect(addr).unwrap();
    let e = overflow.query_mesh(120.0, None).expect_err("over the cap");
    let se = ServerError::from_io(&e).expect("structured busy, not a silent drop");
    assert_eq!(se.code, ERR_BUSY, "{}", se.detail);
    assert!(se.detail.contains("connection limit"), "{}", se.detail);
    assert!(se.retry_after_ms.is_some());

    // the admitted client is unaffected (and now hits the cache)
    let again = admitted.query_mesh(120.0, None).unwrap();
    assert!(again.cache_hit);
    let stats = admitted.stats().unwrap();
    assert_eq!(stats.shed, 1);
    assert_eq!(stats.active_connections, 1);
    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn connection_cap_sheds_overflow_with_busy() {
    connection_cap_scenario(Core::Threaded);
}

#[cfg(target_os = "linux")]
#[test]
fn connection_cap_sheds_overflow_with_busy_reactor() {
    connection_cap_scenario(Core::Reactor);
}

/// A disk fault mid-extraction surfaces as a structured `ERR_INTERNAL` —
/// and the server stays healthy: the connection survives, the extraction
/// slot is released, and the same query succeeds once the disk heals.
fn disk_fault_scenario(core: Core) {
    let (dir, mut served, direct) = build_db(&format!("chaos_diskfault_{}", core.suffix()));
    let bricks = std::fs::read(DiskFarm::new(&dir, 1).store_path(0)).unwrap();
    served.replace_store(
        0,
        RecordStore::from_device(Box::new(FaultyDevice::new(
            MemDevice::new(bricks),
            FaultPlan::fail_first(1),
        ))),
    );
    let server = IsoServer::bind(
        served,
        ("127.0.0.1", 0),
        core.options(ServeOptions {
            // a single slot proves the failed extraction released it
            extraction_slots: Some(1),
            ..Default::default()
        }),
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let e = client.query_mesh(120.0, None).expect_err("read #0 fails");
    let se = ServerError::from_io(&e).expect("structured error");
    assert_eq!(se.code, ERR_INTERNAL, "{}", se.detail);
    assert!(se.detail.contains("injected fault"), "{}", se.detail);

    // same connection, same query: the disk healed, the slot is free
    let reply = client.query_mesh(120.0, None).unwrap();
    assert_same_mesh(&reply.mesh, &direct.extract(120.0).unwrap().mesh, "healed");
    let stats = client.stats().unwrap();
    assert_eq!(stats.errors, 1);
    assert_eq!(stats.shed, 0, "a fault is not overload");
    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn injected_disk_fault_surfaces_as_err_internal_and_server_heals() {
    disk_fault_scenario(Core::Threaded);
}

#[cfg(target_os = "linux")]
#[test]
fn injected_disk_fault_surfaces_as_err_internal_and_server_heals_reactor() {
    disk_fault_scenario(Core::Reactor);
}

/// Drain under load: every request accepted before the drain started gets
/// its full, bit-correct reply — zero are dropped, shed, or timed out —
/// and the listener is gone afterwards.
fn drain_under_load_scenario(core: Core) {
    let (dir, mut served, direct) = build_db(&format!("chaos_drain_{}", core.suffix()));
    // ~0.5 s per extraction: all six requests are still in flight when
    // the drain begins
    throttle_db(&dir, &mut served, 1.0);
    let server = IsoServer::bind(
        served,
        ("127.0.0.1", 0),
        core.options(ServeOptions::default()),
    )
    .unwrap();
    let addr = server.addr();
    let isovalues = [80.0f32, 90.0, 100.0, 110.0, 120.0, 130.0];

    std::thread::scope(|scope| {
        let handles: Vec<_> = isovalues
            .iter()
            .map(|&iso| {
                scope.spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    (iso, c.query_mesh(iso, None).unwrap())
                })
            })
            .collect();
        // all six are in flight; drain must finish them, not cut them off
        std::thread::sleep(Duration::from_millis(150));
        let report = server.drain(Duration::from_secs(30));
        assert_eq!(report.requests, isovalues.len() as u64, "none lost");
        assert_eq!(report.timed_out, 0);
        assert_eq!(report.shed, 0);
        assert_eq!(
            report.active_connections, 0,
            "drain waited for every handler"
        );
        for h in handles {
            let (iso, reply) = h.join().expect("accepted request must complete");
            assert_same_mesh(&reply.mesh, &direct.extract(iso).unwrap().mesh, "drained");
        }
    });
    // the drained server is gone: a new client cannot get service
    match Client::connect(addr) {
        Err(_) => {}
        Ok(mut late) => assert!(late.query_mesh(80.0, None).is_err(), "listener closed"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn drain_under_load_completes_all_accepted_requests() {
    drain_under_load_scenario(Core::Threaded);
}

#[cfg(target_os = "linux")]
#[test]
fn drain_under_load_completes_all_accepted_requests_reactor() {
    drain_under_load_scenario(Core::Reactor);
}

/// The retrying client converges through a scripted flaky transport: a
/// mid-frame truncation, then a refused connection, then a clean one —
/// one `query_mesh` call, a bit-correct result, exactly three connections.
fn retrying_client_scenario(core: Core) {
    let (dir, served, direct) = build_db(&format!("chaos_retry_{}", core.suffix()));
    let server = IsoServer::bind(
        served,
        ("127.0.0.1", 0),
        core.options(ServeOptions::default()),
    )
    .unwrap();
    // warm the cache through a direct connection so proxied attempts are fast
    let truth = direct.extract(120.0).unwrap().mesh;
    Client::connect(server.addr())
        .unwrap()
        .query_mesh(120.0, None)
        .unwrap();

    // connection 1: response cut mid-frame; connection 2: dropped on
    // accept; connection 3: clean
    let proxy = ChaosProxy::start(
        server.addr(),
        vec![
            ConnFault::TruncateResponse { after_bytes: 40 },
            ConnFault::Refuse,
            ConnFault::Clean,
        ],
    )
    .unwrap();
    let mut client = Client::connect_with(
        proxy.addr(),
        ClientOptions {
            retries: 4,
            backoff: Duration::from_millis(10),
            ..Default::default()
        },
    )
    .unwrap();
    let reply = client.query_mesh(120.0, None).unwrap();
    assert!(!reply.degraded);
    assert_same_mesh(&reply.mesh, &truth, "through the flaky transport");
    assert_eq!(
        proxy.connections(),
        3,
        "exactly: torn attempt, refused redial, converging redial"
    );
    proxy.stop();
    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn retrying_client_converges_through_flaky_transport() {
    retrying_client_scenario(Core::Threaded);
}

#[cfg(target_os = "linux")]
#[test]
fn retrying_client_converges_through_flaky_transport_reactor() {
    retrying_client_scenario(Core::Reactor);
}

/// `ERR_BUSY` replies drive the client's backoff (honoring the server's
/// hint) until a later attempt succeeds — pinned against a scripted
/// protocol endpoint so the reply schedule is exact: busy, busy, serve.
#[test]
fn busy_replies_back_off_and_then_succeed() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let served_after = 2u32; // busy replies before the real one
    let handle = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        let mut replies = 0u32;
        while let Ok(Some(frame)) = read_frame_limited(&mut stream, MAX_REQUEST_PAYLOAD) {
            let FrameIn::Ok { version, .. } = frame else {
                panic!("client sent a malformed frame")
            };
            let msg = if replies < served_after {
                Message::Error {
                    code: protocol::ERR_BUSY,
                    detail: "scripted busy".into(),
                    retry_after_ms: Some(60),
                }
            } else {
                Message::MeshResponse {
                    cache_hit: true,
                    active_metacells: 7,
                    served_lod: 0,
                    degraded: false,
                    backend: 0,
                    trace_id: 0,
                    mesh: IndexedMesh::new(),
                }
            };
            use std::io::Write;
            stream.write_all(&encode_frame_at(version, &msg)).unwrap();
            replies += 1;
            if replies > served_after {
                break;
            }
        }
        replies
    });

    let mut client = Client::connect_with(
        addr,
        ClientOptions {
            retries: 3,
            backoff: Duration::from_millis(5),
            ..Default::default()
        },
    )
    .unwrap();
    let t0 = Instant::now();
    let reply = client.query_mesh(42.0, None).unwrap();
    let elapsed = t0.elapsed();
    assert_eq!(reply.active_metacells, 7);
    assert!(reply.mesh.is_empty());
    assert_eq!(handle.join().unwrap(), 3, "busy, busy, served");
    // each of the two backoffs is jittered into [hint/2, hint) = [30, 60) ms
    assert!(
        elapsed >= Duration::from_millis(60),
        "the 60 ms hint was honored twice, got {elapsed:?}"
    );
}

/// A server that never replies trips the client's per-request deadline as
/// a clean `TimedOut` — not a hang.
#[test]
fn request_deadline_surfaces_as_timed_out() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        // swallow everything, answer nothing
        let mut sink = Vec::new();
        use std::io::Read;
        let _ = stream.read_to_end(&mut sink);
    });
    let mut client = Client::connect_with(
        addr,
        ClientOptions {
            request_timeout: Some(Duration::from_millis(150)),
            retries: 0,
            ..Default::default()
        },
    )
    .unwrap();
    let t0 = Instant::now();
    let e = client
        .query_mesh(1.0, None)
        .expect_err("no reply is coming");
    assert_eq!(e.kind(), std::io::ErrorKind::TimedOut, "{e}");
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "deadline, not a hang"
    );
    drop(client);
    handle.join().unwrap();
}

/// Slowloris defense: a peer that starts a frame and stalls is cut off by
/// the read deadline (counted `timed_out`), and the server keeps serving
/// well-behaved clients.
fn slowloris_scenario(core: Core) {
    let (dir, served, _direct) = build_db(&format!("chaos_slowloris_{}", core.suffix()));
    let server = IsoServer::bind(
        served,
        ("127.0.0.1", 0),
        core.options(ServeOptions {
            read_timeout: Some(Duration::from_millis(100)),
            ..Default::default()
        }),
    )
    .unwrap();
    let addr = server.addr();

    // half a header, then silence
    let mut slow = std::net::TcpStream::connect(addr).unwrap();
    {
        use std::io::{Read, Write};
        slow.write_all(&protocol::MAGIC.to_le_bytes()).unwrap();
        slow.write_all(&protocol::VERSION.to_le_bytes()).unwrap();
        slow.flush().unwrap();
        // the deadline fires and the server hangs up on us
        slow.set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut buf = [0u8; 16];
        assert_eq!(
            slow.read(&mut buf).unwrap(),
            0,
            "server closed the stalled conn"
        );
    }

    // a well-behaved client is unaffected
    let mut client = Client::connect(addr).unwrap();
    client.query_mesh(120.0, None).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.timed_out, 1);
    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn slowloris_peer_is_disconnected_and_server_keeps_serving() {
    slowloris_scenario(Core::Threaded);
}

#[cfg(target_os = "linux")]
#[test]
fn slowloris_peer_is_disconnected_and_server_keeps_serving_reactor() {
    slowloris_scenario(Core::Reactor);
}

/// Exact-token lookup in a Prometheus text exposition: `name value` lines
/// only, so `speculative_hits_total` never matches a longer sibling.
fn metric_value(exposition: &str, name: &str) -> u64 {
    exposition
        .lines()
        .find_map(|line| {
            let mut it = line.split_whitespace();
            (it.next() == Some(name)).then(|| it.next().unwrap().parse().unwrap())
        })
        .unwrap_or_else(|| panic!("metric {name} missing from exposition"))
}

/// Speculative warming pays for an isovalue scrub: one real miss at `v`
/// warms `v ± δ` on idle slots, so the next scrub stops are cache hits —
/// bit-identical to direct extraction — and the warming added zero sheds
/// and zero degraded serves.
fn warmed_scrub_scenario(core: Core) {
    let (dir, served, direct) = build_db(&format!("chaos_warmscrub_{}", core.suffix()));
    let server = IsoServer::bind(
        served,
        ("127.0.0.1", 0),
        core.options(ServeOptions {
            warm_delta: Some(10.0),
            extraction_slots: Some(2),
            ..Default::default()
        }),
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // the scrub's first stop: a real miss, which schedules 100.0 and 120.0
    let first = client.query_mesh(110.0, None).unwrap();
    assert!(!first.cache_hit);
    assert_same_mesh(
        &first.mesh,
        &direct.extract(110.0).unwrap().mesh,
        "first stop",
    );

    // wait for both warm jobs to land (idle slots, so this is quick)
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let m = client.metrics().unwrap();
        if metric_value(&m, "speculative_completed_total") >= 2 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "warm jobs for 110±10 never completed:\n{m}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // the neighboring stops are served from the warmed cache, bit-correct
    for iso in [100.0f32, 120.0] {
        let reply = client.query_mesh(iso, None).unwrap();
        assert!(reply.cache_hit, "warmed {iso} must be resident");
        assert!(!reply.degraded);
        assert_same_mesh(
            &reply.mesh,
            &direct.extract(iso).unwrap().mesh,
            &format!("warmed {iso}"),
        );
    }
    let m = client.metrics().unwrap();
    assert!(
        metric_value(&m, "speculative_hits_total") >= 2,
        "both neighbors were speculative entries:\n{m}"
    );
    assert!(metric_value(&m, "speculative_started_total") >= 2);

    let report = server.stop();
    assert_eq!(report.shed, 0, "warming must not cost real traffic a slot");
    assert_eq!(report.degraded, 0);
    assert_eq!(report.errors, 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn warmed_scrub_hits_speculative_entries_without_shedding() {
    warmed_scrub_scenario(Core::Threaded);
}

#[cfg(target_os = "linux")]
#[test]
fn warmed_scrub_hits_speculative_entries_without_shedding_reactor() {
    warmed_scrub_scenario(Core::Reactor);
}

/// Regression: a busy reply hinting `retry_after_ms: 0` (or carrying no
/// hint at all) must not turn the retry loop into a hot spin — the client
/// clamps the delay to a 25 ms floor. Scripted schedule: busy with a zero
/// hint, busy with no hint, then serve.
#[test]
fn zero_and_absent_busy_hints_are_floored_not_hot_looped() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        let script = [Some(0u32), None];
        let mut replies = 0usize;
        while let Ok(Some(frame)) = read_frame_limited(&mut stream, MAX_REQUEST_PAYLOAD) {
            let FrameIn::Ok { version, .. } = frame else {
                panic!("client sent a malformed frame")
            };
            let msg = match script.get(replies) {
                Some(&hint) => Message::Error {
                    code: protocol::ERR_BUSY,
                    detail: "scripted busy".into(),
                    retry_after_ms: hint,
                },
                None => Message::MeshResponse {
                    cache_hit: true,
                    active_metacells: 7,
                    served_lod: 0,
                    degraded: false,
                    backend: 0,
                    trace_id: 0,
                    mesh: IndexedMesh::new(),
                },
            };
            use std::io::Write;
            stream.write_all(&encode_frame_at(version, &msg)).unwrap();
            replies += 1;
            if replies > script.len() {
                break;
            }
        }
        replies
    });

    // zero base backoff: before the floor fix, both waits rounded to ~0 ms
    let mut client = Client::connect_with(
        addr,
        ClientOptions {
            retries: 3,
            backoff: Duration::ZERO,
            ..Default::default()
        },
    )
    .unwrap();
    let t0 = Instant::now();
    let reply = client.query_mesh(42.0, None).unwrap();
    let elapsed = t0.elapsed();
    assert_eq!(reply.active_metacells, 7);
    assert_eq!(handle.join().unwrap(), 3, "busy, busy, served");
    // each floored wait is jittered into [12.5, 25) ms; two of them
    assert!(
        elapsed >= Duration::from_millis(25),
        "the floor must hold even with a 0 ms hint, got {elapsed:?}"
    );
}
