//! Property-based invariants of quadric edge-collapse decimation over the
//! out-of-core pipeline's welded meshes.
//!
//! The field zoo (smooth closed sphere, genus-1 torus, open periodic
//! gyroid, rough open noise) × isovalues × target ratios is swept for the
//! properties the LOD subsystem leans on:
//!
//! * **topology safety** — closed-manifold inputs stay closed-manifold with
//!   an unchanged Euler characteristic; open inputs keep their boundary
//!   edge count exactly (boundary vertices are pinned, never collapsed
//!   through or moved);
//! * **budget** — the surviving vertex count respects the requested ratio
//!   whenever the decimator reports the target reached, and a miss is only
//!   ever the boundary-pinning floor, never overshoot;
//! * **fidelity** — every surviving vertex lies within the reported
//!   quadric-error gauge (`DecimateStats::world_error`) of the original
//!   surface, measured as true point-to-triangle distance;
//! * **determinism** — byte-identical output across repeated runs and
//!   across extraction worker counts (the LOD analogue of the weld
//!   determinism matrix in `tests/watertight.rs`).
//!
//! Plus the degenerate inputs a serving decimator must survive: empty
//! meshes, a single triangle, all-collinear (singular) quadrics, and an
//! unwelded `--no-weld` mesh whose every metacell seam is boundary.

mod common;

use oociso::cluster::ExtractOptions;
use oociso::core::{ClusterDatabase, PreprocessOptions};
use oociso::march::{
    analyze_mesh_connectivity, decimate_to_error, decimate_to_ratio, IndexedMesh, Triangle, Vec3,
};
use oociso::volume::{Dims3, Volume};
use proptest::prelude::*;
use std::collections::HashSet;

/// Distance from `p` to the closest point of triangle `t` (Ericson's
/// closest-point-on-triangle, all branches).
fn dist_point_tri(p: Vec3, t: &Triangle) -> f32 {
    let (a, b, c) = (t.v[0], t.v[1], t.v[2]);
    let ab = b - a;
    let ac = c - a;
    let ap = p - a;
    let d1 = ab.dot(ap);
    let d2 = ac.dot(ap);
    if d1 <= 0.0 && d2 <= 0.0 {
        return (p - a).length();
    }
    let bp = p - b;
    let d3 = ab.dot(bp);
    let d4 = ac.dot(bp);
    if d3 >= 0.0 && d4 <= d3 {
        return (p - b).length();
    }
    let vc = d1 * d4 - d3 * d2;
    if vc <= 0.0 && d1 >= 0.0 && d3 <= 0.0 {
        let v = d1 / (d1 - d3);
        return (p - (a + ab * v)).length();
    }
    let cp = p - c;
    let d5 = ab.dot(cp);
    let d6 = ac.dot(cp);
    if d6 >= 0.0 && d5 <= d6 {
        return (p - c).length();
    }
    let vb = d5 * d2 - d1 * d6;
    if vb <= 0.0 && d2 >= 0.0 && d6 <= 0.0 {
        let w = d2 / (d2 - d6);
        return (p - (a + ac * w)).length();
    }
    let va = d3 * d6 - d5 * d4;
    if va <= 0.0 && (d4 - d3) >= 0.0 && (d5 - d6) >= 0.0 {
        let w = (d4 - d3) / ((d4 - d3) + (d5 - d6));
        return (p - (b + (c - b) * w)).length();
    }
    let denom = 1.0 / (va + vb + vc);
    let v = vb * denom;
    let w = vc * denom;
    (p - (a + ab * v + ac * w)).length()
}

/// Max distance from (a deterministic sample of) `dec`'s vertices to the
/// original surface. Sampling caps the O(V × T) cost; the stride is fixed,
/// so the same meshes always measure the same vertices.
fn max_deviation(dec: &IndexedMesh, orig: &IndexedMesh, max_samples: usize) -> f32 {
    let tris: Vec<Triangle> = orig.triangles().collect();
    let stride = (dec.num_vertices() / max_samples.max(1)).max(1);
    dec.positions()
        .iter()
        .step_by(stride)
        .map(|&p| {
            tris.iter()
                .map(|t| dist_point_tri(p, t))
                .fold(f32::INFINITY, f32::min)
        })
        .fold(0.0, f32::max)
}

/// Positions (bit-keyed) of vertices on a boundary or non-manifold edge of
/// `mesh`, under raw index connectivity — the set the decimator pins.
fn boundary_vertex_positions(mesh: &IndexedMesh) -> HashSet<(u32, u32, u32)> {
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for tri in mesh.indices().chunks_exact(3) {
        for i in 0..3 {
            let (a, b) = (tri[i], tri[(i + 1) % 3]);
            if a != b {
                edges.push(if a < b { (a, b) } else { (b, a) });
            }
        }
    }
    edges.sort_unstable();
    let mut out = HashSet::new();
    let mut i = 0;
    while i < edges.len() {
        let mut j = i + 1;
        while j < edges.len() && edges[j] == edges[i] {
            j += 1;
        }
        if j - i != 2 {
            for v in [edges[i].0, edges[i].1] {
                let p = mesh.positions()[v as usize];
                out.insert((p.x.to_bits(), p.y.to_bits(), p.z.to_bits()));
            }
        }
        i = j;
    }
    out
}

fn position_set(mesh: &IndexedMesh) -> HashSet<(u32, u32, u32)> {
    mesh.positions()
        .iter()
        .map(|p| (p.x.to_bits(), p.y.to_bits(), p.z.to_bits()))
        .collect()
}

/// The per-mesh property block shared by the zoo sweep.
fn check_decimation(name: &str, mesh: &IndexedMesh, ratio: f64) {
    let ctx = format!("{name} ratio={ratio}");
    let before = analyze_mesh_connectivity(mesh);
    let (dec, stats) = decimate_to_ratio(mesh, ratio);
    let after = analyze_mesh_connectivity(&dec);

    // --- topology safety ---------------------------------------------
    assert_eq!(
        after.euler_characteristic(),
        before.euler_characteristic(),
        "{ctx}: Euler characteristic changed"
    );
    assert_eq!(after.components, before.components, "{ctx}");
    assert_eq!(
        after.boundary_edges, before.boundary_edges,
        "{ctx}: boundary must be pinned exactly"
    );
    assert_eq!(
        after.non_manifold_edges, before.non_manifold_edges,
        "{ctx}: decimation must not create (or destroy) non-manifold edges"
    );
    if before.is_closed_manifold() {
        assert!(after.is_closed_manifold(), "{ctx}: {after:?}");
    }
    // pinned boundary vertices survive with their exact positions
    let pinned_before = boundary_vertex_positions(mesh);
    let out_positions = position_set(&dec);
    assert!(
        pinned_before.is_subset(&out_positions),
        "{ctx}: a pinned boundary vertex vanished or moved"
    );

    // --- budget -------------------------------------------------------
    let target = (mesh.num_vertices() as f64 * ratio).ceil() as u64;
    if stats.reached_target {
        assert!(
            stats.output_vertices <= target,
            "{ctx}: {} > target {target}",
            stats.output_vertices
        );
    } else {
        // the only legitimate miss is the boundary-pinning floor: every
        // pinned vertex must survive, so the output can never go below
        // them — and a guarded heap exhaustion must land in their vicinity
        assert!(
            stats.output_vertices <= (2 * stats.pinned_vertices).max(target),
            "{ctx}: target missed but output {} is far above the pinned floor {}",
            stats.output_vertices,
            stats.pinned_vertices
        );
        assert!(stats.pinned_vertices > 0, "{ctx}: unexplained target miss");
    }
    assert_eq!(stats.output_vertices, dec.num_vertices() as u64, "{ctx}");
    assert_eq!(stats.output_triangles, dec.len() as u64, "{ctx}");
    // manifold collapse bookkeeping: one vertex and two faces per collapse
    assert_eq!(
        stats.input_triangles - stats.output_triangles,
        2 * stats.collapses,
        "{ctx}"
    );

    // --- fidelity -----------------------------------------------------
    // every surviving vertex lies within the reported quadric-error gauge
    // of the original surface (empirically the true deviation stays under
    // ~0.35× the gauge; asserting ≤ 1× leaves margin without being vacuous
    // — the gauge itself is small next to the mesh)
    let diag = (mesh.bounds().hi - mesh.bounds().lo).length();
    let dev = max_deviation(&dec, mesh, 300) as f64;
    assert!(
        dev <= stats.world_error().max(1e-3),
        "{ctx}: deviation {dev} exceeds quadric gauge {}",
        stats.world_error()
    );
    assert!(
        dev <= 0.05 * diag as f64,
        "{ctx}: deviation {dev} exceeds 5% of the mesh diagonal {diag}"
    );

    // --- determinism (repeated run) ----------------------------------
    let (dec2, stats2) = decimate_to_ratio(mesh, ratio);
    assert_eq!(dec, dec2, "{ctx}: repeated runs must be bit-identical");
    assert_eq!(stats, stats2, "{ctx}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// The headline sweep: every zoo field × a proptest-chosen half-integer
    /// isovalue × both pyramid ratios.
    #[test]
    fn zoo_decimation_preserves_topology_budget_and_error_bound(
        iso_step in 97u32..160,
    ) {
        let iso = iso_step as f32 + 0.5;
        for (name, vol) in &common::zoo() {
            let dir = common::tmpdir(&format!("dec_{name}_{iso_step}"));
            let db = ClusterDatabase::preprocess(
                vol,
                &dir,
                &PreprocessOptions { nodes: 2, ..Default::default() },
            )
            .unwrap();
            let mesh = db.extract(iso).unwrap().mesh;
            std::fs::remove_dir_all(&dir).ok();
            if mesh.len() < 100 {
                continue; // degenerate surfaces are covered by the plain tests
            }
            for ratio in [0.25f64, 0.06] {
                check_decimation(&format!("{name} iso={iso}"), &mesh, ratio);
            }
        }
    }
}

/// Worker counts must not leak into LOD output: the welded mesh is already
/// proven worker-invariant, and decimation is a pure function of it — so the
/// decimated bytes must match across the same worker matrix the weld tests
/// sweep.
#[test]
fn decimation_is_bit_identical_across_worker_counts() {
    let vol = common::gyroid_vol(Dims3::cube(28));
    let dir = common::tmpdir("dec_workers");
    let db = ClusterDatabase::preprocess(
        &vol,
        &dir,
        &PreprocessOptions {
            nodes: 2,
            ..Default::default()
        },
    )
    .unwrap();
    let mut baseline: Option<(IndexedMesh, IndexedMesh)> = None;
    for workers in [1usize, 2, 8] {
        let mesh = db
            .extract_with_options(
                128.5,
                &ExtractOptions {
                    workers: Some(workers),
                    ..Default::default()
                },
            )
            .unwrap()
            .mesh;
        let (dec, _) = decimate_to_ratio(&mesh, 0.25);
        match &baseline {
            None => baseline = Some((mesh, dec)),
            Some((bm, bd)) => {
                assert_eq!(&mesh, bm, "workers={workers}: welded mesh differs");
                assert_eq!(&dec, bd, "workers={workers}: decimated mesh differs");
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// `decimate_to_error` honors its bound: no applied collapse exceeds it and
/// the surface stays within the gauge of the original.
#[test]
fn error_bound_mode_is_respected_on_the_zoo() {
    for (name, vol) in &common::zoo() {
        let dir = common::tmpdir(&format!("dec_err_{name}"));
        let db = ClusterDatabase::preprocess(
            vol,
            &dir,
            &PreprocessOptions {
                nodes: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let mesh = db.extract(128.5).unwrap().mesh;
        std::fs::remove_dir_all(&dir).ok();
        let bound = 0.01f64; // squared world distance
        let (dec, stats) = decimate_to_error(&mesh, bound);
        assert!(stats.max_error <= bound, "{name}: {stats:?}");
        assert!(
            stats.output_vertices < stats.input_vertices,
            "{name}: a hot bound should still find cheap collapses"
        );
        let dev = max_deviation(&dec, &mesh, 300) as f64;
        assert!(dev <= stats.world_error().max(1e-3), "{name}: dev {dev}");
    }
}

/// The acceptance bar: on the 65³ (ball-clipped, hence closed) gyroid,
/// `decimate_to_ratio(0.25)` yields a closed-manifold mesh within the
/// vertex budget whose max quadric error is bounded and reported,
/// bit-identical across runs and worker counts, with the boundary-free
/// topology of the input preserved exactly.
#[test]
fn gyroid_65_quarter_ratio_acceptance() {
    let vol = common::clipped_gyroid_vol(Dims3::cube(65));
    let dir = common::tmpdir("dec_accept65");
    let db = ClusterDatabase::preprocess(
        &vol,
        &dir,
        &PreprocessOptions {
            nodes: 3,
            ..Default::default()
        },
    )
    .unwrap();
    let mesh = db.extract(128.5).unwrap().mesh;
    let before = analyze_mesh_connectivity(&mesh);
    assert!(before.is_closed_manifold(), "{before:?}");

    let (dec, stats) = decimate_to_ratio(&mesh, 0.25);
    assert!(stats.reached_target, "{stats:?}");
    let target = (mesh.num_vertices() as f64 * 0.25).ceil() as usize;
    assert!(
        dec.num_vertices() <= target,
        "{} > {target}",
        dec.num_vertices()
    );
    let after = analyze_mesh_connectivity(&dec);
    assert!(after.is_closed_manifold(), "{after:?}");
    assert_eq!(after.euler_characteristic(), before.euler_characteristic());
    assert_eq!(after.components, before.components);
    // the max quadric error is bounded (reported, finite, and small next
    // to the mesh) …
    assert!(stats.max_error.is_finite() && stats.max_error >= 0.0);
    let diag = (mesh.bounds().hi - mesh.bounds().lo).length() as f64;
    assert!(
        stats.world_error() < 0.02 * diag,
        "world error {} vs diagonal {diag}",
        stats.world_error()
    );
    // … and honest: true deviation stays within the gauge
    let dev = max_deviation(&dec, &mesh, 200) as f64;
    assert!(
        dev <= stats.world_error().max(1e-3),
        "dev {dev} > {stats:?}"
    );

    // bit-identical across repeated runs and worker counts
    let (dec2, stats2) = decimate_to_ratio(&mesh, 0.25);
    assert_eq!(dec, dec2);
    assert_eq!(stats, stats2);
    let mesh_w8 = db
        .extract_with_options(
            128.5,
            &ExtractOptions {
                workers: Some(8),
                ..Default::default()
            },
        )
        .unwrap()
        .mesh;
    let (dec8, _) = decimate_to_ratio(&mesh_w8, 0.25);
    assert_eq!(dec, dec8, "worker count leaked into the decimated bytes");
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// degenerate inputs
// ---------------------------------------------------------------------

#[test]
fn empty_and_single_triangle_inputs_pass_through() {
    let (out, stats) = decimate_to_ratio(&IndexedMesh::new(), 0.25);
    assert!(out.is_empty());
    assert_eq!(stats.collapses, 0);

    // a single triangle is 100% boundary: fully pinned, byte-identical out
    let mut tri = IndexedMesh::new();
    let a = tri.push_vertex(Vec3::new(0.0, 0.0, 0.0));
    let b = tri.push_vertex(Vec3::new(2.0, 0.0, 0.0));
    let c = tri.push_vertex(Vec3::new(0.0, 2.0, 0.0));
    tri.push_triangle(a, b, c);
    let (out, stats) = decimate_to_ratio(&tri, 0.0);
    assert_eq!(out.positions(), tri.positions());
    assert_eq!(out.indices(), tri.indices());
    assert_eq!(stats.collapses, 0);
    assert_eq!(stats.pinned_vertices, 3);
}

/// A flat triangulated sheet: every vertex quadric is a stack of coplanar
/// planes — the 3×3 system is singular for all of them ("all-collinear
/// quadrics"), so each collapse must take the deterministic fallback
/// placement. The sheet must stay exactly planar, its rim must be pinned,
/// and the disk topology must survive.
#[test]
fn all_collinear_quadrics_use_the_fallback_and_stay_planar() {
    let n = 12usize; // (n+1)² vertices, 2n² triangles
    let mut sheet = IndexedMesh::new();
    for y in 0..=n {
        for x in 0..=n {
            sheet.push_vertex(Vec3::new(x as f32, y as f32, 3.25));
        }
    }
    let id = |x: usize, y: usize| (y * (n + 1) + x) as u32;
    for y in 0..n {
        for x in 0..n {
            sheet.push_triangle(id(x, y), id(x + 1, y), id(x + 1, y + 1));
            sheet.push_triangle(id(x, y), id(x + 1, y + 1), id(x, y + 1));
        }
    }
    let before = analyze_mesh_connectivity(&sheet);
    assert_eq!(before.euler_characteristic(), 1, "a disk");
    assert_eq!(before.boundary_edges, 4 * n);

    let (dec, stats) = decimate_to_ratio(&sheet, 0.3);
    assert!(stats.collapses > 0, "interior must still be collapsible");
    assert!(
        dec.num_vertices() < sheet.num_vertices(),
        "flat sheet must shrink"
    );
    // exactly planar: singular quadrics never invent an off-plane position
    for p in dec.positions() {
        assert_eq!(p.z.to_bits(), 3.25f32.to_bits(), "left the plane: {p:?}");
    }
    let after = analyze_mesh_connectivity(&dec);
    assert_eq!(after.euler_characteristic(), 1);
    assert_eq!(after.boundary_edges, 4 * n, "rim must be pinned");
    assert!(
        boundary_vertex_positions(&sheet).is_subset(&position_set(&dec)),
        "every rim vertex survives at its exact position"
    );
    // deterministic despite every candidate taking the fallback path
    let (dec2, _) = decimate_to_ratio(&sheet, 0.3);
    assert_eq!(dec, dec2);
}

/// An unwelded (`--no-weld`) extraction leaves every metacell seam open:
/// under index connectivity the mesh is a pile of bounded fragments. The
/// decimator must pin all of those boundaries — never collapse through a
/// seam — while still simplifying fragment interiors.
#[test]
fn open_unwelded_mesh_keeps_every_seam_vertex() {
    let vol: Volume<u8> = common::sphere_vol(Dims3::cube(30));
    let dir = common::tmpdir("dec_noweld");
    let db = ClusterDatabase::preprocess(
        &vol,
        &dir,
        &PreprocessOptions {
            nodes: 2,
            ..Default::default()
        },
    )
    .unwrap();
    let mesh = db
        .extract_with_options(
            128.5,
            &ExtractOptions {
                weld: false,
                ..Default::default()
            },
        )
        .unwrap()
        .mesh;
    std::fs::remove_dir_all(&dir).ok();
    let before = analyze_mesh_connectivity(&mesh);
    assert!(before.boundary_edges > 0, "unwelded mesh must be open");

    let (dec, stats) = decimate_to_ratio(&mesh, 0.25);
    let after = analyze_mesh_connectivity(&dec);
    assert_eq!(
        after.boundary_edges, before.boundary_edges,
        "seam boundaries must be pinned, never collapsed through"
    );
    assert_eq!(after.components, before.components);
    assert_eq!(after.euler_characteristic(), before.euler_characteristic());
    assert!(
        boundary_vertex_positions(&mesh).is_subset(&position_set(&dec)),
        "every seam vertex survives at its exact position"
    );
    // interiors big enough to carry collapses did shrink (the sphere's
    // metacell fragments have interior vertices at 30³)
    assert!(
        dec.num_vertices() < mesh.num_vertices(),
        "{stats:?}: nothing was simplified"
    );
}
