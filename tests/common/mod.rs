//! Shared fixtures for the workspace integration tests: the synthetic field
//! zoo (one canonical parameterization per field, deduplicated from the
//! per-file copies), ground-truth extraction, and temp-dir plumbing.
//!
//! Each integration test binary pulls this in with `mod common;` — keep
//! everything `pub` and allow dead code, since no single binary uses all of
//! it.
#![allow(dead_code)]

use oociso::march::{marching_cubes, TriangleSoup, Vec3};
use oociso::volume::field::{
    AnalyticField, FieldExt, GyroidField, NoiseField, SphereField, TorusField,
};
use oociso::volume::{Dims3, Volume};
use std::path::PathBuf;

/// Per-test scratch directory (unique per process + name).
pub fn tmpdir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("oociso_t_{}_{}", std::process::id(), name));
    p
}

/// Ground truth: direct in-memory marching cubes over the whole volume.
pub fn truth(vol: &Volume<u8>, iso: f32) -> TriangleSoup {
    let mut soup = TriangleSoup::new();
    marching_cubes(vol, iso, Vec3::ZERO, Vec3::new(1.0, 1.0, 1.0), &mut soup);
    soup
}

/// The zoo sphere: radius 0.31 of the unit cube, level 128.
pub fn sphere_vol(dims: Dims3) -> Volume<u8> {
    SphereField::centered(0.31, 128.0).sample(dims)
}

/// A sphere with an explicit radius (the watertight proptests vary it).
pub fn sphere_vol_r(radius: f32, dims: Dims3) -> Volume<u8> {
    SphereField::centered(radius, 128.0).sample(dims)
}

/// The zoo torus: major 0.3, minor 0.12, slope 300.
pub fn torus_vol(dims: Dims3) -> Volume<u8> {
    TorusField {
        major: 0.3,
        minor: 0.12,
        level: 128.0,
        slope: 300.0,
    }
    .sample(dims)
}

/// The zoo gyroid: 2.5 cells, amplitude 70 (open — exits every face).
pub fn gyroid_vol(dims: Dims3) -> Volume<u8> {
    GyroidField {
        cells: 2.5,
        level: 128.0,
        amplitude: 70.0,
    }
    .sample(dims)
}

/// The zoo fBm noise field: seed 9, frequency 4, 3 octaves, range 40–215.
pub fn noise_vol(dims: Dims3) -> Volume<u8> {
    NoiseField {
        seed: 9,
        frequency: 4.0,
        octaves: 3,
        lo: 40.0,
        hi: 215.0,
    }
    .sample(dims)
}

/// A gyroid clipped inside a ball so its isosurface closes strictly inside
/// the volume (the raw gyroid exits through every volume face).
#[derive(Clone, Copy)]
pub struct ClippedGyroid {
    gyroid: GyroidField,
    clip: SphereField,
}

impl ClippedGyroid {
    pub fn new() -> Self {
        ClippedGyroid {
            gyroid: GyroidField {
                cells: 2.0,
                level: 128.0,
                amplitude: 80.0,
            },
            clip: SphereField {
                center: [0.5, 0.5, 0.5],
                radius: 0.36,
                level: 128.0,
                slope: 600.0,
            },
        }
    }
}

impl Default for ClippedGyroid {
    fn default() -> Self {
        Self::new()
    }
}

impl AnalyticField for ClippedGyroid {
    fn eval(&self, x: f32, y: f32, z: f32) -> f32 {
        self.gyroid.eval(x, y, z).min(self.clip.eval(x, y, z))
    }
}

/// A clipped-gyroid volume (closed, high genus — the hard closed case).
pub fn clipped_gyroid_vol(dims: Dims3) -> Volume<u8> {
    ClippedGyroid::new().sample(dims)
}

/// The canonical four-field zoo (sphere/torus/gyroid/noise) at the dims the
/// equivalence suites always used — smooth closed, genus-1 closed, open
/// periodic, and rough open fields in one sweep.
pub fn zoo() -> Vec<(&'static str, Volume<u8>)> {
    vec![
        ("sphere", sphere_vol(Dims3::new(30, 28, 26))),
        ("torus", torus_vol(Dims3::new(31, 31, 23))),
        ("gyroid", gyroid_vol(Dims3::cube(28))),
        ("noise", noise_vol(Dims3::cube(26))),
    ]
}
