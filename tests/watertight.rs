//! Watertightness and weld invariants of the out-of-core pipeline.
//!
//! The decomposition extracts every metacell (and every cluster node)
//! independently; welding is what turns that pile of sub-meshes back into
//! one watertight surface. These tests pin the properties that make welding
//! trustworthy:
//!
//! * **closure** — for closed synthetic fields the welded full-database mesh
//!   has zero boundary edges, zero non-manifold edges, and the ground-truth
//!   Euler characteristic, across extraction modes × worker counts ×
//!   metacell sizes × node counts (while the unwelded merge is provably
//!   open along every seam);
//! * **topology-only** — welding never moves geometry: the canonical
//!   triangle multiset is identical to the unwelded merge (minus exactly
//!   the counted collapsed triangles when the isosurface passes through
//!   cell corners).

mod common;

use common::{tmpdir, truth};
use oociso::cluster::{Cluster, ClusterBuildOptions, ExtractMode, ExtractOptions};
use oociso::core::{ClusterDatabase, PreprocessOptions};
use oociso::march::{analyze, analyze_mesh, analyze_mesh_connectivity, Backend, IndexedMesh};
use oociso::volume::field::{FieldExt, GyroidField, SphereField};
use oociso::volume::{Dims3, Volume};
use proptest::prelude::*;

fn extract_with(
    cluster: &Cluster<u8>,
    iso: f32,
    workers: usize,
    mode: ExtractMode,
    weld: bool,
) -> (oociso::march::IndexedMesh, oociso::cluster::QueryReport) {
    cluster
        .extract_with_options(
            iso,
            &ExtractOptions {
                workers: Some(workers),
                mode,
                weld,
                ..Default::default()
            },
        )
        .unwrap()
        .into_merged()
}

/// The property behind the suite: for a closed field, every (mode × workers
/// × metacell size) combination of the welded out-of-core extraction yields
/// the exact topology of a direct in-memory marching-cubes pass — closed,
/// manifold, same Euler characteristic — on a 3-node cluster whose striping
/// puts node seams everywhere. The same matrix also covers LOD determinism:
/// quadric decimation of each combination's welded mesh must be
/// byte-identical within a metacell size (the meshes themselves are), and
/// must stay closed-manifold with the reference Euler characteristic.
fn check_watertight_everywhere(
    name: &str,
    vol: &Volume<u8>,
    iso: f32,
    expect_components: usize,
    sn_matches_reference: bool,
) {
    let reference = analyze(&truth(vol, iso));
    assert!(
        reference.is_closed(),
        "{name}: ground truth must be closed, got {reference:?}"
    );
    assert_eq!(reference.components, expect_components, "{name}");
    // SurfaceNets topology is decomposition-invariant: the pre-smoothing
    // surface is bit-identical across metacell sizes, so the analyzed
    // report must agree between k = 5 and k = 9
    let mut sn_topo_across_k = None;
    for metacell_k in [5usize, 9] {
        let dir = tmpdir(&format!("prop_{name}_{metacell_k}_{}", (iso * 10.0) as i64));
        let (cluster, _) = Cluster::build(
            vol,
            &dir,
            3,
            &ClusterBuildOptions {
                metacell_k,
                mmap: false,
            },
        )
        .unwrap();
        // decimation baseline for this metacell size (triangle stream order
        // differs across k, so bit-identity is asserted within each k)
        let mut decimated_baseline: Option<IndexedMesh> = None;
        for mode in [ExtractMode::default(), ExtractMode::Batch] {
            for workers in [1usize, 2, 8] {
                let ctx = format!("{name} iso={iso} k={metacell_k} {mode:?} workers={workers}");
                let (mesh, report) = extract_with(&cluster, iso, workers, mode, true);
                // the strong form of watertight: closed by *raw index
                // connectivity*, not just after analysis-time welding
                let topo = analyze_mesh_connectivity(&mesh);
                assert!(topo.is_closed(), "{ctx}: boundary edges: {topo:?}");
                // non-manifold pinches only where the quantized field truly
                // self-touches — i.e. exactly where direct MC has them too
                assert_eq!(topo, reference, "{ctx}: topology must match direct MC");
                assert_eq!(analyze_mesh(&mesh), reference, "{ctx}");
                assert_eq!(
                    topo.euler_characteristic(),
                    reference.euler_characteristic(),
                    "{ctx}"
                );
                // the welded mesh carries no duplicate or orphan vertices
                assert_eq!(topo.vertices, mesh.num_vertices(), "{ctx}");
                // off-lattice isovalue: nothing may collapse
                assert_eq!(report.total_weld().degenerate_dropped, 0, "{ctx}");
                assert!(
                    report.total_weld().vertices_merged() > 0,
                    "{ctx}: seams must exist for the weld to close"
                );

                // LOD determinism rides the same matrix: decimation is a
                // pure function of the welded mesh, so every mode/worker
                // combination must decimate to the same bytes and keep the
                // closed-manifold topology class
                let (decimated, dstats) = oociso::march::decimate_to_ratio(&mesh, 0.25);
                let dtopo = analyze_mesh_connectivity(&decimated);
                assert!(dtopo.is_closed(), "{ctx}: decimated: {dtopo:?}");
                // where the quantized field genuinely self-touches the
                // reference already has a non-manifold pinch; decimation
                // pins it — the count must carry over exactly, never grow
                assert_eq!(
                    dtopo.non_manifold_edges, reference.non_manifold_edges,
                    "{ctx}: decimated: {dtopo:?}"
                );
                assert_eq!(
                    dtopo.euler_characteristic(),
                    reference.euler_characteristic(),
                    "{ctx}: decimation changed the Euler characteristic"
                );
                assert_eq!(dtopo.components, reference.components, "{ctx}");
                assert!(
                    dstats.output_vertices < dstats.input_vertices,
                    "{ctx}: {dstats:?}"
                );
                match &decimated_baseline {
                    None => decimated_baseline = Some(decimated),
                    Some(base) => assert_eq!(
                        &decimated, base,
                        "{ctx}: decimated mesh must be bit-identical across modes/workers"
                    ),
                }
            }
        }

        // SurfaceNets rides the same matrix: no welding (its vertices are
        // globally unique by cell ownership), bit-identical within a
        // decomposition, and closed with the reference's topology class
        let mut sn_baseline: Option<IndexedMesh> = None;
        for mode in [ExtractMode::default(), ExtractMode::Batch] {
            for workers in [1usize, 2, 8] {
                let ctx = format!("{name} sn iso={iso} k={metacell_k} {mode:?} workers={workers}");
                let (mesh, _report) = cluster
                    .extract_with_options(
                        iso,
                        &ExtractOptions {
                            workers: Some(workers),
                            mode,
                            backend: Backend::SurfaceNets,
                            ..Default::default()
                        },
                    )
                    .unwrap()
                    .into_merged();
                let topo = analyze_mesh_connectivity(&mesh);
                assert!(topo.is_closed(), "{ctx}: boundary edges: {topo:?}");
                // no duplicate or orphan vertices — without any weld pass
                assert_eq!(topo.vertices, mesh.num_vertices(), "{ctx}");
                // topology-class equivalence with slab MC: on a
                // well-resolved manifold surface the two discretizations of
                // the same level set must agree on components and genus.
                // Thin features (tunnels ~1 cell wide, as on the clipped
                // gyroid at these dims) are a genuine discretization
                // difference — SN's one-vertex-per-cell can merge or close
                // them — so callers opt out there and rely on the closure,
                // bit-identity, and cross-k invariants instead
                if sn_matches_reference && reference.non_manifold_edges == 0 {
                    assert_eq!(topo.components, reference.components, "{ctx}");
                    assert_eq!(
                        topo.euler_characteristic(),
                        reference.euler_characteristic(),
                        "{ctx}"
                    );
                }
                match &sn_baseline {
                    None => sn_baseline = Some(mesh),
                    Some(base) => assert_eq!(
                        &mesh, base,
                        "{ctx}: SurfaceNets must be bit-identical across modes/workers"
                    ),
                }
                match &sn_topo_across_k {
                    None => sn_topo_across_k = Some(topo),
                    Some(base) => assert_eq!(
                        &topo, base,
                        "{ctx}: SurfaceNets topology must not depend on metacell size"
                    ),
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn welded_sphere_is_watertight_across_modes_workers_and_metacell_sizes(
        dim in 24usize..31,
        iso_step in 110u32..150,
    ) {
        // half-integer isovalues keep crossings off the u8 lattice
        let iso = iso_step as f32 + 0.5;
        let vol: Volume<u8> = SphereField::centered(0.3, 128.0).sample(Dims3::new(dim, dim, dim - 1));
        check_watertight_everywhere("sphere", &vol, iso, 1, true);
    }

    #[test]
    fn welded_clipped_gyroid_is_watertight_across_modes_workers_and_metacell_sizes(
        dim in 26usize..33,
        iso_step in 123u32..134,
    ) {
        let iso = iso_step as f32 + 0.5;
        let vol: Volume<u8> = common::clipped_gyroid_vol(Dims3::cube(dim));
        let reference = analyze(&truth(&vol, iso));
        // the clipped gyroid's genus (and component count) depends on dim and
        // iso; take the component count from ground truth and let
        // check_watertight_everywhere verify the full report matches
        check_watertight_everywhere("clipped_gyroid", &vol, iso, reference.components, false);
    }
}

/// The acceptance invariant, pinned as a plain test: a welded multi-node
/// sphere extraction is closed where the unwelded merge of the very same
/// extraction is open along every metacell/node seam — and the two meshes
/// are the same surface (identical canonical triangle multisets).
#[test]
fn welding_closes_node_seams_that_unwelded_merge_leaves_open() {
    let vol: Volume<u8> = SphereField::centered(0.3, 128.0).sample(Dims3::cube(33));
    let dir = tmpdir("accept");
    let db = ClusterDatabase::preprocess(
        &vol,
        &dir,
        &PreprocessOptions {
            nodes: 3,
            ..Default::default()
        },
    )
    .unwrap();
    let iso = 128.5f32;
    let welded = db.extract(iso).unwrap();
    let unwelded = db
        .extract_with_options(
            iso,
            &ExtractOptions {
                weld: false,
                ..Default::default()
            },
        )
        .unwrap();

    let wt = analyze_mesh(&welded.mesh);
    assert!(wt.is_closed(), "welded sphere must be closed: {wt:?}");
    assert_eq!(wt.non_manifold_edges, 0);
    assert_eq!(wt.components, 1);
    assert_eq!(wt.euler_characteristic(), 2, "{wt:?}");
    // closed by raw index connectivity too — the property decimation needs
    assert_eq!(analyze_mesh_connectivity(&welded.mesh), wt);

    // the unwelded path duplicates every seam vertex: its index connectivity
    // is open along every metacell/node seam and shatters into pieces …
    let open = analyze_mesh_connectivity(&unwelded.mesh);
    assert!(
        !open.is_closed() && open.boundary_edges > 0,
        "unwelded merge must be open along metacell seams: {open:?}"
    );
    assert!(open.components > 1, "{open:?}");
    assert!(
        welded.mesh.num_vertices() < unwelded.mesh.num_vertices(),
        "weld must shrink the vertex table: {} vs {}",
        welded.mesh.num_vertices(),
        unwelded.mesh.num_vertices()
    );
    // … while `analyze_mesh` (which welds internally) agrees the *surface*
    // is the same: the unwelded mesh is open only by representation
    assert_eq!(analyze_mesh(&unwelded.mesh), wt);

    // welding is topology-only: same canonical triangle multiset
    assert_eq!(
        welded.mesh.canonical_triangles(),
        unwelded.mesh.canonical_triangles()
    );
    assert_eq!(welded.report.total_weld().degenerate_dropped, 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// Welding never moves geometry for any zoo field — closed or open, smooth
/// or noisy: welded vs unwelded extraction of the same database produce the
/// identical canonical triangle multiset, and the analyzed topology (which
/// is weld-agnostic by construction) is unchanged.
#[test]
fn welding_is_topology_only_across_the_field_zoo() {
    for (name, vol) in &common::zoo() {
        let dir = tmpdir(&format!("zoo_{name}"));
        let db = ClusterDatabase::preprocess(
            vol,
            &dir,
            &PreprocessOptions {
                nodes: 2,
                ..Default::default()
            },
        )
        .unwrap();
        for iso in [96.5f32, 128.5, 160.5] {
            let welded = db.extract(iso).unwrap();
            let unwelded = db
                .extract_with_options(
                    iso,
                    &ExtractOptions {
                        weld: false,
                        ..Default::default()
                    },
                )
                .unwrap();
            let ctx = format!("{name} iso={iso}");
            assert_eq!(
                welded.mesh.canonical_triangles(),
                unwelded.mesh.canonical_triangles(),
                "{ctx}: weld moved geometry"
            );
            assert_eq!(welded.report.total_weld().degenerate_dropped, 0, "{ctx}");
            assert_eq!(
                analyze_mesh(&welded.mesh),
                analyze_mesh(&unwelded.mesh),
                "{ctx}: weld changed topology"
            );
            assert!(
                welded.mesh.is_empty()
                    || welded.mesh.num_vertices() <= unwelded.mesh.num_vertices(),
                "{ctx}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// An isosurface passing exactly through cell corners makes several edge
/// crossings coincide: the weld must drop those exactly-degenerate triangles
/// (counting them), keep everything else, and still deliver a closed clean
/// mesh. A single sample spiked to the isovalue surrounded by zeros is the
/// worst case — every one of its triangles collapses to a point.
#[test]
fn corner_crossings_collapse_and_are_dropped_with_a_counter() {
    let dims = Dims3::cube(19);
    // spike at (3,3,3) exactly at the isovalue; a solid ball elsewhere keeps
    // the surface non-empty, closed, and crossing mid-edge (255→0 at t≈0.5)
    let vol: Volume<u8> = Volume::generate(dims, |x, y, z| {
        if (x, y, z) == (3, 3, 3) {
            128
        } else {
            let (dx, dy, dz) = (x as f32 - 12.0, y as f32 - 12.0, z as f32 - 12.0);
            if (dx * dx + dy * dy + dz * dz).sqrt() < 4.3 {
                255
            } else {
                0
            }
        }
    });
    let iso = 128.0f32;
    let reference = truth(&vol, iso);

    let dir = tmpdir("spike");
    let db = ClusterDatabase::preprocess(
        &vol,
        &dir,
        &PreprocessOptions {
            nodes: 2,
            ..Default::default()
        },
    )
    .unwrap();
    let welded = db.extract(iso).unwrap();
    let unwelded = db
        .extract_with_options(
            iso,
            &ExtractOptions {
                weld: false,
                ..Default::default()
            },
        )
        .unwrap();

    // the 8 cells around the spike each emit one point-collapsed triangle
    let dropped = welded.report.total_weld().degenerate_dropped;
    assert_eq!(dropped, 8, "{:?}", welded.report.total_weld());
    assert_eq!(
        welded.mesh.len() as u64 + dropped,
        unwelded.mesh.len() as u64
    );
    assert_eq!(unwelded.mesh.len(), reference.len());

    // the kept multiset is exactly the reference minus its collapsed entries
    let (kept, collapsed) =
        oociso::march::split_collapsed(oociso::march::canonical_triangles(&reference));
    assert_eq!(collapsed as u64, dropped);
    assert_eq!(welded.mesh.canonical_triangles(), kept);

    // no zero-area junk or orphan vertices survive in the welded mesh: the
    // ball is a clean closed component and the spike leaves no trace
    let topo = analyze_mesh_connectivity(&welded.mesh);
    assert_eq!(topo, analyze_mesh(&welded.mesh));
    assert!(topo.is_closed_manifold(), "{topo:?}");
    assert_eq!(topo.components, 1);
    assert_eq!(topo.euler_characteristic(), 2, "{topo:?}");
    assert_eq!(topo.vertices, welded.mesh.num_vertices());
    for tri in welded.mesh.indices().chunks_exact(3) {
        assert!(
            tri[0] != tri[1] && tri[1] != tri[2] && tri[0] != tri[2],
            "collapsed triangle survived the weld"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Weld cost probe for docs/perf.md — run manually:
/// `cargo test --release --test watertight -- --ignored print_weld_cost --nocapture`
#[test]
#[ignore]
fn print_weld_cost() {
    let vol: Volume<u8> = GyroidField {
        cells: 3.0,
        level: 128.0,
        amplitude: 70.0,
    }
    .sample(Dims3::cube(65));
    let dir = tmpdir("weldcost");
    let db = ClusterDatabase::preprocess(
        &vol,
        &dir,
        &PreprocessOptions {
            nodes: 1,
            ..Default::default()
        },
    )
    .unwrap();
    for _ in 0..5 {
        let e = db.extract(128.5).unwrap();
        let r = &e.report;
        let w = r.total_weld();
        println!(
            "65^3 gyroid: {} tris, extraction wall {:.3} ms, weld wall {:.3} ms ({:.2}%), \
             merged {} of {} vertices, closed {} seam edges",
            r.total_triangles(),
            r.nodes[0].extraction_wall.as_secs_f64() * 1e3,
            r.total_weld_wall().as_secs_f64() * 1e3,
            100.0 * r.total_weld_wall().as_secs_f64()
                / r.nodes[0].extraction_wall.as_secs_f64().max(1e-9),
            w.vertices_merged(),
            w.input_vertices,
            w.seam_edges_closed(),
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
