//! Rendering-path integration: sort-last compositing across simulated nodes
//! must be pixel-equivalent to rendering everything on one node.

use oociso::core::{ClusterDatabase, PreprocessOptions};
use oociso::render::{
    rasterize_mesh, Camera, Framebuffer, InterconnectModel, SimTransport, TileLayout, Transport,
};
use oociso::serve::TcpLoopbackTransport;
use oociso::volume::field::{AnalyticField, FieldExt, SphereField, TorusField};
use oociso::volume::Dims3;

mod common;

use common::tmpdir;

#[test]
fn cluster_composite_equals_single_node_render() {
    let vol = SphereField::centered(0.32, 128.0).sample::<u8>(Dims3::cube(33));
    let dir = tmpdir("eq");
    let db = ClusterDatabase::preprocess(
        &vol,
        &dir,
        &PreprocessOptions {
            nodes: 4,
            ..Default::default()
        },
    )
    .unwrap();
    let probe = db.extract(128.0).unwrap();
    let camera = Camera::orbiting(&probe.mesh.bounds(), 0.5, 0.6, 2.4);
    let tiles = TileLayout::paper_wall(160, 160);
    let (wall, _) = db
        .extract_and_render(128.0, &camera, &tiles, [0.7, 0.8, 0.9])
        .unwrap();

    let mut single = Framebuffer::new(160, 160);
    rasterize_mesh(&probe.mesh, &camera, [0.7, 0.8, 0.9], &mut single);

    let mut diff = 0usize;
    for y in 0..160 {
        for x in 0..160 {
            if wall.color_at(x, y) != single.color_at(x, y) {
                diff += 1;
            }
        }
    }
    // tolerate a handful of equal-depth tie-break pixels along stripe seams
    assert!(diff < 60, "{diff} differing pixels of 25600");
    assert!(wall.covered_pixels() > 500);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn composite_bit_identical_across_simulated_and_tcp_transports() {
    // the acceptance test for the pluggable compositing transport: the same
    // scene composited through the modeled interconnect (in-process) and
    // through real TCP loopback sockets (every remote region serialized,
    // checksummed, and decoded on the far side) must produce byte-identical
    // framebuffers — transports move pixels, they never transform them
    let vol = SphereField::centered(0.32, 128.0).sample::<u8>(Dims3::cube(33));
    let dir = tmpdir("transports");
    let db = ClusterDatabase::preprocess(
        &vol,
        &dir,
        &PreprocessOptions {
            nodes: 4,
            ..Default::default()
        },
    )
    .unwrap();
    let probe = db.extract(128.0).unwrap();
    let camera = Camera::orbiting(&probe.mesh.bounds(), 0.5, 0.6, 2.4);
    let tiles = TileLayout::paper_wall(96, 96);

    // per-node render once, composite the same buffers three ways
    let e = db.extract_per_node(128.0).unwrap();
    let buffers: Vec<Framebuffer> = e
        .meshes
        .iter()
        .map(|mesh| {
            let mut fb = Framebuffer::new(96, 96);
            rasterize_mesh(mesh, &camera, [0.7, 0.8, 0.9], &mut fb);
            fb
        })
        .collect();

    let (reference, wire_ref) = tiles.composite(&buffers);
    let mut sim = SimTransport::new(InterconnectModel::loopback());
    let (via_sim, wire_sim) = tiles.composite_via(&buffers, &mut sim).unwrap();
    let mut tcp = TcpLoopbackTransport::new().unwrap();
    let (via_tcp, wire_tcp) = tiles.composite_via(&buffers, &mut tcp).unwrap();

    assert_eq!(via_sim, reference, "simulated transport changed pixels");
    assert_eq!(via_tcp, reference, "TCP transport changed pixels");
    assert!(
        reference.covered_pixels() > 300,
        "scene too empty to prove much"
    );

    // identical accounting of what crossed the wire
    assert_eq!(wire_ref, wire_sim);
    assert_eq!(wire_ref, wire_tcp);
    assert_eq!(sim.bytes_moved(), wire_ref);
    assert!(
        tcp.bytes_moved() > wire_ref,
        "TCP moves the regions plus framing overhead"
    );
    // the simulator modeled a cost; the socket measured one
    assert!(sim.cost() > std::time::Duration::ZERO);
    assert!(tcp.cost() > std::time::Duration::ZERO);

    // the full pipeline entrypoint routes through the same trait
    let (wall_sim, _) = db
        .extract_and_render_via(
            128.0,
            &camera,
            &tiles,
            [0.7, 0.8, 0.9],
            &mut SimTransport::new(InterconnectModel::infiniband_10g()),
        )
        .unwrap();
    let mut tcp2 = TcpLoopbackTransport::new().unwrap();
    let (wall_tcp, _) = db
        .extract_and_render_via(128.0, &camera, &tiles, [0.7, 0.8, 0.9], &mut tcp2)
        .unwrap();
    assert_eq!(
        wall_sim, wall_tcp,
        "end-to-end walls differ across transports"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn occlusion_resolved_across_nodes() {
    // a torus around a sphere: fragments from different nodes overlap in
    // screen space; the composite must resolve them by depth, not by node
    // order — verify by compositing node buffers in reverse order
    let f = |x: f32, y: f32, z: f32| {
        let s = SphereField::centered(0.18, 128.0);
        let t = TorusField {
            major: 0.33,
            minor: 0.08,
            level: 128.0,
            slope: 400.0,
        };
        s.eval(x, y, z).max(t.eval(x, y, z))
    };
    let vol = f.sample::<u8>(Dims3::cube(41));
    let dir = tmpdir("occl");
    let db = ClusterDatabase::preprocess(
        &vol,
        &dir,
        &PreprocessOptions {
            nodes: 3,
            ..Default::default()
        },
    )
    .unwrap();
    let e = db.extract_per_node(128.0).unwrap();
    let bounds = e
        .meshes
        .iter()
        .filter(|m| !m.is_empty()) // an empty node's Aabb::empty() corners are ±INF
        .map(|m| m.bounds())
        .fold(oociso::march::Aabb::empty(), |mut acc, b| {
            acc.grow(b.lo);
            acc.grow(b.hi);
            acc
        });
    let camera = Camera::orbiting(&bounds, 0.2, 0.15, 2.2);
    let render_one = |mesh| {
        let mut fb = Framebuffer::new(128, 128);
        rasterize_mesh(mesh, &camera, [1.0, 1.0, 1.0], &mut fb);
        fb
    };
    let buffers: Vec<Framebuffer> = e.meshes.iter().map(render_one).collect();
    let layout = TileLayout::new(1, 1, 128, 128);
    let (forward, _) = layout.composite(&buffers);
    let reversed: Vec<Framebuffer> = buffers.iter().rev().cloned().collect();
    let (backward, _) = layout.composite(&reversed);
    let mut diff = 0;
    for y in 0..128 {
        for x in 0..128 {
            if forward.color_at(x, y) != backward.color_at(x, y) {
                diff += 1;
            }
        }
    }
    assert!(
        diff < 30,
        "composite must be order-independent: {diff} pixels"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn figure4_style_render_has_structure() {
    // an RM-proxy render like Figure 4: the image must show a real surface
    // (covered pixels with varying shading), not an empty or flat frame
    use oociso::volume::RmProxy;
    let vol = RmProxy::with_seed(1).volume(250, Dims3::new(64, 64, 60));
    let dir = tmpdir("fig4");
    let db = ClusterDatabase::preprocess(
        &vol,
        &dir,
        &PreprocessOptions {
            nodes: 2,
            ..Default::default()
        },
    )
    .unwrap();
    let probe = db.extract(190.0).unwrap();
    assert!(probe.mesh.len() > 1000, "RM surface should be rich");
    let camera = Camera::orbiting(&probe.mesh.bounds(), 0.9, 0.45, 2.0);
    let tiles = TileLayout::paper_wall(128, 128);
    let (img, _) = db
        .extract_and_render(190.0, &camera, &tiles, [0.9, 0.78, 0.5])
        .unwrap();
    let covered = img.covered_pixels();
    assert!(covered > 1000, "only {covered} covered pixels");
    // shading variation: collect distinct red intensities
    let mut reds = std::collections::HashSet::new();
    for y in 0..128 {
        for x in 0..128 {
            let c = img.color_at(x, y);
            if c[3] != 0 {
                reds.insert(c[0]);
            }
        }
    }
    assert!(reds.len() > 10, "flat shading variation: {}", reds.len());
    std::fs::remove_dir_all(&dir).ok();
}
