//! Cross-crate integration: the out-of-core parallel pipeline must produce
//! exactly the geometry a direct in-memory marching-cubes pass produces,
//! for every node count — and the streaming retrieval→triangulation
//! pipeline must be *bit-identical* to the retained batch path for every
//! worker count and queue bound.

mod common;

use common::{tmpdir, truth};
use oociso::cluster::{Cluster, ClusterBuildOptions, ExtractMode, ExtractOptions};
use oociso::core::{ClusterDatabase, IsoDatabase, PreprocessOptions};
use oociso::march::{Backend, IndexedMesh, Vec3};
use oociso::volume::{Dims3, RmProxy, Volume};
use proptest::prelude::*;

use oociso::march::canonical_triangles as canon;
use oociso::march::split_collapsed;

#[test]
fn database_extraction_equals_direct_marching_cubes() {
    let fields: Vec<(&str, Volume<u8>)> = vec![
        ("sphere", common::sphere_vol(Dims3::new(30, 28, 26))),
        ("torus", common::torus_vol(Dims3::new(33, 33, 21))),
        (
            "rm",
            RmProxy::with_seed(11).volume(180, Dims3::new(32, 32, 30)),
        ),
    ];
    for (name, vol) in &fields {
        let reference = truth(vol, 128.0);
        let dir = tmpdir(&format!("eq_{name}"));
        let db = IsoDatabase::preprocess(vol, &dir, &PreprocessOptions::default()).unwrap();
        let got = db.extract(128.0).unwrap();
        // the integer isovalue lands some crossings exactly on cell corners
        // of the u8 lattice; the weld drops those collapsed triangles and
        // must account for every one of them
        let (kept, collapsed) = split_collapsed(canon(&reference));
        assert_eq!(
            canon(&got.mesh.to_soup()),
            kept,
            "{name}: database extraction must equal direct MC minus collapses"
        );
        assert_eq!(
            got.report.total_weld().degenerate_dropped,
            collapsed as u64,
            "{name}: every dropped triangle accounted"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn every_node_count_yields_identical_geometry() {
    let vol = RmProxy::with_seed(23).volume(210, Dims3::new(40, 40, 38));
    let (reference, collapsed) = split_collapsed(canon(&truth(&vol, 110.0)));
    for nodes in [1usize, 2, 3, 4, 8] {
        let dir = tmpdir(&format!("p{nodes}"));
        let db = ClusterDatabase::preprocess(
            &vol,
            &dir,
            &PreprocessOptions {
                nodes,
                ..Default::default()
            },
        )
        .unwrap();
        let got = db.extract(110.0).unwrap();
        assert_eq!(
            canon(&got.mesh.to_soup()),
            reference,
            "p={nodes}: geometry must be independent of striping"
        );
        assert_eq!(
            got.report.total_weld().degenerate_dropped,
            collapsed as u64,
            "p={nodes}: collapse count must be independent of striping"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn extraction_sweep_is_superset_free() {
    // across a dense isovalue sweep, triangle counts from the database match
    // direct MC exactly (retrieving a superset of metacells must not create
    // spurious geometry)
    let vol = common::gyroid_vol(Dims3::cube(28));
    let dir = tmpdir("sweep");
    let db = IsoDatabase::preprocess(&vol, &dir, &PreprocessOptions::default()).unwrap();
    for iso in (40..=215).step_by(25) {
        let iso = iso as f32;
        let got = db.extract(iso).unwrap();
        // welded triangle count + the triangles the weld collapsed (integer
        // isovalues can land crossings on lattice corners) = the reference
        // kernel's count, exactly
        assert_eq!(
            got.mesh.len() as u64 + got.report.total_weld().degenerate_dropped,
            truth(&vol, iso).len() as u64,
            "iso {iso}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn watertight_through_the_full_pipeline() {
    // a sphere extracted *through the database* (split into metacells,
    // striped over 3 nodes, read back) must still be a closed surface.
    // A half-integer isovalue keeps crossings off the integer u8 lattice —
    // integer isovalues put crossings exactly on shared grid vertices, whose
    // zero-area triangles confuse naive edge counting (geometry is still
    // crack-free; the canon-equality tests above cover that case).
    let vol: Volume<u8> = common::sphere_vol_r(0.3, Dims3::cube(33));
    let dir = tmpdir("watertight");
    let db = ClusterDatabase::preprocess(
        &vol,
        &dir,
        &PreprocessOptions {
            nodes: 3,
            ..Default::default()
        },
    )
    .unwrap();
    let mesh = db.extract(128.5).unwrap().mesh;
    assert!(mesh.len() > 500);
    let key = |v: Vec3| {
        let q = 1_048_576.0;
        (
            (v.x * q).round() as i64,
            (v.y * q).round() as i64,
            (v.z * q).round() as i64,
        )
    };
    let mut edges = std::collections::HashMap::new();
    for t in mesh.triangles() {
        for i in 0..3 {
            let a = key(t.v[i]);
            let b = key(t.v[(i + 1) % 3]);
            let e = if a < b { (a, b) } else { (b, a) };
            *edges.entry(e).or_insert(0u32) += 1;
        }
    }
    let bad = edges.values().filter(|&&c| c != 2).count();
    assert_eq!(bad, 0, "{bad} non-manifold edges of {}", edges.len());
    std::fs::remove_dir_all(&dir).ok();
}

fn assert_meshes_bit_identical(a: &IndexedMesh, b: &IndexedMesh, ctx: &str) {
    assert_eq!(a.positions(), b.positions(), "{ctx}: vertex stream differs");
    assert_eq!(a.indices(), b.indices(), "{ctx}: index stream differs");
}

/// Streaming extraction (any worker count × any queue bound) must emit the
/// byte-for-byte same mesh as the retained batch path, for **every**
/// extraction backend: per-record parts merge by plan-emission sequence
/// number, which is also the batch path's record order, and the SurfaceNets
/// seam stitch + smoothing run over that same deterministic merge.
fn check_streaming_equals_batch(name: &str, vol: &Volume<u8>, iso: f32) {
    let dir = tmpdir(&format!("sb_{name}_{}", (iso * 10.0) as i32));
    let (cluster, _) = Cluster::build(vol, &dir, 1, &ClusterBuildOptions::default()).unwrap();
    for backend in Backend::ALL {
        let batch = cluster
            .extract_with_options(
                iso,
                &ExtractOptions {
                    workers: Some(1),
                    mode: ExtractMode::Batch,
                    backend,
                    ..Default::default()
                },
            )
            .unwrap();
        let (batch_mesh, batch_report) = batch.into_merged();
        for workers in [1usize, 2, 3, 8] {
            for queue_records in [1usize, 4, usize::MAX] {
                let e = cluster
                    .extract_with_options(
                        iso,
                        &ExtractOptions {
                            workers: Some(workers),
                            mode: ExtractMode::Streaming { queue_records },
                            backend,
                            ..Default::default()
                        },
                    )
                    .unwrap();
                let ctx =
                    format!("{name} iso={iso} {backend} workers={workers} bound={queue_records}");
                assert_eq!(
                    e.report.total_active_metacells(),
                    batch_report.total_active_metacells(),
                    "{ctx}"
                );
                let n = &e.report.nodes[0];
                if queue_records != usize::MAX {
                    // admission is weighted by planner cell estimates: the bound
                    // caps queued *work* at `queue_records` full metacells' worth
                    // of cells (default k = 9 → 8³ per full record), so clamped
                    // edge records may exceed the bound in record count but never
                    // in cells
                    assert!(
                        n.peak_queue_work <= queue_records as u64 * 512,
                        "{ctx}: peak work {} cells",
                        n.peak_queue_work
                    );
                }
                let (mesh, _) = e.into_merged();
                assert_meshes_bit_identical(&mesh, &batch_mesh, &ctx);
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Weighted-admission regression on a dense tiling: 33³ splits into 9³-vertex
/// metacells exactly (4 × 8 cells per axis), so every record carries the full
/// 8³ = 512-cell weight and the gyroid keeps essentially all of them active.
/// The tightest bounds must still cap queued work at `bound × 512` cells —
/// admission cannot over-admit full-weight records the way it deliberately
/// over-admits clamped edge records — and the stream must stay bit-identical
/// to batch under both backends.
#[test]
fn weighted_admission_caps_queued_work_on_dense_metacells() {
    let vol: Volume<u8> = common::gyroid_vol(Dims3::cube(33));
    let iso = 127.5f32;
    let dir = tmpdir("dense_admission");
    let (cluster, _) = Cluster::build(&vol, &dir, 1, &ClusterBuildOptions::default()).unwrap();
    for backend in Backend::ALL {
        let (batch_mesh, _) = cluster
            .extract_with_options(
                iso,
                &ExtractOptions {
                    workers: Some(1),
                    mode: ExtractMode::Batch,
                    backend,
                    ..Default::default()
                },
            )
            .unwrap()
            .into_merged();
        for queue_records in [1usize, 2] {
            let e = cluster
                .extract_with_options(
                    iso,
                    &ExtractOptions {
                        workers: Some(4),
                        mode: ExtractMode::Streaming { queue_records },
                        backend,
                        ..Default::default()
                    },
                )
                .unwrap();
            let ctx = format!("{backend} bound={queue_records}");
            let n = &e.report.nodes[0];
            assert!(
                n.peak_queue_work <= queue_records as u64 * 512,
                "{ctx}: peak work {} cells exceeds the weighted bound",
                n.peak_queue_work
            );
            assert!(
                n.peak_queue_work >= 512,
                "{ctx}: at least one full record must have been admitted \
                 (admit-at-least-one prevents deadlock), got {}",
                n.peak_queue_work
            );
            let (mesh, _) = e.into_merged();
            assert_meshes_bit_identical(&mesh, &batch_mesh, &ctx);
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn streaming_extraction_is_bit_identical_to_batch_sphere(
        iso in 80.0f32..180.0,
        dim in 25usize..34,
    ) {
        let vol: Volume<u8> = common::sphere_vol_r(0.33, Dims3::new(dim, dim, dim - 2));
        check_streaming_equals_batch("sphere", &vol, iso);
    }

    #[test]
    fn streaming_extraction_is_bit_identical_to_batch_gyroid(
        iso in 70.0f32..190.0,
        dim in 24usize..32,
    ) {
        let vol: Volume<u8> = common::gyroid_vol(Dims3::cube(dim));
        check_streaming_equals_batch("gyroid", &vol, iso);
    }
}
