//! Property-based invariants across the indexing and striping stack.

use oociso::exio::{RecordStore, Span};
use oociso::itree::plan::testutil::TestFormat;
use oociso::itree::plan::{execute_plan, plan_active_ids};
use oociso::itree::{CompactIntervalTree, StandardIntervalTree};
use oociso::metacell::interval::brute_force_active;
use oociso::metacell::MetacellInterval;
use proptest::prelude::*;

/// Random interval sets: ids dense, endpoints in a compact range so bricks
/// and node reuse actually occur.
fn intervals_strategy(max_len: usize) -> impl Strategy<Value = Vec<MetacellInterval>> {
    prop::collection::vec((0u32..200, 0u32..40), 1..max_len).prop_map(|pairs| {
        pairs
            .into_iter()
            .enumerate()
            .map(|(id, (lo, span))| MetacellInterval::new(id as u32, lo, lo + 1 + span))
            .collect()
    })
}

/// Build a compact tree plus an in-memory store with the test record format.
fn build_with_store(intervals: &[MetacellInterval]) -> (CompactIntervalTree, RecordStore) {
    let mut bytes: Vec<u8> = Vec::new();
    let tree = CompactIntervalTree::build(intervals, &mut |iv| {
        let rec = TestFormat::encode(iv);
        let span = Span {
            offset: bytes.len() as u64,
            len: rec.len() as u64,
        };
        bytes.extend_from_slice(&rec);
        Ok(span)
    })
    .unwrap();
    (tree, RecordStore::in_memory(bytes))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn compact_tree_equals_brute_force(intervals in intervals_strategy(300), iso in 0u32..260) {
        let (tree, store) = build_with_store(&intervals);
        let got = plan_active_ids(&tree.plan(iso), &store, &TestFormat).unwrap();
        prop_assert_eq!(got, brute_force_active(&intervals, iso));
    }

    #[test]
    fn standard_tree_equals_brute_force(intervals in intervals_strategy(300), iso in 0u32..260) {
        let tree = StandardIntervalTree::build(&intervals);
        prop_assert_eq!(tree.stab(iso), brute_force_active(&intervals, iso));
    }

    #[test]
    fn striped_union_equals_serial_and_balances(
        intervals in intervals_strategy(200),
        p in 2usize..6,
        iso in 0u32..260,
    ) {
        // build p striped stores
        let mut stores_bytes: Vec<Vec<u8>> = vec![Vec::new(); p];
        let trees = CompactIntervalTree::build_striped(&intervals, p, &mut |s, iv| {
            let rec = TestFormat::encode(iv);
            let span = Span { offset: stores_bytes[s].len() as u64, len: rec.len() as u64 };
            stores_bytes[s].extend_from_slice(&rec);
            Ok(span)
        }).unwrap();
        let stores: Vec<RecordStore> = stores_bytes.into_iter().map(RecordStore::in_memory).collect();

        let mut union: Vec<u32> = Vec::new();
        let mut per_node: Vec<u64> = Vec::new();
        for (t, s) in trees.iter().zip(&stores) {
            let ids = plan_active_ids(&t.plan(iso), s, &TestFormat).unwrap();
            per_node.push(ids.len() as u64);
            union.extend(ids);
        }
        union.sort_unstable();
        let want = brute_force_active(&intervals, iso);
        prop_assert_eq!(&union, &want, "union of stripes must equal serial");

        // balance: aggregate spread bounded by the number of active bricks
        // (per-brick counts differ by ≤ 1)
        let active_bricks = {
            // brick = (node, vmax); upper-bound by counting distinct vmax
            // among active intervals times tree height
            let mut vmaxes: Vec<u32> = intervals.iter()
                .filter(|iv| iv.contains(iso)).map(|iv| iv.max_key).collect();
            vmaxes.sort_unstable();
            vmaxes.dedup();
            vmaxes.len() as u64 * trees[0].height().max(1) as u64
        };
        let spread = per_node.iter().max().unwrap() - per_node.iter().min().unwrap();
        prop_assert!(spread <= active_bricks + 1,
            "spread {} vs active-brick bound {} (counts {:?})", spread, active_bricks, per_node);
    }

    #[test]
    fn bulk_actions_emit_exactly_count(intervals in intervals_strategy(150), iso in 0u32..260) {
        let (tree, store) = build_with_store(&intervals);
        let plan = tree.plan(iso);
        let mut emitted = 0u64;
        let stats = execute_plan(&plan, &store, &TestFormat, |_, _| emitted += 1).unwrap();
        prop_assert_eq!(stats.records_emitted, emitted);
        prop_assert!(emitted >= plan.bulk_records(),
            "bulk records are a lower bound on emissions");
        // every byte read is within the planned upper bound
        prop_assert!(stats.bytes_read <= plan.max_bytes() + 32 * 1024);
    }

    #[test]
    fn persistence_is_lossless(intervals in intervals_strategy(150)) {
        let (tree, _) = build_with_store(&intervals);
        let mut path = std::env::temp_dir();
        path.push(format!("oociso_prop_{}_{}.idx", std::process::id(),
            intervals.len()));
        oociso::itree::persist::save(&tree, &path).unwrap();
        let back = oociso::itree::persist::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(tree, back);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// End-to-end: random small u8 volumes through the full database must
    /// match direct marching cubes triangle counts for random isovalues.
    #[test]
    fn database_matches_direct_mc_on_random_volumes(
        seed in 0u64..1000,
        iso in 20.0f32..235.0,
        p in 1usize..4,
    ) {
        use oociso::core::{ClusterDatabase, PreprocessOptions};
        use oociso::march::{marching_cubes, TriangleSoup, Vec3};
        use oociso::volume::{Dims3, Volume};
        use oociso::volume::noise;

        let dims = Dims3::new(19, 17, 15);
        let vol = Volume::<u8>::generate(dims, |x, y, z| {
            (noise::fbm(seed, x as f32 * 0.23, y as f32 * 0.23, z as f32 * 0.23, 3) * 255.0) as u8
        });
        let mut truth = TriangleSoup::new();
        marching_cubes(&vol, iso, Vec3::ZERO, Vec3::new(1.0, 1.0, 1.0), &mut truth);

        let mut dir = std::env::temp_dir();
        dir.push(format!("oociso_prop_db_{}_{}_{}", std::process::id(), seed, p));
        let db = ClusterDatabase::preprocess(&vol, &dir,
            &PreprocessOptions { nodes: p, ..Default::default() }).unwrap();
        let got = db.extract(iso).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        prop_assert_eq!(got.mesh.len(), truth.len());
    }
}
