//! The unstructured-grid path (§4: "Our algorithm can handle both structured
//! and unstructured grids"): tet clusters play the metacell role, the compact
//! interval tree indexes their intervals, and queries retrieve + triangulate
//! exactly the clusters a brute-force scan would.

use oociso::exio::{RecordStore, Span};
use oociso::itree::{CompactIntervalTree, RecordFormat};
use oociso::march::unstructured::{extract_cluster, extract_mesh};
use oociso::march::TriangleSoup;
use oociso::metacell::MetacellInterval;
use oociso::volume::field::{FieldExt, SphereField};
use oociso::volume::tetmesh::{TetCluster, TetMesh};
use oociso::volume::{Dims3, ScalarValue, Volume};

/// Record format for serialized tet clusters: variable-length records whose
/// length is recovered from the header (vertex/tet counts).
struct ClusterFormat {
    lens: Vec<usize>, // by cluster id
}

impl RecordFormat for ClusterFormat {
    fn header_len(&self) -> usize {
        12
    }
    fn parse_header(&self, bytes: &[u8]) -> (u32, u32) {
        let id = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
        (id, 0) // vmin unused: Case-2 streaming is exercised by the metacell path
    }
    fn record_len(&self, id: u32) -> usize {
        self.lens[id as usize]
    }
}

fn build_indexed_clusters(
    mesh: &TetMesh,
    tets_per_cluster: usize,
) -> (CompactIntervalTree, RecordStore, ClusterFormat, usize) {
    let clusters = mesh.clusters(tets_per_cluster);
    let mut lens = vec![0usize; clusters.len()];
    for c in &clusters {
        lens[c.id as usize] = c.encoded_len();
    }
    let mut intervals = Vec::new();
    let mut culled = 0usize;
    for c in &clusters {
        let (lo, hi) = c.value_interval().unwrap();
        if lo == hi {
            culled += 1;
        } else {
            intervals.push(MetacellInterval::new(c.id, lo, hi));
        }
    }
    let mut bytes: Vec<u8> = Vec::new();
    let tree = CompactIntervalTree::build(&intervals, &mut |iv| {
        let rec = clusters[iv.id as usize].encode();
        let span = Span {
            offset: bytes.len() as u64,
            len: rec.len() as u64,
        };
        bytes.extend_from_slice(&rec);
        Ok(span)
    })
    .unwrap();
    (
        tree,
        RecordStore::in_memory(bytes),
        ClusterFormat { lens },
        culled,
    )
}

#[test]
fn indexed_unstructured_extraction_matches_direct() {
    let f = SphereField {
        center: [0.5, 0.5, 0.5],
        radius: 0.25,
        level: 120.0,
        slope: 400.0,
    };
    let vol: Volume<u8> = f.sample(Dims3::cube(16));
    let mesh = TetMesh::from_volume(&vol);
    let (tree, store, format, culled) = build_indexed_clusters(&mesh, 36);
    assert!(culled > 0, "far-field clusters should be culled");

    for iso in [80.0f32, 120.0, 160.0] {
        let mut direct = TriangleSoup::new();
        extract_mesh(&mesh, iso, &mut direct);

        let mut indexed = TriangleSoup::new();
        let plan = tree.plan(f32::query_key(iso));
        oociso::itree::execute_plan(&plan, &store, &format, |_id, rec| {
            let (cluster, used) = TetCluster::decode(rec);
            assert_eq!(used, rec.len());
            extract_cluster(&cluster, iso, &mut indexed);
        })
        .unwrap();

        assert_eq!(indexed.len(), direct.len(), "iso {iso}");
        assert!((indexed.area() - direct.area()).abs() <= 1e-6 * direct.area().max(1.0));
    }
}

#[test]
fn unstructured_query_reads_less_than_full_mesh() {
    let vol: Volume<u8> = SphereField::centered(0.22, 120.0).sample(Dims3::cube(20));
    let mesh = TetMesh::from_volume(&vol);
    let (tree, store, format, _) = build_indexed_clusters(&mesh, 36);
    let plan = tree.plan(f32::query_key(120.0));
    let mut records = 0u64;
    let stats = oociso::itree::execute_plan(&plan, &store, &format, |_, _| records += 1).unwrap();
    assert!(records > 0);
    // a small sphere inside a big volume: the query must not read the store
    // wholesale
    assert!(
        stats.bytes_read * 2 < store.len(),
        "read {} of {}",
        stats.bytes_read,
        store.len()
    );
}

#[test]
fn unstructured_surface_is_closed() {
    let vol: Volume<f32> = SphereField::centered(0.3, 120.0).sample(Dims3::cube(16));
    let mesh = TetMesh::from_volume(&vol);
    let mut soup = TriangleSoup::new();
    extract_mesh(&mesh, 120.0, &mut soup);
    let report = oociso::march::analyze(&soup);
    assert!(report.is_closed(), "{report:?}");
    assert_eq!(report.components, 1);
    assert_eq!(report.euler_characteristic(), 2);
}
