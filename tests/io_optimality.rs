//! I/O behaviour of the compact-interval-tree query (§5's optimality claims),
//! measured end-to-end through the database.

use oociso::core::{IsoDatabase, PreprocessOptions};
use oociso::exio::IoCostModel;
use oociso::volume::{Dims3, RmProxy};
use std::path::PathBuf;

fn tmpdir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("oociso_io_{}_{}", std::process::id(), name));
    p
}

#[test]
fn bytes_read_proportional_to_output() {
    // The query must read O(T/B) blocks: bytes read stay within a small
    // constant of the active metacells' record bytes (Case 2 streaming may
    // overshoot by at most ~one chunk per active brick).
    let vol = RmProxy::with_seed(3).volume(230, Dims3::new(48, 48, 45));
    let dir = tmpdir("prop");
    let db = IsoDatabase::preprocess(&vol, &dir, &PreprocessOptions::default()).unwrap();
    for iso in [30.0, 90.0, 150.0, 210.0] {
        let r = db.extract(iso).unwrap();
        let n = &r.report.nodes[0];
        if n.active_metacells == 0 {
            continue;
        }
        let active_bytes = n.bytes_read; // record bytes of emitted metacells
        let touched = n.io.bytes_read; // all bytes fetched from the device
        assert!(
            touched <= 2 * active_bytes + 64 * 1024,
            "iso {iso}: touched {touched} vs active {active_bytes}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn io_grows_monotonically_with_surface_size() {
    let vol = RmProxy::with_seed(3).volume(230, Dims3::new(48, 48, 45));
    let dir = tmpdir("mono");
    let db = IsoDatabase::preprocess(&vol, &dir, &PreprocessOptions::default()).unwrap();
    // collect (active, touched_bytes) over the sweep; Spearman-ish check:
    // sorting by active must sort touched within tolerance
    let mut points: Vec<(u64, u64)> = Vec::new();
    for iso in (10..=210).step_by(20) {
        let r = db.extract(iso as f32).unwrap();
        let n = &r.report.nodes[0];
        points.push((n.active_metacells, n.io.bytes_read));
    }
    points.sort_unstable();
    for w in points.windows(2) {
        // more active metacells should never need drastically less I/O
        assert!(
            w[1].1 + 64 * 1024 >= w[0].1 / 2,
            "non-monotone I/O: {points:?}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn reads_are_mostly_sequential() {
    // Case 1 bulk ranges + per-brick streaming: the seek count must be far
    // below the active metacell count (the whole point of bricked layout —
    // prior metacell schemes paid a random read per metacell).
    let vol = RmProxy::with_seed(3).volume(230, Dims3::new(48, 48, 45));
    let dir = tmpdir("seq");
    let db = IsoDatabase::preprocess(&vol, &dir, &PreprocessOptions::default()).unwrap();
    let r = db.extract(130.0).unwrap();
    let n = &r.report.nodes[0];
    assert!(n.active_metacells > 50, "need a meaningful surface");
    assert!(
        n.io.seeks * 4 < n.active_metacells,
        "{} seeks for {} active metacells",
        n.io.seeks,
        n.active_metacells
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn modeled_time_matches_fifty_mbps_hand_calc() {
    let vol = RmProxy::with_seed(3).volume(230, Dims3::new(48, 48, 45));
    let dir = tmpdir("model");
    let db = IsoDatabase::preprocess(&vol, &dir, &PreprocessOptions::default()).unwrap();
    let r = db.extract(130.0).unwrap();
    let n = &r.report.nodes[0];
    let model = IoCostModel::paper_disk();
    let t = model.modeled_time(&n.io).as_secs_f64();
    let hand = n.io.seeks as f64 * 0.008 + (n.io.bytes_read + n.io.skip_bytes) as f64 / 50.0e6;
    assert!((t - hand).abs() < 1e-9, "model {t} vs hand {hand}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn out_of_range_isovalue_costs_nothing() {
    // isovalue above every sample: the tree prunes the whole query — no
    // metacells read, no triangles
    let vol = RmProxy::with_seed(3).volume(230, Dims3::new(48, 48, 45));
    let dir = tmpdir("empty");
    let db = IsoDatabase::preprocess(&vol, &dir, &PreprocessOptions::default()).unwrap();
    let r = db.extract(300.0).unwrap();
    let n = &r.report.nodes[0];
    assert_eq!(r.mesh.len(), 0);
    assert_eq!(n.io.bytes_read, 0, "out-of-range query must read nothing");
    std::fs::remove_dir_all(&dir).ok();
}
