//! Minimal `--key value` argument parsing (no external dependencies).

use oociso_volume::Dims3;
use std::collections::HashMap;

/// Parsed `--key value` options.
pub struct Options {
    map: HashMap<String, String>,
    flags: Vec<String>,
}

impl Options {
    /// Parse `--key value` pairs and bare `--flag`s.
    pub fn parse(argv: &[String]) -> Result<Options, String> {
        let mut map = HashMap::new();
        let mut flags = Vec::new();
        let mut it = argv.iter().peekable();
        while let Some(arg) = it.next() {
            let Some(key) = arg.strip_prefix("--") else {
                return Err(format!("unexpected positional argument `{arg}`"));
            };
            match it.peek() {
                Some(v) if !v.starts_with("--") => {
                    map.insert(key.to_string(), it.next().unwrap().clone());
                }
                _ => flags.push(key.to_string()),
            }
        }
        Ok(Options { map, flags })
    }

    /// Required string option.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.map
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    /// Optional string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.map.get(key).map(String::as_str)
    }

    /// Whether a bare flag was passed.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// Optional parsed numeric option with default.
    pub fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.map.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: cannot parse `{v}`")),
        }
    }

    /// Optional parsed numeric option without a default — `None` when absent.
    pub fn opt_num<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        match self.map.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("--{key}: cannot parse `{v}`")),
        }
    }

    /// Dimensions option `NXxNYxNZ`.
    pub fn dims(&self, key: &str, default: Dims3) -> Result<Dims3, String> {
        match self.map.get(key) {
            None => Ok(default),
            Some(v) => {
                let parts: Vec<usize> = v
                    .split(['x', 'X'])
                    .map(|p| p.parse().map_err(|_| format!("--{key}: bad dims `{v}`")))
                    .collect::<Result<_, _>>()?;
                if parts.len() != 3 {
                    return Err(format!("--{key}: expected NXxNYxNZ, got `{v}`"));
                }
                Ok(Dims3::new(parts[0], parts[1], parts[2]))
            }
        }
    }

    /// Tile layout option `CxR`.
    pub fn tiles(&self, key: &str, default: (usize, usize)) -> Result<(usize, usize), String> {
        match self.map.get(key) {
            None => Ok(default),
            Some(v) => {
                let parts: Vec<usize> = v
                    .split(['x', 'X'])
                    .map(|p| p.parse().map_err(|_| format!("--{key}: bad tiles `{v}`")))
                    .collect::<Result<_, _>>()?;
                if parts.len() != 2 {
                    return Err(format!("--{key}: expected CxR, got `{v}`"));
                }
                Ok((parts[0], parts[1]))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(args: &[&str]) -> Options {
        Options::parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn key_value_and_flags() {
        let o = opts(&["--db", "x", "--topology", "--iso", "190"]);
        assert_eq!(o.require("db").unwrap(), "x");
        assert!(o.flag("topology"));
        assert_eq!(o.num::<f32>("iso", 0.0).unwrap(), 190.0);
        assert_eq!(o.num::<usize>("nodes", 4).unwrap(), 4);
        assert_eq!(o.opt_num::<f32>("iso").unwrap(), Some(190.0));
        assert_eq!(o.opt_num::<u32>("slots").unwrap(), None);
        assert!(o.opt_num::<u32>("db").is_err());
    }

    #[test]
    fn dims_parsing() {
        let o = opts(&["--dims", "64x64x60"]);
        assert_eq!(
            o.dims("dims", Dims3::cube(8)).unwrap(),
            Dims3::new(64, 64, 60)
        );
        assert_eq!(o.dims("other", Dims3::cube(8)).unwrap(), Dims3::cube(8));
    }

    #[test]
    fn missing_required_reports_key() {
        let o = opts(&[]);
        assert!(o.require("db").unwrap_err().contains("--db"));
    }

    #[test]
    fn positional_rejected() {
        let argv = vec!["stray".to_string()];
        assert!(Options::parse(&argv).is_err());
    }

    #[test]
    fn tiles_parsing() {
        let o = opts(&["--tiles", "2x2"]);
        assert_eq!(o.tiles("tiles", (1, 1)).unwrap(), (2, 2));
    }
}
