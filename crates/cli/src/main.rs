//! `oociso` — command-line out-of-core isosurface extraction and rendering.
//!
//! ```text
//! oociso gen        --out rm.vol [--dims 256x256x240] [--step 250] [--seed N]
//! oociso preprocess --volume rm.vol --db rm_db [--nodes 4] [--metacell 9]
//! oociso info       --db rm_db
//! oociso extract    --db rm_db --iso 190 [--obj out.obj] [--topology]
//! oociso render     --db rm_db --iso 190 --out img.ppm [--size 1024] [--tiles 2x2]
//! oociso serve      --db rm_db [--addr 127.0.0.1:7077] [--cache-mb 256] [--port-file p]
//! oociso query      --addr HOST:PORT --iso 190 [--obj out.obj] [--stats]
//! ```
//!
//! The `gen` subcommand writes a Richtmyer–Meshkov proxy time step as a raw
//! volume file; `preprocess` builds the striped on-disk database out-of-core
//! (streaming the file in slabs); `extract`/`render` query it.

mod args;
mod commands;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = match run(&argv) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            2
        }
    };
    std::process::exit(code);
}

fn run(argv: &[String]) -> Result<(), String> {
    let Some(cmd) = argv.first() else {
        print!("{}", commands::USAGE);
        return Ok(());
    };
    let opts = args::Options::parse(&argv[1..])?;
    match cmd.as_str() {
        "gen" => commands::gen(&opts),
        "preprocess" => commands::preprocess(&opts),
        "info" => commands::info(&opts),
        "extract" => commands::extract(&opts),
        "render" => commands::render(&opts),
        "serve" => commands::serve(&opts),
        "query" => commands::query(&opts),
        "stats" => commands::stats(&opts),
        "help" | "--help" | "-h" => {
            print!("{}", commands::USAGE);
            Ok(())
        }
        other => Err(format!("unknown subcommand `{other}` (try `oociso help`)")),
    }
}
