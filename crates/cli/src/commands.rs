//! Subcommand implementations.

use crate::args::Options;
use oociso_cluster::SimulatedTimeModel;
use oociso_core::{ClusterDatabase, PreprocessOptions};
use oociso_render::{Camera, TileLayout};
use oociso_volume::{io::write_volume, Dims3, RmProxy};
use std::path::Path;

/// Top-level usage text.
pub const USAGE: &str = "\
oociso — out-of-core isosurface extraction and rendering

USAGE:
  oociso gen        --out FILE [--dims NXxNYxNZ] [--step N] [--seed N] [--field rm|ball]
  oociso preprocess --volume FILE --db DIR [--nodes N] [--metacell K]
  oociso info       --db DIR
  oociso extract    --db DIR --iso V [--backend mc|surfacenets] [--obj FILE]
                    [--topology] [--no-weld] [--decimate RATIO]
  oociso render     --db DIR --iso V --out FILE.ppm [--size N] [--tiles CxR]
  oociso serve      --db DIR [--addr 127.0.0.1:7077] [--cache-mb N] [--port-file FILE]
                    [--backend mc|surfacenets] [--lods R1,R2|none] [--slots N]
                    [--max-conns N] [--degrade] [--warm-delta D]
                    [--reactor | --threaded] [--reactor-threads N] [--workers N]
                    [--outbound-budget-mb N]
                    [--read-timeout-ms N] [--idle-timeout-ms N]
                    [--slow-ms N] [--trace-buffer N]
  oociso query      --addr HOST:PORT (--iso V | --stats) [--lod N]
                    [--backend mc|surfacenets] [--obj FILE] [--progressive]
                    [--region x0,y0,z0,x1,y1,z1]
                    [--frame FILE.ppm] [--size N] [--tiles CxR] [--stats]
                    [--timeout MS] [--retries N] [--trace [ID]]
  oociso stats      --addr HOST:PORT [--metrics]
  oociso help

Generate a Richtmyer-Meshkov proxy volume, preprocess it into a striped
out-of-core database (compact interval tree index), then extract or render
isosurfaces reading only the active metacells. `extract --decimate 0.25`
quadric-simplifies the welded mesh to 25% of its vertices; `serve` exposes
a database over TCP (binary wire protocol, LRU result cache, LOD pyramid —
default levels 100%/25%/6%); `query --lod N` fetches pyramid level N.
`serve --slots N` bounds concurrent extractions (overflow answers ERR_BUSY
with a retry hint; add `--degrade` to fall back to a cached coarser LOD);
`query --timeout MS --retries N` retries busy/torn requests with jittered
exponential backoff. `--backend` selects the extraction kernel — `mc`
(Marching Cubes, the default) or `surfacenets` (`sn`): same triangle budget,
half the primitives, globally vertex-unique; `serve --backend` sets the
default served to clients that name none, while `query --backend` pins one
explicitly (per-backend cache slots never alias). `query --trace` stamps
the request with a trace id and prints the server-side span tree (cache →
admission → extraction phases → encode); `stats` prints the server
counters, and `stats --metrics` dumps the raw Prometheus-style exposition
(counters, gauges, latency histograms). `serve --slow-ms N` logs and
retains a trace for any request slower than N ms; `--trace-buffer N` sizes
the journal `query --trace` reads from. On Linux `serve` runs the epoll
reactor core by default (`--reactor-threads N` event loops, request
pipelining, bounded per-client outbound queues — `--outbound-budget-mb`);
`--threaded` falls back to the classic thread-per-connection core, the
only core on other platforms. `--workers N` sizes the reactor's
extraction pool. `serve --warm-delta D` speculatively pre-extracts v±D
after each cache-miss at v, using only otherwise-idle extraction slots —
an isovalue scrub hits the warmed cache instead of extracting. `query
--progressive` asks for a coarse-to-fine streamed delivery (protocol v6):
the coarsest cached level renders immediately and each refinement prints
with its arrival time; the final mesh equals the plain `--lod` reply.
";

fn err(e: impl std::fmt::Display) -> String {
    e.to_string()
}

/// `--backend mc|surfacenets` (default MC, matching the library default).
fn backend_opt(opts: &Options) -> Result<oociso_march::Backend, String> {
    match opts.get("backend") {
        None => Ok(oociso_march::Backend::Mc),
        Some(s) => s.parse().map_err(|e| format!("--backend: {e}")),
    }
}

/// `oociso gen`: write a synthetic volume file — the RM proxy time step
/// (default), or `--field ball`, a centered sphere whose isosurfaces close
/// strictly inside the volume (the closed-manifold fixture the decimation
/// smoke tests need).
pub fn gen(opts: &Options) -> Result<(), String> {
    let out = opts.require("out")?;
    let dims = opts.dims("dims", Dims3::new(256, 256, 240))?;
    let step: u32 = opts.num("step", 250)?;
    let seed: u64 = opts.num("seed", 0x524D_2006)?;
    let field = opts.get("field").unwrap_or("rm");
    let vol = match field {
        "rm" => {
            eprintln!(
                "generating RM proxy step {step} at {}x{}x{} (seed {seed:#x})…",
                dims.nx, dims.ny, dims.nz
            );
            RmProxy::with_seed(seed).volume(step, dims)
        }
        "ball" => {
            use oociso_volume::field::{FieldExt, SphereField};
            eprintln!(
                "generating centered ball at {}x{}x{}…",
                dims.nx, dims.ny, dims.nz
            );
            SphereField::centered(0.34, 128.0).sample(dims)
        }
        other => return Err(format!("--field: unknown field `{other}` (rm | ball)")),
    };
    write_volume(Path::new(out), &vol).map_err(err)?;
    println!(
        "wrote {} ({:.1} MB raw)",
        out,
        dims.raw_bytes::<u8>() as f64 / 1e6
    );
    Ok(())
}

/// `oociso preprocess`: stream a raw volume file into a database directory.
pub fn preprocess(opts: &Options) -> Result<(), String> {
    let volume = opts.require("volume")?;
    let db_dir = opts.require("db")?;
    let nodes: usize = opts.num("nodes", 1)?;
    let metacell_k: usize = opts.num("metacell", 9)?;
    let popts = PreprocessOptions {
        metacell_k,
        nodes,
        mmap: true,
    };
    eprintln!("preprocessing {volume} -> {db_dir} ({nodes} node(s), {metacell_k}^3 metacells)…");
    let t = std::time::Instant::now();
    let db = ClusterDatabase::<u8>::preprocess_file(Path::new(volume), Path::new(db_dir), &popts)
        .map_err(err)?;
    let stats = db.preprocess_stats().expect("fresh build");
    println!(
        "done in {:.1}s: {} metacells kept, {} culled ({:.0}% of raw size), index {:.1} KB",
        t.elapsed().as_secs_f64(),
        stats.kept_metacells,
        stats.culled_metacells,
        stats.size_ratio() * 100.0,
        db.index_bytes() as f64 / 1024.0
    );
    Ok(())
}

/// `oociso info`: summarize a database directory.
pub fn info(opts: &Options) -> Result<(), String> {
    let db_dir = opts.require("db")?;
    let db = ClusterDatabase::<u8>::open(Path::new(db_dir), true).map_err(err)?;
    let layout = db.cluster().layout();
    let dims = layout.volume_dims();
    println!("database:   {db_dir}");
    println!("volume:     {}x{}x{} u8", dims.nx, dims.ny, dims.nz);
    println!(
        "metacells:  {}^3 vertices ({} B full record), grid {}x{}x{}",
        layout.k(),
        layout.full_record_len(1),
        layout.grid().nx,
        layout.grid().ny,
        layout.grid().nz
    );
    println!("nodes:      {}", db.nodes());
    println!(
        "index:      {:.1} KB total",
        db.index_bytes() as f64 / 1024.0
    );
    for (i, tree) in db.cluster().trees().iter().enumerate() {
        println!(
            "  node {i}: {} tree nodes, {} brick entries, {} metacells, height {}",
            tree.num_nodes(),
            tree.num_entries(),
            tree.num_intervals(),
            tree.height()
        );
    }
    Ok(())
}

/// `oociso extract`: query an isosurface, optionally export OBJ / topology.
pub fn extract(opts: &Options) -> Result<(), String> {
    let db_dir = opts.require("db")?;
    let iso: f32 = opts.num("iso", f32::NAN)?;
    if iso.is_nan() {
        return Err("missing required option --iso".into());
    }
    let db = ClusterDatabase::<u8>::open(Path::new(db_dir), true).map_err(err)?;
    // welding is the default: the exported/analyzed mesh is watertight across
    // metacell and node seams; --no-weld keeps the raw per-metacell merge
    // (SurfaceNets never welds: its vertices are globally unique by cell)
    let weld = !opts.flag("no-weld");
    let backend = backend_opt(opts)?;
    let result = db
        .extract_with_options(
            iso,
            &oociso_cluster::ExtractOptions {
                weld,
                backend,
                ..Default::default()
            },
        )
        .map_err(err)?;
    let r = &result.report;
    println!(
        "isovalue {iso} ({backend}): {} active metacells, {} triangles, {:.1} MB read, wall {:.3}s",
        r.total_active_metacells(),
        r.total_triangles(),
        r.total_bytes_read() as f64 / 1e6,
        r.total_wall.as_secs_f64()
    );
    // retrieval→triangulation pipeline: staging memory and hidden wall-clock
    let max_overlap = r
        .nodes
        .iter()
        .map(|n| n.overlap_fraction())
        .fold(0.0f64, f64::max);
    println!(
        "pipeline: peak staging {:.1} KB/node, overlap saved {:.1} ms across nodes ({:.0}% of the shorter phase on the best node)",
        r.max_peak_queue_bytes() as f64 / 1024.0,
        r.total_overlap_saved().as_secs_f64() * 1e3,
        max_overlap * 100.0
    );
    if weld && backend == oociso_march::Backend::Mc {
        let w = r.total_weld();
        println!(
            "weld: {} seam vertices merged, {} seam edges closed, {} collapsed triangles dropped in {:.1} ms ({:.1}% of extraction wall)",
            w.vertices_merged(),
            w.seam_edges_closed(),
            w.degenerate_dropped,
            r.total_weld_wall().as_secs_f64() * 1e3,
            100.0 * r.total_weld_wall().as_secs_f64() / r.total_wall.as_secs_f64().max(1e-9)
        );
    }
    let model = SimulatedTimeModel::paper();
    println!(
        "simulated on the paper's hardware: {:.3}s ({:.2} MTri/s)",
        model.query_time(r, 4, (1024, 1024)).as_secs_f64(),
        r.total_triangles() as f64
            / 1e6
            / model.query_time(r, 4, (1024, 1024)).as_secs_f64().max(1e-9)
    );
    // --decimate R: quadric edge-collapse simplify the welded mesh; the
    // OBJ export and topology report below then describe the decimated mesh
    let mut mesh = result.mesh;
    if let Some(ratio) = opts.get("decimate") {
        let ratio: f64 = ratio
            .parse()
            .map_err(|_| format!("--decimate: cannot parse `{ratio}`"))?;
        if !(0.0..=1.0).contains(&ratio) {
            return Err(format!("--decimate: ratio {ratio} outside [0, 1]"));
        }
        let t = std::time::Instant::now();
        let (decimated, stats) = oociso_march::decimate_to_ratio(&mesh, ratio);
        println!(
            "decimate {ratio}: {} -> {} vertices ({} -> {} triangles), {} collapses, max error {:.3e} (world {:.4}), {:.1} ms{}",
            stats.input_vertices,
            stats.output_vertices,
            stats.input_triangles,
            stats.output_triangles,
            stats.collapses,
            stats.max_error,
            stats.world_error(),
            t.elapsed().as_secs_f64() * 1e3,
            if stats.reached_target {
                ""
            } else {
                " (stopped early: no legal collapse left)"
            }
        );
        mesh = decimated;
    }
    if opts.flag("topology") {
        let report = oociso_march::analyze_mesh(&mesh);
        println!(
            "topology: V={} E={} F={} components={} boundary_edges={} non_manifold_edges={} chi={} ({})",
            report.vertices,
            report.edges,
            report.faces,
            report.components,
            report.boundary_edges,
            report.non_manifold_edges,
            report.euler_characteristic(),
            if report.is_closed_manifold() {
                "closed manifold"
            } else if report.is_closed() {
                "closed"
            } else {
                "open"
            }
        );
    }
    if let Some(obj) = opts.get("obj") {
        mesh.write_obj(Path::new(obj)).map_err(err)?;
        println!(
            "exported {} triangles ({} welded vertices) -> {obj}",
            mesh.len(),
            mesh.num_vertices()
        );
    }
    Ok(())
}

/// `oociso serve`: expose a database directory as a TCP query server.
pub fn serve(opts: &Options) -> Result<(), String> {
    let db_dir = opts.require("db")?;
    let addr = opts.get("addr").unwrap_or("127.0.0.1:7077");
    let cache_mb: u64 = opts.num("cache-mb", 256)?;
    // LOD pyramid levels: the library's serving default pyramid (100%/25%/6%);
    // `--lods none` keeps the server full-resolution-only
    let lod_ratios: Vec<f64> = match opts.get("lods") {
        None => oociso_cluster::LodSpec::pyramid().ratios,
        Some("none") | Some("off") => Vec::new(),
        Some(list) => list
            .split(',')
            .map(|p| {
                p.trim()
                    .parse()
                    .map_err(|_| format!("--lods: bad ratio `{p}` in `{list}`"))
            })
            .collect::<Result<_, _>>()?,
    };
    let levels = 1 + lod_ratios.len();
    let extraction_slots: Option<u32> = opts.opt_num("slots")?;
    let max_connections: Option<u32> = opts.opt_num("max-conns")?;
    let degrade = opts.flag("degrade");
    let backend = backend_opt(opts)?;
    // `--warm-delta D` turns on speculative cache warming: after each
    // cache-miss extraction at isovalue v, idle capacity pre-extracts v±D
    let warm_delta: Option<f32> = opts.opt_num("warm-delta")?;
    let mut serve_opts = oociso_serve::ServeOptions {
        cache_bytes: cache_mb << 20,
        lod_ratios,
        extraction_slots,
        max_connections,
        degrade,
        backend,
        warm_delta,
        ..Default::default()
    };
    if let Some(ms) = opts.opt_num::<u64>("read-timeout-ms")? {
        serve_opts.read_timeout = (ms > 0).then(|| std::time::Duration::from_millis(ms));
    }
    if let Some(ms) = opts.opt_num::<u64>("idle-timeout-ms")? {
        serve_opts.idle_timeout = (ms > 0).then(|| std::time::Duration::from_millis(ms));
    }
    // observability knobs: slow-query threshold (0 disables) and how many
    // finished request traces `query --trace` can fetch back
    serve_opts.slow_ms = opts.num("slow-ms", serve_opts.slow_ms)?;
    serve_opts.trace_buffer = opts.num("trace-buffer", serve_opts.trace_buffer)?;
    // serving core: the reactor is the default on Linux; `--threaded`
    // opts out, and the reactor flags are rejected elsewhere rather than
    // silently ignored
    let reactor_supported = cfg!(target_os = "linux");
    let threaded = opts.flag("threaded");
    let reactor = opts.flag("reactor") || (reactor_supported && !threaded);
    if threaded && opts.flag("reactor") {
        return Err("--reactor and --threaded are mutually exclusive".into());
    }
    if reactor && !reactor_supported {
        return Err("--reactor requires Linux (epoll); use --threaded".into());
    }
    if reactor {
        serve_opts.reactor_threads = opts.num("reactor-threads", 2)?;
        if serve_opts.reactor_threads == 0 {
            return Err("--reactor-threads must be at least 1".into());
        }
        serve_opts.reactor_workers = opts.num("workers", 0)?;
        serve_opts.outbound_budget = (opts.num::<usize>("outbound-budget-mb", 8)?).max(1) << 20;
    }
    let db = ClusterDatabase::<u8>::open(Path::new(db_dir), true).map_err(err)?;
    let nodes = db.nodes();
    let (reactor_threads, outbound_budget) =
        (serve_opts.reactor_threads, serve_opts.outbound_budget);
    let server = oociso_serve::IsoServer::bind(db, addr, serve_opts).map_err(err)?;
    // scripts pass --addr 127.0.0.1:0 and read the resolved port from here
    if let Some(port_file) = opts.get("port-file") {
        std::fs::write(port_file, server.addr().port().to_string()).map_err(err)?;
    }
    println!(
        "serving {db_dir} ({nodes} node(s)) on {} — protocol v{}, cache {cache_mb} MiB, {levels} LOD level(s), default backend {backend}",
        server.addr(),
        oociso_serve::VERSION,
    );
    if reactor_threads > 0 {
        println!(
            "core: reactor ({} event loop(s), outbound budget {} MiB/conn)",
            reactor_threads,
            outbound_budget >> 20
        );
    } else {
        println!("core: threaded (one handler thread per connection)");
    }
    if extraction_slots.is_some() || max_connections.is_some() || degrade {
        println!(
            "admission: {} extraction slot(s), {} connection cap, degraded fallback {}",
            extraction_slots.map_or("unbounded".into(), |n| n.to_string()),
            max_connections.map_or("none".into(), |n| n.to_string()),
            if degrade { "on" } else { "off" }
        );
    }
    if let Some(delta) = warm_delta {
        println!("warming: speculative extraction of v±{delta} after each cache miss");
    }
    server.park()
}

/// `oociso query`: query a running server; mirror of `extract`/`render` over
/// the wire.
pub fn query(opts: &Options) -> Result<(), String> {
    let addr = opts.require("addr")?;
    // --stats alone is a health probe (a drained or zero-slot replica still
    // answers it); everything else needs an isovalue
    let iso: Option<f32> = opts.opt_num("iso")?;
    if iso.is_none() && !opts.flag("stats") {
        return Err("missing required option --iso (or pass --stats alone to probe)".into());
    }
    let region = match opts.get("region") {
        None => None,
        Some(spec) => {
            let parts: Vec<f32> = spec
                .split(',')
                .map(|p| {
                    p.trim()
                        .parse()
                        .map_err(|_| format!("--region: bad `{spec}`"))
                })
                .collect::<Result<_, _>>()?;
            if parts.len() != 6 {
                return Err("--region: expected x0,y0,z0,x1,y1,z1".into());
            }
            Some(oociso_serve::Region {
                lo: [parts[0], parts[1], parts[2]],
                hi: [parts[3], parts[4], parts[5]],
            })
        }
    };
    let lod: u16 = opts.num("lod", 0)?;
    // --timeout MS bounds each request round-trip (0 = wait forever);
    // --retries N re-attempts busy replies and torn connections with
    // jittered exponential backoff honoring the server's retry hint
    let mut copts = oociso_serve::ClientOptions {
        retries: opts.num("retries", 0)?,
        ..Default::default()
    };
    if let Some(ms) = opts.opt_num::<u64>("timeout")? {
        copts.request_timeout = (ms > 0).then(|| std::time::Duration::from_millis(ms));
    }
    let mut client = oociso_serve::Client::connect_with(addr, copts).map_err(err)?;
    if let Some(iso) = iso {
        query_iso(opts, &mut client, iso, region, lod)?;
    }
    if opts.flag("stats") {
        print_stats(&mut client)?;
    }
    Ok(())
}

fn query_iso(
    opts: &Options,
    client: &mut oociso_serve::Client,
    iso: f32,
    region: Option<oociso_serve::Region>,
    lod: u16,
) -> Result<(), String> {
    let t = std::time::Instant::now();
    // --trace stamps the request with a trace id (an explicit `--trace ID`,
    // or one derived from the pid) so the server retains its span tree
    let trace_id = match opts.get("trace") {
        Some(v) => {
            let id: u64 = v
                .parse()
                .map_err(|_| format!("--trace: cannot parse `{v}`"))?;
            if id == 0 {
                return Err("--trace: id 0 means untraced; pick a nonzero id".into());
            }
            id
        }
        None if opts.flag("trace") => (u64::from(std::process::id()) << 16) | 0x7ACE,
        None => 0,
    };
    // --backend names an extraction kernel explicitly; without it the
    // request carries no selector and the server's default answers
    let backend = match opts.get("backend") {
        None => None,
        Some(s) => Some(
            s.parse::<oociso_march::Backend>()
                .map_err(|e| format!("--backend: {e}"))?,
        ),
    };
    let reply = if opts.flag("progressive") {
        // --progressive streams the LOD pyramid coarsest-first (protocol
        // v6), printing each refinement as it lands
        if region.is_some() {
            return Err("--progressive cannot be combined with --region".into());
        }
        if trace_id != 0 {
            return Err("--progressive cannot be combined with --trace".into());
        }
        println!("isovalue {iso}, progressive -> lod {lod}:");
        client
            .query_mesh_progressive(iso, lod, backend, |u| {
                println!(
                    "  +{:.3}s  level {}: {} triangles ({} vertices) [{}, {} on the wire]",
                    t.elapsed().as_secs_f64(),
                    u.level,
                    u.mesh.len(),
                    u.mesh.num_vertices(),
                    if u.cache_hit { "cached" } else { "extracted" },
                    if u.delta { "delta" } else { "full" },
                );
            })
            .map_err(err)?
    } else if trace_id != 0 {
        client
            .query_mesh_traced(iso, region, lod, backend, trace_id)
            .map_err(err)?
    } else {
        match backend {
            None => client.query_mesh_lod(iso, region, lod).map_err(err)?,
            Some(b) => client
                .query_mesh_backend(iso, region, lod, b)
                .map_err(err)?,
        }
    };
    let served = oociso_march::Backend::from_id(reply.backend)
        .map_or_else(|| format!("backend {}", reply.backend), |b| b.to_string());
    println!(
        "isovalue {iso} (lod {lod}, {served}): {} triangles ({} vertices), {} active metacells, {} in {:.3}s{}",
        reply.mesh.len(),
        reply.mesh.num_vertices(),
        reply.active_metacells,
        if reply.cache_hit {
            "cache hit"
        } else {
            "cache miss"
        },
        t.elapsed().as_secs_f64(),
        if reply.degraded {
            format!(" [degraded: served lod {}]", reply.served_lod)
        } else {
            String::new()
        }
    );
    if trace_id != 0 {
        let t = client.trace(trace_id).map_err(err)?;
        if t.found {
            println!(
                "trace {:#x} ({:.3} ms server-side{}):",
                t.id,
                t.total_us as f64 / 1e3,
                if t.dropped > 0 {
                    format!(", {} events dropped", t.dropped)
                } else {
                    String::new()
                }
            );
            print!("{}", oociso_serve::render_trace_events(&t.events));
        } else {
            println!("trace {trace_id:#x}: not retained by the server");
        }
    }
    if let Some(obj) = opts.get("obj") {
        reply.mesh.write_obj(Path::new(obj)).map_err(err)?;
        println!("exported -> {obj}");
    }
    if let Some(frame) = opts.get("frame") {
        let size: u32 = opts.num("size", 512)?;
        let (cols, rows) = opts.tiles("tiles", (1, 1))?;
        if cols == 0
            || rows == 0
            || !(size as usize).is_multiple_of(cols)
            || !(size as usize).is_multiple_of(rows)
        {
            return Err(format!(
                "--size {size} must divide evenly into {cols}x{rows} tiles"
            ));
        }
        let f = client
            .query_frame(
                iso,
                oociso_serve::FrameParams {
                    width: size,
                    height: size,
                    azimuth: 0.9,
                    elevation: 0.45,
                    distance: 2.0,
                    tile_cols: cols as u16,
                    tile_rows: rows as u16,
                },
            )
            .map_err(err)?;
        f.framebuffer.write_ppm(Path::new(frame)).map_err(err)?;
        println!(
            "rendered frame ({} covered pixels, {}) -> {frame}",
            f.framebuffer.covered_pixels(),
            if f.cache_hit {
                "cache hit"
            } else {
                "cache miss"
            },
        );
    }
    Ok(())
}

/// `oociso stats`: print a running server's counters; `--metrics` dumps the
/// raw Prometheus-style exposition instead (counters, gauges, histograms).
pub fn stats(opts: &Options) -> Result<(), String> {
    let addr = opts.require("addr")?;
    let mut client = oociso_serve::Client::connect(addr).map_err(err)?;
    if opts.flag("metrics") {
        print!("{}", client.metrics().map_err(err)?);
        return Ok(());
    }
    print_stats(&mut client)
}

fn print_stats(client: &mut oociso_serve::Client) -> Result<(), String> {
    let s = client.stats().map_err(err)?;
    println!(
        "server: {} connection(s), {} request(s) ({} mesh, {} frame, {} error), {:.1} MB out",
        s.connections,
        s.requests,
        s.mesh_requests,
        s.frame_requests,
        s.errors,
        s.bytes_out as f64 / 1e6
    );
    println!(
        "cache: {} hit(s) / {} miss(es), {} eviction(s), {:.1} MB resident in {} entrie(s)",
        s.cache_hits,
        s.cache_misses,
        s.cache_evictions,
        s.cache_resident_bytes as f64 / 1e6,
        s.cache_resident_entries
    );
    let per_level: Vec<String> = s
        .lod_hits
        .iter()
        .zip(&s.lod_misses)
        .enumerate()
        .filter(|(_, (&h, &m))| h + m > 0)
        .map(|(i, (h, m))| format!("L{i} {h}/{m}"))
        .collect();
    if !per_level.is_empty() {
        println!("cache per lod (hits/misses): {}", per_level.join(", "));
    }
    let per_backend: Vec<String> = s
        .backend_hits
        .iter()
        .zip(&s.backend_misses)
        .enumerate()
        .filter(|(_, (&h, &m))| h + m > 0)
        .map(|(i, (h, m))| {
            let name = oociso_march::Backend::from_id(i as u8)
                .map_or_else(|| i.to_string(), |b| b.to_string());
            format!("{name} {h}/{m}")
        })
        .collect();
    if !per_backend.is_empty() {
        println!(
            "cache per backend (hits/misses): {}",
            per_backend.join(", ")
        );
    }
    println!(
        "overload: shed={} degraded={} timed_out={} drained={} accept_backoffs={} active_conns={}",
        s.shed, s.degraded, s.timed_out, s.drained, s.accept_backoffs, s.active_connections
    );
    Ok(())
}

/// `oociso render`: extract, rasterize per node, sort-last composite, save PPM.
pub fn render(opts: &Options) -> Result<(), String> {
    let db_dir = opts.require("db")?;
    let iso: f32 = opts.num("iso", f32::NAN)?;
    if iso.is_nan() {
        return Err("missing required option --iso".into());
    }
    let out = opts.require("out")?;
    let size: usize = opts.num("size", 1024)?;
    let (cols, rows) = opts.tiles("tiles", (2, 2))?;
    let db = ClusterDatabase::<u8>::open(Path::new(db_dir), true).map_err(err)?;
    let probe = db.extract(iso).map_err(err)?;
    if probe.mesh.is_empty() {
        return Err(format!("isovalue {iso} produces an empty surface"));
    }
    let camera = Camera::orbiting(&probe.mesh.bounds(), 0.9, 0.45, 2.0);
    let tiles = TileLayout::new(cols, rows, size, size);
    let (fb, e) = db
        .extract_and_render(iso, &camera, &tiles, [0.9, 0.78, 0.5])
        .map_err(err)?;
    fb.write_ppm(Path::new(out)).map_err(err)?;
    println!(
        "rendered {} triangles over {} node(s), composite moved {:.1} MB -> {out}",
        e.report.total_triangles(),
        db.nodes(),
        e.report.composite_wire_bytes as f64 / 1e6
    );
    Ok(())
}
