//! Subcommand implementations.

use crate::args::Options;
use oociso_cluster::SimulatedTimeModel;
use oociso_core::{ClusterDatabase, PreprocessOptions};
use oociso_render::{Camera, TileLayout};
use oociso_volume::{io::write_volume, Dims3, RmProxy};
use std::path::Path;

/// Top-level usage text.
pub const USAGE: &str = "\
oociso — out-of-core isosurface extraction and rendering

USAGE:
  oociso gen        --out FILE [--dims NXxNYxNZ] [--step N] [--seed N]
  oociso preprocess --volume FILE --db DIR [--nodes N] [--metacell K]
  oociso info       --db DIR
  oociso extract    --db DIR --iso V [--obj FILE] [--topology]
  oociso render     --db DIR --iso V --out FILE.ppm [--size N] [--tiles CxR]
  oociso help

Generate a Richtmyer-Meshkov proxy volume, preprocess it into a striped
out-of-core database (compact interval tree index), then extract or render
isosurfaces reading only the active metacells.
";

fn err(e: impl std::fmt::Display) -> String {
    e.to_string()
}

/// `oociso gen`: write an RM proxy time step as a raw volume file.
pub fn gen(opts: &Options) -> Result<(), String> {
    let out = opts.require("out")?;
    let dims = opts.dims("dims", Dims3::new(256, 256, 240))?;
    let step: u32 = opts.num("step", 250)?;
    let seed: u64 = opts.num("seed", 0x524D_2006)?;
    eprintln!(
        "generating RM proxy step {step} at {}x{}x{} (seed {seed:#x})…",
        dims.nx, dims.ny, dims.nz
    );
    let vol = RmProxy::with_seed(seed).volume(step, dims);
    write_volume(Path::new(out), &vol).map_err(err)?;
    println!(
        "wrote {} ({:.1} MB raw)",
        out,
        dims.raw_bytes::<u8>() as f64 / 1e6
    );
    Ok(())
}

/// `oociso preprocess`: stream a raw volume file into a database directory.
pub fn preprocess(opts: &Options) -> Result<(), String> {
    let volume = opts.require("volume")?;
    let db_dir = opts.require("db")?;
    let nodes: usize = opts.num("nodes", 1)?;
    let metacell_k: usize = opts.num("metacell", 9)?;
    let popts = PreprocessOptions {
        metacell_k,
        nodes,
        mmap: true,
    };
    eprintln!("preprocessing {volume} -> {db_dir} ({nodes} node(s), {metacell_k}^3 metacells)…");
    let t = std::time::Instant::now();
    let db = ClusterDatabase::<u8>::preprocess_file(Path::new(volume), Path::new(db_dir), &popts)
        .map_err(err)?;
    let stats = db.preprocess_stats().expect("fresh build");
    println!(
        "done in {:.1}s: {} metacells kept, {} culled ({:.0}% of raw size), index {:.1} KB",
        t.elapsed().as_secs_f64(),
        stats.kept_metacells,
        stats.culled_metacells,
        stats.size_ratio() * 100.0,
        db.index_bytes() as f64 / 1024.0
    );
    Ok(())
}

/// `oociso info`: summarize a database directory.
pub fn info(opts: &Options) -> Result<(), String> {
    let db_dir = opts.require("db")?;
    let db = ClusterDatabase::<u8>::open(Path::new(db_dir), true).map_err(err)?;
    let layout = db.cluster().layout();
    let dims = layout.volume_dims();
    println!("database:   {db_dir}");
    println!("volume:     {}x{}x{} u8", dims.nx, dims.ny, dims.nz);
    println!(
        "metacells:  {}^3 vertices ({} B full record), grid {}x{}x{}",
        layout.k(),
        layout.full_record_len(1),
        layout.grid().nx,
        layout.grid().ny,
        layout.grid().nz
    );
    println!("nodes:      {}", db.nodes());
    println!(
        "index:      {:.1} KB total",
        db.index_bytes() as f64 / 1024.0
    );
    for (i, tree) in db.cluster().trees().iter().enumerate() {
        println!(
            "  node {i}: {} tree nodes, {} brick entries, {} metacells, height {}",
            tree.num_nodes(),
            tree.num_entries(),
            tree.num_intervals(),
            tree.height()
        );
    }
    Ok(())
}

/// `oociso extract`: query an isosurface, optionally export OBJ / topology.
pub fn extract(opts: &Options) -> Result<(), String> {
    let db_dir = opts.require("db")?;
    let iso: f32 = opts.num("iso", f32::NAN)?;
    if iso.is_nan() {
        return Err("missing required option --iso".into());
    }
    let db = ClusterDatabase::<u8>::open(Path::new(db_dir), true).map_err(err)?;
    let result = db.extract(iso).map_err(err)?;
    let r = &result.report;
    println!(
        "isovalue {iso}: {} active metacells, {} triangles, {:.1} MB read, wall {:.3}s",
        r.total_active_metacells(),
        r.total_triangles(),
        r.total_bytes_read() as f64 / 1e6,
        r.total_wall.as_secs_f64()
    );
    // retrieval→triangulation pipeline: staging memory and hidden wall-clock
    let max_overlap = r
        .nodes
        .iter()
        .map(|n| n.overlap_fraction())
        .fold(0.0f64, f64::max);
    println!(
        "pipeline: peak staging {:.1} KB/node, overlap saved {:.1} ms across nodes ({:.0}% of the shorter phase on the best node)",
        r.max_peak_queue_bytes() as f64 / 1024.0,
        r.total_overlap_saved().as_secs_f64() * 1e3,
        max_overlap * 100.0
    );
    let model = SimulatedTimeModel::paper();
    println!(
        "simulated on the paper's hardware: {:.3}s ({:.2} MTri/s)",
        model.query_time(r, 4, (1024, 1024)).as_secs_f64(),
        r.total_triangles() as f64
            / 1e6
            / model.query_time(r, 4, (1024, 1024)).as_secs_f64().max(1e-9)
    );
    if opts.flag("topology") {
        let report = oociso_march::analyze_mesh(&result.mesh);
        println!(
            "topology: V={} E={} F={} components={} boundary_edges={} chi={}",
            report.vertices,
            report.edges,
            report.faces,
            report.components,
            report.boundary_edges,
            report.euler_characteristic()
        );
    }
    if let Some(obj) = opts.get("obj") {
        result.mesh.write_obj(Path::new(obj)).map_err(err)?;
        println!(
            "exported {} triangles ({} welded vertices) -> {obj}",
            result.mesh.len(),
            result.mesh.num_vertices()
        );
    }
    Ok(())
}

/// `oociso render`: extract, rasterize per node, sort-last composite, save PPM.
pub fn render(opts: &Options) -> Result<(), String> {
    let db_dir = opts.require("db")?;
    let iso: f32 = opts.num("iso", f32::NAN)?;
    if iso.is_nan() {
        return Err("missing required option --iso".into());
    }
    let out = opts.require("out")?;
    let size: usize = opts.num("size", 1024)?;
    let (cols, rows) = opts.tiles("tiles", (2, 2))?;
    let db = ClusterDatabase::<u8>::open(Path::new(db_dir), true).map_err(err)?;
    let probe = db.extract(iso).map_err(err)?;
    if probe.mesh.is_empty() {
        return Err(format!("isovalue {iso} produces an empty surface"));
    }
    let camera = Camera::orbiting(&probe.mesh.bounds(), 0.9, 0.45, 2.0);
    let tiles = TileLayout::new(cols, rows, size, size);
    let (fb, e) = db
        .extract_and_render(iso, &camera, &tiles, [0.9, 0.78, 0.5])
        .map_err(err)?;
    fb.write_ppm(Path::new(out)).map_err(err)?;
    println!(
        "rendered {} triangles over {} node(s), composite moved {:.1} MB -> {out}",
        e.report.total_triangles(),
        db.nodes(),
        e.report.composite_wire_bytes as f64 / 1e6
    );
    Ok(())
}
