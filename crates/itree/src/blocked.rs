//! Blocked compact interval tree (§5's out-of-core index fallback).
//!
//! "In the unlikely case when the compact interval tree does not fit in main
//! memory, we … group each B nodes of the binary tree into one disk block
//! thereby reducing the height of the tree to O(log_B n)." This module
//! implements that grouping: the binary tree is cut into subtree "super
//! nodes" of up to `B` nodes (top-down, breadth-first within a group), each
//! assigned one block id. A root→leaf walk then touches `O(log_B n)` distinct
//! blocks instead of `O(log_2 n)` nodes.

use crate::compact::{CompactIntervalTree, CompactNode};
use std::collections::VecDeque;

/// Block assignment for the nodes of a compact interval tree.
pub struct BlockedCompactTree<'a> {
    tree: &'a CompactIntervalTree,
    /// Block id per node index.
    block_of: Vec<u32>,
    num_blocks: u32,
    nodes_per_block: usize,
}

impl<'a> BlockedCompactTree<'a> {
    /// Group the tree's nodes into blocks of up to `nodes_per_block` nodes.
    ///
    /// Grouping is top-down: starting from the root (then from each "exit"
    /// child of a full group) a breadth-first frontier of up to
    /// `nodes_per_block` nodes becomes one block — so the top `log2(B)`
    /// levels of every subtree share a block, giving the `O(log_B n)` path
    /// property.
    pub fn new(tree: &'a CompactIntervalTree, nodes_per_block: usize) -> Self {
        assert!(nodes_per_block >= 1);
        let nodes = tree.nodes();
        let mut block_of = vec![u32::MAX; nodes.len()];
        let mut num_blocks = 0u32;
        let mut roots: VecDeque<u32> = VecDeque::new();
        if let Some(r) = tree.root() {
            roots.push_back(r);
        }
        while let Some(group_root) = roots.pop_front() {
            if block_of[group_root as usize] != u32::MAX {
                continue;
            }
            let block = num_blocks;
            num_blocks += 1;
            // BFS within the group
            let mut frontier: VecDeque<u32> = VecDeque::new();
            frontier.push_back(group_root);
            let mut taken = 0usize;
            while let Some(i) = frontier.pop_front() {
                if taken < nodes_per_block {
                    block_of[i as usize] = block;
                    taken += 1;
                    let n: &CompactNode = &nodes[i as usize];
                    if let Some(l) = n.left {
                        frontier.push_back(l);
                    }
                    if let Some(r) = n.right {
                        frontier.push_back(r);
                    }
                } else {
                    // exits become roots of future groups
                    roots.push_back(i);
                }
            }
        }
        BlockedCompactTree {
            tree,
            block_of,
            num_blocks,
            nodes_per_block,
        }
    }

    /// Number of blocks in the layout.
    pub fn num_blocks(&self) -> u32 {
        self.num_blocks
    }

    /// Block id of a node.
    pub fn block_of(&self, node: u32) -> u32 {
        self.block_of[node as usize]
    }

    /// Distinct blocks touched by the root→leaf walk for `iso_key` (the I/O
    /// cost of planning a query with an external index).
    pub fn io_blocks_for(&self, iso_key: u32) -> u32 {
        let nodes = self.tree.nodes();
        let mut cursor = self.tree.root();
        let mut last_block = u32::MAX;
        let mut count = 0u32;
        while let Some(i) = cursor {
            let b = self.block_of[i as usize];
            if b != last_block {
                count += 1;
                last_block = b;
            }
            let n = &nodes[i as usize];
            cursor = if iso_key >= n.split_key {
                n.right
            } else {
                n.left
            };
        }
        count
    }

    /// Upper bound `ceil(height / floor(log2(B+1)))` on path blocks.
    pub fn path_block_bound(&self) -> u32 {
        let levels = (usize::BITS - (self.nodes_per_block + 1).leading_zeros() - 1).max(1);
        (self.tree.height() as u32).div_ceil(levels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oociso_exio::Span;
    use oociso_metacell::MetacellInterval;

    fn build_tree(n: u32) -> CompactIntervalTree {
        let intervals: Vec<_> = (0..n)
            .map(|i| MetacellInterval::new(i, i % 199, i % 199 + 1 + i % 31))
            .collect();
        let mut cursor = 0u64;
        CompactIntervalTree::build(&intervals, &mut |_| {
            let s = Span {
                offset: cursor,
                len: 8,
            };
            cursor += 8;
            Ok(s)
        })
        .unwrap()
    }

    #[test]
    fn every_node_assigned_exactly_once() {
        let tree = build_tree(2000);
        let blocked = BlockedCompactTree::new(&tree, 7);
        for i in 0..tree.num_nodes() {
            assert_ne!(blocked.block_of(i as u32), u32::MAX);
        }
    }

    #[test]
    fn path_blocks_shrink_with_block_size() {
        let tree = build_tree(4000);
        let b1 = BlockedCompactTree::new(&tree, 1);
        let b15 = BlockedCompactTree::new(&tree, 15);
        let mut total1 = 0;
        let mut total15 = 0;
        for q in (0..200).step_by(10) {
            total1 += b1.io_blocks_for(q);
            total15 += b15.io_blocks_for(q);
        }
        assert!(
            total15 * 2 < total1,
            "B=15 should cut path I/O at least 2x: {total15} vs {total1}"
        );
    }

    #[test]
    fn path_blocks_within_bound() {
        let tree = build_tree(3000);
        for b in [3usize, 7, 15, 63] {
            let blocked = BlockedCompactTree::new(&tree, b);
            let bound = blocked.path_block_bound();
            for q in 0..230 {
                assert!(
                    blocked.io_blocks_for(q) <= bound,
                    "B={b} q={q}: {} > bound {bound}",
                    blocked.io_blocks_for(q)
                );
            }
        }
    }

    #[test]
    fn single_node_blocks_equal_path_length() {
        let tree = build_tree(500);
        let blocked = BlockedCompactTree::new(&tree, 1);
        // with one node per block, blocks touched == nodes on the path
        let q = 42;
        let mut cursor = tree.root();
        let mut path = 0;
        while let Some(i) = cursor {
            path += 1;
            let n = &tree.nodes()[i as usize];
            cursor = if q >= n.split_key { n.right } else { n.left };
        }
        assert_eq!(blocked.io_blocks_for(q), path);
    }
}
