//! Indexing structures for out-of-core isosurface extraction.
//!
//! This crate implements the paper's primary contribution — the **compact
//! interval tree** (§4) — together with the baselines it is compared against:
//!
//! * [`compact::CompactIntervalTree`] — a binary tree over the `n` distinct
//!   interval endpoint values. Each node stores only one *brick index entry*
//!   per distinct `vmax` in its span-space square: `{vmax, smallest vmin,
//!   disk span}`. Total size `O(n log n)` index entries, independent of the
//!   number of metacells `N`.
//! * [`plan`] — I/O-optimal query planning and execution: Case 1 bulk
//!   sequential brick-range reads, Case 2 per-brick prefix scans with
//!   zero-I/O skipping of inactive bricks.
//! * [`standard::StandardIntervalTree`] — the classical interval tree with
//!   two sorted interval lists per node (`Ω(N)` size), used for the Table 1
//!   size comparison and as a correctness oracle.
//! * [`bbio::BbioTree`] — a simplified Binary-Blocked I/O interval tree in the
//!   style of Chiang–Silva–Schroeder, the prior-work external index ([10]),
//!   used in the index ablation.
//! * [`blocked::BlockedCompactTree`] — the §5 fallback for indexes larger
//!   than memory: `B` tree nodes per disk block, `O(log_B n)` I/Os per query.
//! * [`striped`] — the provably balanced `p`-way striping of bricks across
//!   per-node disks (§5.1).
//! * [`size`] / [`persist`] — size reports (Table 1) and on-disk index format.

pub mod bbio;
pub mod blocked;
pub mod brick;
pub mod compact;
pub mod persist;
pub mod plan;
pub mod size;
pub mod standard;
pub mod striped;

pub use brick::{BrickEntry, MetacellRecordFormat, RecordFormat};
pub use compact::CompactIntervalTree;
pub use plan::{execute_plan, plan_active_ids, QueryPlan, ReadAction};
pub use size::IndexSize;
pub use standard::StandardIntervalTree;
