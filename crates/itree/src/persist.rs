//! On-disk index format for the compact interval tree.
//!
//! The index is tiny (`O(n log n)` entries), so persistence is a simple flat
//! little-endian dump with a magic/version header. A preprocessed database
//! reopens by loading this file into memory — matching the paper's usage
//! where "each node of the visualization cluster holds an indexing structure
//! with pointers to the bricks stored on its local disk".

use crate::brick::BrickEntry;
use crate::compact::{CompactIntervalTree, CompactNode};
use oociso_exio::Span;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"OOCITRE1";
const NONE: u32 = u32::MAX;

fn w32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn w64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn r32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}
fn r64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Serialize a tree to `path`.
pub fn save(tree: &CompactIntervalTree, path: &Path) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w64(&mut w, tree.nodes().len() as u64)?;
    w32(&mut w, tree.root().unwrap_or(NONE))?;
    w64(&mut w, tree.num_intervals())?;
    w64(&mut w, tree.num_endpoints() as u64)?;
    for node in tree.nodes() {
        w32(&mut w, node.split_key)?;
        w32(&mut w, node.left.unwrap_or(NONE))?;
        w32(&mut w, node.right.unwrap_or(NONE))?;
        w32(&mut w, node.entries.len() as u32)?;
        for e in &node.entries {
            w32(&mut w, e.vmax_key)?;
            w32(&mut w, e.min_vmin_key)?;
            w64(&mut w, e.span.offset)?;
            w64(&mut w, e.span.len)?;
            w32(&mut w, e.count)?;
        }
    }
    w.flush()
}

/// Load a tree from `path`.
pub fn load(path: &Path) -> io::Result<CompactIntervalTree> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad index magic",
        ));
    }
    let num_nodes = r64(&mut r)? as usize;
    let root = match r32(&mut r)? {
        NONE => None,
        v => Some(v),
    };
    let num_intervals = r64(&mut r)?;
    let num_endpoints = r64(&mut r)? as usize;
    let mut nodes = Vec::with_capacity(num_nodes);
    for _ in 0..num_nodes {
        let split_key = r32(&mut r)?;
        let left = match r32(&mut r)? {
            NONE => None,
            v => Some(v),
        };
        let right = match r32(&mut r)? {
            NONE => None,
            v => Some(v),
        };
        let n_entries = r32(&mut r)? as usize;
        let mut entries = Vec::with_capacity(n_entries);
        for _ in 0..n_entries {
            let vmax_key = r32(&mut r)?;
            let min_vmin_key = r32(&mut r)?;
            let offset = r64(&mut r)?;
            let len = r64(&mut r)?;
            let count = r32(&mut r)?;
            entries.push(BrickEntry {
                vmax_key,
                min_vmin_key,
                span: Span { offset, len },
                count,
            });
        }
        nodes.push(CompactNode {
            split_key,
            entries,
            left,
            right,
        });
    }
    Ok(CompactIntervalTree::from_parts(
        nodes,
        root,
        num_intervals,
        num_endpoints,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use oociso_metacell::MetacellInterval;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("oociso_persist_{}_{}", std::process::id(), name));
        p
    }

    fn build(n: u32) -> CompactIntervalTree {
        let intervals: Vec<_> = (0..n)
            .map(|i| MetacellInterval::new(i, i % 23, i % 23 + 1 + i % 7))
            .collect();
        let mut cursor = 0u64;
        CompactIntervalTree::build(&intervals, &mut |_| {
            let s = Span {
                offset: cursor,
                len: 16,
            };
            cursor += 16;
            Ok(s)
        })
        .unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let tree = build(500);
        let p = tmp("rt.idx");
        save(&tree, &p).unwrap();
        let back = load(&p).unwrap();
        assert_eq!(tree, back);
        // query plans identical
        for q in 0..32 {
            assert_eq!(tree.plan(q), back.plan(q));
        }
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn empty_tree_roundtrip() {
        let tree = CompactIntervalTree::build(&[], &mut |_| unreachable!()).unwrap();
        let p = tmp("empty.idx");
        save(&tree, &p).unwrap();
        let back = load(&p).unwrap();
        assert_eq!(tree, back);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        let p = tmp("bad.idx");
        std::fs::write(&p, b"GARBAGE_GARBAGE_GARBAGE_").unwrap();
        assert!(load(&p).is_err());
        std::fs::remove_file(&p).ok();
    }
}
