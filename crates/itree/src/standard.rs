//! The classical (standard) interval tree — the paper's size baseline.
//!
//! Each node stores the splitting value and **two sorted secondary lists** of
//! every interval assigned to it: one ascending by `vmin`, one descending by
//! `vmax` (§4). Every interval therefore appears twice, making the structure
//! `Ω(N)` in the number of intervals — the quantity Table 1 compares against
//! the compact tree's `O(n log n)`. It also serves as an in-memory
//! correctness oracle for stabbing queries.

use oociso_metacell::MetacellInterval;

/// A stored interval reference: `(key, other_key, id)` — the secondary lists
/// hold these sorted by their first component.
type ListEntry = (u32, u32, u32);

/// One node of the standard interval tree.
#[derive(Clone, Debug)]
pub struct StandardNode {
    /// Splitting value (median of subtree endpoints).
    pub split_key: u32,
    /// Intervals stabbing `split_key`, ascending by `vmin`: `(vmin, vmax, id)`.
    pub by_min: Vec<ListEntry>,
    /// The same intervals, descending by `vmax`: `(vmax, vmin, id)`.
    pub by_max: Vec<ListEntry>,
    /// Left child (intervals entirely below the split).
    pub left: Option<u32>,
    /// Right child (intervals entirely above the split).
    pub right: Option<u32>,
}

/// The standard binary interval tree.
#[derive(Clone, Debug, Default)]
pub struct StandardIntervalTree {
    nodes: Vec<StandardNode>,
    root: Option<u32>,
    num_intervals: u64,
}

impl StandardIntervalTree {
    /// Build from a set of metacell intervals.
    pub fn build(intervals: &[MetacellInterval]) -> Self {
        let mut tree = StandardIntervalTree {
            nodes: Vec::new(),
            root: None,
            num_intervals: intervals.len() as u64,
        };
        let idxs: Vec<usize> = (0..intervals.len()).collect();
        tree.root = tree.build_rec(intervals, idxs);
        tree
    }

    fn build_rec(&mut self, intervals: &[MetacellInterval], idxs: Vec<usize>) -> Option<u32> {
        if idxs.is_empty() {
            return None;
        }
        let mut eps: Vec<u32> = Vec::with_capacity(idxs.len() * 2);
        for &i in &idxs {
            eps.push(intervals[i].min_key);
            eps.push(intervals[i].max_key);
        }
        eps.sort_unstable();
        eps.dedup();
        let split_key = eps[eps.len() / 2];

        let mut here = Vec::new();
        let mut left = Vec::new();
        let mut right = Vec::new();
        for i in idxs {
            let iv = &intervals[i];
            if iv.max_key < split_key {
                left.push(i);
            } else if iv.min_key > split_key {
                right.push(i);
            } else {
                here.push(i);
            }
        }
        let mut by_min: Vec<ListEntry> = here
            .iter()
            .map(|&i| (intervals[i].min_key, intervals[i].max_key, intervals[i].id))
            .collect();
        by_min.sort_unstable_by_key(|&(min, _, id)| (min, id));
        let mut by_max: Vec<ListEntry> = here
            .iter()
            .map(|&i| (intervals[i].max_key, intervals[i].min_key, intervals[i].id))
            .collect();
        by_max.sort_unstable_by_key(|&(max, _, id)| (u32::MAX - max, id));

        let me = self.nodes.len() as u32;
        self.nodes.push(StandardNode {
            split_key,
            by_min,
            by_max,
            left: None,
            right: None,
        });
        let l = self.build_rec(intervals, left);
        let r = self.build_rec(intervals, right);
        self.nodes[me as usize].left = l;
        self.nodes[me as usize].right = r;
        Some(me)
    }

    /// Stabbing query: IDs of all intervals containing `iso_key`, sorted.
    pub fn stab(&self, iso_key: u32) -> Vec<u32> {
        let mut out = Vec::new();
        let mut cursor = self.root;
        while let Some(i) = cursor {
            let node = &self.nodes[i as usize];
            if iso_key < node.split_key {
                for &(min, _max, id) in &node.by_min {
                    if min > iso_key {
                        break;
                    }
                    out.push(id);
                }
                cursor = node.left;
            } else if iso_key > node.split_key {
                for &(max, _min, id) in &node.by_max {
                    if max < iso_key {
                        break;
                    }
                    out.push(id);
                }
                cursor = node.right;
            } else {
                // exactly the split value: every interval here stabs; neither
                // subtree can contain a stabbing interval.
                out.extend(node.by_min.iter().map(|&(_, _, id)| id));
                break;
            }
        }
        out.sort_unstable();
        out
    }

    /// Number of tree nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Total secondary-list elements (2 per interval): the `Ω(N)` term.
    pub fn num_list_entries(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| n.by_min.len() + n.by_max.len())
            .sum()
    }

    /// Number of intervals indexed.
    pub fn num_intervals(&self) -> u64 {
        self.num_intervals
    }

    /// Tree height.
    pub fn height(&self) -> usize {
        fn h(nodes: &[StandardNode], at: Option<u32>) -> usize {
            match at {
                None => 0,
                Some(i) => {
                    1 + h(nodes, nodes[i as usize].left).max(h(nodes, nodes[i as usize].right))
                }
            }
        }
        h(&self.nodes, self.root)
    }

    /// Nodes (read-only, for size accounting and the BBIO layout).
    pub fn nodes(&self) -> &[StandardNode] {
        &self.nodes
    }

    /// Root index.
    pub fn root(&self) -> Option<u32> {
        self.root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oociso_metacell::interval::brute_force_active;

    fn mk(id: u32, lo: u32, hi: u32) -> MetacellInterval {
        MetacellInterval::new(id, lo, hi)
    }

    #[test]
    fn empty_tree() {
        let t = StandardIntervalTree::build(&[]);
        assert_eq!(t.stab(5), Vec::<u32>::new());
        assert_eq!(t.num_nodes(), 0);
    }

    #[test]
    fn stab_matches_brute_force() {
        let intervals: Vec<_> = (0..200)
            .map(|i| mk(i, (i * 13) % 50, (i * 13) % 50 + 1 + (i % 17)))
            .collect();
        let t = StandardIntervalTree::build(&intervals);
        for q in 0..70 {
            assert_eq!(t.stab(q), brute_force_active(&intervals, q), "q={q}");
        }
    }

    #[test]
    fn every_interval_listed_twice() {
        let intervals: Vec<_> = (0..50).map(|i| mk(i, i % 10, i % 10 + 2)).collect();
        let t = StandardIntervalTree::build(&intervals);
        assert_eq!(t.num_list_entries(), 2 * intervals.len());
    }

    #[test]
    fn height_logarithmic() {
        let intervals: Vec<_> = (0..1000).map(|i| mk(i, i % 128, i % 128 + 5)).collect();
        let t = StandardIntervalTree::build(&intervals);
        assert!(t.height() <= 10, "height {}", t.height());
    }

    #[test]
    fn exact_split_value_query() {
        let intervals = vec![mk(0, 5, 5), mk(1, 0, 10), mk(2, 5, 7)];
        let t = StandardIntervalTree::build(&intervals);
        assert_eq!(t.stab(5), brute_force_active(&intervals, 5));
    }
}
