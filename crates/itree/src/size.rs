//! Index size accounting (Table 1).
//!
//! The paper compares the *sizes* of the standard interval tree and the
//! compact interval tree. Sizes here are reported two ways:
//!
//! * **entries** — structure-level counts (brick index entries for the compact
//!   tree, secondary-list elements for the standard tree), the quantities the
//!   asymptotic analysis bounds (`O(n log n)` vs `Ω(N)`);
//! * **bytes** — a concrete encoding at paper-style field widths: endpoint
//!   values at the dataset's scalar width, disk pointers at 8 bytes.

use crate::compact::CompactIntervalTree;
use crate::standard::StandardIntervalTree;

/// Size report for one index structure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IndexSize {
    /// Tree nodes.
    pub nodes: usize,
    /// Index entries (compact: brick entries; standard: list elements).
    pub entries: usize,
    /// Bytes under the paper-style encoding.
    pub bytes: u64,
}

impl IndexSize {
    /// Human-readable kilobytes.
    pub fn kib(&self) -> f64 {
        self.bytes as f64 / 1024.0
    }
}

/// Per-node skeleton overhead: split value (scalar) + two child links (4 B
/// each) + an entry count (4 B).
fn node_overhead(scalar_bytes: usize) -> u64 {
    scalar_bytes as u64 + 4 + 4 + 4
}

/// Size of a compact interval tree: each entry holds the paper's three fields
/// — the brick `vmax` (scalar), the smallest `vmin` (scalar), and the disk
/// pointer (8 B).
pub fn compact_size(tree: &CompactIntervalTree, scalar_bytes: usize) -> IndexSize {
    let entry_bytes = (2 * scalar_bytes + 8) as u64;
    let nodes = tree.num_nodes();
    let entries = tree.num_entries();
    IndexSize {
        nodes,
        entries,
        bytes: entries as u64 * entry_bytes + nodes as u64 * node_overhead(scalar_bytes),
    }
}

/// Size of a standard interval tree: every interval appears in two secondary
/// lists; each list element holds an endpoint (scalar) plus a pointer to the
/// metacell (8 B).
pub fn standard_size(tree: &StandardIntervalTree, scalar_bytes: usize) -> IndexSize {
    let elem_bytes = (scalar_bytes + 8) as u64;
    let nodes = tree.num_nodes();
    let entries = tree.num_list_entries();
    IndexSize {
        nodes,
        entries,
        bytes: entries as u64 * elem_bytes + nodes as u64 * node_overhead(scalar_bytes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oociso_exio::Span;
    use oociso_metacell::MetacellInterval;

    fn mk(id: u32, lo: u32, hi: u32) -> MetacellInterval {
        MetacellInterval::new(id, lo, hi)
    }

    /// N intervals over few distinct endpoints: compact ≪ standard.
    #[test]
    fn compact_beats_standard_when_n_small() {
        // 10_000 intervals, endpoints drawn from just 16 distinct values
        let intervals: Vec<_> = (0..10_000)
            .map(|i| {
                let lo = (i * 7) % 8;
                mk(i, lo, lo + 1 + (i * 3) % 8)
            })
            .collect();
        let mut cursor = 0u64;
        let compact = CompactIntervalTree::build(&intervals, &mut |_| {
            let s = Span {
                offset: cursor,
                len: 10,
            };
            cursor += 10;
            Ok(s)
        })
        .unwrap();
        let standard = StandardIntervalTree::build(&intervals);
        let cs = compact_size(&compact, 1);
        let ss = standard_size(&standard, 1);
        assert!(
            cs.bytes * 10 < ss.bytes,
            "compact {} vs standard {}",
            cs.bytes,
            ss.bytes
        );
        assert!(cs.entries < ss.entries / 10);
    }

    /// Even with N ≈ n (all-distinct endpoints), standard ≥ 2× compact entries
    /// (the paper: "at least twice the size … usually much larger").
    #[test]
    fn compact_at_least_halves_standard_when_all_distinct() {
        let intervals: Vec<_> = (0..2_000)
            .map(|i| mk(i, 10_000 + 4 * i, 10_000 + 4 * i + 2))
            .collect();
        let mut cursor = 0u64;
        let compact = CompactIntervalTree::build(&intervals, &mut |_| {
            let s = Span {
                offset: cursor,
                len: 10,
            };
            cursor += 10;
            Ok(s)
        })
        .unwrap();
        let standard = StandardIntervalTree::build(&intervals);
        let cs = compact_size(&compact, 4);
        let ss = standard_size(&standard, 4);
        assert!(
            ss.entries >= 2 * cs.entries,
            "standard {} vs compact {}",
            ss.entries,
            cs.entries
        );
    }

    #[test]
    fn kib_conversion() {
        let s = IndexSize {
            nodes: 0,
            entries: 0,
            bytes: 2048,
        };
        assert_eq!(s.kib(), 2.0);
    }
}
