//! Brick index entries and the record format abstraction.

use oociso_exio::Span;
use oociso_metacell::MetacellLayout;
use oociso_volume::ScalarValue;

/// One index entry of a compact-interval-tree node: a *brick* of metacells
/// sharing the same `vmax`, stored contiguously on disk sorted by increasing
/// `vmin`.
///
/// The paper's entry has three fields — the brick's `vmax`, the smallest
/// `vmin` of its metacells, and the disk pointer. We additionally keep the
/// brick length (needed to address variable-length record runs without a
/// terminator) and the record count; the size report accounts entries at the
/// paper's 3-field rate and at our concrete rate separately.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BrickEntry {
    /// Common `vmax` key of every metacell in the brick.
    pub vmax_key: u32,
    /// Smallest `vmin` key in the brick (first record, ascending order).
    pub min_vmin_key: u32,
    /// Contiguous byte range of the brick in the record store.
    pub span: Span,
    /// Number of metacell records in the brick.
    pub count: u32,
}

/// Knows how to parse record headers and compute record lengths, so the plan
/// executor can walk a byte run of variable-length records and stop early
/// (Case 2) without decoding payloads.
pub trait RecordFormat: Send + Sync {
    /// Bytes needed to parse `(id, vmin)` from the start of a record.
    fn header_len(&self) -> usize;
    /// Parse `(id, vmin_key)` from a record's first `header_len()` bytes.
    fn parse_header(&self, bytes: &[u8]) -> (u32, u32);
    /// Total encoded length of the record with this `id`.
    fn record_len(&self, id: u32) -> usize;
}

/// [`RecordFormat`] for `oociso_metacell` records under a given layout.
#[derive(Clone, Copy, Debug)]
pub struct MetacellRecordFormat<S: ScalarValue> {
    layout: MetacellLayout,
    _marker: std::marker::PhantomData<S>,
}

impl<S: ScalarValue> MetacellRecordFormat<S> {
    /// Format for records cut with `layout`.
    pub fn new(layout: MetacellLayout) -> Self {
        MetacellRecordFormat {
            layout,
            _marker: std::marker::PhantomData,
        }
    }

    /// The layout this format derives record lengths from.
    pub fn layout(&self) -> &MetacellLayout {
        &self.layout
    }
}

impl<S: ScalarValue> RecordFormat for MetacellRecordFormat<S> {
    fn header_len(&self) -> usize {
        4 + S::BYTES
    }

    fn parse_header(&self, bytes: &[u8]) -> (u32, u32) {
        let id = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        let vmin = S::read_le(&bytes[4..]);
        (id, vmin.key())
    }

    fn record_len(&self, id: u32) -> usize {
        self.layout.record_len(id, S::BYTES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oociso_metacell::MetacellRecord;
    use oociso_volume::{Dims3, Volume};

    #[test]
    fn format_matches_real_records() {
        let dims = Dims3::new(17, 9, 9);
        let layout = MetacellLayout::new(dims, 9);
        let vol = Volume::<u8>::generate(dims, |x, y, z| (x + y + z) as u8);
        let fmt = MetacellRecordFormat::<u8>::new(layout);
        for id in layout.ids() {
            let rec = MetacellRecord::from_volume(&vol, &layout, id);
            let bytes = rec.encode();
            assert_eq!(fmt.record_len(id), bytes.len());
            let (pid, pmin) = fmt.parse_header(&bytes[..fmt.header_len()]);
            assert_eq!(pid, id);
            assert_eq!(pmin, rec.vmin.key());
        }
    }

    #[test]
    fn u16_header_len() {
        let layout = MetacellLayout::new(Dims3::cube(9), 9);
        let fmt = MetacellRecordFormat::<u16>::new(layout);
        assert_eq!(fmt.header_len(), 6);
        assert_eq!(fmt.record_len(0), 4 + 2 + 729 * 2);
    }
}
