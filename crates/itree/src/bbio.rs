//! A simplified Binary-Blocked I/O (BBIO) interval tree baseline.
//!
//! Prior work ([9, 10] in the paper: Chiang–Silva(–Schroeder)) keeps the
//! *entire* interval tree — including its per-node secondary interval lists —
//! in external memory, packing tree nodes and list segments into disk blocks.
//! Querying therefore pays block reads for the root→leaf traversal **and**
//! for scanning the secondary lists, with every interval stored twice.
//!
//! This module reproduces that I/O profile faithfully enough for the index
//! ablation: the standard interval tree is serialized into a block store
//! (node headers first, then each node's two lists); a stabbing query walks
//! the tree reading node headers and streaming list prefixes through an
//! accounted [`MemDevice`]. The contrast with the compact tree is exactly the
//! paper's pitch: the compact tree's index lives in memory and its disk reads
//! are all *output* (metacell records), while the BBIO tree also spends I/O
//! on the index itself.

use crate::standard::StandardIntervalTree;
use oociso_exio::{BlockDevice, IoSnapshot, MemDevice};

/// Byte width of one serialized list element: endpoint key (4) + partner
/// key (4) + interval id (4).
const ELEM_BYTES: u64 = 12;
/// Node header: split key (4) + child ids (2×4) + list length (4) + two list
/// offsets (2×8).
const HEADER_BYTES: u64 = 32;

/// The externalized interval tree.
pub struct BbioTree {
    device: MemDevice,
    /// (header_offset, by_min_offset, by_max_offset, list_len) per node.
    node_meta: Vec<(u64, u64, u64, u32)>,
    splits: Vec<u32>,
    children: Vec<(Option<u32>, Option<u32>)>,
    root: Option<u32>,
    total_bytes: u64,
}

impl BbioTree {
    /// Externalize a standard interval tree into a block store with the given
    /// block size.
    pub fn build(tree: &StandardIntervalTree, block_bytes: u64) -> Self {
        let mut bytes: Vec<u8> = Vec::new();
        let mut node_meta = Vec::with_capacity(tree.num_nodes());
        let mut splits = Vec::with_capacity(tree.num_nodes());
        let mut children = Vec::with_capacity(tree.num_nodes());

        // Lay out: all node headers first (so traversal reads cluster), then
        // the list payloads node by node.
        let headers_len = HEADER_BYTES * tree.num_nodes() as u64;
        let mut payload_cursor = headers_len;
        for node in tree.nodes() {
            let by_min_off = payload_cursor;
            payload_cursor += node.by_min.len() as u64 * ELEM_BYTES;
            let by_max_off = payload_cursor;
            payload_cursor += node.by_max.len() as u64 * ELEM_BYTES;
            node_meta.push((
                bytes.len() as u64, // patched below; headers are fixed-stride anyway
                by_min_off,
                by_max_off,
                node.by_min.len() as u32,
            ));
            splits.push(node.split_key);
            children.push((node.left, node.right));
        }
        // serialize headers
        for (i, node) in tree.nodes().iter().enumerate() {
            let (_, by_min_off, by_max_off, len) = node_meta[i];
            bytes.extend_from_slice(&node.split_key.to_le_bytes());
            bytes.extend_from_slice(&node.left.map_or(u32::MAX, |c| c).to_le_bytes());
            bytes.extend_from_slice(&node.right.map_or(u32::MAX, |c| c).to_le_bytes());
            bytes.extend_from_slice(&len.to_le_bytes());
            bytes.extend_from_slice(&by_min_off.to_le_bytes());
            bytes.extend_from_slice(&by_max_off.to_le_bytes());
        }
        debug_assert_eq!(bytes.len() as u64, headers_len);
        // fix header offsets
        for (i, meta) in node_meta.iter_mut().enumerate() {
            meta.0 = i as u64 * HEADER_BYTES;
        }
        // serialize payloads
        for node in tree.nodes() {
            for &(a, b, id) in &node.by_min {
                bytes.extend_from_slice(&a.to_le_bytes());
                bytes.extend_from_slice(&b.to_le_bytes());
                bytes.extend_from_slice(&id.to_le_bytes());
            }
            for &(a, b, id) in &node.by_max {
                bytes.extend_from_slice(&a.to_le_bytes());
                bytes.extend_from_slice(&b.to_le_bytes());
                bytes.extend_from_slice(&id.to_le_bytes());
            }
        }
        let total_bytes = bytes.len() as u64;
        BbioTree {
            device: MemDevice::new(bytes).with_block_bytes(block_bytes),
            node_meta,
            splits,
            children,
            root: tree.root(),
            total_bytes,
        }
    }

    /// Stabbing query via the external layout; every byte touched is read
    /// through the accounted device. Returns sorted interval IDs.
    pub fn stab(&self, iso_key: u32) -> Vec<u32> {
        let mut out = Vec::new();
        let mut cursor = self.root;
        while let Some(i) = cursor {
            let i = i as usize;
            // read the node header from "disk"
            let mut hdr = [0u8; HEADER_BYTES as usize];
            self.device
                .read_at(self.node_meta[i].0, &mut hdr)
                .expect("header read");
            let split = self.splits[i];
            let (_, by_min_off, by_max_off, len) = self.node_meta[i];
            if iso_key < split {
                self.scan_list(by_min_off, len, |min, _max, id| {
                    if min <= iso_key {
                        out.push(id);
                        true
                    } else {
                        false
                    }
                });
                cursor = self.children[i].0;
            } else if iso_key > split {
                self.scan_list(by_max_off, len, |max, _min, id| {
                    if max >= iso_key {
                        out.push(id);
                        true
                    } else {
                        false
                    }
                });
                cursor = self.children[i].1;
            } else {
                self.scan_list(by_min_off, len, |_a, _b, id| {
                    out.push(id);
                    true
                });
                break;
            }
        }
        out.sort_unstable();
        out
    }

    /// Stream a secondary list from the device in 4 KB chunks until the
    /// visitor returns `false` or the list ends.
    fn scan_list(&self, offset: u64, len: u32, mut visit: impl FnMut(u32, u32, u32) -> bool) {
        const CHUNK_ELEMS: u64 = 4096 / ELEM_BYTES;
        let mut read = 0u64;
        'outer: while read < len as u64 {
            let take = CHUNK_ELEMS.min(len as u64 - read);
            let mut buf = vec![0u8; (take * ELEM_BYTES) as usize];
            self.device
                .read_at(offset + read * ELEM_BYTES, &mut buf)
                .expect("list read");
            for e in 0..take as usize {
                let at = e * ELEM_BYTES as usize;
                let a = u32::from_le_bytes(buf[at..at + 4].try_into().unwrap());
                let b = u32::from_le_bytes(buf[at + 4..at + 8].try_into().unwrap());
                let id = u32::from_le_bytes(buf[at + 8..at + 12].try_into().unwrap());
                if !visit(a, b, id) {
                    break 'outer;
                }
            }
            read += take;
        }
    }

    /// Total serialized size (the structure is fully external).
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// I/O counters accumulated by queries so far.
    pub fn io_snapshot(&self) -> IoSnapshot {
        self.device.io_snapshot()
    }

    /// Reset the I/O counters (e.g. between measured queries).
    pub fn reset_io(&self) {
        self.device.stats().reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oociso_metacell::interval::brute_force_active;
    use oociso_metacell::MetacellInterval;

    fn mk(id: u32, lo: u32, hi: u32) -> MetacellInterval {
        MetacellInterval::new(id, lo, hi)
    }

    fn sample(n: u32) -> Vec<MetacellInterval> {
        (0..n)
            .map(|i| mk(i, (i * 11) % 40, (i * 11) % 40 + 1 + i % 13))
            .collect()
    }

    #[test]
    fn stab_matches_brute_force() {
        let intervals = sample(300);
        let tree = BbioTree::build(&StandardIntervalTree::build(&intervals), 8192);
        for q in 0..60 {
            assert_eq!(tree.stab(q), brute_force_active(&intervals, q), "q={q}");
        }
    }

    #[test]
    fn io_grows_with_output() {
        let intervals = sample(5000);
        let tree = BbioTree::build(&StandardIntervalTree::build(&intervals), 8192);
        tree.reset_io();
        let small = tree.stab(0);
        let io_small = tree.io_snapshot();
        tree.reset_io();
        let big = tree.stab(20);
        let io_big = tree.io_snapshot();
        assert!(big.len() > small.len());
        assert!(io_big.bytes_read > io_small.bytes_read);
    }

    #[test]
    fn stores_every_interval_twice() {
        let intervals = sample(100);
        let std_tree = StandardIntervalTree::build(&intervals);
        let tree = BbioTree::build(&std_tree, 8192);
        let expected =
            HEADER_BYTES * std_tree.num_nodes() as u64 + ELEM_BYTES * 2 * intervals.len() as u64;
        assert_eq!(tree.total_bytes(), expected);
    }

    #[test]
    fn traversal_costs_blocks_even_for_empty_output() {
        let intervals = sample(2000);
        let tree = BbioTree::build(&StandardIntervalTree::build(&intervals), 8192);
        tree.reset_io();
        let none = tree.stab(1_000_000); // beyond every interval
        assert!(none.is_empty());
        let io = tree.io_snapshot();
        // the BBIO tree still paid block reads for the traversal — the
        // overhead the compact tree avoids by keeping the index in memory
        assert!(io.blocks_read >= 1);
    }
}
