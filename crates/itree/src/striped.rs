//! Striping analysis and the range-partition baseline.
//!
//! §5.1's claim: dealing each brick's metacells round-robin across `p` disks
//! makes the per-processor active count balanced for *every* isovalue (per
//! brick, counts differ by ≤ 1). The paper contrasts this with prior
//! range-space partitioning (Zhang–Bajaj–Blanke [21]) where "the distribution
//! of active cells among the processors for a given isovalue could be
//! extremely unbalanced". This module provides:
//!
//! * [`BalanceReport`] — imbalance statistics over per-node counts (drives
//!   Tables 6/7);
//! * [`range_partition`] — the baseline data distribution: processors own
//!   contiguous value subranges;
//! * [`round_robin_partition`] — the paper's striping, as a standalone
//!   assignment function for head-to-head ablation.

use oociso_metacell::MetacellInterval;

/// Imbalance statistics over per-processor counts.
#[derive(Clone, Debug, PartialEq)]
pub struct BalanceReport {
    /// Count per processor.
    pub counts: Vec<u64>,
}

impl BalanceReport {
    /// Build from per-processor counts.
    pub fn new(counts: Vec<u64>) -> Self {
        assert!(!counts.is_empty());
        BalanceReport { counts }
    }

    /// Total work.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Largest per-processor count.
    pub fn max(&self) -> u64 {
        *self.counts.iter().max().unwrap()
    }

    /// Smallest per-processor count.
    pub fn min(&self) -> u64 {
        *self.counts.iter().min().unwrap()
    }

    /// `max / mean` — 1.0 is perfect balance; the parallel completion time is
    /// proportional to this factor.
    pub fn imbalance(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / self.counts.len() as f64;
        self.max() as f64 / mean
    }

    /// `(max - min)` spread.
    pub fn spread(&self) -> u64 {
        self.max() - self.min()
    }
}

/// The paper's striping as a pure assignment: processor of the `pos`-th
/// metacell (in ascending `vmin` order) of any brick is `pos % p`.
///
/// Returns `assignment[i] = processor of intervals[i]` computed brick-wise
/// (bricks keyed by `(max_key)` within the whole set here — adequate for
/// distribution ablations that do not need the tree; the real layout groups
/// per tree node first, which only refines balance further).
pub fn round_robin_partition(intervals: &[MetacellInterval], p: usize) -> Vec<usize> {
    assert!(p > 0);
    let mut order: Vec<usize> = (0..intervals.len()).collect();
    order.sort_unstable_by_key(|&i| (intervals[i].max_key, intervals[i].min_key, intervals[i].id));
    let mut assignment = vec![0usize; intervals.len()];
    let mut brick_pos = 0usize;
    let mut prev_max: Option<u32> = None;
    for &i in &order {
        if prev_max != Some(intervals[i].max_key) {
            brick_pos = 0;
            prev_max = Some(intervals[i].max_key);
        }
        assignment[i] = brick_pos % p;
        brick_pos += 1;
    }
    assignment
}

/// Staggered round-robin (an `oociso` extension beyond the paper): identical
/// to [`round_robin_partition`] except each brick's deal starts at
/// `brick_index % p` instead of always at processor 0.
///
/// The paper's scheme sends the *first* metacell of every brick to disk 0, so
/// for isovalues that activate short prefixes of many bricks, node 0
/// systematically collects the extras (aggregate spread up to the number of
/// active bricks). Staggering the start distributes those extras round-robin,
/// cutting the worst-case spread to roughly `#active bricks / p` while
/// keeping the per-brick ±1 guarantee.
pub fn staggered_round_robin_partition(intervals: &[MetacellInterval], p: usize) -> Vec<usize> {
    assert!(p > 0);
    let mut order: Vec<usize> = (0..intervals.len()).collect();
    order.sort_unstable_by_key(|&i| (intervals[i].max_key, intervals[i].min_key, intervals[i].id));
    let mut assignment = vec![0usize; intervals.len()];
    let mut brick_pos = 0usize;
    let mut brick_index = 0usize;
    let mut prev_max: Option<u32> = None;
    for &i in &order {
        if prev_max != Some(intervals[i].max_key) {
            if prev_max.is_some() {
                brick_index += 1;
            }
            brick_pos = 0;
            prev_max = Some(intervals[i].max_key);
        }
        assignment[i] = (brick_pos + brick_index) % p;
        brick_pos += 1;
    }
    assignment
}

/// Range-space partition baseline: the key range is cut into `p` equal
/// subranges; an interval belongs to the processor owning its `vmin`.
pub fn range_partition(intervals: &[MetacellInterval], p: usize) -> Vec<usize> {
    assert!(p > 0);
    if intervals.is_empty() {
        return Vec::new();
    }
    let lo = intervals.iter().map(|iv| iv.min_key).min().unwrap();
    let hi = intervals
        .iter()
        .map(|iv| iv.max_key)
        .max()
        .unwrap()
        .max(lo + 1);
    intervals
        .iter()
        .map(|iv| {
            let t = (iv.min_key - lo) as u64 * p as u64 / (hi - lo + 1) as u64;
            (t as usize).min(p - 1)
        })
        .collect()
}

/// Per-processor active counts for an isovalue under an assignment.
pub fn active_counts(
    intervals: &[MetacellInterval],
    assignment: &[usize],
    p: usize,
    iso_key: u32,
) -> BalanceReport {
    let mut counts = vec![0u64; p];
    for (iv, &proc_id) in intervals.iter().zip(assignment) {
        if iv.contains(iso_key) {
            counts[proc_id] += 1;
        }
    }
    BalanceReport::new(counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(id: u32, lo: u32, hi: u32) -> MetacellInterval {
        MetacellInterval::new(id, lo, hi)
    }

    #[test]
    fn balance_report_math() {
        let r = BalanceReport::new(vec![10, 12, 8, 10]);
        assert_eq!(r.total(), 40);
        assert_eq!(r.max(), 12);
        assert_eq!(r.min(), 8);
        assert!((r.imbalance() - 1.2).abs() < 1e-9);
        assert_eq!(r.spread(), 4);
    }

    #[test]
    fn round_robin_spread_bounded_by_active_bricks() {
        // skewed interval population: heavy clustering at low values.
        // The §5.1 guarantee is per brick (counts differ by ≤ 1), so the
        // aggregate spread is at most the number of active bricks.
        let intervals: Vec<_> = (0..2000)
            .map(|i| {
                let lo = (i * i) % 37;
                mk(i, lo, lo + 1 + (i % 11))
            })
            .collect();
        let p = 4;
        let assign = round_robin_partition(&intervals, p);
        for q in 0..50 {
            let r = active_counts(&intervals, &assign, p, q);
            let active_bricks = {
                let mut maxes: Vec<u32> = intervals
                    .iter()
                    .filter(|iv| iv.contains(q))
                    .map(|iv| iv.max_key)
                    .collect();
                maxes.sort_unstable();
                maxes.dedup();
                maxes.len() as u64
            };
            assert!(
                r.spread() <= active_bricks,
                "q={q}: counts {:?}, active bricks {active_bricks}",
                r.counts
            );
            // for volume-dominated isovalues the relative imbalance is tight
            if r.total() >= 64 * active_bricks {
                assert!(r.imbalance() < 1.1, "q={q}: counts {:?}", r.counts);
            }
        }
    }

    #[test]
    fn range_partition_can_be_extremely_unbalanced() {
        // all intervals near one value: whoever owns that subrange gets all
        let intervals: Vec<_> = (0..1000).map(|i| mk(i, 10, 12 + i % 3)).collect();
        let p = 4;
        let assign = range_partition(&intervals, p);
        let r = active_counts(&intervals, &assign, p, 11);
        assert!(
            r.imbalance() > 2.0,
            "range partition should be skewed: {:?}",
            r.counts
        );
        // while round-robin stays balanced on the same input
        let rr = active_counts(&intervals, &round_robin_partition(&intervals, p), p, 11);
        assert!(rr.imbalance() < 1.1, "{:?}", rr.counts);
    }

    #[test]
    fn assignments_cover_all_processors() {
        let intervals: Vec<_> = (0..100).map(|i| mk(i, i, i + 5)).collect();
        for p in [1, 2, 5, 8] {
            let a = round_robin_partition(&intervals, p);
            assert!(a.iter().all(|&x| x < p));
            let b = range_partition(&intervals, p);
            assert!(b.iter().all(|&x| x < p));
            let c = staggered_round_robin_partition(&intervals, p);
            assert!(c.iter().all(|&x| x < p));
        }
    }

    #[test]
    fn staggered_keeps_per_brick_balance() {
        let intervals: Vec<_> = (0..500)
            .map(|i| mk(i, (i * 3) % 29, (i * 3) % 29 + 1 + i % 5))
            .collect();
        let p = 4;
        let assign = staggered_round_robin_partition(&intervals, p);
        // per brick (same max_key), counts differ by ≤ 1
        use std::collections::HashMap;
        let mut per_brick: HashMap<u32, Vec<u64>> = HashMap::new();
        for (iv, &a) in intervals.iter().zip(&assign) {
            per_brick.entry(iv.max_key).or_insert_with(|| vec![0; p])[a] += 1;
        }
        for (vmax, counts) in per_brick {
            let hi = *counts.iter().max().unwrap();
            let lo = *counts.iter().min().unwrap();
            assert!(hi - lo <= 1, "brick {vmax}: {counts:?}");
        }
    }

    #[test]
    fn staggered_beats_plain_on_prefix_heavy_queries() {
        // many bricks, each with a short active prefix at q=0 — the worst
        // case for plain striping's node-0 bias
        let intervals: Vec<_> = (0..4000)
            .map(|i| {
                let brick = i % 40; // 40 distinct vmax values
                let lo = i / 40 % 17; // varying vmin
                mk(i, lo, 100 + brick)
            })
            .collect();
        let p = 4;
        let q = 0; // activates only vmin == 0 records: short prefixes
        let plain = active_counts(&intervals, &round_robin_partition(&intervals, p), p, q);
        let stag = active_counts(
            &intervals,
            &staggered_round_robin_partition(&intervals, p),
            p,
            q,
        );
        assert_eq!(plain.total(), stag.total());
        assert!(
            stag.spread() * 2 <= plain.spread().max(2),
            "staggered {:?} should beat plain {:?}",
            stag.counts,
            plain.counts
        );
    }

    #[test]
    fn empty_input() {
        assert!(range_partition(&[], 4).is_empty());
        assert!(round_robin_partition(&[], 4).is_empty());
    }
}
