//! Query plans and their I/O-optimal execution.
//!
//! [`CompactIntervalTree::plan`](crate::CompactIntervalTree::plan) compiles an
//! isovalue into a [`QueryPlan`]: a list of read actions along the root→leaf
//! path. Execution then touches the store:
//!
//! * [`ReadAction::Bulk`] (Case 1) — one contiguous range covering a prefix
//!   of a node's bricks; *every* record in the range is active ("more
//!   effective bulk data movement"). The range is read as one sequential run
//!   of chunk-sized transfers with records emitted per chunk, so a span
//!   covering a node's whole active set never stages in memory and consumers
//!   can pipeline against the remaining transfer.
//! * [`ReadAction::Prefix`] (Case 2) — stream a single brick from its start in
//!   block-sized chunks, emitting records while `vmin ≤ λ`, stopping at the
//!   first record with `vmin > λ`. Bricks whose smallest `vmin` exceeds `λ`
//!   were already dropped at planning time, costing zero I/O.

use crate::brick::{BrickEntry, RecordFormat};
use oociso_exio::{RecordStore, Span};
use std::io;

/// Chunk size for streamed span reads (both cases). Large enough to amortize
/// per-call overhead, small enough that records flow to the consumer while
/// the rest of the span is still on disk — a Case 1 span can cover a node's
/// whole active set, so records must be emitted per chunk, not per span, for
/// peak memory to stay O(chunk) and for the extraction pipeline to overlap
/// triangulation with the remaining transfer. Chunked reads are perfectly
/// sequential, so the I/O model still prices the span as one seek plus
/// full-bandwidth transfer.
const STREAM_CHUNK: u64 = 32 * 1024;

/// One I/O action of a query plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadAction {
    /// Case 1: a contiguous range of whole bricks; all `count` records active.
    Bulk { span: Span, count: u32 },
    /// Case 2: scan one brick from the front until `vmin > λ`.
    Prefix { entry: BrickEntry },
}

/// The compiled I/O plan for one isovalue query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryPlan {
    /// The isovalue in key space.
    pub iso_key: u32,
    /// Actions in root→leaf order.
    pub actions: Vec<ReadAction>,
}

impl QueryPlan {
    /// Records guaranteed active by Case 1 actions (Case 2 contributes an
    /// unknown prefix, so this is a lower bound on the active count).
    pub fn bulk_records(&self) -> u64 {
        self.actions
            .iter()
            .map(|a| match a {
                ReadAction::Bulk { count, .. } => *count as u64,
                ReadAction::Prefix { .. } => 0,
            })
            .sum()
    }

    /// Bytes guaranteed to be read by Case 1 actions.
    pub fn bulk_bytes(&self) -> u64 {
        self.actions
            .iter()
            .map(|a| match a {
                ReadAction::Bulk { span, .. } => span.len,
                ReadAction::Prefix { .. } => 0,
            })
            .sum()
    }

    /// Upper bound on bytes any execution may touch (full spans of both cases).
    pub fn max_bytes(&self) -> u64 {
        self.actions
            .iter()
            .map(|a| match a {
                ReadAction::Bulk { span, .. } => span.len,
                ReadAction::Prefix { entry } => entry.span.len,
            })
            .sum()
    }
}

/// Execution counters. Filled in while the plan streams, so a caller's
/// per-record callback can observe partial values mid-flight (the streaming
/// extraction pipeline reports them alongside its overlap metrics).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Active records delivered to the callback.
    pub records_emitted: u64,
    /// Bytes actually read from the store.
    pub bytes_read: u64,
    /// Records inspected but rejected (Case 2 stop records).
    pub records_rejected: u64,
    /// Case 1 bulk transfers executed.
    pub bulk_actions: u64,
    /// Case 2 prefix scans executed.
    pub prefix_actions: u64,
}

impl ExecStats {
    /// Counter-wise sum (aggregating across plans or nodes).
    pub fn merged(&self, other: &ExecStats) -> ExecStats {
        ExecStats {
            records_emitted: self.records_emitted + other.records_emitted,
            bytes_read: self.bytes_read + other.bytes_read,
            records_rejected: self.records_rejected + other.records_rejected,
            bulk_actions: self.bulk_actions + other.bulk_actions,
            prefix_actions: self.prefix_actions + other.prefix_actions,
        }
    }
}

/// Execute a plan against a record store, invoking `on_record(id, bytes)` for
/// every active record (header included) *as its chunk arrives* — callers can
/// pipeline triangulation against the remaining I/O. Returns execution
/// counters.
pub fn execute_plan(
    plan: &QueryPlan,
    store: &RecordStore,
    format: &dyn RecordFormat,
    mut on_record: impl FnMut(u32, &[u8]),
) -> io::Result<ExecStats> {
    let mut stats = ExecStats::default();
    for action in &plan.actions {
        match action {
            ReadAction::Bulk { span, count } => {
                stats.bulk_actions += 1;
                let emitted =
                    stream_span_records(*span, None, store, format, &mut on_record, &mut stats)?;
                debug_assert_eq!(emitted, *count, "bulk count mismatch");
            }
            ReadAction::Prefix { entry } => {
                stats.prefix_actions += 1;
                stream_span_records(
                    entry.span,
                    Some(plan.iso_key),
                    store,
                    format,
                    &mut on_record,
                    &mut stats,
                )?;
            }
        }
    }
    Ok(stats)
}

/// Stream one span front-to-back in [`STREAM_CHUNK`]-sized reads, emitting
/// each complete record. With `stop_above = Some(iso_key)` this is Case 2's
/// prefix scan: stop at the first record with `vmin > iso_key` (ascending
/// vmin means nothing further can be active); with `None` it is Case 1's bulk
/// transfer, where every record in the span is known active. Returns the
/// emitted-record count.
fn stream_span_records(
    span: Span,
    stop_above: Option<u32>,
    store: &RecordStore,
    format: &dyn RecordFormat,
    on_record: &mut impl FnMut(u32, &[u8]),
    stats: &mut ExecStats,
) -> io::Result<u32> {
    let header = format.header_len();
    let mut buf: Vec<u8> = Vec::with_capacity(STREAM_CHUNK as usize);
    let mut fetched_end = span.offset; // store offset just past the buffered data
    let mut at = 0usize; // cursor within buf
    let mut emitted = 0u32;

    // Refill so that at least `need` bytes are available at `at`, bounded by
    // the span end. Returns available byte count at `at`.
    let ensure = |buf: &mut Vec<u8>,
                  fetched_end: &mut u64,
                  at: &mut usize,
                  need: usize,
                  stats: &mut ExecStats|
     -> io::Result<usize> {
        let have = buf.len() - *at;
        if have >= need || *fetched_end >= span.end() {
            return Ok(have);
        }
        // compact consumed prefix
        if *at > 0 {
            buf.drain(..*at);
            *at = 0;
        }
        while buf.len() < need && *fetched_end < span.end() {
            let take = STREAM_CHUNK.min(span.end() - *fetched_end);
            // read straight into the buffer's tail: no per-chunk allocation
            // or second copy on the retrieval hot path
            let old_len = buf.len();
            buf.resize(old_len + take as usize, 0);
            store.read_span_into(
                Span {
                    offset: *fetched_end,
                    len: take,
                },
                &mut buf[old_len..],
            )?;
            stats.bytes_read += take;
            *fetched_end += take;
        }
        Ok(buf.len() - *at)
    };

    loop {
        let have = ensure(&mut buf, &mut fetched_end, &mut at, header, stats)?;
        if have == 0 {
            break; // span exhausted
        }
        debug_assert!(have >= header, "truncated record header");
        let (id, vmin) = format.parse_header(&buf[at..]);
        if let Some(iso_key) = stop_above {
            if vmin > iso_key {
                stats.records_rejected += 1;
                break;
            }
        }
        let len = format.record_len(id);
        let have = ensure(&mut buf, &mut fetched_end, &mut at, len, stats)?;
        debug_assert!(have >= len, "truncated record payload");
        on_record(id, &buf[at..at + len]);
        stats.records_emitted += 1;
        emitted += 1;
        at += len;
    }
    Ok(emitted)
}

/// Convenience: execute a plan and return the sorted active metacell IDs.
pub fn plan_active_ids(
    plan: &QueryPlan,
    store: &RecordStore,
    format: &dyn RecordFormat,
) -> io::Result<Vec<u32>> {
    let mut ids = Vec::new();
    execute_plan(plan, store, format, |id, _| ids.push(id))?;
    ids.sort_unstable();
    Ok(ids)
}

/// Test-support record format: `id(4) | vmin(4 LE key) | payload(id % 5 bytes)`.
/// Variable-length records exercise the chunked prefix reader.
#[doc(hidden)]
pub mod testutil {
    use super::*;
    use oociso_metacell::MetacellInterval;

    /// Fixed-header, variable-payload test format.
    #[derive(Clone, Copy, Debug)]
    pub struct TestFormat;

    impl TestFormat {
        /// Record length for an id.
        pub fn len_for(id: u32) -> usize {
            8 + (id as usize % 5)
        }

        /// Encode an interval into a test record.
        pub fn encode(iv: &MetacellInterval) -> Vec<u8> {
            let mut v = Vec::with_capacity(Self::len_for(iv.id));
            v.extend_from_slice(&iv.id.to_le_bytes());
            v.extend_from_slice(&iv.min_key.to_le_bytes());
            v.resize(Self::len_for(iv.id), 0xEE);
            v
        }
    }

    impl RecordFormat for TestFormat {
        fn header_len(&self) -> usize {
            8
        }
        fn parse_header(&self, bytes: &[u8]) -> (u32, u32) {
            let id = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
            let vmin = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
            (id, vmin)
        }
        fn record_len(&self, id: u32) -> usize {
            Self::len_for(id)
        }
    }

    /// Serialize records for `intervals` in the order the compact-tree builder
    /// will request them. Returns the flat store bytes and per-interval spans
    /// (indexed by build order = the builder's sink call order).
    ///
    /// Works because the builder calls the sink exactly once per interval; we
    /// simulate an append-only store by replaying the same deterministic
    /// build. Callers should feed spans back via an iterator.
    pub fn write_records(intervals: &[MetacellInterval]) -> (Vec<u8>, Vec<Span>) {
        // Dry-run the builder to learn the sink order, then lay out spans.
        let mut order: Vec<u32> = Vec::with_capacity(intervals.len());
        let mut cursor = 0u64;
        let mut spans_by_call: Vec<Span> = Vec::with_capacity(intervals.len());
        let mut bytes: Vec<u8> = Vec::new();
        crate::compact::CompactIntervalTree::build(intervals, &mut |iv| {
            order.push(iv.id);
            let rec = TestFormat::encode(iv);
            let span = Span {
                offset: cursor,
                len: rec.len() as u64,
            };
            cursor += rec.len() as u64;
            bytes.extend_from_slice(&rec);
            spans_by_call.push(span);
            Ok(span)
        })
        .expect("in-memory build cannot fail");
        (bytes, spans_by_call)
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::{write_records, TestFormat};
    use super::*;
    use oociso_metacell::interval::brute_force_active;
    use oociso_metacell::MetacellInterval;

    fn mk(id: u32, lo: u32, hi: u32) -> MetacellInterval {
        MetacellInterval::new(id, lo, hi)
    }

    #[test]
    fn plan_byte_accounting() {
        let plan = QueryPlan {
            iso_key: 5,
            actions: vec![
                ReadAction::Bulk {
                    span: Span {
                        offset: 0,
                        len: 100,
                    },
                    count: 10,
                },
                ReadAction::Prefix {
                    entry: BrickEntry {
                        vmax_key: 9,
                        min_vmin_key: 1,
                        span: Span {
                            offset: 100,
                            len: 50,
                        },
                        count: 5,
                    },
                },
            ],
        };
        assert_eq!(plan.bulk_records(), 10);
        assert_eq!(plan.bulk_bytes(), 100);
        assert_eq!(plan.max_bytes(), 150);
    }

    #[test]
    fn prefix_streaming_stops_early() {
        // One brick: vmax = 100 for all, ascending vmins 0..50. Query at 20
        // must emit 21 records and reject exactly one.
        let intervals: Vec<_> = (0..50).map(|i| mk(i, i, 100)).collect();
        let (bytes, _) = write_records(&intervals);
        let store = oociso_exio::RecordStore::in_memory(bytes);
        let mut it = 0;
        // rebuild tree deterministically to get the same layout
        let (bytes2, spans) = write_records(&intervals);
        assert_eq!(store.len() as usize, bytes2.len());
        let tree = crate::compact::CompactIntervalTree::build(&intervals, &mut |_| {
            let s = spans[it];
            it += 1;
            Ok(s)
        })
        .unwrap();
        let plan = tree.plan(20);
        let mut got = Vec::new();
        let stats = execute_plan(&plan, &store, &TestFormat, |id, _| got.push(id)).unwrap();
        got.sort_unstable();
        assert_eq!(got, brute_force_active(&intervals, 20));
        assert_eq!(stats.records_emitted, 21);
        assert!(stats.records_rejected <= plan.actions.len() as u64);
        // early exit: we must NOT have read the whole brick
        assert!(
            stats.bytes_read < store.len(),
            "read {} of {}",
            stats.bytes_read,
            store.len()
        );
    }

    #[test]
    fn records_straddling_chunks_decode_correctly() {
        // big ids → payload sizes vary 0..4; thousands of records to cross
        // many 32 KB chunk boundaries
        let intervals: Vec<_> = (0..20_000).map(|i| mk(i, i % 3, 1_000_000)).collect();
        let (bytes, spans) = write_records(&intervals);
        let mut it = 0;
        let tree = crate::compact::CompactIntervalTree::build(&intervals, &mut |_| {
            let s = spans[it];
            it += 1;
            Ok(s)
        })
        .unwrap();
        let store = oociso_exio::RecordStore::in_memory(bytes);
        let got = plan_active_ids(&tree.plan(2), &store, &TestFormat).unwrap();
        assert_eq!(got, brute_force_active(&intervals, 2));
    }

    #[test]
    fn emitted_record_bytes_are_complete() {
        let intervals: Vec<_> = (0..30).map(|i| mk(i, 0, 10)).collect();
        let (bytes, spans) = write_records(&intervals);
        let mut it = 0;
        let tree = crate::compact::CompactIntervalTree::build(&intervals, &mut |_| {
            let s = spans[it];
            it += 1;
            Ok(s)
        })
        .unwrap();
        let store = oociso_exio::RecordStore::in_memory(bytes);
        execute_plan(&tree.plan(5), &store, &TestFormat, |id, rec| {
            assert_eq!(rec.len(), TestFormat::len_for(id));
            let (pid, _) = TestFormat.parse_header(rec);
            assert_eq!(pid, id);
            // payload filler intact
            assert!(rec[8..].iter().all(|&b| b == 0xEE));
        })
        .unwrap();
    }
}
