//! Query plans and their I/O-optimal execution.
//!
//! [`CompactIntervalTree::plan`](crate::CompactIntervalTree::plan) compiles an
//! isovalue into a [`QueryPlan`]: a list of read actions along the root→leaf
//! path. Execution then touches the store:
//!
//! * [`ReadAction::Bulk`] (Case 1) — one contiguous transfer covering a prefix
//!   of a node's bricks; *every* record in the range is active, so the bytes
//!   are consumed wholesale ("more effective bulk data movement").
//! * [`ReadAction::Prefix`] (Case 2) — stream a single brick from its start in
//!   block-sized chunks, emitting records while `vmin ≤ λ`, stopping at the
//!   first record with `vmin > λ`. Bricks whose smallest `vmin` exceeds `λ`
//!   were already dropped at planning time, costing zero I/O.

use crate::brick::{BrickEntry, RecordFormat};
use oociso_exio::{RecordStore, Span};
use std::io;

/// Chunk size for Case 2 prefix streaming. Large enough to amortize per-call
/// overhead, small enough that an early stop wastes little work.
const PREFIX_CHUNK: u64 = 32 * 1024;

/// One I/O action of a query plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadAction {
    /// Case 1: a contiguous range of whole bricks; all `count` records active.
    Bulk { span: Span, count: u32 },
    /// Case 2: scan one brick from the front until `vmin > λ`.
    Prefix { entry: BrickEntry },
}

/// The compiled I/O plan for one isovalue query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryPlan {
    /// The isovalue in key space.
    pub iso_key: u32,
    /// Actions in root→leaf order.
    pub actions: Vec<ReadAction>,
}

impl QueryPlan {
    /// Records guaranteed active by Case 1 actions (Case 2 contributes an
    /// unknown prefix, so this is a lower bound on the active count).
    pub fn bulk_records(&self) -> u64 {
        self.actions
            .iter()
            .map(|a| match a {
                ReadAction::Bulk { count, .. } => *count as u64,
                ReadAction::Prefix { .. } => 0,
            })
            .sum()
    }

    /// Bytes guaranteed to be read by Case 1 actions.
    pub fn bulk_bytes(&self) -> u64 {
        self.actions
            .iter()
            .map(|a| match a {
                ReadAction::Bulk { span, .. } => span.len,
                ReadAction::Prefix { .. } => 0,
            })
            .sum()
    }

    /// Upper bound on bytes any execution may touch (full spans of both cases).
    pub fn max_bytes(&self) -> u64 {
        self.actions
            .iter()
            .map(|a| match a {
                ReadAction::Bulk { span, .. } => span.len,
                ReadAction::Prefix { entry } => entry.span.len,
            })
            .sum()
    }
}

/// Execution counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Active records delivered to the callback.
    pub records_emitted: u64,
    /// Bytes actually read from the store.
    pub bytes_read: u64,
    /// Records inspected but rejected (Case 2 stop records).
    pub records_rejected: u64,
}

/// Execute a plan against a record store, invoking `on_record(id, bytes)` for
/// every active record (header included). Returns execution counters.
pub fn execute_plan(
    plan: &QueryPlan,
    store: &RecordStore,
    format: &dyn RecordFormat,
    mut on_record: impl FnMut(u32, &[u8]),
) -> io::Result<ExecStats> {
    let mut stats = ExecStats::default();
    for action in &plan.actions {
        match action {
            ReadAction::Bulk { span, count } => {
                let bytes = store.read_span(*span)?;
                stats.bytes_read += span.len;
                let mut at = 0usize;
                let mut emitted = 0u32;
                while at < bytes.len() {
                    let (id, _vmin) = format.parse_header(&bytes[at..]);
                    let len = format.record_len(id);
                    on_record(id, &bytes[at..at + len]);
                    emitted += 1;
                    at += len;
                }
                debug_assert_eq!(at, bytes.len(), "bulk span must align to records");
                debug_assert_eq!(emitted, *count, "bulk count mismatch");
                stats.records_emitted += emitted as u64;
            }
            ReadAction::Prefix { entry } => {
                execute_prefix(
                    entry,
                    plan.iso_key,
                    store,
                    format,
                    &mut on_record,
                    &mut stats,
                )?;
            }
        }
    }
    Ok(stats)
}

/// Stream one brick front-to-back in chunks, stopping at `vmin > iso_key`.
fn execute_prefix(
    entry: &BrickEntry,
    iso_key: u32,
    store: &RecordStore,
    format: &dyn RecordFormat,
    on_record: &mut impl FnMut(u32, &[u8]),
    stats: &mut ExecStats,
) -> io::Result<()> {
    let span = entry.span;
    let header = format.header_len();
    let mut buf: Vec<u8> = Vec::with_capacity(PREFIX_CHUNK as usize);
    let mut buf_start = span.offset; // store offset of buf[0]
    let mut fetched_end = span.offset; // store offset just past the buffered data
    let mut at = 0usize; // cursor within buf

    // Refill so that at least `need` bytes are available at `at`, bounded by
    // the span end. Returns available byte count at `at`.
    let ensure = |buf: &mut Vec<u8>,
                  buf_start: &mut u64,
                  fetched_end: &mut u64,
                  at: &mut usize,
                  need: usize,
                  stats: &mut ExecStats|
     -> io::Result<usize> {
        let have = buf.len() - *at;
        if have >= need || *fetched_end >= span.end() {
            return Ok(have);
        }
        // compact consumed prefix
        if *at > 0 {
            buf.drain(..*at);
            *buf_start += *at as u64;
            *at = 0;
        }
        while buf.len() < need && *fetched_end < span.end() {
            let take = PREFIX_CHUNK.min(span.end() - *fetched_end);
            let chunk = store.read_span(Span {
                offset: *fetched_end,
                len: take,
            })?;
            stats.bytes_read += take;
            *fetched_end += take;
            buf.extend_from_slice(&chunk);
        }
        Ok(buf.len() - *at)
    };

    loop {
        let have = ensure(
            &mut buf,
            &mut buf_start,
            &mut fetched_end,
            &mut at,
            header,
            stats,
        )?;
        if have == 0 {
            break; // brick exhausted
        }
        debug_assert!(have >= header, "truncated record header");
        let (id, vmin) = format.parse_header(&buf[at..]);
        if vmin > iso_key {
            stats.records_rejected += 1;
            break; // ascending vmin: nothing further can be active
        }
        let len = format.record_len(id);
        let have = ensure(
            &mut buf,
            &mut buf_start,
            &mut fetched_end,
            &mut at,
            len,
            stats,
        )?;
        debug_assert!(have >= len, "truncated record payload");
        on_record(id, &buf[at..at + len]);
        stats.records_emitted += 1;
        at += len;
    }
    Ok(())
}

/// Convenience: execute a plan and return the sorted active metacell IDs.
pub fn plan_active_ids(
    plan: &QueryPlan,
    store: &RecordStore,
    format: &dyn RecordFormat,
) -> io::Result<Vec<u32>> {
    let mut ids = Vec::new();
    execute_plan(plan, store, format, |id, _| ids.push(id))?;
    ids.sort_unstable();
    Ok(ids)
}

/// Test-support record format: `id(4) | vmin(4 LE key) | payload(id % 5 bytes)`.
/// Variable-length records exercise the chunked prefix reader.
#[doc(hidden)]
pub mod testutil {
    use super::*;
    use oociso_metacell::MetacellInterval;

    /// Fixed-header, variable-payload test format.
    #[derive(Clone, Copy, Debug)]
    pub struct TestFormat;

    impl TestFormat {
        /// Record length for an id.
        pub fn len_for(id: u32) -> usize {
            8 + (id as usize % 5)
        }

        /// Encode an interval into a test record.
        pub fn encode(iv: &MetacellInterval) -> Vec<u8> {
            let mut v = Vec::with_capacity(Self::len_for(iv.id));
            v.extend_from_slice(&iv.id.to_le_bytes());
            v.extend_from_slice(&iv.min_key.to_le_bytes());
            v.resize(Self::len_for(iv.id), 0xEE);
            v
        }
    }

    impl RecordFormat for TestFormat {
        fn header_len(&self) -> usize {
            8
        }
        fn parse_header(&self, bytes: &[u8]) -> (u32, u32) {
            let id = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
            let vmin = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
            (id, vmin)
        }
        fn record_len(&self, id: u32) -> usize {
            Self::len_for(id)
        }
    }

    /// Serialize records for `intervals` in the order the compact-tree builder
    /// will request them. Returns the flat store bytes and per-interval spans
    /// (indexed by build order = the builder's sink call order).
    ///
    /// Works because the builder calls the sink exactly once per interval; we
    /// simulate an append-only store by replaying the same deterministic
    /// build. Callers should feed spans back via an iterator.
    pub fn write_records(intervals: &[MetacellInterval]) -> (Vec<u8>, Vec<Span>) {
        // Dry-run the builder to learn the sink order, then lay out spans.
        let mut order: Vec<u32> = Vec::with_capacity(intervals.len());
        let mut cursor = 0u64;
        let mut spans_by_call: Vec<Span> = Vec::with_capacity(intervals.len());
        let mut bytes: Vec<u8> = Vec::new();
        crate::compact::CompactIntervalTree::build(intervals, &mut |iv| {
            order.push(iv.id);
            let rec = TestFormat::encode(iv);
            let span = Span {
                offset: cursor,
                len: rec.len() as u64,
            };
            cursor += rec.len() as u64;
            bytes.extend_from_slice(&rec);
            spans_by_call.push(span);
            Ok(span)
        })
        .expect("in-memory build cannot fail");
        (bytes, spans_by_call)
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::{write_records, TestFormat};
    use super::*;
    use oociso_metacell::interval::brute_force_active;
    use oociso_metacell::MetacellInterval;

    fn mk(id: u32, lo: u32, hi: u32) -> MetacellInterval {
        MetacellInterval::new(id, lo, hi)
    }

    #[test]
    fn plan_byte_accounting() {
        let plan = QueryPlan {
            iso_key: 5,
            actions: vec![
                ReadAction::Bulk {
                    span: Span {
                        offset: 0,
                        len: 100,
                    },
                    count: 10,
                },
                ReadAction::Prefix {
                    entry: BrickEntry {
                        vmax_key: 9,
                        min_vmin_key: 1,
                        span: Span {
                            offset: 100,
                            len: 50,
                        },
                        count: 5,
                    },
                },
            ],
        };
        assert_eq!(plan.bulk_records(), 10);
        assert_eq!(plan.bulk_bytes(), 100);
        assert_eq!(plan.max_bytes(), 150);
    }

    #[test]
    fn prefix_streaming_stops_early() {
        // One brick: vmax = 100 for all, ascending vmins 0..50. Query at 20
        // must emit 21 records and reject exactly one.
        let intervals: Vec<_> = (0..50).map(|i| mk(i, i, 100)).collect();
        let (bytes, _) = write_records(&intervals);
        let store = oociso_exio::RecordStore::in_memory(bytes);
        let mut it = 0;
        // rebuild tree deterministically to get the same layout
        let (bytes2, spans) = write_records(&intervals);
        assert_eq!(store.len() as usize, bytes2.len());
        let tree = crate::compact::CompactIntervalTree::build(&intervals, &mut |_| {
            let s = spans[it];
            it += 1;
            Ok(s)
        })
        .unwrap();
        let plan = tree.plan(20);
        let mut got = Vec::new();
        let stats = execute_plan(&plan, &store, &TestFormat, |id, _| got.push(id)).unwrap();
        got.sort_unstable();
        assert_eq!(got, brute_force_active(&intervals, 20));
        assert_eq!(stats.records_emitted, 21);
        assert!(stats.records_rejected <= plan.actions.len() as u64);
        // early exit: we must NOT have read the whole brick
        assert!(
            stats.bytes_read < store.len(),
            "read {} of {}",
            stats.bytes_read,
            store.len()
        );
    }

    #[test]
    fn records_straddling_chunks_decode_correctly() {
        // big ids → payload sizes vary 0..4; thousands of records to cross
        // many 32 KB chunk boundaries
        let intervals: Vec<_> = (0..20_000).map(|i| mk(i, i % 3, 1_000_000)).collect();
        let (bytes, spans) = write_records(&intervals);
        let mut it = 0;
        let tree = crate::compact::CompactIntervalTree::build(&intervals, &mut |_| {
            let s = spans[it];
            it += 1;
            Ok(s)
        })
        .unwrap();
        let store = oociso_exio::RecordStore::in_memory(bytes);
        let got = plan_active_ids(&tree.plan(2), &store, &TestFormat).unwrap();
        assert_eq!(got, brute_force_active(&intervals, 2));
    }

    #[test]
    fn emitted_record_bytes_are_complete() {
        let intervals: Vec<_> = (0..30).map(|i| mk(i, 0, 10)).collect();
        let (bytes, spans) = write_records(&intervals);
        let mut it = 0;
        let tree = crate::compact::CompactIntervalTree::build(&intervals, &mut |_| {
            let s = spans[it];
            it += 1;
            Ok(s)
        })
        .unwrap();
        let store = oociso_exio::RecordStore::in_memory(bytes);
        execute_plan(&tree.plan(5), &store, &TestFormat, |id, rec| {
            assert_eq!(rec.len(), TestFormat::len_for(id));
            let (pid, _) = TestFormat.parse_header(rec);
            assert_eq!(pid, id);
            // payload filler intact
            assert!(rec[8..].iter().all(|&b| b == 0xEE));
        })
        .unwrap();
    }
}
