//! The compact interval tree (§4 of the paper).
//!
//! A binary tree over the distinct endpoint values of the metacell intervals.
//! The root splits at the median endpoint `vm`; intervals stabbing `vm` are
//! assigned to the root and materialized as *bricks* in span space: one brick
//! per distinct `vmax`, holding that brick's metacells contiguously on disk in
//! increasing `vmin` order; a node's bricks are laid out consecutively in
//! decreasing `vmax` order. Each node keeps only one small index entry per
//! non-empty brick. Intervals entirely below `vm` recurse left, entirely
//! above recurse right.
//!
//! The same builder produces the `p`-way striped variant of §5.1: each brick's
//! metacells are dealt round-robin across `p` stores, and each stripe gets its
//! own tree whose entries point at its local brick segments. Per brick, the
//! per-stripe record counts differ by at most one — the paper's load-balance
//! guarantee, which the property tests assert.

use crate::brick::BrickEntry;
use crate::plan::{QueryPlan, ReadAction};
use oociso_exio::Span;
use oociso_metacell::MetacellInterval;
use std::io;

/// One node of the compact interval tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompactNode {
    /// Splitting value (median of the subtree's distinct endpoints).
    pub split_key: u32,
    /// Brick index entries, in decreasing `vmax_key` order.
    pub entries: Vec<BrickEntry>,
    /// Left child (intervals entirely below `split_key`).
    pub left: Option<u32>,
    /// Right child (intervals entirely above `split_key`).
    pub right: Option<u32>,
}

/// The compact interval tree: index structure + query planner.
///
/// The tree holds *no* interval lists — only `O(n log n)` brick entries — and
/// is therefore small enough to pin in memory for any realistic scalar width
/// (6 KB for the paper's one-byte RM time step).
#[derive(Clone, Debug, PartialEq)]
pub struct CompactIntervalTree {
    nodes: Vec<CompactNode>,
    root: Option<u32>,
    num_intervals: u64,
    num_endpoints: usize,
}

/// Internal: bricks of one skeleton node, before spans are assigned.
struct PendingNode {
    split_key: u32,
    /// (vmax_key, interval indices sorted by (vmin, id)) in decreasing vmax order.
    bricks: Vec<(u32, Vec<usize>)>,
    left: Option<u32>,
    right: Option<u32>,
}

fn distinct_endpoints(intervals: &[MetacellInterval], idxs: &[usize]) -> Vec<u32> {
    let mut eps = Vec::with_capacity(idxs.len() * 2);
    for &i in idxs {
        eps.push(intervals[i].min_key);
        eps.push(intervals[i].max_key);
    }
    eps.sort_unstable();
    eps.dedup();
    eps
}

fn build_skeleton(intervals: &[MetacellInterval]) -> (Vec<PendingNode>, Option<u32>) {
    let mut nodes: Vec<PendingNode> = Vec::new();
    let all: Vec<usize> = (0..intervals.len()).collect();
    let root = build_rec(intervals, all, &mut nodes);
    (nodes, root)
}

fn build_rec(
    intervals: &[MetacellInterval],
    idxs: Vec<usize>,
    nodes: &mut Vec<PendingNode>,
) -> Option<u32> {
    if idxs.is_empty() {
        return None;
    }
    let eps = distinct_endpoints(intervals, &idxs);
    let split_key = eps[eps.len() / 2];

    let mut here: Vec<usize> = Vec::new();
    let mut left: Vec<usize> = Vec::new();
    let mut right: Vec<usize> = Vec::new();
    for i in idxs {
        let iv = &intervals[i];
        if iv.max_key < split_key {
            left.push(i);
        } else if iv.min_key > split_key {
            right.push(i);
        } else {
            here.push(i);
        }
    }
    debug_assert!(
        !here.is_empty(),
        "median endpoint must stab at least one interval"
    );

    // Group the node's intervals into bricks by vmax (descending), each brick
    // sorted ascending by (vmin, id) for deterministic layout.
    here.sort_unstable_by_key(|&i| {
        (
            u32::MAX - intervals[i].max_key, // vmax descending
            intervals[i].min_key,            // vmin ascending
            intervals[i].id,
        )
    });
    let mut bricks: Vec<(u32, Vec<usize>)> = Vec::new();
    for i in here {
        let vmax = intervals[i].max_key;
        match bricks.last_mut() {
            Some((bmax, list)) if *bmax == vmax => list.push(i),
            _ => bricks.push((vmax, vec![i])),
        }
    }

    let me = nodes.len() as u32;
    nodes.push(PendingNode {
        split_key,
        bricks,
        left: None,
        right: None,
    });
    let l = build_rec(intervals, left, nodes);
    let r = build_rec(intervals, right, nodes);
    let node = &mut nodes[me as usize];
    node.left = l;
    node.right = r;
    Some(me)
}

impl CompactIntervalTree {
    /// Build a single-store tree. `sink` must append the record of the given
    /// interval to the store and return its span; the builder calls it in
    /// exact on-disk layout order (per node: bricks by decreasing `vmax`,
    /// records by increasing `vmin`) and verifies spans are contiguous within
    /// each node so Case 1 can read a node's active bricks in one transfer.
    pub fn build(
        intervals: &[MetacellInterval],
        sink: &mut dyn FnMut(&MetacellInterval) -> io::Result<Span>,
    ) -> io::Result<CompactIntervalTree> {
        let mut trees = Self::build_striped(intervals, 1, &mut |_stripe, iv| sink(iv))?;
        Ok(trees.pop().expect("one stripe"))
    }

    /// Build `stripes` trees with round-robin brick striping (§5.1). `sink`
    /// appends the record for an interval to the given stripe's store and
    /// returns the span *within that store*.
    pub fn build_striped(
        intervals: &[MetacellInterval],
        stripes: usize,
        sink: &mut dyn FnMut(usize, &MetacellInterval) -> io::Result<Span>,
    ) -> io::Result<Vec<CompactIntervalTree>> {
        assert!(stripes > 0, "need at least one stripe");
        let (pending, root) = build_skeleton(intervals);
        let eps = distinct_endpoints(intervals, &(0..intervals.len()).collect::<Vec<_>>());

        let mut per_stripe_nodes: Vec<Vec<CompactNode>> = (0..stripes)
            .map(|_| Vec::with_capacity(pending.len()))
            .collect();
        let mut per_stripe_counts = vec![0u64; stripes];

        for pn in &pending {
            let mut stripe_entries: Vec<Vec<BrickEntry>> = vec![Vec::new(); stripes];
            for (vmax_key, members) in &pn.bricks {
                // Deal this brick's records round-robin across stripes, in
                // ascending vmin order, appending to each stripe's store.
                let mut local: Vec<Option<BrickEntry>> = vec![None; stripes];
                for (pos, &ii) in members.iter().enumerate() {
                    let iv = &intervals[ii];
                    let stripe = pos % stripes;
                    let span = sink(stripe, iv)?;
                    per_stripe_counts[stripe] += 1;
                    match &mut local[stripe] {
                        None => {
                            local[stripe] = Some(BrickEntry {
                                vmax_key: *vmax_key,
                                min_vmin_key: iv.min_key,
                                span,
                                count: 1,
                            })
                        }
                        Some(e) => {
                            assert!(
                                e.span.abuts(&span),
                                "stripe store must receive brick records contiguously"
                            );
                            e.span = e.span.join(&span);
                            e.count += 1;
                        }
                    }
                }
                for (s, entry) in local.into_iter().enumerate() {
                    if let Some(e) = entry {
                        stripe_entries[s].push(e);
                    }
                }
            }
            for (s, entries) in stripe_entries.into_iter().enumerate() {
                // Within a node, each stripe's bricks must be contiguous so a
                // Case 1 read is one bulk transfer.
                for w in entries.windows(2) {
                    debug_assert!(w[0].span.abuts(&w[1].span));
                    debug_assert!(w[0].vmax_key > w[1].vmax_key);
                }
                per_stripe_nodes[s].push(CompactNode {
                    split_key: pn.split_key,
                    entries,
                    left: pn.left,
                    right: pn.right,
                });
            }
        }

        Ok(per_stripe_nodes
            .into_iter()
            .zip(per_stripe_counts)
            .map(|(nodes, count)| CompactIntervalTree {
                nodes,
                root,
                num_intervals: count,
                num_endpoints: eps.len(),
            })
            .collect())
    }

    /// Plan the I/O for isovalue key `iso_key`: walk the root→leaf path,
    /// emitting a Case 1 bulk action or Case 2 prefix actions per node (§5).
    pub fn plan(&self, iso_key: u32) -> QueryPlan {
        let mut actions = Vec::new();
        let mut cursor = self.root;
        while let Some(i) = cursor {
            let node = &self.nodes[i as usize];
            if iso_key >= node.split_key {
                // Case 1: every interval here has vmin ≤ split ≤ iso, so a
                // record is active iff its brick's vmax ≥ iso. Bricks are laid
                // out in decreasing vmax: the active set is a contiguous
                // prefix, normally read with one bulk transfer. The builder
                // lays a node's bricks out contiguously; if an index ever
                // carries a gap (hand-built or corrupted), the coalescer
                // flushes and starts a new bulk action instead of joining
                // non-abutting spans into a fabricated range.
                let mut bulk: Option<(Span, u32)> = None;
                for e in &node.entries {
                    if e.vmax_key < iso_key {
                        break;
                    }
                    bulk = Some(match bulk {
                        None => (e.span, e.count),
                        Some((s, count)) => match s.try_join(&e.span) {
                            Some(joined) => (joined, count + e.count),
                            None => {
                                actions.push(ReadAction::Bulk { span: s, count });
                                (e.span, e.count)
                            }
                        },
                    });
                }
                if let Some((span, count)) = bulk {
                    actions.push(ReadAction::Bulk { span, count });
                }
                cursor = node.right;
            } else {
                // Case 2: every brick's vmax ≥ split > iso, so a record is
                // active iff vmin ≤ iso: an ascending-vmin prefix of each
                // brick. Bricks whose smallest vmin exceeds iso cost no I/O.
                for e in &node.entries {
                    if e.min_vmin_key <= iso_key {
                        actions.push(ReadAction::Prefix { entry: *e });
                    }
                }
                cursor = node.left;
            }
        }
        QueryPlan { iso_key, actions }
    }

    /// Number of tree nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Total brick index entries across all nodes.
    pub fn num_entries(&self) -> usize {
        self.nodes.iter().map(|n| n.entries.len()).sum()
    }

    /// Number of intervals (metacells) indexed by this tree/stripe.
    pub fn num_intervals(&self) -> u64 {
        self.num_intervals
    }

    /// Number of distinct endpoint values `n` of the *global* interval set.
    pub fn num_endpoints(&self) -> usize {
        self.num_endpoints
    }

    /// Height of the tree (0 for an empty tree).
    pub fn height(&self) -> usize {
        fn h(nodes: &[CompactNode], at: Option<u32>) -> usize {
            match at {
                None => 0,
                Some(i) => {
                    let n = &nodes[i as usize];
                    1 + h(nodes, n.left).max(h(nodes, n.right))
                }
            }
        }
        h(&self.nodes, self.root)
    }

    /// Nodes slice (read-only; used by persistence and size reports).
    pub fn nodes(&self) -> &[CompactNode] {
        &self.nodes
    }

    /// Root node index.
    pub fn root(&self) -> Option<u32> {
        self.root
    }

    /// Rebuild from raw parts (persistence).
    pub fn from_parts(
        nodes: Vec<CompactNode>,
        root: Option<u32>,
        num_intervals: u64,
        num_endpoints: usize,
    ) -> Self {
        CompactIntervalTree {
            nodes,
            root,
            num_intervals,
            num_endpoints,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::testutil::{write_records, TestFormat};
    use crate::plan::{execute_plan, plan_active_ids};
    use oociso_exio::RecordStore;
    use oociso_metacell::interval::brute_force_active;

    fn mk(id: u32, lo: u32, hi: u32) -> MetacellInterval {
        MetacellInterval::new(id, lo, hi)
    }

    fn sample_intervals() -> Vec<MetacellInterval> {
        vec![
            mk(0, 0, 10),
            mk(1, 2, 4),
            mk(2, 3, 9),
            mk(3, 5, 6),
            mk(4, 5, 12),
            mk(5, 7, 8),
            mk(6, 11, 14),
            mk(7, 0, 3),
            mk(8, 9, 9),
        ]
    }

    #[test]
    fn plan_splits_bulk_at_non_abutting_entries() {
        // Hand-build a tree whose node holds two bricks with a gap between
        // their spans (a layout no healthy build produces, but a corrupt or
        // foreign index could). The planner must emit two bulk actions rather
        // than join the spans across the gap; execution then reads exactly the
        // real records.
        let rec = |id: u32, vmin: u32| TestFormat::encode(&mk(id, vmin, 50));
        let (r0, r1) = (rec(10, 0), rec(11, 1));
        let gap = vec![0xAAu8; 16]; // bytes no record owns
        let mut store_bytes = r0.clone();
        store_bytes.extend_from_slice(&gap);
        let off1 = store_bytes.len() as u64;
        store_bytes.extend_from_slice(&r1);
        let e = |vmax_key, offset, len: usize| BrickEntry {
            vmax_key,
            min_vmin_key: 0,
            span: Span {
                offset,
                len: len as u64,
            },
            count: 1,
        };
        let tree = CompactIntervalTree {
            nodes: vec![CompactNode {
                split_key: 5,
                entries: vec![e(50, 0, r0.len()), e(40, off1, r1.len())],
                left: None,
                right: None,
            }],
            root: Some(0),
            num_intervals: 2,
            num_endpoints: 3,
        };
        let plan = tree.plan(10);
        let bulks: Vec<_> = plan
            .actions
            .iter()
            .filter_map(|a| match a {
                ReadAction::Bulk { span, count } => Some((*span, *count)),
                _ => None,
            })
            .collect();
        assert_eq!(
            bulks.len(),
            2,
            "gap must split the bulk: {:?}",
            plan.actions
        );
        assert_eq!(bulks[0].0.end(), r0.len() as u64);
        assert_eq!(bulks[1].0.offset, off1);
        let store = RecordStore::in_memory(store_bytes);
        let ids = plan_active_ids(&plan, &store, &TestFormat).unwrap();
        assert_eq!(ids, vec![10, 11]);
    }

    #[test]
    fn empty_input_gives_empty_tree() {
        let tree = CompactIntervalTree::build(&[], &mut |_| unreachable!()).unwrap();
        assert_eq!(tree.num_nodes(), 0);
        assert!(tree.plan(5).actions.is_empty());
        assert_eq!(tree.height(), 0);
    }

    #[test]
    fn structural_invariants() {
        let intervals = sample_intervals();
        let (store_bytes, spans) = write_records(&intervals);
        let mut it = spans.iter();
        let tree =
            CompactIntervalTree::build(&intervals, &mut |_iv| Ok(*it.next().unwrap())).unwrap();
        let _ = store_bytes;
        assert_eq!(tree.num_intervals(), intervals.len() as u64);
        for node in tree.nodes() {
            for w in node.entries.windows(2) {
                assert!(
                    w[0].vmax_key > w[1].vmax_key,
                    "entries must be desc by vmax"
                );
                assert!(w[0].span.abuts(&w[1].span), "node bricks contiguous");
            }
            for e in &node.entries {
                assert!(e.count > 0);
                assert!(e.min_vmin_key <= e.vmax_key);
            }
        }
        // every interval appears in exactly one brick
        let total: u32 = tree
            .nodes()
            .iter()
            .flat_map(|n| n.entries.iter().map(|e| e.count))
            .sum();
        assert_eq!(total, intervals.len() as u32);
    }

    #[test]
    fn queries_match_brute_force() {
        let intervals = sample_intervals();
        let fmt = TestFormat;
        let (bytes, spans) = write_records(&intervals);
        let mut it = spans.iter();
        let tree =
            CompactIntervalTree::build(&intervals, &mut |_| Ok(*it.next().unwrap())).unwrap();
        let store = RecordStore::in_memory(bytes);
        for q in 0..16u32 {
            let got = plan_active_ids(&tree.plan(q), &store, &fmt).unwrap();
            let want = brute_force_active(&intervals, q);
            assert_eq!(got, want, "isovalue {q}");
        }
    }

    #[test]
    fn case1_is_single_bulk_read_per_node() {
        // all intervals share vmin=0, distinct vmax: one node, many bricks;
        // a high isovalue triggers Case 1 with one Bulk action.
        let intervals: Vec<_> = (0..10).map(|i| mk(i, 0, 10 + i)).collect();
        let (bytes, spans) = write_records(&intervals);
        let mut it = spans.iter();
        let tree =
            CompactIntervalTree::build(&intervals, &mut |_| Ok(*it.next().unwrap())).unwrap();
        let plan = tree.plan(15);
        let bulks = plan
            .actions
            .iter()
            .filter(|a| matches!(a, ReadAction::Bulk { .. }))
            .count();
        assert!(bulks >= 1);
        // executing gives exactly the brute-force actives
        let store = RecordStore::in_memory(bytes);
        let got = plan_active_ids(&plan, &store, &TestFormat).unwrap();
        assert_eq!(got, brute_force_active(&intervals, 15));
        // Case 1 reads are sequential: at most one seek per Bulk action
        let snap = store.device().io_snapshot();
        assert!(snap.seeks as usize <= bulks + plan.actions.len());
    }

    #[test]
    fn striping_balance_within_one() {
        let intervals: Vec<_> = (0..97).map(|i| mk(i, i % 13, i % 13 + 1 + i % 7)).collect();
        for p in [2usize, 3, 4, 8] {
            let mut cursors = vec![0u64; p];
            let trees = CompactIntervalTree::build_striped(&intervals, p, &mut |s, iv| {
                let len = TestFormat::len_for(iv.id) as u64;
                let span = Span {
                    offset: cursors[s],
                    len,
                };
                cursors[s] += len;
                Ok(span)
            })
            .unwrap();
            assert_eq!(trees.len(), p);
            // Per global brick, stripe counts differ by ≤ 1. Reconstruct via
            // per-(node, vmax) entry counts across stripes.
            let nodes = trees[0].num_nodes();
            for ni in 0..nodes {
                use std::collections::HashMap;
                let mut per_vmax: HashMap<u32, Vec<u32>> = HashMap::new();
                for t in &trees {
                    for e in &t.nodes()[ni].entries {
                        per_vmax.entry(e.vmax_key).or_default().push(e.count);
                    }
                }
                for (vmax, counts) in per_vmax {
                    let hi = *counts.iter().max().unwrap();
                    let lo = if counts.len() == p {
                        *counts.iter().min().unwrap()
                    } else {
                        0 // some stripes got zero records (entry omitted)
                    };
                    assert!(
                        hi - lo <= 1,
                        "node {ni} brick vmax={vmax}: counts {counts:?}"
                    );
                }
            }
            // total records conserved
            let total: u64 = trees.iter().map(|t| t.num_intervals()).sum();
            assert_eq!(total, intervals.len() as u64);
        }
    }

    #[test]
    fn striped_union_matches_serial_query() {
        let intervals: Vec<_> = (0..60)
            .map(|i| mk(i, (i * 7) % 20, (i * 7) % 20 + 1 + (i % 9)))
            .collect();
        // serial reference
        let (bytes, spans) = write_records(&intervals);
        let mut it = spans.iter();
        let serial =
            CompactIntervalTree::build(&intervals, &mut |_| Ok(*it.next().unwrap())).unwrap();
        let serial_store = RecordStore::in_memory(bytes);

        // striped build with per-stripe in-memory stores
        let p = 3;
        let mut stores_bytes: Vec<Vec<u8>> = vec![Vec::new(); p];
        let trees = CompactIntervalTree::build_striped(&intervals, p, &mut |s, iv| {
            let rec = TestFormat::encode(iv);
            let span = Span {
                offset: stores_bytes[s].len() as u64,
                len: rec.len() as u64,
            };
            stores_bytes[s].extend_from_slice(&rec);
            Ok(span)
        })
        .unwrap();
        let stores: Vec<RecordStore> = stores_bytes
            .into_iter()
            .map(RecordStore::in_memory)
            .collect();

        for q in 0..32u32 {
            let want = plan_active_ids(&serial.plan(q), &serial_store, &TestFormat).unwrap();
            let mut got: Vec<u32> = Vec::new();
            for (t, s) in trees.iter().zip(&stores) {
                got.extend(plan_active_ids(&t.plan(q), s, &TestFormat).unwrap());
            }
            got.sort_unstable();
            assert_eq!(got, want, "isovalue {q}");
            assert_eq!(want, brute_force_active(&intervals, q));
        }
    }

    #[test]
    fn height_is_logarithmic() {
        let intervals: Vec<_> = (0..512).map(|i| mk(i, i % 64, i % 64 + 3)).collect();
        let mut cursor = 0u64;
        let tree = CompactIntervalTree::build(&intervals, &mut |iv| {
            let len = TestFormat::len_for(iv.id) as u64;
            let s = Span {
                offset: cursor,
                len,
            };
            cursor += len;
            Ok(s)
        })
        .unwrap();
        // 67 distinct endpoints → height ≤ ~log2(67)+2
        assert!(tree.height() <= 9, "height {}", tree.height());
        assert!(tree.num_endpoints() <= 67 + 3);
    }

    #[test]
    fn executor_counts_match_plan() {
        let intervals = sample_intervals();
        let (bytes, spans) = write_records(&intervals);
        let mut it = spans.iter();
        let tree =
            CompactIntervalTree::build(&intervals, &mut |_| Ok(*it.next().unwrap())).unwrap();
        let store = RecordStore::in_memory(bytes);
        let plan = tree.plan(6);
        let mut seen = 0u64;
        let stats = execute_plan(&plan, &store, &TestFormat, |_id, _bytes| {
            seen += 1;
        })
        .unwrap();
        assert_eq!(stats.records_emitted, seen);
        assert_eq!(seen, brute_force_active(&intervals, 6).len() as u64);
    }
}
