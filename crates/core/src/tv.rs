//! Time-varying databases (§5.2).
//!
//! "To index time-varying data of m time steps, we can use the same indexing
//! scheme for each time step separately resulting in an indexing structure of
//! size O(m n log n)." Each step gets its own cluster subdirectory; *all*
//! step indexes are held in memory (for the paper's 270-step RM dataset that
//! is 1.6 MB total), while the metacell data stays on the per-node disks.

use crate::db::{ExtractResult, PreprocessOptions};
use oociso_cluster::{Cluster, ClusterBuildOptions};
use oociso_volume::{ScalarValue, Volume};
use std::io;
use std::path::{Path, PathBuf};

fn step_dir(root: &Path, step: usize) -> PathBuf {
    root.join(format!("step{step:04}"))
}

const TV_META: &str = "timevarying.meta";

/// A time-varying isosurface database: one compact-interval-tree index per
/// time step, all resident in memory; data out-of-core per step.
pub struct TimeVaryingDatabase<S: ScalarValue> {
    steps: Vec<Cluster<S>>,
    root: PathBuf,
}

impl<S: ScalarValue> TimeVaryingDatabase<S> {
    /// Preprocess a series of time steps produced by `gen(step) -> Volume`.
    pub fn preprocess_series(
        root: &Path,
        num_steps: usize,
        opts: &PreprocessOptions,
        mut gen: impl FnMut(usize) -> Volume<S>,
    ) -> io::Result<Self> {
        assert!(num_steps > 0);
        std::fs::create_dir_all(root)?;
        let copts = ClusterBuildOptions {
            metacell_k: opts.metacell_k,
            mmap: opts.mmap,
        };
        let mut steps = Vec::with_capacity(num_steps);
        for s in 0..num_steps {
            let vol = gen(s);
            let (cluster, _) = Cluster::build(&vol, &step_dir(root, s), opts.nodes, &copts)?;
            steps.push(cluster);
        }
        std::fs::write(root.join(TV_META), format!("steps={num_steps}\n"))?;
        Ok(TimeVaryingDatabase {
            steps,
            root: root.to_path_buf(),
        })
    }

    /// Open a preprocessed series.
    pub fn open(root: &Path, mmap: bool) -> io::Result<Self> {
        let meta = std::fs::read_to_string(root.join(TV_META))?;
        let num_steps: usize = meta
            .lines()
            .find_map(|l| l.strip_prefix("steps="))
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad timevarying.meta"))?;
        let steps = (0..num_steps)
            .map(|s| Cluster::open(&step_dir(root, s), mmap))
            .collect::<io::Result<Vec<_>>>()?;
        Ok(TimeVaryingDatabase {
            steps,
            root: root.to_path_buf(),
        })
    }

    /// Number of time steps.
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// Root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Extract the isosurface of time step `step` at isovalue `iso`:
    /// "determining the appropriate indexing structure for that time step …
    /// can easily be performed since the whole indexing structure is in main
    /// memory".
    pub fn extract(&self, step: usize, iso: f32) -> io::Result<ExtractResult> {
        let e = self.steps[step].extract(iso)?;
        let (mesh, report) = e.into_merged();
        Ok(ExtractResult { mesh, report })
    }

    /// The cluster of one step (distributions, index inspection).
    pub fn step(&self, step: usize) -> &Cluster<S> {
        &self.steps[step]
    }

    /// Total in-memory index size across all steps and nodes — the paper's
    /// headline "1.6 MB for 270 time steps".
    pub fn index_bytes(&self) -> u64 {
        self.steps
            .iter()
            .flat_map(|c| c.trees().iter())
            .map(|t| oociso_itree::size::compact_size(t, S::BYTES).bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oociso_volume::{Dims3, RmProxy};

    fn tmpdir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("oociso_tv_{}_{}", std::process::id(), name));
        p
    }

    #[test]
    fn series_roundtrip() {
        let root = tmpdir("series");
        let proxy = RmProxy::with_seed(5);
        let dims = Dims3::new(24, 24, 23);
        let db = TimeVaryingDatabase::preprocess_series(
            &root,
            4,
            &PreprocessOptions {
                nodes: 2,
                ..Default::default()
            },
            |s| proxy.volume(60 + s as u32 * 10, dims),
        )
        .unwrap();
        assert_eq!(db.num_steps(), 4);
        let tri_counts: Vec<u64> = (0..4)
            .map(|s| db.extract(s, 128.0).unwrap().report.total_triangles())
            .collect();
        assert!(tri_counts.iter().any(|&t| t > 0));

        // reopen and re-query: identical
        let db2 = TimeVaryingDatabase::<u8>::open(&root, true).unwrap();
        for (s, &expected) in tri_counts.iter().enumerate() {
            assert_eq!(
                db2.extract(s, 128.0).unwrap().report.total_triangles(),
                expected
            );
        }
        assert!(db.index_bytes() > 0);
        assert_eq!(db.index_bytes(), db2.index_bytes());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn missing_meta_rejected() {
        let root = tmpdir("nometa");
        std::fs::create_dir_all(&root).unwrap();
        assert!(TimeVaryingDatabase::<u8>::open(&root, false).is_err());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn index_grows_linearly_with_steps() {
        let root1 = tmpdir("lin1");
        let root3 = tmpdir("lin3");
        let proxy = RmProxy::with_seed(9);
        let dims = Dims3::new(20, 20, 19);
        let opts = PreprocessOptions::default();
        let db1 = TimeVaryingDatabase::preprocess_series(&root1, 1, &opts, |s| {
            proxy.volume(100 + s as u32, dims)
        })
        .unwrap();
        let db3 = TimeVaryingDatabase::preprocess_series(&root3, 3, &opts, |s| {
            proxy.volume(100 + s as u32, dims)
        })
        .unwrap();
        // ~3 similar steps → ~3× the index (within 2× slack for content drift)
        let ratio = db3.index_bytes() as f64 / db1.index_bytes() as f64;
        assert!(ratio > 1.5 && ratio < 6.0, "ratio {ratio}");
        std::fs::remove_dir_all(&root1).ok();
        std::fs::remove_dir_all(&root3).ok();
    }
}
