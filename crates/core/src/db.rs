//! Single-volume databases: serial and clustered.

use oociso_cluster::{Cluster, ClusterBuildOptions, ClusterExtraction, QueryReport};
use oociso_march::IndexedMesh;
use oociso_metacell::PreprocessStats;
use oociso_render::{Camera, Framebuffer, TileLayout, Transport};
use oociso_volume::{ScalarValue, Volume};
use std::io;
use std::path::Path;

/// Preprocessing options.
#[derive(Clone, Copy, Debug)]
pub struct PreprocessOptions {
    /// Metacell vertices per axis (the paper uses 9 → 734-byte u8 records).
    pub metacell_k: usize,
    /// Number of cluster nodes / disk stripes (1 = serial).
    pub nodes: usize,
    /// Memory-map the brick stores for reading.
    pub mmap: bool,
}

impl Default for PreprocessOptions {
    fn default() -> Self {
        PreprocessOptions {
            metacell_k: 9,
            nodes: 1,
            mmap: false,
        }
    }
}

impl PreprocessOptions {
    fn cluster_opts(&self) -> ClusterBuildOptions {
        ClusterBuildOptions {
            metacell_k: self.metacell_k,
            mmap: self.mmap,
        }
    }
}

/// The result of an extraction: the surface plus the per-phase report.
#[derive(Clone, Debug)]
pub struct ExtractResult {
    /// The isosurface as an indexed mesh (global coordinates, vertex units).
    /// By default vertices are **welded across metacell and node seams**, so
    /// wherever the isosurface is closed the mesh is watertight
    /// (`oociso_march::topology::analyze_mesh` reports zero boundary edges);
    /// pass `ExtractOptions { weld: false, .. }` for the legacy per-metacell
    /// dedup. Call [`IndexedMesh::to_soup`] for an unindexed triangle list.
    pub mesh: IndexedMesh,
    /// Phase timings, I/O counters, per-node rows.
    pub report: QueryReport,
}

/// A `p`-node out-of-core isosurface database.
pub struct ClusterDatabase<S: ScalarValue> {
    cluster: Cluster<S>,
    preprocess_stats: Option<PreprocessStats>,
}

impl<S: ScalarValue> ClusterDatabase<S> {
    /// Preprocess an in-memory volume into `dir`.
    pub fn preprocess(vol: &Volume<S>, dir: &Path, opts: &PreprocessOptions) -> io::Result<Self> {
        let (cluster, stats) = Cluster::build(vol, dir, opts.nodes, &opts.cluster_opts())?;
        Ok(ClusterDatabase {
            cluster,
            preprocess_stats: Some(stats),
        })
    }

    /// Preprocess a raw volume *file* out-of-core (two streaming passes; peak
    /// memory one z-slab + index).
    pub fn preprocess_file(
        volume_path: &Path,
        dir: &Path,
        opts: &PreprocessOptions,
    ) -> io::Result<Self> {
        let (cluster, stats) =
            Cluster::build_from_file(volume_path, dir, opts.nodes, &opts.cluster_opts())?;
        Ok(ClusterDatabase {
            cluster,
            preprocess_stats: Some(stats),
        })
    }

    /// Open a previously preprocessed directory.
    pub fn open(dir: &Path, mmap: bool) -> io::Result<Self> {
        Ok(ClusterDatabase {
            cluster: Cluster::open(dir, mmap)?,
            preprocess_stats: None,
        })
    }

    /// Extract the isosurface at `iso` (parallel across nodes), returning the
    /// merged mesh and the full report. Each node streams records from disk
    /// into its triangulation workers through a bounded queue, so retrieval
    /// and triangulation overlap (see [`NodeReport`]'s overlap metrics).
    pub fn extract(&self, iso: f32) -> io::Result<ExtractResult> {
        self.extract_with_options(iso, &oociso_cluster::ExtractOptions::default())
    }

    /// [`ClusterDatabase::extract`] with explicit worker-count and
    /// record-flow control (streaming queue bound, or the phase-serial batch
    /// reference path).
    pub fn extract_with_options(
        &self,
        iso: f32,
        opts: &oociso_cluster::ExtractOptions,
    ) -> io::Result<ExtractResult> {
        let e = self.cluster.extract_with_options(iso, opts)?;
        let (mesh, report) = e.into_merged();
        Ok(ExtractResult { mesh, report })
    }

    /// Extract without merging: per-node soups plus report (what the
    /// rendering path and the balance tables consume).
    pub fn extract_per_node(&self, iso: f32) -> io::Result<ClusterExtraction> {
        self.cluster.extract(iso)
    }

    /// Extract the isosurface at `iso` and build the LOD pyramid described
    /// by `lods` from the merged **welded** mesh: level 0 is the full
    /// watertight surface, each further level is quadric edge-collapse
    /// decimated to its vertex ratio. Per-level stats ride in
    /// [`QueryReport::lod_levels`]. This is what the query server caches
    /// and serves per level.
    pub fn extract_lods(
        &self,
        iso: f32,
        lods: &oociso_cluster::LodSpec,
    ) -> io::Result<(oociso_march::LodChain, QueryReport)> {
        self.extract_lods_with(iso, lods, oociso_march::Backend::Mc)
    }

    /// [`ClusterDatabase::extract_lods`] with an explicit extraction
    /// [`Backend`](oociso_march::Backend). SurfaceNets pyramids build from
    /// the seam-stitched, smoothed mesh (already vertex-unique by cell
    /// ownership, so no weld pass runs first).
    pub fn extract_lods_with(
        &self,
        iso: f32,
        lods: &oociso_cluster::LodSpec,
        backend: oociso_march::Backend,
    ) -> io::Result<(oociso_march::LodChain, QueryReport)> {
        let opts = oociso_cluster::ExtractOptions {
            lods: lods.clone(),
            backend,
            ..Default::default()
        };
        self.extract_lods_opts(iso, &opts)
    }

    /// [`ClusterDatabase::extract_lods_with`] under full extraction options
    /// — how the query server threads its per-request trace (and any other
    /// extraction tuning) into the pipeline. The extraction's span tree
    /// (`extract`/`node`/`pipeline`/... plus the `merge_weld`/`stitch` and
    /// `lod` roots) lands in `opts.trace`.
    pub fn extract_lods_opts(
        &self,
        iso: f32,
        opts: &oociso_cluster::ExtractOptions,
    ) -> io::Result<(oociso_march::LodChain, QueryReport)> {
        let e = self.cluster.extract_with_options(iso, opts)?;
        Ok(e.into_lod_chain())
    }

    /// Full pipeline: extract, render per node, sort-last composite.
    pub fn extract_and_render(
        &self,
        iso: f32,
        camera: &Camera,
        tiles: &TileLayout,
        base_color: [f32; 3],
    ) -> io::Result<(Framebuffer, ClusterExtraction)> {
        self.cluster
            .extract_and_render(iso, camera, tiles, base_color)
    }

    /// [`ClusterDatabase::extract_and_render`] with the compositing shuffle
    /// routed through an explicit [`Transport`] (modeled interconnect or
    /// real sockets) — bit-identical output either way.
    pub fn extract_and_render_via(
        &self,
        iso: f32,
        camera: &Camera,
        tiles: &TileLayout,
        base_color: [f32; 3],
        transport: &mut dyn Transport,
    ) -> io::Result<(Framebuffer, ClusterExtraction)> {
        self.cluster
            .extract_and_render_via(iso, camera, tiles, base_color, transport)
    }

    /// Preprocessing statistics (only available right after building).
    pub fn preprocess_stats(&self) -> Option<&PreprocessStats> {
        self.preprocess_stats.as_ref()
    }

    /// The underlying cluster (index access, distributions).
    pub fn cluster(&self) -> &Cluster<S> {
        &self.cluster
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.cluster.nodes()
    }

    /// Swap node `node`'s brick store — how tests and benchmarks interpose
    /// a throttled or fault-injecting device on the read path.
    pub fn replace_store(&mut self, node: usize, store: oociso_exio::RecordStore) {
        self.cluster.replace_store(node, store);
    }

    /// Total index size in bytes across all nodes (paper-style entry
    /// encoding; the RM single-step index is ~6 KB).
    pub fn index_bytes(&self) -> u64 {
        self.cluster
            .trees()
            .iter()
            .map(|t| oociso_itree::size::compact_size(t, S::BYTES).bytes)
            .sum()
    }
}

/// A serial (single-node) out-of-core isosurface database — the common case
/// for a workstation, and the baseline the speedup tables divide by.
pub struct IsoDatabase<S: ScalarValue> {
    inner: ClusterDatabase<S>,
}

impl<S: ScalarValue> IsoDatabase<S> {
    /// Preprocess an in-memory volume into `dir` (forces `nodes = 1`).
    pub fn preprocess(vol: &Volume<S>, dir: &Path, opts: &PreprocessOptions) -> io::Result<Self> {
        let opts = PreprocessOptions { nodes: 1, ..*opts };
        Ok(IsoDatabase {
            inner: ClusterDatabase::preprocess(vol, dir, &opts)?,
        })
    }

    /// Preprocess a raw volume file out-of-core (forces `nodes = 1`).
    pub fn preprocess_file(
        volume_path: &Path,
        dir: &Path,
        opts: &PreprocessOptions,
    ) -> io::Result<Self> {
        let opts = PreprocessOptions { nodes: 1, ..*opts };
        Ok(IsoDatabase {
            inner: ClusterDatabase::preprocess_file(volume_path, dir, &opts)?,
        })
    }

    /// Open a previously preprocessed single-node directory.
    pub fn open(dir: &Path, mmap: bool) -> io::Result<Self> {
        let inner = ClusterDatabase::open(dir, mmap)?;
        if inner.nodes() != 1 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "directory holds a multi-node dataset; use ClusterDatabase::open",
            ));
        }
        Ok(IsoDatabase { inner })
    }

    /// Extract the isosurface at `iso`.
    pub fn extract(&self, iso: f32) -> io::Result<ExtractResult> {
        self.inner.extract(iso)
    }

    /// Render the isosurface from `camera` into a single framebuffer.
    pub fn render(
        &self,
        iso: f32,
        camera: &Camera,
        width: usize,
        height: usize,
        base_color: [f32; 3],
    ) -> io::Result<(Framebuffer, ExtractResult)> {
        let tiles = TileLayout::new(1, 1, width, height);
        let (fb, e) = self
            .inner
            .extract_and_render(iso, camera, &tiles, base_color)?;
        let (mesh, report) = e.into_merged();
        Ok((fb, ExtractResult { mesh, report }))
    }

    /// Preprocessing statistics (only right after building).
    pub fn preprocess_stats(&self) -> Option<&PreprocessStats> {
        self.inner.preprocess_stats()
    }

    /// Index size in bytes.
    pub fn index_bytes(&self) -> u64 {
        self.inner.index_bytes()
    }

    /// Access the underlying cluster database.
    pub fn as_cluster(&self) -> &ClusterDatabase<S> {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oociso_volume::field::{FieldExt, SphereField};
    use oociso_volume::Dims3;
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("oociso_db_{}_{}", std::process::id(), name));
        p
    }

    fn vol() -> Volume<u8> {
        SphereField::centered(0.3, 120.0).sample(Dims3::new(25, 25, 25))
    }

    #[test]
    fn quickstart_flow() {
        let dir = tmpdir("quick");
        let db = IsoDatabase::preprocess(&vol(), &dir, &PreprocessOptions::default()).unwrap();
        let surface = db.extract(120.0).unwrap();
        assert!(surface.mesh.len() > 100);
        // the kernel's triangle count covers welded-away collapses too (the
        // integer isovalue can land crossings exactly on lattice corners)
        assert_eq!(
            surface.mesh.len() as u64 + surface.report.total_weld().degenerate_dropped,
            surface.report.total_triangles()
        );
        assert!(db.index_bytes() > 0);
        assert!(db.preprocess_stats().unwrap().kept_metacells > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cluster_db_matches_serial_db() {
        let v = vol();
        let d1 = tmpdir("serial");
        let d4 = tmpdir("cluster");
        let serial = IsoDatabase::preprocess(&v, &d1, &PreprocessOptions::default()).unwrap();
        let opts = PreprocessOptions {
            nodes: 4,
            ..Default::default()
        };
        let cluster = ClusterDatabase::preprocess(&v, &d4, &opts).unwrap();
        for iso in [90.0, 120.0, 150.0] {
            let a = serial.extract(iso).unwrap();
            let b = cluster.extract(iso).unwrap();
            assert_eq!(a.mesh.len(), b.mesh.len(), "iso {iso}");
        }
        std::fs::remove_dir_all(&d1).ok();
        std::fs::remove_dir_all(&d4).ok();
    }

    #[test]
    fn open_serial_rejects_multinode_dir() {
        let v = vol();
        let d = tmpdir("multi");
        let opts = PreprocessOptions {
            nodes: 2,
            ..Default::default()
        };
        let _ = ClusterDatabase::preprocess(&v, &d, &opts).unwrap();
        assert!(IsoDatabase::<u8>::open(&d, false).is_err());
        assert!(ClusterDatabase::<u8>::open(&d, false).is_ok());
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn extraction_modes_agree_and_empty_iso_is_sane() {
        use oociso_cluster::{ExtractMode, ExtractOptions};
        let v = vol();
        let d = tmpdir("modes");
        let db = ClusterDatabase::preprocess(
            &v,
            &d,
            &PreprocessOptions {
                nodes: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let streaming = db.extract(120.0).unwrap();
        let batch = db
            .extract_with_options(
                120.0,
                &ExtractOptions {
                    workers: Some(2),
                    mode: ExtractMode::Batch,
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(streaming.mesh.positions(), batch.mesh.positions());
        assert_eq!(streaming.mesh.indices(), batch.mesh.indices());
        for n in &streaming.report.nodes {
            assert!(n.workers > 0);
            assert_eq!(n.exec.records_emitted, n.active_metacells);
        }

        // the sphere field peaks at level + slope·radius = 180 → no surface
        let empty = db.extract(250.0).unwrap();
        assert!(empty.mesh.is_empty());
        assert_eq!(empty.report.total_triangles(), 0);
        for n in &empty.report.nodes {
            assert_eq!(n.workers, 0, "empty extraction must not spawn workers");
        }
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn render_produces_pixels() {
        let v = vol();
        let d = tmpdir("render");
        let db = IsoDatabase::preprocess(&v, &d, &PreprocessOptions::default()).unwrap();
        let surface = db.extract(120.0).unwrap();
        let camera = oociso_render::Camera::orbiting(&surface.mesh.bounds(), 0.7, 0.4, 2.5);
        let (fb, res) = db.render(120.0, &camera, 96, 96, [0.8, 0.8, 0.9]).unwrap();
        assert!(fb.covered_pixels() > 50);
        assert!(res.report.nodes[0].rendering > std::time::Duration::ZERO);
        std::fs::remove_dir_all(&d).ok();
    }
}
