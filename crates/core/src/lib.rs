//! # oociso-core — the public API
//!
//! Out-of-core isosurface extraction and rendering for large (time-varying)
//! structured scalar fields, after Wang, JaJa & Varshney (IPDPS 2006).
//!
//! Three entry points, in increasing generality:
//!
//! * [`IsoDatabase`] — preprocess one volume once, extract isosurfaces for
//!   any isovalue in output-sensitive I/O time.
//! * [`ClusterDatabase`] — the same over `p` simulated cluster nodes with
//!   striped bricks, per-node indexes, local rendering and sort-last
//!   compositing. (`IsoDatabase` is the `p = 1` case.)
//! * [`TimeVaryingDatabase`] — one index per time step (§5.2): the whole
//!   index set stays in memory while the data stays on disk.
//!
//! ```no_run
//! use oociso_core::{IsoDatabase, PreprocessOptions};
//! use oociso_volume::{RmProxy, Dims3};
//!
//! let vol = RmProxy::with_seed(1).volume(250, Dims3::new(64, 64, 60));
//! let db = IsoDatabase::preprocess(&vol, std::path::Path::new("/tmp/demo"),
//!                                  &PreprocessOptions::default()).unwrap();
//! let surface = db.extract(128.0).unwrap();
//! println!("{} triangles", surface.mesh.len());
//! ```

pub mod db;
pub mod tv;

pub use db::{ClusterDatabase, ExtractResult, IsoDatabase, PreprocessOptions};
pub use oociso_cluster::{
    ExtractMode, ExtractOptions, LodReport, LodSpec, NodeReport, QueryReport, SimulatedTimeModel,
};
pub use oociso_march::LodChain;
pub use tv::TimeVaryingDatabase;
