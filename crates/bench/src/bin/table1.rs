//! **Table 1** — index structure sizes: standard interval tree vs compact
//! interval tree, on the paper's dataset list (Bunny, MRBrain, CTHead,
//! Pressure, Velocity — synthetic stand-ins at matching dims/precision).
//!
//! Run: `cargo run --release -p oociso-bench --bin table1 [-- --shrink N]`
//!
//! `--shrink N` divides every axis by `N` (default 2) to keep the run quick;
//! the N/n interval statistics that drive the comparison are preserved.

use oociso_bench::TextTable;
use oociso_itree::size::{compact_size, standard_size};
use oociso_itree::{CompactIntervalTree, StandardIntervalTree};
use oociso_metacell::{scan_volume, MetacellInterval, MetacellLayout};
use oociso_volume::zoo::{self, ZooPrecision};
use oociso_volume::{ScalarValue, Volume};

fn intervals_of<S: ScalarValue>(vol: &Volume<S>) -> (Vec<MetacellInterval>, usize) {
    let layout = MetacellLayout::paper(vol.dims());
    let (built, _) = scan_volume(vol, &layout);
    let intervals: Vec<MetacellInterval> = built.iter().map(|b| b.interval).collect();
    let mut eps: Vec<u32> = intervals
        .iter()
        .flat_map(|iv| [iv.min_key, iv.max_key])
        .collect();
    eps.sort_unstable();
    eps.dedup();
    (intervals, eps.len())
}

fn main() {
    let shrink: usize = std::env::args()
        .skip_while(|a| a != "--shrink")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);

    println!("Table 1: index sizes, standard interval tree vs compact interval tree");
    println!("(synthetic stand-ins at the original datasets' dims/precision, shrink={shrink})\n");

    let mut table = TextTable::new(&[
        "dataset",
        "dims",
        "type",
        "N (intervals)",
        "n (endpoints)",
        "std entries",
        "std KB",
        "compact entries",
        "compact KB",
        "ratio",
    ]);

    for entry in zoo::table1_entries() {
        let (intervals, n, dims, sbytes) = match entry.precision {
            ZooPrecision::U16 => {
                let vol = zoo::generate_u16(&entry, shrink);
                let (iv, n) = intervals_of(&vol);
                (iv, n, vol.dims(), 2)
            }
            ZooPrecision::F32 => {
                let vol = zoo::generate_f32(&entry, shrink);
                let (iv, n) = intervals_of(&vol);
                (iv, n, vol.dims(), 4)
            }
            ZooPrecision::U8 => unreachable!("no u8 entries in Table 1"),
        };
        let std_tree = StandardIntervalTree::build(&intervals);
        let mut cursor = 0u64;
        let compact = CompactIntervalTree::build(&intervals, &mut |_| {
            let s = oociso_exio::Span {
                offset: cursor,
                len: 1,
            };
            cursor += 1;
            Ok(s)
        })
        .expect("in-memory build");
        let ss = standard_size(&std_tree, sbytes);
        let cs = compact_size(&compact, sbytes);
        table.row(vec![
            entry.name.to_string(),
            format!("{}x{}x{}", dims.nx, dims.ny, dims.nz),
            entry.precision.name().to_string(),
            intervals.len().to_string(),
            n.to_string(),
            ss.entries.to_string(),
            format!("{:.1}", ss.kib()),
            cs.entries.to_string(),
            format!("{:.1}", cs.kib()),
            format!("{:.1}x", ss.bytes as f64 / cs.bytes.max(1) as f64),
        ]);
    }
    table.print();
    println!("\npaper's claim: the standard interval tree is at least twice the size of");
    println!("the compact structure, and usually much larger (O(N) vs O(n log n)).");
}
