//! **Ablation A** — data distribution: the paper's round-robin brick striping
//! vs the range-space partition of prior work (Zhang–Bajaj–Blanke [21]).
//!
//! §2's claim: under range partitioning "one can have a case in which the
//! distribution of active cells among the processors for a given isovalue
//! could be extremely unbalanced", while striping balances every isovalue.
//!
//! Run: `cargo run --release -p oociso-bench --bin ablation_partition`

use oociso_bench::{bench_dims, bench_step, paper_isovalues, rm_volume, TextTable};
use oociso_itree::striped::{
    active_counts, range_partition, round_robin_partition, staggered_round_robin_partition,
};
use oociso_metacell::{scan_volume, MetacellInterval, MetacellLayout};

fn main() {
    let dims = bench_dims();
    let vol = rm_volume(bench_step(), dims);
    let layout = MetacellLayout::paper(dims);
    let (built, _) = scan_volume(&vol, &layout);
    let intervals: Vec<MetacellInterval> = built.iter().map(|b| b.interval).collect();
    let p = 4;
    println!(
        "Ablation A: load balance of {} metacells across {p} nodes\n",
        intervals.len()
    );

    let rr = round_robin_partition(&intervals, p);
    let st = staggered_round_robin_partition(&intervals, p);
    let rp = range_partition(&intervals, p);

    let mut table = TextTable::new(&[
        "iso",
        "active",
        "striping max/mean",
        "staggered max/mean",
        "range max/mean",
        "range worst node share",
    ]);
    let mut worst_rr: f64 = 1.0;
    let mut worst_st: f64 = 1.0;
    let mut worst_rp: f64 = 1.0;
    for &iso in &paper_isovalues() {
        let key = iso as u32;
        let a = active_counts(&intervals, &rr, p, key);
        let s = active_counts(&intervals, &st, p, key);
        let b = active_counts(&intervals, &rp, p, key);
        worst_rr = worst_rr.max(a.imbalance());
        worst_st = worst_st.max(s.imbalance());
        worst_rp = worst_rp.max(b.imbalance());
        table.row(vec![
            format!("{iso:.0}"),
            a.total().to_string(),
            format!("{:.3}", a.imbalance()),
            format!("{:.3}", s.imbalance()),
            format!("{:.3}", b.imbalance()),
            format!("{:.0}%", 100.0 * b.max() as f64 / b.total().max(1) as f64),
        ]);
    }
    table.print();
    println!(
        "\nworst-case imbalance across the sweep: striping {worst_rr:.3}, staggered {worst_st:.3}, range {worst_rp:.3}"
    );
    println!("(1.0 = perfect balance; parallel completion time scales with this factor —");
    println!("a {p}-node run under range partitioning degrades toward a {worst_rp:.2}x slowdown;");
    println!("staggered striping is an oociso extension removing the paper scheme's node-0 bias)");
}
