//! **Ablation C** — metacell size sweep: 5³ vs the paper's 9³ vs 17³ vertices.
//!
//! §4 fixes metacells at "a small multiple of the disk block size" (9×9×9 u8 →
//! 734 B). Smaller metacells cull more aggressively but multiply record count
//! and per-record overhead; larger ones read more inactive cells per active
//! metacell. This sweep quantifies the trade-off that motivates the paper's
//! choice.
//!
//! Run: `cargo run --release -p oociso-bench --bin ablation_metacell`

use oociso_bench::data_dir;
use oociso_bench::{bench_dims, bench_step, rm_volume, secs, TextTable};
use oociso_cluster::{Cluster, ClusterBuildOptions, SimulatedTimeModel};

fn main() {
    let dims = bench_dims();
    let step = bench_step();
    let vol = rm_volume(step, dims);
    let model = SimulatedTimeModel::paper();
    println!(
        "Ablation C: metacell size sweep on RM proxy step {step} at {}x{}x{}\n",
        dims.nx, dims.ny, dims.nz
    );

    let mut table = TextTable::new(&[
        "k",
        "record B",
        "metacells",
        "culled %",
        "stored MB",
        "AMC @110",
        "bytes read @110 (MB)",
        "sim io @110 (s)",
        "triangles @110",
    ]);
    for k in [5usize, 9, 17] {
        let dir = data_dir().join(format!("ablation-k{k}"));
        std::fs::remove_dir_all(&dir).ok();
        let (cluster, stats) = Cluster::build(
            &vol,
            &dir,
            1,
            &ClusterBuildOptions {
                metacell_k: k,
                mmap: true,
            },
        )
        .expect("build");
        let e = cluster.extract(110.0).expect("extract");
        let n = &e.report.nodes[0];
        table.row(vec![
            k.to_string(),
            (4 + 1 + k * k * k).to_string(),
            stats.kept_metacells.to_string(),
            format!("{:.1}", stats.culled_fraction() * 100.0),
            format!("{:.1}", stats.kept_bytes as f64 / 1e6),
            n.active_metacells.to_string(),
            format!("{:.1}", n.bytes_read as f64 / 1e6),
            secs(model.node_io_time(n)),
            n.triangles.to_string(),
        ]);
        std::fs::remove_dir_all(&dir).ok();
    }
    table.print();
    println!("\nthe paper's k=9 (734 B records, a small multiple of a disk block) balances");
    println!("culling effectiveness against per-record overhead and read amplification.");
}
