//! **Tables 2–5 and Figures 5–6** — single-step extraction performance on
//! 1, 2, 4 and 8 nodes across the isovalue sweep 10…210.
//!
//! For each node count the binary prints a table in the paper's format:
//! active metacells, AMC retrieval time, triangulation time, rendering time,
//! triangles, and MTri/s. Times come in two flavors:
//!
//! * *simulated* — I/O priced at the paper's 50 MB/s disk, triangulation and
//!   rendering at fixed per-triangle rates, compositing at 10 Gbps
//!   (see `SimulatedTimeModel`); these reproduce the *shape* of the paper's
//!   numbers independent of host hardware;
//! * *measured* — wall-clock on this machine (informational; with fewer
//!   physical cores than simulated nodes the parallel wall times are
//!   contention-bound).
//!
//! Figures 5 (overall time vs isovalue per p) and 6 (speedup vs isovalue)
//! are emitted as CSV files under the data directory.
//!
//! Run: `cargo run --release -p oociso-bench --bin table2_5`

use oociso_bench::{
    bench_dims, bench_step, cached_cluster, paper_isovalues, secs, write_csv, TextTable,
};
use oociso_cluster::{NodeReport, SimulatedTimeModel};
use std::time::Duration;

const DISPLAY: (usize, usize) = (1024, 1024);
const TILES: usize = 4;

/// Workload scale factor mapping our default 256×256×240 proxy to the
/// paper's full 2048×2048×1920 dataset (512× the voxels; the paper's
/// 100–650M-triangle surfaces vs our 0.27–0.72M). The time model is linear
/// in per-node bytes/triangles while the index and brick *structure* are
/// independent of data size (n ≤ 256 endpoints), so scaling the counts —
/// seeks and composite held fixed — evaluates the same model at the paper's
/// workload. These are the speedup curves comparable to Figures 5–6.
const PAPER_SCALE: u64 = 512;

/// Simulated node time at workload scale `s`.
///
/// Per-node *means* scale with the data (each brick holds `s×` the records);
/// per-node *deviations* from the mean stay absolute — the striping
/// guarantee bounds them by ±1 record per brick irrespective of brick
/// population. Seek counts and the composite are data-size independent.
fn node_time_scaled(
    model: &SimulatedTimeModel,
    n: &NodeReport,
    mean_bytes: f64,
    mean_tris: f64,
    s: u64,
) -> Duration {
    let s = s as f64;
    let bytes = (n.io.bytes_read + n.io.skip_bytes) as f64;
    let scaled_bytes = (mean_bytes * s + (bytes - mean_bytes)).max(0.0);
    let tris = n.triangles as f64;
    let scaled_tris = (mean_tris * s + (tris - mean_tris)).max(0.0);
    let io = model.disk.seek.mul_f64(n.io.seeks as f64)
        + Duration::from_secs_f64(scaled_bytes / model.disk.bytes_per_sec);
    let tri = Duration::from_secs_f64(scaled_tris / model.tris_per_sec);
    let ren = Duration::from_secs_f64(scaled_tris / model.render_tris_per_sec);
    io + tri + ren
}

fn main() {
    let dims = bench_dims();
    let step = bench_step();
    let model = SimulatedTimeModel::paper();
    println!(
        "Tables 2-5: RM proxy step {step} at {}x{}x{} (OOCISO_DIMS to change)\n",
        dims.nx, dims.ny, dims.nz
    );

    let mut fig5_rows: Vec<String> = Vec::new();
    let mut fig6_rows: Vec<String> = Vec::new();
    let mut fig5p_rows: Vec<String> = Vec::new();
    let mut fig6p_rows: Vec<String> = Vec::new();
    // simulated serial totals per isovalue (denominator of the speedups)
    let mut serial_time: Vec<f64> = Vec::new();
    let mut serial_time_paper: Vec<f64> = Vec::new();
    let mut paper_speedup_range: Vec<(usize, f64, f64)> = Vec::new();

    for &nodes in &[1usize, 2, 4, 8] {
        let (cluster, _) = cached_cluster(step, dims, nodes);
        println!(
            "== Table {} ({} node{}) ==",
            2 + nodes.trailing_zeros(),
            nodes,
            if nodes > 1 { "s" } else { "" }
        );
        let mut table = TextTable::new(&[
            "iso",
            "AMC",
            "AMC io (sim s)",
            "triang (sim s)",
            "render (sim s)",
            "total (sim s)",
            "triangles",
            "MTri/s (sim)",
            "wall (meas s)",
        ]);
        for (i, &iso) in paper_isovalues().iter().enumerate() {
            let e = cluster.extract(iso).expect("extract");
            let r = &e.report;
            let sim_io: Duration = r.nodes.iter().map(|n| model.node_io_time(n)).max().unwrap();
            let sim_tri: Duration = r
                .nodes
                .iter()
                .map(|n| model.node_triangulation_time(n))
                .max()
                .unwrap();
            let sim_ren: Duration = r
                .nodes
                .iter()
                .map(|n| model.node_render_time(n))
                .max()
                .unwrap();
            let sim_total = model.query_time(r, TILES, DISPLAY);
            let tris = r.total_triangles();
            let mtris = tris as f64 / 1e6 / sim_total.as_secs_f64().max(1e-12);
            table.row(vec![
                format!("{iso:.0}"),
                r.total_active_metacells().to_string(),
                secs(sim_io),
                secs(sim_tri),
                secs(sim_ren),
                secs(sim_total),
                tris.to_string(),
                format!("{mtris:.2}"),
                secs(r.total_wall),
            ]);
            if nodes == 1 {
                serial_time.push(sim_total.as_secs_f64());
            }
            fig5_rows.push(format!("{nodes},{iso},{}", sim_total.as_secs_f64()));
            if nodes > 1 {
                let speedup = serial_time[i] / sim_total.as_secs_f64().max(1e-12);
                fig6_rows.push(format!("{nodes},{iso},{speedup:.3}"));
            }

            // paper-workload-scale variant (counts × PAPER_SCALE)
            let mean_bytes = r
                .nodes
                .iter()
                .map(|n| (n.io.bytes_read + n.io.skip_bytes) as f64)
                .sum::<f64>()
                / r.nodes.len() as f64;
            let mean_tris =
                r.nodes.iter().map(|n| n.triangles as f64).sum::<f64>() / r.nodes.len() as f64;
            let bottleneck = r
                .nodes
                .iter()
                .map(|n| node_time_scaled(&model, n, mean_bytes, mean_tris, PAPER_SCALE))
                .max()
                .unwrap();
            let total_paper = bottleneck + model.composite_time(nodes, TILES, DISPLAY);
            if nodes == 1 {
                serial_time_paper.push(total_paper.as_secs_f64());
            }
            fig5p_rows.push(format!("{nodes},{iso},{}", total_paper.as_secs_f64()));
            if nodes > 1 {
                let sp = serial_time_paper[i] / total_paper.as_secs_f64().max(1e-12);
                fig6p_rows.push(format!("{nodes},{iso},{sp:.3}"));
                match paper_speedup_range.iter_mut().find(|e| e.0 == nodes) {
                    Some(e) => {
                        e.1 = e.1.min(sp);
                        e.2 = e.2.max(sp);
                    }
                    None => paper_speedup_range.push((nodes, sp, sp)),
                }
            }
        }
        table.print();
        println!();
    }

    let f5 = write_csv(
        "figure5_overall_time.csv",
        "nodes,isovalue,sim_seconds",
        &fig5_rows,
    );
    let f6 = write_csv("figure6_speedup.csv", "nodes,isovalue,speedup", &fig6_rows);
    let f5p = write_csv(
        "figure5_overall_time_paperscale.csv",
        "nodes,isovalue,sim_seconds",
        &fig5p_rows,
    );
    let f6p = write_csv(
        "figure6_speedup_paperscale.csv",
        "nodes,isovalue,speedup",
        &fig6p_rows,
    );
    println!("Figure 5 series written to {}", f5.display());
    println!("Figure 6 series written to {}", f6.display());
    println!(
        "Paper-workload-scale variants: {} and {}",
        f5p.display(),
        f6p.display()
    );

    println!("\nspeedup ranges at paper workload scale (counts x{PAPER_SCALE}):");
    for (p, lo, hi) in &paper_speedup_range {
        println!("  p={p}: {lo:.2} .. {hi:.2}");
    }
    println!("\npaper's reference points: ~4 MTri/s on one node; speedups 3.54-3.97 (p=4)");
    println!("and 6.91-7.83 (p=8) across the sweep. At our 512x-reduced data scale the");
    println!("fixed composite cost caps raw speedups earlier; the paper-scale rows above");
    println!("evaluate the same linear time model at the paper's workload magnitude.");
}
