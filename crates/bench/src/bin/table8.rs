//! **Table 8** — the time-varying case: time steps 180–195 at isovalue 70 on
//! four nodes. Each row: active metacells, triangles, simulated execution
//! time, and overall MTri/s, plus the total in-memory index size across all
//! steps (the paper: 1.6 MB for all 270 steps of the full dataset).
//!
//! Run: `cargo run --release -p oociso-bench --bin table8`
//! Env: `OOCISO_TV_DIMS` (default `128x128x120`) — per-step grid for the
//! 16-step series; smaller than the single-step tables because 16 full steps
//! are preprocessed.

use oociso_bench::{bench_seed, data_dir, secs, TextTable};
use oociso_cluster::SimulatedTimeModel;
use oociso_core::{PreprocessOptions, TimeVaryingDatabase};
use oociso_volume::{Dims3, RmProxy};

const STEPS: std::ops::RangeInclusive<u32> = 180..=195;
const ISO: f32 = 70.0;
const NODES: usize = 4;

fn tv_dims() -> Dims3 {
    match std::env::var("OOCISO_TV_DIMS") {
        Ok(s) => {
            let p: Vec<usize> = s.split(['x', 'X']).map(|v| v.parse().unwrap()).collect();
            Dims3::new(p[0], p[1], p[2])
        }
        Err(_) => Dims3::new(128, 128, 120),
    }
}

fn main() {
    let dims = tv_dims();
    let root = data_dir().join(format!(
        "rm-tv-s{}-{}x{}x{}-p{NODES}",
        bench_seed(),
        dims.nx,
        dims.ny,
        dims.nz
    ));
    let proxy = RmProxy::with_seed(bench_seed());
    let first_step = *STEPS.start() as usize;

    let db = match TimeVaryingDatabase::<u8>::open(&root, true) {
        Ok(db) if db.num_steps() == STEPS.count() => db,
        _ => {
            eprintln!("[build] preprocessing {} time steps…", STEPS.count());
            TimeVaryingDatabase::preprocess_series(
                &root,
                STEPS.count(),
                &PreprocessOptions {
                    nodes: NODES,
                    mmap: true,
                    ..Default::default()
                },
                |s| proxy.volume(first_step as u32 + s as u32, dims),
            )
            .expect("preprocess series")
        }
    };

    println!(
        "Table 8: time-varying case, steps {}..={} at isovalue {ISO}, {NODES} nodes, {}x{}x{} per step\n",
        STEPS.start(),
        STEPS.end(),
        dims.nx,
        dims.ny,
        dims.nz
    );
    let model = SimulatedTimeModel::paper();
    let mut table = TextTable::new(&[
        "step",
        "active metacells",
        "triangles",
        "time (sim s)",
        "MTri/s (sim)",
    ]);
    for (i, step) in STEPS.enumerate() {
        let res = db.extract(i, ISO).expect("extract");
        let sim = model.query_time(&res.report, 4, (1024, 1024));
        let tris = res.report.total_triangles();
        table.row(vec![
            step.to_string(),
            res.report.total_active_metacells().to_string(),
            tris.to_string(),
            secs(sim),
            format!("{:.2}", tris as f64 / 1e6 / sim.as_secs_f64().max(1e-12)),
        ]);
    }
    table.print();
    println!(
        "\ntotal in-memory index across {} steps x {NODES} nodes: {:.1} KB",
        db.num_steps(),
        db.index_bytes() as f64 / 1024.0
    );
    println!("paper's reference: 1.6 MB of index for 270 full-resolution steps;");
    println!("the whole index set stays in memory while data pages from disk.");
}
