//! **Tables 6 and 7** — load balance across four nodes: the distribution of
//! active metacells (Table 6) and generated triangles (Table 7) per node,
//! for the isovalue sweep. The paper's claim: "a very good load balancing
//! irrespective of the isovalue".
//!
//! Run: `cargo run --release -p oociso-bench --bin tables6_7`

use oociso_bench::{bench_dims, bench_step, cached_cluster, paper_isovalues, TextTable};

fn main() {
    let dims = bench_dims();
    let step = bench_step();
    let (cluster, _) = cached_cluster(step, dims, 4);
    println!(
        "Tables 6-7: distribution across 4 nodes, RM proxy step {step} at {}x{}x{}\n",
        dims.nx, dims.ny, dims.nz
    );

    let mut t6 = TextTable::new(&[
        "iso", "node0", "node1", "node2", "node3", "total", "max/mean",
    ]);
    let mut t7 = TextTable::new(&[
        "iso", "node0", "node1", "node2", "node3", "total", "max/mean",
    ]);
    for &iso in &paper_isovalues() {
        let e = cluster.extract(iso).expect("extract");
        let amc: Vec<u64> = e.report.nodes.iter().map(|n| n.active_metacells).collect();
        let tri: Vec<u64> = e.report.nodes.iter().map(|n| n.triangles).collect();
        let stat = |v: &[u64]| -> (u64, f64) {
            let total: u64 = v.iter().sum();
            let mean = total as f64 / v.len() as f64;
            let imb = if total == 0 {
                1.0
            } else {
                *v.iter().max().unwrap() as f64 / mean
            };
            (total, imb)
        };
        let (ta, ia) = stat(&amc);
        let (tt, it) = stat(&tri);
        t6.row(vec![
            format!("{iso:.0}"),
            amc[0].to_string(),
            amc[1].to_string(),
            amc[2].to_string(),
            amc[3].to_string(),
            ta.to_string(),
            format!("{ia:.3}"),
        ]);
        t7.row(vec![
            format!("{iso:.0}"),
            tri[0].to_string(),
            tri[1].to_string(),
            tri[2].to_string(),
            tri[3].to_string(),
            tt.to_string(),
            format!("{it:.3}"),
        ]);
    }
    println!("== Table 6: active metacells per node ==");
    t6.print();
    println!("\n== Table 7: triangles per node ==");
    t7.print();
    println!("\npaper's claim: very good load balancing irrespective of the isovalue");
    println!("(the striping guarantees per-brick counts within 1 of each other).");
}
