//! **Ablation B** — index structures head-to-head: compact interval tree vs
//! standard interval tree vs BBIO-style external interval tree.
//!
//! Substantiates §4's size claim and §2's I/O-overhead claim against the
//! prior-work external index: the BBIO tree pays disk blocks for traversing
//! the index *itself*, while the compact tree's index lives in memory and
//! every block it reads is output.
//!
//! Run: `cargo run --release -p oociso-bench --bin ablation_index`

use oociso_bench::{bench_dims, bench_step, paper_isovalues, rm_volume, TextTable};
use oociso_exio::IoCostModel;
use oociso_itree::bbio::BbioTree;
use oociso_itree::blocked::BlockedCompactTree;
use oociso_itree::size::{compact_size, standard_size};
use oociso_itree::{CompactIntervalTree, StandardIntervalTree};
use oociso_metacell::{scan_volume, MetacellInterval, MetacellLayout};

fn main() {
    let dims = bench_dims();
    let vol = rm_volume(bench_step(), dims);
    let layout = MetacellLayout::paper(dims);
    let (built, _) = scan_volume(&vol, &layout);
    let intervals: Vec<MetacellInterval> = built.iter().map(|b| b.interval).collect();
    println!(
        "Ablation B: index structures over {} RM-proxy metacell intervals\n",
        intervals.len()
    );

    // sizes
    let std_tree = StandardIntervalTree::build(&intervals);
    let mut cursor = 0u64;
    let compact = CompactIntervalTree::build(&intervals, &mut |iv| {
        let len = layout.record_len(iv.id, 1) as u64;
        let s = oociso_exio::Span {
            offset: cursor,
            len,
        };
        cursor += len;
        Ok(s)
    })
    .expect("build");
    let bbio = BbioTree::build(&std_tree, 8192);

    let cs = compact_size(&compact, 1);
    let ss = standard_size(&std_tree, 1);
    let mut sizes = TextTable::new(&["structure", "entries", "KB", "resident"]);
    sizes.row(vec![
        "compact interval tree".into(),
        cs.entries.to_string(),
        format!("{:.1}", cs.kib()),
        "memory".into(),
    ]);
    sizes.row(vec![
        "standard interval tree".into(),
        ss.entries.to_string(),
        format!("{:.1}", ss.kib()),
        "memory".into(),
    ]);
    sizes.row(vec![
        "BBIO external tree".into(),
        ss.entries.to_string(),
        format!("{:.1}", bbio.total_bytes() as f64 / 1024.0),
        "disk".into(),
    ]);
    sizes.print();

    // query I/O: the BBIO tree's index-block reads vs the compact tree's
    // zero index I/O (index in memory; all reads are metacell output).
    println!("\nper-query index I/O (disk blocks touched by the index itself):");
    let disk = IoCostModel::paper_disk();
    let mut io = TextTable::new(&[
        "iso",
        "active",
        "BBIO index blocks",
        "BBIO index ms (sim)",
        "compact index blocks",
    ]);
    for &iso in &paper_isovalues() {
        let key = iso as u32;
        bbio.reset_io();
        let ids = bbio.stab(key);
        let snap = bbio.io_snapshot();
        io.row(vec![
            format!("{iso:.0}"),
            ids.len().to_string(),
            snap.blocks_read.to_string(),
            format!("{:.2}", disk.modeled_time(&snap).as_secs_f64() * 1e3),
            "0".into(),
        ]);
    }
    io.print();

    // the §5 fallback: blocked compact tree when the index exceeds memory
    println!("\nblocked compact tree (the paper's out-of-core index fallback):");
    let mut blk = TextTable::new(&["nodes/block", "blocks", "path blocks @ iso 110"]);
    for b in [1usize, 7, 15, 63] {
        let blocked = BlockedCompactTree::new(&compact, b);
        blk.row(vec![
            b.to_string(),
            blocked.num_blocks().to_string(),
            blocked.io_blocks_for(110).to_string(),
        ]);
    }
    blk.print();
    println!("\npaper's claims: compact ≤ 1/2 standard size (usually far less);");
    println!("external-tree traversal I/O avoided entirely when the index fits memory.");
}
