//! Shared harness for the table/figure regeneration binaries.
//!
//! Every table and figure of the paper's evaluation has a binary in
//! `src/bin/` that regenerates it (see DESIGN.md §5 for the index). This
//! library holds what they share: dataset construction with on-disk caching,
//! environment knobs, and plain-text table formatting.
//!
//! Environment knobs:
//!
//! * `OOCISO_DIMS`   — volume dimensions as `NXxNYxNZ` (default `256x256x240`,
//!   the paper's own down-sampled demo size; the full dataset is
//!   2048×2048×1920 — set it if you have the hours and the disk).
//! * `OOCISO_SEED`   — RM proxy seed (default `0x524D2006`).
//! * `OOCISO_STEP`   — default time step for single-step tables (default 250,
//!   matching the paper's Figure 4 demo).
//! * `OOCISO_DATA`   — cache directory (default `target/oociso-bench-data`).

use oociso_cluster::{Cluster, ClusterBuildOptions};
use oociso_volume::{Dims3, RmProxy, Volume};
use std::path::PathBuf;

/// Parse `OOCISO_DIMS` (`NXxNYxNZ`).
pub fn bench_dims() -> Dims3 {
    match std::env::var("OOCISO_DIMS") {
        Ok(s) => {
            let parts: Vec<usize> = s
                .split(['x', 'X'])
                .map(|p| p.parse().expect("OOCISO_DIMS must be NXxNYxNZ"))
                .collect();
            assert_eq!(parts.len(), 3, "OOCISO_DIMS must be NXxNYxNZ");
            Dims3::new(parts[0], parts[1], parts[2])
        }
        Err(_) => Dims3::new(256, 256, 240),
    }
}

/// RM proxy seed.
pub fn bench_seed() -> u64 {
    std::env::var("OOCISO_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x524D_2006)
}

/// Time step for single-step experiments.
pub fn bench_step() -> u32 {
    std::env::var("OOCISO_STEP")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(250)
}

/// Cache directory for preprocessed datasets.
pub fn data_dir() -> PathBuf {
    std::env::var("OOCISO_DATA")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("target/oociso-bench-data"))
}

/// Generate (or reuse a cached volume of) the RM proxy time step.
pub fn rm_volume(step: u32, dims: Dims3) -> Volume<u8> {
    RmProxy::with_seed(bench_seed()).volume(step, dims)
}

/// Build (or reopen from cache) a `p`-node cluster for the given step/dims.
/// Returns the cluster and whether it was rebuilt.
pub fn cached_cluster(step: u32, dims: Dims3, nodes: usize) -> (Cluster<u8>, bool) {
    let dir = data_dir().join(format!(
        "rm-s{}-t{}-{}x{}x{}-p{}",
        bench_seed(),
        step,
        dims.nx,
        dims.ny,
        dims.nz,
        nodes
    ));
    if let Ok(c) = Cluster::<u8>::open(&dir, true) {
        return (c, false);
    }
    let vol = rm_volume(step, dims);
    let (c, stats) = Cluster::build(
        &vol,
        &dir,
        nodes,
        &ClusterBuildOptions {
            metacell_k: 9,
            mmap: true,
        },
    )
    .expect("cluster build");
    eprintln!(
        "[build] p={nodes}: {} metacells kept ({} culled, {:.1}% of raw size)",
        stats.kept_metacells,
        stats.culled_metacells,
        stats.size_ratio() * 100.0
    );
    (c, true)
}

/// The paper's isovalue sweep: 10 to 210 in steps of 20.
pub fn paper_isovalues() -> Vec<f32> {
    (0..=10).map(|i| 10.0 + 20.0 * i as f32).collect()
}

/// Plain-text table printer with right-aligned columns.
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&" ".repeat(widths[i] - c.len()));
                line.push_str(c);
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a `Duration` in seconds with 3 decimals.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Write CSV rows to a file under the data dir, returning the path.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> PathBuf {
    let path = data_dir().join(name);
    if let Some(p) = path.parent() {
        std::fs::create_dir_all(p).ok();
    }
    let mut text = String::from(header);
    text.push('\n');
    for r in rows {
        text.push_str(r);
        text.push('\n');
    }
    std::fs::write(&path, text).expect("csv write");
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_dims_are_paper_demo() {
        if std::env::var("OOCISO_DIMS").is_err() {
            assert_eq!(bench_dims(), Dims3::new(256, 256, 240));
        }
    }

    #[test]
    fn isovalue_sweep_matches_paper() {
        let isos = paper_isovalues();
        assert_eq!(isos.len(), 11);
        assert_eq!(isos[0], 10.0);
        assert_eq!(isos[10], 210.0);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(&["iso", "triangles"]);
        t.row(vec!["10".into(), "123456".into()]);
        t.row(vec!["210".into(), "7".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("triangles"));
        assert!(lines[2].ends_with("123456"));
        assert!(lines[3].ends_with("7"));
    }
}
