//! Criterion: end-to-end cluster extraction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oociso_cluster::{Cluster, ClusterBuildOptions, ExtractMode, ExtractOptions};
use oociso_exio::{DiskFarm, MemDevice, RecordStore, ThrottledDevice};
use oociso_volume::{Dims3, RmProxy};
use std::time::Duration;

fn bench_extract(c: &mut Criterion) {
    let dims = Dims3::new(64, 64, 60);
    let vol = RmProxy::with_seed(7).volume(200, dims);
    let mut group = c.benchmark_group("cluster_extract");
    group.sample_size(20);
    for &nodes in &[1usize, 2, 4] {
        let dir =
            std::env::temp_dir().join(format!("oociso_qbench_{}_{nodes}", std::process::id()));
        let (cluster, _) = Cluster::build(
            &vol,
            &dir,
            nodes,
            &ClusterBuildOptions {
                metacell_k: 9,
                mmap: true,
            },
        )
        .unwrap();
        let tris = cluster.extract(110.0).unwrap().report.total_triangles();
        group.throughput(Throughput::Elements(tris));
        group.bench_with_input(
            BenchmarkId::new("extract_iso110", nodes),
            &cluster,
            |b, cl| b.iter(|| cl.extract(110.0).unwrap()),
        );
        std::fs::remove_dir_all(&dir).ok();
    }
    group.finish();
}

fn bench_isovalue_sensitivity(c: &mut Criterion) {
    let dims = Dims3::new(64, 64, 60);
    let vol = RmProxy::with_seed(7).volume(200, dims);
    let dir = std::env::temp_dir().join(format!("oociso_qbench_io_{}", std::process::id()));
    let (cluster, _) = Cluster::build(
        &vol,
        &dir,
        1,
        &ClusterBuildOptions {
            metacell_k: 9,
            mmap: true,
        },
    )
    .unwrap();
    let mut group = c.benchmark_group("query_isovalues");
    group.sample_size(20);
    for iso in [30.0f32, 110.0, 190.0] {
        group.bench_with_input(BenchmarkId::new("extract", iso as u32), &iso, |b, &iso| {
            b.iter(|| cluster.extract(iso).unwrap())
        });
    }
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

fn bench_worker_scaling(c: &mut Criterion) {
    // intra-node parallel triangulation: one simulated node, scaling the
    // worker pool — near-linear until the machine's cores are saturated
    let dims = Dims3::new(96, 96, 90);
    let vol = RmProxy::with_seed(7).volume(200, dims);
    let dir = std::env::temp_dir().join(format!("oociso_qbench_w_{}", std::process::id()));
    let (cluster, _) = Cluster::build(
        &vol,
        &dir,
        1,
        &ClusterBuildOptions {
            metacell_k: 9,
            mmap: true,
        },
    )
    .unwrap();
    let tris = cluster.extract(110.0).unwrap().report.total_triangles();
    let mut group = c.benchmark_group("worker_scaling");
    group.sample_size(15);
    group.throughput(Throughput::Elements(tris));
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("extract_1node", workers),
            &workers,
            |b, &w| b.iter(|| cluster.extract_with_workers(110.0, w).unwrap()),
        );
    }
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

fn bench_pipeline_overlap(c: &mut Criterion) {
    // streaming vs batch over a throttled store (paper-ish slow disk): the
    // streaming pipeline hides triangulation inside the transfer time, so its
    // wall-clock approaches max(retrieval, triangulation) while the batch
    // path pays the phase-serial sum
    let dims = Dims3::new(96, 96, 90);
    let vol = RmProxy::with_seed(7).volume(200, dims);
    let dir = std::env::temp_dir().join(format!("oociso_qbench_ov_{}", std::process::id()));
    let (mut cluster, _) = Cluster::build(
        &vol,
        &dir,
        1,
        &ClusterBuildOptions {
            metacell_k: 9,
            mmap: false,
        },
    )
    .unwrap();
    let bricks = std::fs::read(DiskFarm::new(&dir, 1).store_path(0)).unwrap();
    // ~25 MB/s + 0.5 ms/call keeps a full sample run in seconds while still
    // dominating the measured extraction
    cluster.replace_store(
        0,
        RecordStore::from_device(Box::new(ThrottledDevice::new(
            MemDevice::new(bricks),
            Duration::from_micros(500),
            25.0e6,
        ))),
    );
    let tris = cluster.extract(110.0).unwrap().report.total_triangles();
    let mut group = c.benchmark_group("pipeline_overlap");
    group.sample_size(10);
    group.throughput(Throughput::Elements(tris));
    for (name, mode) in [
        ("batch", ExtractMode::Batch),
        ("streaming", ExtractMode::default()),
    ] {
        group.bench_with_input(
            BenchmarkId::new("throttled_extract", name),
            &mode,
            |b, &mode| {
                b.iter(|| {
                    cluster
                        .extract_with_options(
                            110.0,
                            &ExtractOptions {
                                workers: Some(1),
                                mode,
                                ..Default::default()
                            },
                        )
                        .unwrap()
                })
            },
        );
    }
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

fn bench_decimate(c: &mut Criterion) {
    // quadric edge-collapse over the welded gyroid surfaces the LOD pyramid
    // simplifies in production: throughput is input vertices retired per
    // second (collapse loop + output compaction, heap included)
    use oociso_volume::field::{FieldExt, GyroidField};
    let mut group = c.benchmark_group("decimate");
    group.sample_size(10);
    for dim in [48usize, 65] {
        let vol: oociso_volume::Volume<u8> = GyroidField {
            cells: 3.0,
            level: 128.0,
            amplitude: 70.0,
        }
        .sample(Dims3::cube(dim));
        let dir = std::env::temp_dir().join(format!("oociso_qbench_d{dim}_{}", std::process::id()));
        let (cluster, _) = Cluster::build(&vol, &dir, 1, &ClusterBuildOptions::default()).unwrap();
        let (mesh, _) = cluster.extract(128.5).unwrap().into_merged();
        std::fs::remove_dir_all(&dir).ok();
        group.throughput(criterion::Throughput::Elements(mesh.num_vertices() as u64));
        for ratio in [0.25f64, 0.06] {
            group.bench_with_input(
                BenchmarkId::new(format!("gyroid{dim}"), format!("r{ratio}")),
                &ratio,
                |b, &ratio| b.iter(|| oociso_march::decimate_to_ratio(&mesh, ratio)),
            );
        }
    }
    group.finish();
}

fn bench_admission_storm(c: &mut Criterion) {
    // an 8-client miss storm against a live TCP server: unbounded admission
    // vs 2 extraction slots with busy-retrying clients. The 1-byte cache
    // budget makes every mesh oversized for the cache, so all 24 queries per
    // iteration pay a full uncached extraction and the slots are genuinely
    // contended. Admission bounds peak memory/CPU (never more than 2
    // extractions in flight) at the cost of retry round-trips — this group
    // prices that trade
    use oociso_core::{ClusterDatabase, PreprocessOptions};
    use oociso_serve::{Client, ClientOptions, IsoServer, ServeOptions};
    let dims = Dims3::new(48, 48, 44);
    let vol = RmProxy::with_seed(7).volume(200, dims);
    let dir = std::env::temp_dir().join(format!("oociso_qbench_storm_{}", std::process::id()));
    ClusterDatabase::preprocess(&vol, &dir, &PreprocessOptions::default()).unwrap();
    let isovalues = [90.0f32, 110.0, 130.0];
    let clients = 8usize;
    let mut group = c.benchmark_group("admission_storm");
    group.sample_size(10);
    group.throughput(Throughput::Elements((clients * isovalues.len()) as u64));
    for (name, slots) in [("admit_all", None), ("slots2", Some(2u32))] {
        let db = ClusterDatabase::<u8>::open(&dir, true).unwrap();
        let server = IsoServer::bind(
            db,
            ("127.0.0.1", 0),
            ServeOptions {
                cache_bytes: 1,
                extraction_slots: slots,
                ..Default::default()
            },
        )
        .unwrap();
        let addr = server.addr();
        group.bench_function(BenchmarkId::new("storm_8x3", name), |b| {
            b.iter(|| {
                std::thread::scope(|scope| {
                    for t in 0..clients {
                        scope.spawn(move || {
                            let mut client = Client::connect_with(
                                addr,
                                ClientOptions {
                                    retries: 256,
                                    backoff: Duration::from_millis(2),
                                    backoff_max: Duration::from_millis(40),
                                    jitter_seed: 0xBEEF ^ t as u64,
                                    ..Default::default()
                                },
                            )
                            .unwrap();
                            for &iso in &isovalues {
                                client.query_mesh(iso, None).unwrap();
                            }
                        });
                    }
                });
            })
        });
        server.stop();
    }
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

fn bench_metrics_overhead(c: &mut Criterion) {
    // the observability tax on the served hot path: a single-client warm
    // storm where every query is a cache hit, so per-request cost is
    // framing + cache lookup + the instrumentation itself (counter bumps,
    // histogram records, span events on a detached trace). Run once as
    // compiled normally and once with `--features oociso-obs/no-obs` (which
    // compiles every recording path into a no-op); the two runs land under
    // different criterion ids, and the instrumented/baseline delta is the
    // overhead — the guard is that it stays under 2%.
    use oociso_core::{ClusterDatabase, PreprocessOptions};
    use oociso_serve::{Client, IsoServer, ServeOptions};
    let dims = Dims3::new(48, 48, 44);
    let vol = RmProxy::with_seed(7).volume(200, dims);
    let dir = std::env::temp_dir().join(format!("oociso_qbench_obs_{}", std::process::id()));
    ClusterDatabase::preprocess(&vol, &dir, &PreprocessOptions::default()).unwrap();
    let db = ClusterDatabase::<u8>::open(&dir, true).unwrap();
    let server = IsoServer::bind(db, ("127.0.0.1", 0), ServeOptions::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let isovalues = [90.0f32, 110.0, 130.0];
    for &iso in &isovalues {
        assert!(!client.query_mesh(iso, None).unwrap().cache_hit); // warm it
    }
    let mut group = c.benchmark_group("metrics_overhead");
    group.sample_size(20);
    group.throughput(Throughput::Elements(isovalues.len() as u64));
    let label = if oociso_obs::RECORDING {
        "instrumented"
    } else {
        "no_obs"
    };
    group.bench_function(BenchmarkId::new("warm_storm", label), |b| {
        b.iter(|| {
            for &iso in &isovalues {
                assert!(client.query_mesh(iso, None).unwrap().cache_hit);
            }
        })
    });
    group.finish();
    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

fn bench_client_storm(c: &mut Criterion) {
    // pipelined warm-cache storm against both serving cores: 16 clients each
    // write a burst of 8 mesh requests before reading any reply, so the
    // server sees genuine pipelining (the threaded core drains the burst one
    // frame at a time; the reactor decodes the whole buffer per wakeup and
    // releases replies in request order). Every request is a cache hit, so
    // the group prices the per-request serving overhead — framing, dispatch,
    // ordered write-out — not extraction.
    use oociso_core::{ClusterDatabase, PreprocessOptions};
    use oociso_serve::{Client, ClientOptions, IsoServer, Message, ServeOptions};
    let dims = Dims3::new(48, 48, 44);
    let vol = RmProxy::with_seed(7).volume(200, dims);
    let dir = std::env::temp_dir().join(format!("oociso_qbench_cstorm_{}", std::process::id()));
    ClusterDatabase::preprocess(&vol, &dir, &PreprocessOptions::default()).unwrap();
    let clients = 16usize;
    let depth = 8usize;
    let isovalues = [90.0f32, 110.0, 130.0];
    let burst: Vec<Message> = (0..depth)
        .map(|i| Message::MeshRequest {
            iso: isovalues[i % isovalues.len()],
            region: None,
            lod: 0,
            backend: None,
            trace_id: 0,
        })
        .collect();
    let mut cores: Vec<(&str, usize)> = vec![("threaded", 0)];
    if cfg!(target_os = "linux") {
        cores.push(("reactor", 2));
    }
    let mut group = c.benchmark_group("client_storm");
    group.sample_size(10);
    group.throughput(Throughput::Elements((clients * depth) as u64));
    for (name, reactor_threads) in cores {
        let db = ClusterDatabase::<u8>::open(&dir, true).unwrap();
        let server = IsoServer::bind(
            db,
            ("127.0.0.1", 0),
            ServeOptions {
                reactor_threads,
                ..Default::default()
            },
        )
        .unwrap();
        let addr = server.addr();
        // warm the cache so every benched request is a hit
        let mut warm = Client::connect(addr).unwrap();
        for &iso in &isovalues {
            warm.query_mesh(iso, None).unwrap();
        }
        drop(warm);
        group.bench_function(BenchmarkId::new("pipeline_16x8", name), |b| {
            b.iter(|| {
                std::thread::scope(|scope| {
                    for t in 0..clients {
                        let burst = &burst;
                        scope.spawn(move || {
                            let mut client = Client::connect_with(
                                addr,
                                ClientOptions {
                                    jitter_seed: 0xC0DE ^ t as u64,
                                    ..Default::default()
                                },
                            )
                            .unwrap();
                            let replies = client.pipeline(burst).unwrap();
                            assert_eq!(replies.len(), burst.len());
                        });
                    }
                });
            })
        });
        server.stop();
    }
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

fn bench_isovalue_scrub(c: &mut Criterion) {
    // the interactive scrub speculative warming exists for: one client
    // sweeps 8 isovalues 5.0 apart, dwelling ~60 ms on each stop (a human
    // dragging a slider), against a cold server. Measured time is the *sum
    // of per-stop query latencies* — dwell excluded — so the group prices
    // exactly what the user feels. With `warm_delta` matching the scrub
    // step, each miss extracts the next stop's pyramid on an idle spare
    // slot during the dwell, converting roughly every other stop from a
    // full extraction into a cache hit; the cold config pays a miss at
    // every stop. A fresh server (empty cache) per iteration keeps the
    // comparison honest.
    use oociso_core::{ClusterDatabase, PreprocessOptions};
    use oociso_serve::{Client, IsoServer, ServeOptions};
    let dims = Dims3::new(48, 48, 44);
    let vol = RmProxy::with_seed(7).volume(200, dims);
    let dir = std::env::temp_dir().join(format!("oociso_qbench_scrub_{}", std::process::id()));
    ClusterDatabase::preprocess(&vol, &dir, &PreprocessOptions::default()).unwrap();
    let stops: Vec<f32> = (0..8).map(|i| 90.0 + 5.0 * i as f32).collect();
    let dwell = Duration::from_millis(60);

    // one-time sanity pass outside the measurement loop: the warmed scrub
    // really does serve δ-neighbors from cache
    {
        let db = ClusterDatabase::<u8>::open(&dir, true).unwrap();
        let server = IsoServer::bind(
            db,
            ("127.0.0.1", 0),
            ServeOptions {
                warm_delta: Some(5.0),
                extraction_slots: Some(2),
                ..Default::default()
            },
        )
        .unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        let mut hits = 0u32;
        for &iso in &stops {
            std::thread::sleep(dwell);
            if client.query_mesh(iso, None).unwrap().cache_hit {
                hits += 1;
            }
        }
        server.stop();
        assert!(
            hits >= 3,
            "warmed scrub must hit δ-neighbors (got {hits}/8)"
        );
    }

    let mut group = c.benchmark_group("isovalue_scrub");
    group.sample_size(10);
    group.throughput(Throughput::Elements(stops.len() as u64));
    for (name, warm_delta) in [("cold", None), ("warmed", Some(5.0f32))] {
        group.bench_function(BenchmarkId::new("scrub_8x5", name), |b| {
            b.iter_custom(|iters| {
                let mut served = Duration::ZERO;
                for _ in 0..iters {
                    let db = ClusterDatabase::<u8>::open(&dir, true).unwrap();
                    let server = IsoServer::bind(
                        db,
                        ("127.0.0.1", 0),
                        ServeOptions {
                            warm_delta,
                            extraction_slots: Some(2),
                            ..Default::default()
                        },
                    )
                    .unwrap();
                    let mut client = Client::connect(server.addr()).unwrap();
                    for &iso in &stops {
                        std::thread::sleep(dwell);
                        let t0 = std::time::Instant::now();
                        client.query_mesh(iso, None).unwrap();
                        served += t0.elapsed();
                    }
                    server.stop();
                }
                served
            })
        });
    }
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(
    benches,
    bench_extract,
    bench_isovalue_sensitivity,
    bench_worker_scaling,
    bench_pipeline_overlap,
    bench_decimate,
    bench_admission_storm,
    bench_metrics_overhead,
    bench_client_storm,
    bench_isovalue_scrub
);
criterion_main!(benches);
