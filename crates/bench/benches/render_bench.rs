//! Criterion: rasterization and sort-last compositing.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use oociso_march::{marching_cubes, TriangleSoup, Vec3};
use oociso_render::{rasterize_soup, z_merge, Camera, Framebuffer, TileLayout};
use oociso_volume::field::{FieldExt, SphereField};
use oociso_volume::{Dims3, Volume};

fn sphere_soup() -> TriangleSoup {
    let vol: Volume<u8> = SphereField::centered(0.35, 128.0).sample(Dims3::cube(40));
    let mut soup = TriangleSoup::new();
    marching_cubes(&vol, 128.0, Vec3::ZERO, Vec3::new(1.0, 1.0, 1.0), &mut soup);
    soup
}

fn bench_raster(c: &mut Criterion) {
    let soup = sphere_soup();
    let camera = Camera::orbiting(&soup.bounds(), 0.7, 0.4, 2.5);
    let mut group = c.benchmark_group("raster");
    group.throughput(Throughput::Elements(soup.len() as u64));
    for res in [256usize, 512] {
        group.bench_function(format!("rasterize_{res}"), |b| {
            let mut fb = Framebuffer::new(res, res);
            b.iter(|| {
                fb.clear();
                rasterize_soup(&soup, &camera, [0.9, 0.8, 0.6], &mut fb)
            })
        });
    }
    group.finish();
}

fn bench_composite(c: &mut Criterion) {
    let soup = sphere_soup();
    let camera = Camera::orbiting(&soup.bounds(), 0.7, 0.4, 2.5);
    let res = 512;
    let mut fb = Framebuffer::new(res, res);
    rasterize_soup(&soup, &camera, [0.9, 0.8, 0.6], &mut fb);
    let buffers: Vec<Framebuffer> = (0..4).map(|_| fb.clone()).collect();
    let layout = TileLayout::paper_wall(res, res);

    let mut group = c.benchmark_group("composite");
    group.throughput(Throughput::Bytes(
        (res * res) as u64 * Framebuffer::BYTES_PER_PIXEL * 4,
    ));
    group.bench_function("sort_last_4node_512", |b| {
        b.iter(|| layout.composite(&buffers))
    });
    group.bench_function("z_merge_pair_512", |b| {
        b.iter(|| {
            let mut dst = buffers[0].clone();
            z_merge(&mut dst, &buffers[1]);
            dst
        })
    });
    group.finish();
}

criterion_group!(benches, bench_raster, bench_composite);
criterion_main!(benches);
