//! Criterion: striped preprocessing (scan + build + write).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oociso_cluster::{Cluster, ClusterBuildOptions};
use oociso_metacell::{scan_volume, MetacellLayout};
use oociso_volume::{Dims3, RmProxy, Volume};

fn bench_scan(c: &mut Criterion) {
    let dims = Dims3::new(64, 64, 60);
    let vol: Volume<u8> = RmProxy::with_seed(3).volume(150, dims);
    let layout = MetacellLayout::paper(dims);
    let mut group = c.benchmark_group("preprocess");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(dims.raw_bytes::<u8>() as u64));
    group.bench_function("metacell_scan", |b| b.iter(|| scan_volume(&vol, &layout)));
    group.finish();
}

fn bench_cluster_build(c: &mut Criterion) {
    let dims = Dims3::new(48, 48, 45);
    let vol: Volume<u8> = RmProxy::with_seed(3).volume(150, dims);
    let mut group = c.benchmark_group("cluster_build");
    group.sample_size(10);
    for &nodes in &[1usize, 4] {
        group.bench_with_input(BenchmarkId::new("build", nodes), &nodes, |b, &n| {
            b.iter(|| {
                let dir =
                    std::env::temp_dir().join(format!("oociso_sbench_{}_{n}", std::process::id()));
                let out = Cluster::build(
                    &vol,
                    &dir,
                    n,
                    &ClusterBuildOptions {
                        metacell_k: 9,
                        mmap: false,
                    },
                )
                .unwrap();
                std::fs::remove_dir_all(&dir).ok();
                out.1
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scan, bench_cluster_build);
criterion_main!(benches);
