//! Criterion: triangle generation — the slab-sliding indexed kernel vs the
//! naive reference Marching Cubes vs Marching Tetrahedra vs SurfaceNets.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use oociso_march::{
    marching_cubes, marching_cubes_indexed, marching_tetrahedra, surface_nets, IndexedMesh,
    SlabScratch, TriangleSoup, Vec3, SN_SMOOTH_PASSES,
};
use oociso_volume::field::{FieldExt, GyroidField, SphereField};
use oociso_volume::{Dims3, Volume};

fn bench_extractors(c: &mut Criterion) {
    let sphere: Volume<u8> = SphereField::centered(0.35, 128.0).sample(Dims3::cube(48));
    let gyroid: Volume<u8> = GyroidField {
        cells: 4.0,
        level: 128.0,
        amplitude: 80.0,
    }
    .sample(Dims3::cube(48));

    let mut group = c.benchmark_group("triangulation");
    let cells = 47u64 * 47 * 47;
    group.throughput(Throughput::Elements(cells));
    for (name, vol) in [("sphere", &sphere), ("gyroid", &gyroid)] {
        // naive reference kernel (bounds-checked gathers, unindexed soup)
        group.bench_function(format!("mc_naive_{name}"), |b| {
            b.iter(|| {
                let mut soup = TriangleSoup::new();
                marching_cubes(vol, 128.0, Vec3::ZERO, Vec3::new(1.0, 1.0, 1.0), &mut soup);
                soup
            })
        });
        // slab-sliding kernel, indexed output, reused scratch
        let mut scratch = SlabScratch::new();
        group.bench_function(format!("mc_slab_{name}"), |b| {
            b.iter(|| {
                let mut mesh = IndexedMesh::new();
                marching_cubes_indexed(
                    vol,
                    128.0,
                    Vec3::ZERO,
                    Vec3::new(1.0, 1.0, 1.0),
                    &mut mesh,
                    &mut scratch,
                );
                mesh
            })
        });
        group.bench_function(format!("mt_{name}"), |b| {
            b.iter(|| {
                let mut soup = TriangleSoup::new();
                marching_tetrahedra(vol, 128.0, Vec3::ZERO, Vec3::new(1.0, 1.0, 1.0), &mut soup);
                soup
            })
        });
        // SurfaceNets: one vertex per active cell, quads on crossing edges,
        // smoothing passes included (the same path the pipeline runs)
        group.bench_function(format!("sn_{name}"), |b| {
            b.iter(|| {
                let mut mesh = IndexedMesh::new();
                surface_nets(
                    vol,
                    128.0,
                    Vec3::ZERO,
                    Vec3::new(1.0, 1.0, 1.0),
                    SN_SMOOTH_PASSES,
                    &mut mesh,
                );
                mesh
            })
        });
        // primitive budgets for the matrix in docs/BENCH_march.json: SN
        // matches MC's triangle count but halves the primitive count (quads)
        let mut mc_mesh = IndexedMesh::new();
        marching_cubes_indexed(
            vol,
            128.0,
            Vec3::ZERO,
            Vec3::new(1.0, 1.0, 1.0),
            &mut mc_mesh,
            &mut SlabScratch::new(),
        );
        let mut sn_mesh = IndexedMesh::new();
        surface_nets(
            vol,
            128.0,
            Vec3::ZERO,
            Vec3::new(1.0, 1.0, 1.0),
            SN_SMOOTH_PASSES,
            &mut sn_mesh,
        );
        eprintln!(
            "[counts] {name}: mc {} tris / {} verts, sn {} tris ({} quads) / {} verts",
            mc_mesh.len(),
            mc_mesh.num_vertices(),
            sn_mesh.len(),
            sn_mesh.len() / 2,
            sn_mesh.num_vertices()
        );
    }
    group.finish();
}

fn bench_metacell_unit(c: &mut Criterion) {
    // one 9×9×9 metacell — the per-record unit of the pipeline
    let cell: Volume<u8> = SphereField::centered(0.4, 128.0).sample(Dims3::cube(9));
    c.bench_function("mc_one_metacell_naive", |b| {
        b.iter(|| {
            let mut soup = TriangleSoup::new();
            marching_cubes(
                &cell,
                128.0,
                Vec3::ZERO,
                Vec3::new(1.0, 1.0, 1.0),
                &mut soup,
            );
            soup
        })
    });
    let mut scratch = SlabScratch::new();
    c.bench_function("mc_one_metacell_slab", |b| {
        b.iter(|| {
            let mut mesh = IndexedMesh::new();
            marching_cubes_indexed(
                &cell,
                128.0,
                Vec3::ZERO,
                Vec3::new(1.0, 1.0, 1.0),
                &mut mesh,
                &mut scratch,
            );
            mesh
        })
    });
}

criterion_group!(benches, bench_extractors, bench_metacell_unit);
criterion_main!(benches);
