//! Criterion: triangle generation — the slab-sliding indexed kernel vs the
//! naive reference Marching Cubes vs Marching Tetrahedra.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use oociso_march::{
    marching_cubes, marching_cubes_indexed, marching_tetrahedra, IndexedMesh, SlabScratch,
    TriangleSoup, Vec3,
};
use oociso_volume::field::{FieldExt, GyroidField, SphereField};
use oociso_volume::{Dims3, Volume};

fn bench_extractors(c: &mut Criterion) {
    let sphere: Volume<u8> = SphereField::centered(0.35, 128.0).sample(Dims3::cube(48));
    let gyroid: Volume<u8> = GyroidField {
        cells: 4.0,
        level: 128.0,
        amplitude: 80.0,
    }
    .sample(Dims3::cube(48));

    let mut group = c.benchmark_group("triangulation");
    let cells = 47u64 * 47 * 47;
    group.throughput(Throughput::Elements(cells));
    for (name, vol) in [("sphere", &sphere), ("gyroid", &gyroid)] {
        // naive reference kernel (bounds-checked gathers, unindexed soup)
        group.bench_function(format!("mc_naive_{name}"), |b| {
            b.iter(|| {
                let mut soup = TriangleSoup::new();
                marching_cubes(vol, 128.0, Vec3::ZERO, Vec3::new(1.0, 1.0, 1.0), &mut soup);
                soup
            })
        });
        // slab-sliding kernel, indexed output, reused scratch
        let mut scratch = SlabScratch::new();
        group.bench_function(format!("mc_slab_{name}"), |b| {
            b.iter(|| {
                let mut mesh = IndexedMesh::new();
                marching_cubes_indexed(
                    vol,
                    128.0,
                    Vec3::ZERO,
                    Vec3::new(1.0, 1.0, 1.0),
                    &mut mesh,
                    &mut scratch,
                );
                mesh
            })
        });
        group.bench_function(format!("mt_{name}"), |b| {
            b.iter(|| {
                let mut soup = TriangleSoup::new();
                marching_tetrahedra(vol, 128.0, Vec3::ZERO, Vec3::new(1.0, 1.0, 1.0), &mut soup);
                soup
            })
        });
    }
    group.finish();
}

fn bench_metacell_unit(c: &mut Criterion) {
    // one 9×9×9 metacell — the per-record unit of the pipeline
    let cell: Volume<u8> = SphereField::centered(0.4, 128.0).sample(Dims3::cube(9));
    c.bench_function("mc_one_metacell_naive", |b| {
        b.iter(|| {
            let mut soup = TriangleSoup::new();
            marching_cubes(
                &cell,
                128.0,
                Vec3::ZERO,
                Vec3::new(1.0, 1.0, 1.0),
                &mut soup,
            );
            soup
        })
    });
    let mut scratch = SlabScratch::new();
    c.bench_function("mc_one_metacell_slab", |b| {
        b.iter(|| {
            let mut mesh = IndexedMesh::new();
            marching_cubes_indexed(
                &cell,
                128.0,
                Vec3::ZERO,
                Vec3::new(1.0, 1.0, 1.0),
                &mut mesh,
                &mut scratch,
            );
            mesh
        })
    });
}

criterion_group!(benches, bench_extractors, bench_metacell_unit);
criterion_main!(benches);
