//! Criterion: index construction — compact vs standard interval tree.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oociso_itree::{CompactIntervalTree, StandardIntervalTree};
use oociso_metacell::MetacellInterval;

fn synth_intervals(n: u32, endpoints: u32) -> Vec<MetacellInterval> {
    (0..n)
        .map(|i| {
            let lo = (i.wrapping_mul(2654435761)) % endpoints;
            let span = 1 + (i.wrapping_mul(40503)) % (endpoints / 4).max(1);
            MetacellInterval::new(i, lo, (lo + span).min(endpoints))
        })
        .collect()
}

fn bench_builds(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_build");
    for &n in &[1_000u32, 10_000, 50_000] {
        let intervals = synth_intervals(n, 255);
        group.bench_with_input(BenchmarkId::new("compact", n), &intervals, |b, iv| {
            b.iter(|| {
                let mut cursor = 0u64;
                CompactIntervalTree::build(iv, &mut |_| {
                    let s = oociso_exio::Span {
                        offset: cursor,
                        len: 734,
                    };
                    cursor += 734;
                    Ok(s)
                })
                .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("standard", n), &intervals, |b, iv| {
            b.iter(|| StandardIntervalTree::build(iv))
        });
    }
    group.finish();
}

fn bench_planning(c: &mut Criterion) {
    let intervals = synth_intervals(50_000, 255);
    let mut cursor = 0u64;
    let tree = CompactIntervalTree::build(&intervals, &mut |_| {
        let s = oociso_exio::Span {
            offset: cursor,
            len: 734,
        };
        cursor += 734;
        Ok(s)
    })
    .unwrap();
    let std_tree = StandardIntervalTree::build(&intervals);
    let mut group = c.benchmark_group("query_plan");
    group.bench_function("compact_plan", |b| {
        let mut iso = 0u32;
        b.iter(|| {
            iso = (iso + 37) % 255;
            tree.plan(iso)
        })
    });
    group.bench_function("standard_stab", |b| {
        let mut iso = 0u32;
        b.iter(|| {
            iso = (iso + 37) % 255;
            std_tree.stab(iso)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_builds, bench_planning);
criterion_main!(benches);
