//! Disk-time cost model.
//!
//! Our benchmarks run on hardware far faster than the paper's 2006 SCSI
//! disks, so measured wall-clock I/O times cannot be compared directly. The
//! cost model translates the counted I/O operations into *modeled seconds*
//! under explicit disk constants, defaulting to the paper's: 50 MB/s transfer
//! rate (section 6) and a conventional ~8 ms average seek for disks of that
//! era. The model is deliberately simple — `seeks × t_seek + bytes / rate` —
//! because that is the level at which the paper reasons ("we are able to
//! achieve the I/O rate of about 50 MB/s in retrieving the active metacells").

use crate::stats::IoSnapshot;
use std::time::Duration;

/// Disk timing constants for the modeled-time computation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IoCostModel {
    /// Disk block size in bytes.
    pub block_bytes: u64,
    /// Average positioning (seek + rotational) latency per non-sequential read.
    pub seek: Duration,
    /// Sustained sequential transfer rate, bytes per second.
    pub bytes_per_sec: f64,
}

impl IoCostModel {
    /// The paper's cluster disk: 60 GB local disk at 50 MB/s, 8 KB blocks,
    /// ~8 ms seek.
    pub fn paper_disk() -> Self {
        IoCostModel {
            block_bytes: 8192,
            seek: Duration::from_micros(8000),
            bytes_per_sec: 50.0e6,
        }
    }

    /// A modern NVMe-style device (for contrast experiments).
    pub fn nvme() -> Self {
        IoCostModel {
            block_bytes: 4096,
            seek: Duration::from_micros(80),
            bytes_per_sec: 3.0e9,
        }
    }

    /// Modeled disk time for a snapshot of I/O counters. Forward-skip gap
    /// bytes are charged at the transfer rate — the head reads through short
    /// gaps instead of seeking (the devices' forward window defaults to
    /// `seek_time × rate`, past which a seek is cheaper and is counted as
    /// one by the accounting layer).
    pub fn modeled_time(&self, io: &IoSnapshot) -> Duration {
        let seek = self.seek.as_secs_f64() * io.seeks as f64;
        let xfer = (io.bytes_read + io.skip_bytes) as f64 / self.bytes_per_sec;
        Duration::from_secs_f64(seek + xfer)
    }

    /// Modeled time to transfer `bytes` purely sequentially (one seek).
    pub fn sequential_time(&self, bytes: u64) -> Duration {
        self.modeled_time(&IoSnapshot {
            read_calls: 1,
            seeks: 1,
            forward_skips: 0,
            skip_bytes: 0,
            sequential_reads: 0,
            bytes_read: bytes,
            blocks_read: bytes.div_ceil(self.block_bytes),
        })
    }

    /// The minimum number of block transfers needed to read `bytes` of
    /// output — the `T/B` term of the paper's I/O-optimality bound.
    pub fn optimal_blocks(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.block_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_disk_constants() {
        let m = IoCostModel::paper_disk();
        assert_eq!(m.block_bytes, 8192);
        assert_eq!(m.bytes_per_sec, 50.0e6);
    }

    #[test]
    fn fifty_mb_takes_one_second() {
        let m = IoCostModel::paper_disk();
        let t = m.modeled_time(&IoSnapshot {
            read_calls: 1,
            seeks: 1,
            forward_skips: 0,
            skip_bytes: 0,
            sequential_reads: 0,
            bytes_read: 50_000_000,
            blocks_read: 6104,
        });
        let secs = t.as_secs_f64();
        assert!((secs - 1.008).abs() < 1e-3, "got {secs}");
    }

    #[test]
    fn seeks_dominate_small_scattered_reads() {
        let m = IoCostModel::paper_disk();
        let scattered = m.modeled_time(&IoSnapshot {
            read_calls: 1000,
            seeks: 1000,
            forward_skips: 0,
            skip_bytes: 0,
            sequential_reads: 0,
            bytes_read: 8192 * 1000,
            blocks_read: 1000,
        });
        let sequential = m.modeled_time(&IoSnapshot {
            read_calls: 1000,
            seeks: 1,
            forward_skips: 0,
            skip_bytes: 0,
            sequential_reads: 999,
            bytes_read: 8192 * 1000,
            blocks_read: 1000,
        });
        assert!(scattered > sequential * 10);
    }

    #[test]
    fn optimal_blocks_rounds_up() {
        let m = IoCostModel::paper_disk();
        assert_eq!(m.optimal_blocks(1), 1);
        assert_eq!(m.optimal_blocks(8192), 1);
        assert_eq!(m.optimal_blocks(8193), 2);
        assert_eq!(m.optimal_blocks(0), 0);
    }

    #[test]
    fn nvme_much_faster() {
        let io = IoSnapshot {
            read_calls: 100,
            seeks: 100,
            forward_skips: 0,
            skip_bytes: 0,
            sequential_reads: 0,
            bytes_read: 10_000_000,
            blocks_read: 2442,
        };
        assert!(
            IoCostModel::nvme().modeled_time(&io)
                < IoCostModel::paper_disk().modeled_time(&io) / 50
        );
    }
}
