//! Append-only record stores.
//!
//! The compact interval tree lays metacells out as *bricks*: runs of
//! variable-length records stored contiguously, addressed by byte spans. A
//! [`RecordStoreWriter`] appends records during preprocessing and returns
//! their spans; a [`RecordStore`] serves ranged reads at query time through
//! any [`BlockDevice`] backend.

use crate::device::{BlockDevice, FileDevice, MemDevice};
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

/// A byte range inside a store: `[offset, offset + len)`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Span {
    pub offset: u64,
    pub len: u64,
}

impl Span {
    /// The empty span at a position.
    pub fn empty_at(offset: u64) -> Self {
        Span { offset, len: 0 }
    }

    /// End offset (exclusive).
    #[inline]
    pub fn end(&self) -> u64 {
        self.offset + self.len
    }

    /// Whether this span directly precedes `next` (contiguity check used to
    /// coalesce brick reads into bulk transfers).
    #[inline]
    pub fn abuts(&self, next: &Span) -> bool {
        self.end() == next.offset
    }

    /// Union of two *abutting* spans. Panics (release builds included) if the
    /// spans do not abut — a silent join of disjoint spans would fabricate a
    /// byte range covering unrelated records. Callers that may legitimately
    /// see gaps use [`Span::try_join`] and handle `None`.
    pub fn join(&self, next: &Span) -> Span {
        assert!(
            self.abuts(next),
            "Span::join on non-abutting spans: {self:?} then {next:?}"
        );
        Span {
            offset: self.offset,
            len: self.len + next.len,
        }
    }

    /// Union of two spans if they abut, `None` otherwise.
    pub fn try_join(&self, next: &Span) -> Option<Span> {
        self.abuts(next).then(|| Span {
            offset: self.offset,
            len: self.len + next.len,
        })
    }
}

/// Sequential writer producing a record store file.
pub struct RecordStoreWriter {
    out: BufWriter<File>,
    path: PathBuf,
    cursor: u64,
}

impl RecordStoreWriter {
    /// Create (truncate) the store file at `path`.
    pub fn create(path: &Path) -> io::Result<Self> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        Ok(RecordStoreWriter {
            out: BufWriter::with_capacity(1 << 20, File::create(path)?),
            path: path.to_path_buf(),
            cursor: 0,
        })
    }

    /// Append one record; returns its span.
    pub fn append(&mut self, record: &[u8]) -> io::Result<Span> {
        let span = Span {
            offset: self.cursor,
            len: record.len() as u64,
        };
        self.out.write_all(record)?;
        self.cursor += record.len() as u64;
        Ok(span)
    }

    /// Bytes written so far.
    pub fn position(&self) -> u64 {
        self.cursor
    }

    /// Flush and close, returning the file path.
    pub fn finish(mut self) -> io::Result<PathBuf> {
        self.out.flush()?;
        Ok(self.path)
    }
}

/// A read-only record store over any block device.
pub struct RecordStore {
    device: Box<dyn BlockDevice>,
}

impl RecordStore {
    /// Open a store file with positioned reads.
    pub fn open(path: &Path) -> io::Result<Self> {
        Ok(RecordStore {
            device: Box::new(FileDevice::open(path)?),
        })
    }

    /// Open a store file memory-mapped.
    pub fn open_mmap(path: &Path) -> io::Result<Self> {
        Ok(RecordStore {
            device: Box::new(FileDevice::open_mmap(path)?),
        })
    }

    /// Store over an in-memory buffer (tests, I/O modeling).
    pub fn in_memory(data: Vec<u8>) -> Self {
        RecordStore {
            device: Box::new(MemDevice::new(data)),
        }
    }

    /// Wrap an arbitrary device.
    pub fn from_device(device: Box<dyn BlockDevice>) -> Self {
        RecordStore { device }
    }

    /// Read the bytes of a span.
    pub fn read_span(&self, span: Span) -> io::Result<Vec<u8>> {
        self.device.read_vec(span.offset, span.len as usize)
    }

    /// Read a span into the caller's buffer (must be exactly `span.len` long).
    pub fn read_span_into(&self, span: Span, buf: &mut [u8]) -> io::Result<()> {
        debug_assert_eq!(buf.len() as u64, span.len);
        self.device.read_at(span.offset, buf)
    }

    /// Underlying device (for stats inspection).
    pub fn device(&self) -> &dyn BlockDevice {
        self.device.as_ref()
    }

    /// Total store length in bytes.
    pub fn len(&self) -> u64 {
        self.device.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.device.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("oociso_store_{}_{}", std::process::id(), name));
        p
    }

    #[test]
    fn span_arithmetic() {
        let a = Span { offset: 0, len: 10 };
        let b = Span { offset: 10, len: 5 };
        assert!(a.abuts(&b));
        assert_eq!(a.join(&b), Span { offset: 0, len: 15 });
        assert_eq!(a.try_join(&b), Some(Span { offset: 0, len: 15 }));
        assert!(!b.abuts(&a));
        assert_eq!(b.try_join(&a), None);
        assert_eq!(a.end(), 10);
    }

    #[test]
    #[should_panic(expected = "non-abutting")]
    fn join_of_disjoint_spans_panics() {
        let a = Span { offset: 0, len: 10 };
        let gap = Span { offset: 12, len: 5 };
        let _ = a.join(&gap);
    }

    #[test]
    fn write_read_roundtrip() {
        let p = tmp("rt.store");
        let mut w = RecordStoreWriter::create(&p).unwrap();
        let s1 = w.append(b"hello").unwrap();
        let s2 = w.append(b"world!!").unwrap();
        let s3 = w.append(b"").unwrap();
        assert_eq!(w.position(), 12);
        w.finish().unwrap();

        let store = RecordStore::open(&p).unwrap();
        assert_eq!(store.read_span(s1).unwrap(), b"hello");
        assert_eq!(store.read_span(s2).unwrap(), b"world!!");
        assert_eq!(store.read_span(s3).unwrap(), b"");
        assert_eq!(store.len(), 12);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn spans_are_contiguous() {
        let p = tmp("contig.store");
        let mut w = RecordStoreWriter::create(&p).unwrap();
        let mut prev: Option<Span> = None;
        for i in 0..20u8 {
            let rec = vec![i; (i as usize % 5) + 1];
            let s = w.append(&rec).unwrap();
            if let Some(pv) = prev {
                assert!(pv.abuts(&s));
            }
            prev = Some(s);
        }
        w.finish().unwrap();
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn in_memory_store() {
        let store = RecordStore::in_memory(vec![1, 2, 3, 4, 5]);
        assert_eq!(
            store.read_span(Span { offset: 1, len: 3 }).unwrap(),
            vec![2, 3, 4]
        );
        assert_eq!(store.device().io_snapshot().read_calls, 1);
    }

    #[test]
    fn mmap_backend_equivalent() {
        let p = tmp("mm.store");
        let mut w = RecordStoreWriter::create(&p).unwrap();
        let s = w.append(&vec![9u8; 1000]).unwrap();
        w.finish().unwrap();
        let a = RecordStore::open(&p).unwrap().read_span(s).unwrap();
        let b = RecordStore::open_mmap(&p).unwrap().read_span(s).unwrap();
        assert_eq!(a, b);
        std::fs::remove_file(&p).ok();
    }
}
