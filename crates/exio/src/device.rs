//! Block devices: positioned reads with I/O accounting.

use crate::stats::{IoSnapshot, IoStats, DEFAULT_FORWARD_WINDOW};
use crate::DEFAULT_BLOCK_BYTES;
use memmap2::Mmap;
use std::fs::File;
use std::io;
use std::path::Path;
use std::sync::Arc;

/// A readable device addressed by byte offset. All reads are accounted
/// against the device's [`IoStats`].
pub trait BlockDevice: Send + Sync {
    /// Read exactly `buf.len()` bytes starting at `offset`.
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()>;

    /// Total device length in bytes.
    fn len(&self) -> u64;

    /// Whether the device holds no data.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Shared I/O counters for this device.
    fn stats(&self) -> &IoStats;

    /// Convenience: snapshot of the counters.
    fn io_snapshot(&self) -> IoSnapshot {
        self.stats().snapshot()
    }

    /// Block size used for block-transfer accounting.
    fn block_bytes(&self) -> u64 {
        DEFAULT_BLOCK_BYTES
    }

    /// Read a fresh vector of `len` bytes at `offset`.
    fn read_vec(&self, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        let mut v = vec![0u8; len];
        self.read_at(offset, &mut v)?;
        Ok(v)
    }
}

enum FileBacking {
    /// Positioned reads through the OS (`pread`).
    Pread(File),
    /// Memory-mapped file; reads are slice copies. I/O is still accounted
    /// identically so modeled times are backend-independent.
    Mapped(Mmap),
}

/// A read-only device over a file on disk.
pub struct FileDevice {
    backing: FileBacking,
    len: u64,
    stats: Arc<IoStats>,
    block_bytes: u64,
    forward_window: u64,
}

impl FileDevice {
    /// Open with positioned reads (no mapping).
    pub fn open(path: &Path) -> io::Result<Self> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        Ok(FileDevice {
            backing: FileBacking::Pread(file),
            len,
            stats: Arc::new(IoStats::new()),
            block_bytes: DEFAULT_BLOCK_BYTES,
            forward_window: DEFAULT_FORWARD_WINDOW,
        })
    }

    /// Open memory-mapped (zero-copy page-cache reads).
    pub fn open_mmap(path: &Path) -> io::Result<Self> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        // SAFETY: the store files are written once during preprocessing and
        // never mutated afterwards; mapping a read-only file we own is sound.
        let map = unsafe { Mmap::map(&file)? };
        Ok(FileDevice {
            backing: FileBacking::Mapped(map),
            len,
            stats: Arc::new(IoStats::new()),
            block_bytes: DEFAULT_BLOCK_BYTES,
            forward_window: DEFAULT_FORWARD_WINDOW,
        })
    }

    /// Override the accounting block size.
    pub fn with_block_bytes(mut self, block: u64) -> Self {
        assert!(block > 0);
        self.block_bytes = block;
        self
    }

    /// Override the forward-skip window.
    pub fn with_forward_window(mut self, window: u64) -> Self {
        self.forward_window = window;
        self
    }

    /// Clone a handle to the shared stats (e.g. to keep after dropping the device).
    pub fn stats_handle(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }
}

impl BlockDevice for FileDevice {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        self.stats.record_read(
            offset,
            buf.len() as u64,
            self.block_bytes,
            self.forward_window,
        );
        if offset + buf.len() as u64 > self.len {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "read past end of device",
            ));
        }
        match &self.backing {
            FileBacking::Pread(file) => {
                #[cfg(unix)]
                {
                    use std::os::unix::fs::FileExt;
                    file.read_exact_at(buf, offset)
                }
                #[cfg(not(unix))]
                {
                    compile_error!("FileDevice requires a unix platform");
                }
            }
            FileBacking::Mapped(map) => {
                let start = offset as usize;
                buf.copy_from_slice(&map[start..start + buf.len()]);
                Ok(())
            }
        }
    }

    fn len(&self) -> u64 {
        self.len
    }

    fn stats(&self) -> &IoStats {
        &self.stats
    }

    fn block_bytes(&self) -> u64 {
        self.block_bytes
    }
}

/// An in-memory device for unit tests and pure I/O-model experiments.
pub struct MemDevice {
    data: Vec<u8>,
    stats: IoStats,
    block_bytes: u64,
    forward_window: u64,
}

impl MemDevice {
    /// Device over the given bytes.
    pub fn new(data: Vec<u8>) -> Self {
        MemDevice {
            data,
            stats: IoStats::new(),
            block_bytes: DEFAULT_BLOCK_BYTES,
            forward_window: DEFAULT_FORWARD_WINDOW,
        }
    }

    /// Override the accounting block size.
    pub fn with_block_bytes(mut self, block: u64) -> Self {
        assert!(block > 0);
        self.block_bytes = block;
        self
    }

    /// Override the forward-skip window.
    pub fn with_forward_window(mut self, window: u64) -> Self {
        self.forward_window = window;
        self
    }
}

impl BlockDevice for MemDevice {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        self.stats.record_read(
            offset,
            buf.len() as u64,
            self.block_bytes,
            self.forward_window,
        );
        let start = offset as usize;
        let end = start + buf.len();
        if end > self.data.len() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "read past end of device",
            ));
        }
        buf.copy_from_slice(&self.data[start..end]);
        Ok(())
    }

    fn len(&self) -> u64 {
        self.data.len() as u64
    }

    fn stats(&self) -> &IoStats {
        &self.stats
    }

    fn block_bytes(&self) -> u64 {
        self.block_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("oociso_dev_{}_{}", std::process::id(), name));
        p
    }

    #[test]
    fn mem_device_reads() {
        let d = MemDevice::new((0..100u8).collect());
        let mut buf = [0u8; 5];
        d.read_at(10, &mut buf).unwrap();
        assert_eq!(buf, [10, 11, 12, 13, 14]);
        assert_eq!(d.io_snapshot().bytes_read, 5);
    }

    #[test]
    fn mem_device_eof() {
        let d = MemDevice::new(vec![0; 10]);
        let mut buf = [0u8; 5];
        assert!(d.read_at(8, &mut buf).is_err());
    }

    #[test]
    fn file_device_pread_and_mmap_agree() {
        let p = tmp("fd.bin");
        let data: Vec<u8> = (0..255u8).cycle().take(100_000).collect();
        std::fs::write(&p, &data).unwrap();
        let fd = FileDevice::open(&p).unwrap();
        let md = FileDevice::open_mmap(&p).unwrap();
        for (off, len) in [(0u64, 10usize), (9999, 1000), (99_990, 10)] {
            let a = fd.read_vec(off, len).unwrap();
            let b = md.read_vec(off, len).unwrap();
            assert_eq!(a, b);
            assert_eq!(&a[..], &data[off as usize..off as usize + len]);
        }
        assert_eq!(fd.len(), 100_000);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn file_device_eof_detected() {
        let p = tmp("eof.bin");
        std::fs::write(&p, vec![0u8; 100]).unwrap();
        let fd = FileDevice::open(&p).unwrap();
        let mut buf = [0u8; 10];
        assert!(fd.read_at(95, &mut buf).is_err());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn sequential_detection_through_device() {
        let d = MemDevice::new(vec![7u8; 4096]).with_block_bytes(512);
        let mut b = [0u8; 1024];
        d.read_at(0, &mut b).unwrap();
        d.read_at(1024, &mut b).unwrap();
        d.read_at(2048, &mut b).unwrap();
        let s = d.io_snapshot();
        assert_eq!(s.seeks, 1);
        assert_eq!(s.sequential_reads, 2);
        assert_eq!(s.blocks_read, 6);
    }
}
