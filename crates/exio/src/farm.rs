//! Disk farms: one independent store per cluster node.
//!
//! The paper's parallel scheme assumes "a multiprocessor environment in which
//! each node has access to its own local disk". A [`DiskFarm`] materializes
//! that as `p` record-store files in a directory, created together during
//! preprocessing (when bricks are striped) and opened together at query time.

use crate::store::{RecordStore, RecordStoreWriter};
use std::io;
use std::path::{Path, PathBuf};

/// Naming scheme for per-node store files.
fn node_store_path(dir: &Path, node: usize) -> PathBuf {
    dir.join(format!("node{node:03}.bricks"))
}

/// A set of `p` independent per-node stores under one directory.
pub struct DiskFarm {
    dir: PathBuf,
    nodes: usize,
}

impl DiskFarm {
    /// Describe a farm of `nodes` stores under `dir` (no I/O yet).
    pub fn new(dir: &Path, nodes: usize) -> Self {
        assert!(nodes > 0, "a farm needs at least one node");
        DiskFarm {
            dir: dir.to_path_buf(),
            nodes,
        }
    }

    /// Number of nodes (= local disks).
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Directory holding the store files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of one node's store file.
    pub fn store_path(&self, node: usize) -> PathBuf {
        assert!(node < self.nodes);
        node_store_path(&self.dir, node)
    }

    /// Create writers for every node store (truncating any existing files).
    pub fn create_writers(&self) -> io::Result<Vec<RecordStoreWriter>> {
        std::fs::create_dir_all(&self.dir)?;
        (0..self.nodes)
            .map(|i| RecordStoreWriter::create(&self.store_path(i)))
            .collect()
    }

    /// Open every node store for reading.
    pub fn open_stores(&self, mmap: bool) -> io::Result<Vec<RecordStore>> {
        (0..self.nodes)
            .map(|i| {
                let p = self.store_path(i);
                if mmap {
                    RecordStore::open_mmap(&p)
                } else {
                    RecordStore::open(&p)
                }
            })
            .collect()
    }

    /// Open a single node's store.
    pub fn open_store(&self, node: usize, mmap: bool) -> io::Result<RecordStore> {
        let p = self.store_path(node);
        if mmap {
            RecordStore::open_mmap(&p)
        } else {
            RecordStore::open(&p)
        }
    }

    /// Total bytes across all node stores.
    pub fn total_bytes(&self) -> io::Result<u64> {
        let mut total = 0;
        for i in 0..self.nodes {
            total += std::fs::metadata(self.store_path(i))?.len();
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("oociso_farm_{}_{}", std::process::id(), name));
        p
    }

    #[test]
    fn farm_creates_p_stores() {
        let dir = tmpdir("create");
        let farm = DiskFarm::new(&dir, 4);
        let mut writers = farm.create_writers().unwrap();
        assert_eq!(writers.len(), 4);
        for (i, w) in writers.iter_mut().enumerate() {
            w.append(&[i as u8; 16]).unwrap();
        }
        for w in writers {
            w.finish().unwrap();
        }
        assert_eq!(farm.total_bytes().unwrap(), 64);
        let stores = farm.open_stores(false).unwrap();
        assert_eq!(stores.len(), 4);
        for (i, s) in stores.iter().enumerate() {
            let v = s.read_span(crate::Span { offset: 0, len: 16 }).unwrap();
            assert!(v.iter().all(|&b| b == i as u8));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn store_paths_distinct_and_stable() {
        let farm = DiskFarm::new(Path::new("/tmp/x"), 3);
        let p0 = farm.store_path(0);
        let p1 = farm.store_path(1);
        assert_ne!(p0, p1);
        assert_eq!(p0, farm.store_path(0));
    }

    #[test]
    #[should_panic]
    fn zero_nodes_rejected() {
        let _ = DiskFarm::new(Path::new("/tmp/x"), 0);
    }

    #[test]
    fn mmap_open_works() {
        let dir = tmpdir("mmap");
        let farm = DiskFarm::new(&dir, 2);
        let writers = farm.create_writers().unwrap();
        for mut w in writers {
            w.append(b"abcdef").unwrap();
            w.finish().unwrap();
        }
        let stores = farm.open_stores(true).unwrap();
        assert_eq!(
            stores[1]
                .read_span(crate::Span { offset: 0, len: 6 })
                .unwrap(),
            b"abcdef"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
