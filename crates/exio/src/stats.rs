//! I/O accounting: seeks, forward skips, sequential continuations, bytes and
//! block transfers.
//!
//! Counters are lock-free atomics so they can be shared by reference across
//! the cluster's node threads. Each read is classified against the previous
//! read's end offset:
//!
//! * **sequential** — begins exactly where the last read ended (no head
//!   movement);
//! * **forward skip** — begins a short distance ahead (gap ≤ the device's
//!   forward window): a disk head passes over the gap at transfer rate, so
//!   the *gap bytes* are charged like read bytes, not like a seek. This is
//!   how Case 2 of the query — prefix reads of consecutive bricks laid out
//!   contiguously — achieves the paper's full-bandwidth retrieval;
//! * **seek** — anything else (backward motion or a long jump).
//!
//! The default forward window is 512 KB ≈ `seek_time × transfer_rate` for
//! the paper's disk (8 ms × 50 MB/s = 400 KB): beyond that, seeking is
//! cheaper than reading through, so a long gap is counted as a seek.

use crate::block::blocks_spanned;
use std::sync::atomic::{AtomicU64, Ordering};

/// Default forward-skip window (bytes): gaps up to this are read through.
pub const DEFAULT_FORWARD_WINDOW: u64 = 512 * 1024;

/// Shared, thread-safe I/O counters for one device.
#[derive(Debug, Default)]
pub struct IoStats {
    read_calls: AtomicU64,
    seeks: AtomicU64,
    forward_skips: AtomicU64,
    skip_bytes: AtomicU64,
    sequential_reads: AtomicU64,
    bytes_read: AtomicU64,
    blocks_read: AtomicU64,
    /// End offset of the most recent read (for sequentiality detection).
    last_end: AtomicU64,
    /// Whether any read has happened (so the first read is always a seek).
    touched: AtomicU64,
}

impl IoStats {
    /// Fresh counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a read of `len` bytes at `offset` against block size `block`,
    /// classifying gaps up to `forward_window` as skips.
    pub fn record_read(&self, offset: u64, len: u64, block: u64, forward_window: u64) {
        self.read_calls.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(len, Ordering::Relaxed);
        self.blocks_read
            .fetch_add(blocks_spanned(offset, len, block), Ordering::Relaxed);
        let was_touched = self.touched.swap(1, Ordering::Relaxed) == 1;
        let prev_end = self.last_end.swap(offset + len, Ordering::Relaxed);
        if !was_touched {
            self.seeks.fetch_add(1, Ordering::Relaxed);
        } else if prev_end == offset {
            self.sequential_reads.fetch_add(1, Ordering::Relaxed);
        } else if offset > prev_end && offset - prev_end <= forward_window {
            self.forward_skips.fetch_add(1, Ordering::Relaxed);
            self.skip_bytes
                .fetch_add(offset - prev_end, Ordering::Relaxed);
        } else {
            self.seeks.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Reset all counters.
    pub fn reset(&self) {
        self.read_calls.store(0, Ordering::Relaxed);
        self.seeks.store(0, Ordering::Relaxed);
        self.forward_skips.store(0, Ordering::Relaxed);
        self.skip_bytes.store(0, Ordering::Relaxed);
        self.sequential_reads.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
        self.blocks_read.store(0, Ordering::Relaxed);
        self.last_end.store(0, Ordering::Relaxed);
        self.touched.store(0, Ordering::Relaxed);
    }

    /// Capture the current counter values.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            read_calls: self.read_calls.load(Ordering::Relaxed),
            seeks: self.seeks.load(Ordering::Relaxed),
            forward_skips: self.forward_skips.load(Ordering::Relaxed),
            skip_bytes: self.skip_bytes.load(Ordering::Relaxed),
            sequential_reads: self.sequential_reads.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            blocks_read: self.blocks_read.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`IoStats`] counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    pub read_calls: u64,
    pub seeks: u64,
    pub forward_skips: u64,
    /// Gap bytes passed over by forward skips (charged at transfer rate).
    pub skip_bytes: u64,
    pub sequential_reads: u64,
    pub bytes_read: u64,
    pub blocks_read: u64,
}

impl IoSnapshot {
    /// Counter-wise difference `self - earlier` (for per-phase accounting).
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            read_calls: self.read_calls - earlier.read_calls,
            seeks: self.seeks - earlier.seeks,
            forward_skips: self.forward_skips - earlier.forward_skips,
            skip_bytes: self.skip_bytes - earlier.skip_bytes,
            sequential_reads: self.sequential_reads - earlier.sequential_reads,
            bytes_read: self.bytes_read - earlier.bytes_read,
            blocks_read: self.blocks_read - earlier.blocks_read,
        }
    }

    /// Counter-wise sum (for aggregating across devices/nodes).
    pub fn merged(&self, other: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            read_calls: self.read_calls + other.read_calls,
            seeks: self.seeks + other.seeks,
            forward_skips: self.forward_skips + other.forward_skips,
            skip_bytes: self.skip_bytes + other.skip_bytes,
            sequential_reads: self.sequential_reads + other.sequential_reads,
            bytes_read: self.bytes_read + other.bytes_read,
            blocks_read: self.blocks_read + other.blocks_read,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: u64 = DEFAULT_FORWARD_WINDOW;

    #[test]
    fn first_read_is_a_seek() {
        let s = IoStats::new();
        s.record_read(0, 100, 8192, W);
        let snap = s.snapshot();
        assert_eq!(snap.seeks, 1);
        assert_eq!(snap.sequential_reads, 0);
        assert_eq!(snap.forward_skips, 0);
    }

    #[test]
    fn contiguous_reads_are_sequential() {
        let s = IoStats::new();
        s.record_read(1000, 500, 8192, W);
        s.record_read(1500, 500, 8192, W);
        s.record_read(2000, 500, 8192, W);
        let snap = s.snapshot();
        assert_eq!(snap.seeks, 1);
        assert_eq!(snap.sequential_reads, 2);
        assert_eq!(snap.bytes_read, 1500);
    }

    #[test]
    fn short_forward_gap_is_a_skip() {
        let s = IoStats::new();
        s.record_read(0, 100, 8192, W);
        s.record_read(300, 100, 8192, W); // forward gap of 200 bytes
        let snap = s.snapshot();
        assert_eq!(snap.seeks, 1);
        assert_eq!(snap.forward_skips, 1);
        assert_eq!(snap.skip_bytes, 200);
    }

    #[test]
    fn long_or_backward_gaps_are_seeks() {
        let s = IoStats::new();
        s.record_read(0, 100, 8192, W);
        s.record_read(100 + W + 1, 100, 8192, W); // beyond the window
        s.record_read(0, 50, 8192, W); // backward
        let snap = s.snapshot();
        assert_eq!(snap.seeks, 3);
        assert_eq!(snap.forward_skips, 0);
    }

    #[test]
    fn window_boundary_inclusive() {
        let s = IoStats::new();
        s.record_read(0, 100, 8192, W);
        s.record_read(100 + W, 10, 8192, W); // gap exactly == window
        assert_eq!(s.snapshot().forward_skips, 1);
        assert_eq!(s.snapshot().skip_bytes, W);
    }

    #[test]
    fn block_accounting() {
        let s = IoStats::new();
        s.record_read(8190, 10, 8192, W); // straddles a boundary
        assert_eq!(s.snapshot().blocks_read, 2);
    }

    #[test]
    fn snapshot_since_and_merge() {
        let s = IoStats::new();
        s.record_read(0, 8192, 8192, W);
        let a = s.snapshot();
        s.record_read(8192, 8192, 8192, W);
        s.record_read(20000, 100, 8192, W); // forward skip
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.read_calls, 2);
        assert_eq!(d.forward_skips, 1);
        assert_eq!(d.skip_bytes, 20000 - 16384);
        let m = a.merged(&d);
        assert_eq!(m.bytes_read, b.bytes_read);
        assert_eq!(m.skip_bytes, b.skip_bytes);
    }

    #[test]
    fn reset_clears() {
        let s = IoStats::new();
        s.record_read(0, 10, 8192, W);
        s.reset();
        assert_eq!(s.snapshot(), IoSnapshot::default());
    }
}
