//! A rate-limited device wrapper for overlap experiments.
//!
//! The paper's claims live on a 50 MB/s local disk; the containers we test in
//! have page-cache-speed storage, so retrieval never takes long enough to
//! measure pipeline overlap against. [`ThrottledDevice`] wraps any
//! [`BlockDevice`] and sleeps proportionally to each read (fixed per-call
//! latency plus bytes over a configured bandwidth), making AMC retrieval take
//! realistic wall-clock time while leaving the CPU free — exactly what a real
//! blocked `pread` does. I/O accounting is delegated to the inner device.

use crate::device::BlockDevice;
use crate::stats::IoStats;
use std::io;
use std::time::Duration;

/// A [`BlockDevice`] that sleeps `latency + len / bytes_per_sec` per read.
pub struct ThrottledDevice<D: BlockDevice> {
    inner: D,
    latency: Duration,
    bytes_per_sec: f64,
}

impl<D: BlockDevice> ThrottledDevice<D> {
    /// Wrap `inner`, charging `latency` per read call plus transfer time at
    /// `bytes_per_sec` (use `f64::INFINITY` for latency-only throttling).
    pub fn new(inner: D, latency: Duration, bytes_per_sec: f64) -> Self {
        assert!(bytes_per_sec > 0.0);
        ThrottledDevice {
            inner,
            latency,
            bytes_per_sec,
        }
    }

    /// The wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Modeled delay for one read of `len` bytes.
    pub fn delay_for(&self, len: u64) -> Duration {
        let transfer = len as f64 / self.bytes_per_sec;
        self.latency + Duration::from_secs_f64(if transfer.is_finite() { transfer } else { 0.0 })
    }
}

impl<D: BlockDevice> BlockDevice for ThrottledDevice<D> {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        std::thread::sleep(self.delay_for(buf.len() as u64));
        self.inner.read_at(offset, buf)
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn stats(&self) -> &IoStats {
        self.inner.stats()
    }

    fn block_bytes(&self) -> u64 {
        self.inner.block_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemDevice;
    use std::time::Instant;

    #[test]
    fn reads_are_delayed_and_correct() {
        let data: Vec<u8> = (0..100u8).collect();
        let d = ThrottledDevice::new(MemDevice::new(data.clone()), Duration::from_millis(5), 1e9);
        let t = Instant::now();
        let mut buf = [0u8; 10];
        d.read_at(20, &mut buf).unwrap();
        assert!(t.elapsed() >= Duration::from_millis(5));
        assert_eq!(&buf, &data[20..30]);
        assert_eq!(d.io_snapshot().bytes_read, 10);
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let d = ThrottledDevice::new(
            MemDevice::new(vec![0u8; 1 << 16]),
            Duration::ZERO,
            1_000_000.0,
        );
        assert_eq!(d.delay_for(100_000), Duration::from_secs_f64(0.1));
        let t = Instant::now();
        let mut buf = vec![0u8; 20_000]; // 20 ms at 1 MB/s
        d.read_at(0, &mut buf).unwrap();
        assert!(t.elapsed() >= Duration::from_millis(18));
    }
}
