//! External-memory I/O substrate for `oociso`.
//!
//! The paper's cluster nodes owned local 60 GB disks with ~50 MB/s transfer
//! and 4–8 KB blocks; the algorithm's claims are stated in the standard
//! external-memory model of Aggarwal–Vitter (I/O complexity measured in block
//! transfers). This crate supplies both halves needed to reproduce that:
//!
//! * **Real storage** — [`device::FileDevice`] (positioned reads over a file,
//!   optionally memory-mapped) and [`device::MemDevice`] for tests.
//! * **Accounting** — every read is classified by [`stats::IoStats`] into
//!   seeks vs sequential continuation, bytes and block transfers, so any
//!   experiment can report both measured wall-clock and *modeled* disk time
//!   under the paper's disk constants ([`cost::IoCostModel::paper_disk`]).
//! * **Record stores** — [`store::RecordStoreWriter`]/[`store::RecordStore`]:
//!   append-only byte-record files addressed by `(offset, len)` ranges, the
//!   layout beneath the compact interval tree's bricks.
//! * **Disk farms** — [`farm::DiskFarm`]: `p` independent stores standing in
//!   for the per-node local disks of the cluster.
//! * **Pipelining** — [`queue::BoundedQueue`]: the bounded, byte-accounted
//!   channel the streaming extraction pipeline uses to overlap AMC retrieval
//!   with triangulation, and [`throttle::ThrottledDevice`] to make that
//!   overlap measurable on page-cache-speed storage.
//! * **Fault injection** — [`faulty::FaultyDevice`]: deterministic seeded
//!   error/delay schedules on the read path, the disk half of the chaos
//!   test harness.
//! * **Positioned writes** — [`write_at::WriteAt`]: the portable write-side
//!   abstraction beneath out-of-core preprocessing.
//! * **Readiness** — `poll::Poller`/`poll::EventFd` (Linux): a thin,
//!   dependency-free epoll + eventfd binding, the substrate of the serve
//!   layer's nonblocking reactor.

pub mod block;
pub mod cost;
pub mod device;
pub mod farm;
pub mod faulty;
pub mod poll;
pub mod queue;
pub mod stats;
pub mod store;
pub mod throttle;
pub mod write_at;

pub use block::{blocks_spanned, DEFAULT_BLOCK_BYTES};
pub use cost::IoCostModel;
pub use device::{BlockDevice, FileDevice, MemDevice};
pub use farm::DiskFarm;
pub use faulty::{FaultPlan, FaultyDevice};
pub use queue::{BoundedQueue, QueueStats, QueueWaits};
pub use stats::{IoSnapshot, IoStats};
pub use store::{RecordStore, RecordStoreWriter, Span};
pub use throttle::ThrottledDevice;
pub use write_at::WriteAt;
