//! Bounded producer/consumer queue with byte and work accounting.
//!
//! The streaming extraction pipeline pushes decoded metacell records from the
//! AMC-retrieval thread into a pool of triangulation workers. The queue is
//! deliberately small: its bound is what caps peak memory (the out-of-core
//! promise) and what forces disk and cores to overlap instead of letting the
//! producer buffer the whole active set. Every push is accounted in items,
//! bytes, and caller-supplied *weight* so reports can state the true
//! high-water mark, and blocked time is tracked on both sides so overlap
//! efficiency is measurable.
//!
//! Two bounding modes:
//!
//! * [`BoundedQueue::new`] — classic item-count bound: at most `capacity`
//!   items queued, whatever their weight.
//! * [`BoundedQueue::weighted`] — admission by total queued weight: a push
//!   blocks while the queue's weight budget is spent, except that one item is
//!   always admitted into an empty queue (so an item heavier than the whole
//!   budget still flows instead of deadlocking). The pipeline weights records
//!   by their planner cell estimate, so the bound caps queued *work* — a few
//!   dense metacells fill the budget that many sparse ones would share.

use oociso_obs::Histogram;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Accounting snapshot of a [`BoundedQueue`]'s lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Items pushed over the queue's lifetime.
    pub pushed_items: u64,
    /// Payload bytes pushed over the queue's lifetime.
    pub pushed_bytes: u64,
    /// Work weight pushed over the queue's lifetime.
    pub pushed_weight: u64,
    /// Most items ever queued at once.
    pub peak_items: u64,
    /// Most payload bytes ever queued at once.
    pub peak_bytes: u64,
    /// Most work weight ever queued at once.
    pub peak_weight: u64,
}

/// Wait-time totals, tracked separately from [`QueueStats`] so they can keep
/// accumulating while consumers still hold items.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueWaits {
    /// Total time producers spent blocked on a full queue (backpressure).
    pub push_wait: Duration,
    /// Total time consumers spent blocked on an empty queue, summed across
    /// consumers (includes the final wait for close).
    pub pop_wait: Duration,
}

struct Inner<T> {
    items: VecDeque<(T, u64, u64)>,
    bytes: u64,
    weight: u64,
    closed: bool,
    stats: QueueStats,
    waits: QueueWaits,
}

/// A blocking MPMC queue bounded by item count or queued weight, with byte
/// and weight accounting.
///
/// Producers [`push`](BoundedQueue::push) until [`close`](BoundedQueue::close);
/// consumers [`pop`](BoundedQueue::pop) until it returns `None` (queue drained
/// *and* closed). Use `usize::MAX` as the capacity for an effectively
/// unbounded queue (accounting still applies).
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
    max_weight: Option<u64>,
    // process-wide wait histograms, resolved once per queue so the blocked
    // paths record lock-free
    push_wait_us: Histogram,
    pop_wait_us: Histogram,
}

impl<T> BoundedQueue<T> {
    fn with_bounds(capacity: usize, max_weight: Option<u64>) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                bytes: 0,
                weight: 0,
                closed: false,
                stats: QueueStats::default(),
                waits: QueueWaits::default(),
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
            max_weight,
            push_wait_us: oociso_obs::global().histogram("queue_push_wait_us"),
            pop_wait_us: oociso_obs::global().histogram("queue_pop_wait_us"),
        }
    }

    /// Queue holding at most `capacity` items (at least 1), regardless of
    /// their weight.
    pub fn new(capacity: usize) -> Self {
        Self::with_bounds(capacity, None)
    }

    /// Queue bounded by total queued *weight* instead of item count: a push
    /// blocks while admitting its item would take the queued weight past
    /// `max_weight` (at least 1) — unless the queue is empty, in which case
    /// the item is admitted regardless, so one over-budget item can never
    /// deadlock the pipeline.
    pub fn weighted(max_weight: u64) -> Self {
        Self::with_bounds(usize::MAX, Some(max_weight.max(1)))
    }

    /// Item capacity (`usize::MAX` for weight-bounded queues).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Weight budget, when weight-bounded.
    pub fn max_weight(&self) -> Option<u64> {
        self.max_weight
    }

    /// Push an item carrying `bytes` of payload and `weight` units of work,
    /// blocking while the queue is full (by item count, or by weight for
    /// [`weighted`](BoundedQueue::weighted) queues). Returns the item back if
    /// the queue was closed.
    pub fn push(&self, item: T, bytes: u64, weight: u64) -> Result<(), T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        let full = |inner: &Inner<T>| {
            inner.items.len() >= self.capacity
                || match self.max_weight {
                    Some(max) => {
                        !inner.items.is_empty() && inner.weight.saturating_add(weight) > max
                    }
                    None => false,
                }
        };
        while full(&inner) && !inner.closed {
            let t = Instant::now();
            inner = self.not_full.wait(inner).expect("queue poisoned");
            let waited = t.elapsed();
            inner.waits.push_wait += waited;
            self.push_wait_us.record_duration(waited);
        }
        if inner.closed {
            return Err(item);
        }
        inner.items.push_back((item, bytes, weight));
        inner.bytes += bytes;
        inner.weight += weight;
        inner.stats.pushed_items += 1;
        inner.stats.pushed_bytes += bytes;
        inner.stats.pushed_weight += weight;
        inner.stats.peak_items = inner.stats.peak_items.max(inner.items.len() as u64);
        inner.stats.peak_bytes = inner.stats.peak_bytes.max(inner.bytes);
        inner.stats.peak_weight = inner.stats.peak_weight.max(inner.weight);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Pop the oldest item, blocking while the queue is empty and open.
    /// Returns `None` once the queue is closed and drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        while inner.items.is_empty() && !inner.closed {
            let t = Instant::now();
            inner = self.not_empty.wait(inner).expect("queue poisoned");
            let waited = t.elapsed();
            inner.waits.pop_wait += waited;
            self.pop_wait_us.record_duration(waited);
        }
        match inner.items.pop_front() {
            Some((item, bytes, weight)) => {
                inner.bytes -= bytes;
                inner.weight -= weight;
                drop(inner);
                self.not_full.notify_one();
                Some(item)
            }
            None => None, // closed and drained
        }
    }

    /// Close the queue: no further pushes succeed; consumers drain what is
    /// left and then observe `None`.
    pub fn close(&self) {
        let mut inner = self.inner.lock().expect("queue poisoned");
        inner.closed = true;
        drop(inner);
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// Lifetime accounting (push totals and high-water marks).
    pub fn stats(&self) -> QueueStats {
        self.inner.lock().expect("queue poisoned").stats
    }

    /// Blocked-time totals on both sides.
    pub fn waits(&self) -> QueueWaits {
        self.inner.lock().expect("queue poisoned").waits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn fifo_order_and_accounting() {
        let q: BoundedQueue<u32> = BoundedQueue::new(16);
        for i in 0..10u32 {
            q.push(i, (i + 1) as u64, (i + 2) as u64).unwrap();
        }
        q.close();
        for i in 0..10u32 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
        let s = q.stats();
        assert_eq!(s.pushed_items, 10);
        assert_eq!(s.pushed_bytes, 55);
        assert_eq!(s.pushed_weight, 65);
        assert_eq!(s.peak_items, 10);
        assert_eq!(s.peak_bytes, 55);
        assert_eq!(s.peak_weight, 65);
    }

    #[test]
    fn capacity_bounds_peak() {
        let q: BoundedQueue<usize> = BoundedQueue::new(3);
        std::thread::scope(|scope| {
            let consumer = scope.spawn(|| {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            });
            for i in 0..50 {
                q.push(i, 8, 1).unwrap();
            }
            q.close();
            let got = consumer.join().unwrap();
            assert_eq!(got, (0..50).collect::<Vec<_>>());
        });
        let s = q.stats();
        assert!(s.peak_items <= 3, "peak {} over capacity", s.peak_items);
        assert!(s.peak_bytes <= 24);
        assert_eq!(s.pushed_items, 50);
    }

    #[test]
    fn weight_bounds_peak_not_item_count() {
        let q: BoundedQueue<usize> = BoundedQueue::weighted(100);
        std::thread::scope(|scope| {
            let consumer = scope.spawn(|| {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            });
            // light items: many fit at once (item count is unbounded) …
            for i in 0..40 {
                q.push(i, 8, 10).unwrap();
            }
            // … heavy items: the same budget admits only one at a time
            for i in 40..50 {
                q.push(i, 8, 90).unwrap();
            }
            q.close();
            let got = consumer.join().unwrap();
            assert_eq!(got, (0..50).collect::<Vec<_>>());
        });
        let s = q.stats();
        assert!(
            s.peak_weight <= 100,
            "peak weight {} over budget",
            s.peak_weight
        );
        assert!(s.peak_items <= 10, "light items not bounded by weight");
        assert_eq!(s.pushed_weight, 40 * 10 + 10 * 90);
    }

    #[test]
    fn over_budget_item_admitted_when_empty() {
        // an item heavier than the whole budget must flow, not deadlock
        let q: BoundedQueue<u8> = BoundedQueue::weighted(10);
        q.push(1, 0, 1000).unwrap();
        std::thread::scope(|scope| {
            let h = scope.spawn(|| q.push(2, 0, 1000)); // blocks: budget spent
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(q.pop(), Some(1)); // empties the queue, unblocks push
            assert_eq!(q.pop(), Some(2));
            h.join().unwrap().unwrap();
        });
        q.close();
        assert_eq!(q.stats().peak_items, 1);
        assert!(q.waits().push_wait > Duration::ZERO);
    }

    #[test]
    fn zero_weight_items_do_not_block() {
        let q: BoundedQueue<u32> = BoundedQueue::weighted(5);
        for i in 0..100 {
            q.push(i, 0, 0).unwrap();
        }
        q.close();
        assert_eq!(q.stats().peak_items, 100);
        assert_eq!(q.stats().peak_weight, 0);
    }

    #[test]
    fn push_after_close_returns_item() {
        let q: BoundedQueue<&str> = BoundedQueue::new(2);
        q.close();
        assert_eq!(q.push("late", 4, 1), Err("late"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_unblocks_full_producer() {
        let q: BoundedQueue<u8> = BoundedQueue::new(1);
        q.push(1, 1, 1).unwrap();
        std::thread::scope(|scope| {
            let h = scope.spawn(|| q.push(2, 1, 1)); // blocks: queue full
            std::thread::sleep(Duration::from_millis(20));
            q.close();
            assert_eq!(h.join().unwrap(), Err(2));
        });
        assert!(q.waits().push_wait > Duration::ZERO);
    }

    #[test]
    fn multiple_consumers_partition_items() {
        let q: BoundedQueue<u64> = BoundedQueue::new(4);
        let sum = AtomicU64::new(0);
        let count = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    while let Some(v) = q.pop() {
                        sum.fetch_add(v, Ordering::Relaxed);
                        count.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            for i in 1..=100u64 {
                q.push(i, 1, 1).unwrap();
            }
            q.close();
        });
        assert_eq!(count.load(Ordering::Relaxed), 100);
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn blocked_waits_feed_global_histograms() {
        let before = oociso_obs::global()
            .histogram("queue_push_wait_us")
            .snapshot()
            .count;
        let q: BoundedQueue<u8> = BoundedQueue::new(1);
        q.push(1, 1, 1).unwrap();
        std::thread::scope(|scope| {
            let h = scope.spawn(|| q.push(2, 1, 1)); // blocks: queue full
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(q.pop(), Some(1));
            h.join().unwrap().unwrap();
        });
        let after = oociso_obs::global()
            .histogram("queue_push_wait_us")
            .snapshot()
            .count;
        assert!(
            after > before,
            "blocked push should record a wait sample ({before} -> {after})"
        );
    }

    #[test]
    fn zero_capacity_clamped_to_one() {
        let q: BoundedQueue<u8> = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.push(7, 1, 1).unwrap();
        q.close();
        assert_eq!(q.pop(), Some(7));
    }
}
