//! Bounded producer/consumer queue with byte accounting.
//!
//! The streaming extraction pipeline pushes decoded metacell records from the
//! AMC-retrieval thread into a pool of triangulation workers. The queue is
//! deliberately small: its bound is what caps peak memory (the out-of-core
//! promise) and what forces disk and cores to overlap instead of letting the
//! producer buffer the whole active set. Every push is accounted in items and
//! bytes so reports can state the true high-water mark, and blocked time is
//! tracked on both sides so overlap efficiency is measurable.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Accounting snapshot of a [`BoundedQueue`]'s lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Items pushed over the queue's lifetime.
    pub pushed_items: u64,
    /// Payload bytes pushed over the queue's lifetime.
    pub pushed_bytes: u64,
    /// Most items ever queued at once.
    pub peak_items: u64,
    /// Most payload bytes ever queued at once.
    pub peak_bytes: u64,
}

/// Wait-time totals, tracked separately from [`QueueStats`] so they can keep
/// accumulating while consumers still hold items.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueWaits {
    /// Total time producers spent blocked on a full queue (backpressure).
    pub push_wait: Duration,
    /// Total time consumers spent blocked on an empty queue, summed across
    /// consumers (includes the final wait for close).
    pub pop_wait: Duration,
}

struct Inner<T> {
    items: VecDeque<(T, u64)>,
    bytes: u64,
    closed: bool,
    stats: QueueStats,
    waits: QueueWaits,
}

/// A blocking MPMC queue bounded by item count, with byte accounting.
///
/// Producers [`push`](BoundedQueue::push) until [`close`](BoundedQueue::close);
/// consumers [`pop`](BoundedQueue::pop) until it returns `None` (queue drained
/// *and* closed). Use `usize::MAX` as the capacity for an effectively
/// unbounded queue (accounting still applies).
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Queue holding at most `capacity` items (at least 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                bytes: 0,
                closed: false,
                stats: QueueStats::default(),
                waits: QueueWaits::default(),
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Item capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Push an item carrying `bytes` of payload, blocking while the queue is
    /// full. Returns the item back if the queue was closed.
    pub fn push(&self, item: T, bytes: u64) -> Result<(), T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        while inner.items.len() >= self.capacity && !inner.closed {
            let t = Instant::now();
            inner = self.not_full.wait(inner).expect("queue poisoned");
            inner.waits.push_wait += t.elapsed();
        }
        if inner.closed {
            return Err(item);
        }
        inner.items.push_back((item, bytes));
        inner.bytes += bytes;
        inner.stats.pushed_items += 1;
        inner.stats.pushed_bytes += bytes;
        inner.stats.peak_items = inner.stats.peak_items.max(inner.items.len() as u64);
        inner.stats.peak_bytes = inner.stats.peak_bytes.max(inner.bytes);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Pop the oldest item, blocking while the queue is empty and open.
    /// Returns `None` once the queue is closed and drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        while inner.items.is_empty() && !inner.closed {
            let t = Instant::now();
            inner = self.not_empty.wait(inner).expect("queue poisoned");
            inner.waits.pop_wait += t.elapsed();
        }
        match inner.items.pop_front() {
            Some((item, bytes)) => {
                inner.bytes -= bytes;
                drop(inner);
                self.not_full.notify_one();
                Some(item)
            }
            None => None, // closed and drained
        }
    }

    /// Close the queue: no further pushes succeed; consumers drain what is
    /// left and then observe `None`.
    pub fn close(&self) {
        let mut inner = self.inner.lock().expect("queue poisoned");
        inner.closed = true;
        drop(inner);
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// Lifetime accounting (push totals and high-water marks).
    pub fn stats(&self) -> QueueStats {
        self.inner.lock().expect("queue poisoned").stats
    }

    /// Blocked-time totals on both sides.
    pub fn waits(&self) -> QueueWaits {
        self.inner.lock().expect("queue poisoned").waits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn fifo_order_and_accounting() {
        let q: BoundedQueue<u32> = BoundedQueue::new(16);
        for i in 0..10u32 {
            q.push(i, (i + 1) as u64).unwrap();
        }
        q.close();
        for i in 0..10u32 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
        let s = q.stats();
        assert_eq!(s.pushed_items, 10);
        assert_eq!(s.pushed_bytes, 55);
        assert_eq!(s.peak_items, 10);
        assert_eq!(s.peak_bytes, 55);
    }

    #[test]
    fn capacity_bounds_peak() {
        let q: BoundedQueue<usize> = BoundedQueue::new(3);
        std::thread::scope(|scope| {
            let consumer = scope.spawn(|| {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            });
            for i in 0..50 {
                q.push(i, 8).unwrap();
            }
            q.close();
            let got = consumer.join().unwrap();
            assert_eq!(got, (0..50).collect::<Vec<_>>());
        });
        let s = q.stats();
        assert!(s.peak_items <= 3, "peak {} over capacity", s.peak_items);
        assert!(s.peak_bytes <= 24);
        assert_eq!(s.pushed_items, 50);
    }

    #[test]
    fn push_after_close_returns_item() {
        let q: BoundedQueue<&str> = BoundedQueue::new(2);
        q.close();
        assert_eq!(q.push("late", 4), Err("late"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_unblocks_full_producer() {
        let q: BoundedQueue<u8> = BoundedQueue::new(1);
        q.push(1, 1).unwrap();
        std::thread::scope(|scope| {
            let h = scope.spawn(|| q.push(2, 1)); // blocks: queue full
            std::thread::sleep(Duration::from_millis(20));
            q.close();
            assert_eq!(h.join().unwrap(), Err(2));
        });
        assert!(q.waits().push_wait > Duration::ZERO);
    }

    #[test]
    fn multiple_consumers_partition_items() {
        let q: BoundedQueue<u64> = BoundedQueue::new(4);
        let sum = AtomicU64::new(0);
        let count = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    while let Some(v) = q.pop() {
                        sum.fetch_add(v, Ordering::Relaxed);
                        count.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            for i in 1..=100u64 {
                q.push(i, 1).unwrap();
            }
            q.close();
        });
        assert_eq!(count.load(Ordering::Relaxed), 100);
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn zero_capacity_clamped_to_one() {
        let q: BoundedQueue<u8> = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.push(7, 1).unwrap();
        q.close();
        assert_eq!(q.pop(), Some(7));
    }
}
