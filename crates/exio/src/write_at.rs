//! Positioned writes behind a portable abstraction.
//!
//! The out-of-core preprocessing path writes each record at a pre-assigned
//! offset (pass 2 of [`build_from_file`]). Routing those writes through
//! [`WriteAt`] keeps platform specifics (`pwrite` on unix, seek+write
//! elsewhere) out of the callers and lets tests substitute failing devices to
//! exercise error paths that real disks only hit when full.
//!
//! [`build_from_file`]: ../../oociso_cluster/cluster/struct.Cluster.html

use std::fs::File;
use std::io;

/// A byte sink addressable by offset (the write-side dual of
/// [`BlockDevice`](crate::device::BlockDevice)).
pub trait WriteAt {
    /// Write all of `buf` at `offset`.
    fn write_all_at(&self, buf: &[u8], offset: u64) -> io::Result<()>;
}

impl WriteAt for File {
    #[cfg(unix)]
    fn write_all_at(&self, buf: &[u8], offset: u64) -> io::Result<()> {
        std::os::unix::fs::FileExt::write_all_at(self, buf, offset)
    }

    #[cfg(not(unix))]
    fn write_all_at(&self, buf: &[u8], offset: u64) -> io::Result<()> {
        // Portable fallback: `&File` implements Seek + Write. The file cursor
        // moves, which positioned-write callers by construction don't rely on.
        use std::io::{Seek, SeekFrom, Write};
        let mut f = self;
        f.seek(SeekFrom::Start(offset))?;
        f.write_all(buf)
    }
}

impl<W: WriteAt + ?Sized> WriteAt for &W {
    fn write_all_at(&self, buf: &[u8], offset: u64) -> io::Result<()> {
        (**self).write_all_at(buf, offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("oociso_wat_{}_{}", std::process::id(), name));
        p
    }

    #[test]
    fn positioned_writes_land_at_offsets() {
        let p = tmp("pos.bin");
        let f = File::create(&p).unwrap();
        f.set_len(10).unwrap();
        f.write_all_at(b"cd", 2).unwrap();
        f.write_all_at(b"ab", 0).unwrap();
        f.write_all_at(b"zz", 8).unwrap();
        drop(f);
        let got = std::fs::read(&p).unwrap();
        assert_eq!(&got[..4], b"abcd");
        assert_eq!(&got[8..], b"zz");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn write_to_read_only_handle_is_err_not_panic() {
        let p = tmp("ro.bin");
        std::fs::write(&p, b"existing").unwrap();
        let f = File::open(&p).unwrap(); // read-only handle
        let err = f.write_all_at(b"nope", 0);
        assert!(err.is_err(), "write through read-only fd must fail");
        assert_eq!(std::fs::read(&p).unwrap(), b"existing");
        std::fs::remove_file(&p).ok();
    }
}
