//! Deterministic fault injection on the read path.
//!
//! Out-of-core serving must survive the disk failing mid-extraction — but a
//! robustness claim is only testable if the failure can be produced on
//! demand and **reproducibly**. [`FaultyDevice`] wraps any [`BlockDevice`]
//! and injects errors and delays by a seeded, per-read-index schedule: the
//! decision for read *i* is a pure function of `(seed, i)`, so a given
//! seed always produces the same fault pattern regardless of timing (and
//! regardless of thread interleaving, as long as the read *count* reaching
//! the device is fixed — each node's plan executes its reads sequentially
//! on one thread, which is why the chaos suite pins its fixtures to one
//! node). A deterministic index window ([`FaultPlan::fail_reads`])
//! additionally scripts exact "first K reads fail, then the disk heals"
//! scenarios without probability at all.
//!
//! Transport-level faults live in `oociso_serve::chaos`; see
//! `docs/robustness.md` for the full injection matrix.

use crate::device::BlockDevice;
use crate::stats::IoStats;
use std::io;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The fault schedule of a [`FaultyDevice`].
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Seed of the per-read decision hash. Same seed, same schedule.
    pub seed: u64,
    /// Probability a read fails with an injected I/O error.
    pub error_rate: f64,
    /// Probability a read is delayed by `delay` before proceeding.
    pub delay_rate: f64,
    /// The injected delay.
    pub delay: Duration,
    /// Read indices (0-based, in arrival order) that **always** fail —
    /// deterministic scripting independent of the probabilistic rates.
    /// `Some(0..k)` means "the first k reads fail, then the disk heals".
    pub fail_reads: Option<Range<u64>>,
    /// Cap on total injected errors (`u64::MAX` = unlimited). With
    /// `error_rate: 1.0` this scripts "exactly the next N reads fail".
    pub max_errors: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0x0BAD_D15C,
            error_rate: 0.0,
            delay_rate: 0.0,
            delay: Duration::ZERO,
            fail_reads: None,
            max_errors: u64::MAX,
        }
    }
}

impl FaultPlan {
    /// A schedule where exactly the first `k` reads fail, after which the
    /// device is healthy — the "transient disk fault" script.
    pub fn fail_first(k: u64) -> Self {
        FaultPlan {
            fail_reads: Some(0..k),
            ..FaultPlan::default()
        }
    }
}

/// splitmix64: a tiny, high-quality mixer — the per-read decision is
/// `mix(seed, index, salt)`, a pure function, never shared mutable state.
fn mix(seed: u64, index: u64, salt: u64) -> u64 {
    let mut z = seed
        .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(salt.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A draw in `[0, 1)` for read `index` under `salt`.
fn draw(seed: u64, index: u64, salt: u64) -> f64 {
    (mix(seed, index, salt) >> 11) as f64 / (1u64 << 53) as f64
}

/// A [`BlockDevice`] that injects scheduled faults on reads, delegating
/// everything else (data, accounting) to the wrapped device.
pub struct FaultyDevice<D: BlockDevice> {
    inner: D,
    plan: FaultPlan,
    reads: AtomicU64,
    injected_errors: AtomicU64,
    injected_delays: AtomicU64,
}

impl<D: BlockDevice> FaultyDevice<D> {
    pub fn new(inner: D, plan: FaultPlan) -> Self {
        assert!((0.0..=1.0).contains(&plan.error_rate));
        assert!((0.0..=1.0).contains(&plan.delay_rate));
        FaultyDevice {
            inner,
            plan,
            reads: AtomicU64::new(0),
            injected_errors: AtomicU64::new(0),
            injected_delays: AtomicU64::new(0),
        }
    }

    /// The wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Reads that reached this wrapper (failed ones included).
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::SeqCst)
    }

    /// Errors injected so far.
    pub fn injected_errors(&self) -> u64 {
        self.injected_errors.load(Ordering::SeqCst)
    }

    /// Delays injected so far.
    pub fn injected_delays(&self) -> u64 {
        self.injected_delays.load(Ordering::SeqCst)
    }

    /// Whether read `index` is scheduled to fail (ignoring `max_errors`).
    fn scheduled_to_fail(&self, index: u64) -> bool {
        if self
            .plan
            .fail_reads
            .as_ref()
            .is_some_and(|w| w.contains(&index))
        {
            return true;
        }
        self.plan.error_rate > 0.0 && draw(self.plan.seed, index, 1) < self.plan.error_rate
    }
}

impl<D: BlockDevice> BlockDevice for FaultyDevice<D> {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        let index = self.reads.fetch_add(1, Ordering::SeqCst);
        if self.plan.delay_rate > 0.0 && draw(self.plan.seed, index, 2) < self.plan.delay_rate {
            self.injected_delays.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(self.plan.delay);
        }
        if self.scheduled_to_fail(index) {
            // the cap is claimed atomically so concurrent readers can never
            // inject more than max_errors in total
            let claimed = self
                .injected_errors
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                    (n < self.plan.max_errors).then_some(n + 1)
                })
                .is_ok();
            if claimed {
                return Err(io::Error::other(format!(
                    "injected fault at read #{index} (offset {offset}, {} bytes)",
                    buf.len()
                )));
            }
        }
        self.inner.read_at(offset, buf)
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn stats(&self) -> &IoStats {
        self.inner.stats()
    }

    fn block_bytes(&self) -> u64 {
        self.inner.block_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemDevice;

    fn device(plan: FaultPlan) -> FaultyDevice<MemDevice> {
        FaultyDevice::new(
            MemDevice::new((0..=255u8).cycle().take(4096).collect()),
            plan,
        )
    }

    /// The observed pass/fail schedule of the first `n` reads.
    fn schedule(d: &FaultyDevice<MemDevice>, n: usize) -> Vec<bool> {
        (0..n)
            .map(|i| {
                let mut buf = [0u8; 16];
                d.read_at((i as u64 * 16) % 4096, &mut buf).is_ok()
            })
            .collect()
    }

    #[test]
    fn same_seed_same_schedule_different_seed_different() {
        let plan = FaultPlan {
            seed: 42,
            error_rate: 0.3,
            ..FaultPlan::default()
        };
        let a = schedule(&device(plan.clone()), 256);
        let b = schedule(&device(plan.clone()), 256);
        assert_eq!(a, b, "a seed fully determines the fault schedule");
        let c = schedule(&device(FaultPlan { seed: 43, ..plan }), 256);
        assert_ne!(a, c, "a different seed gives a different schedule");
        let failures = a.iter().filter(|ok| !**ok).count();
        assert!(
            (30..=120).contains(&failures),
            "error_rate 0.3 over 256 reads injected {failures} failures"
        );
    }

    #[test]
    fn fail_first_window_fails_exactly_then_heals() {
        let d = device(FaultPlan::fail_first(5));
        let s = schedule(&d, 20);
        assert_eq!(s[..5], [false; 5], "first 5 reads fail");
        assert!(s[5..].iter().all(|ok| *ok), "the disk heals after");
        assert_eq!(d.injected_errors(), 5);
        assert_eq!(d.reads(), 20);
    }

    #[test]
    fn max_errors_caps_injection() {
        let d = device(FaultPlan {
            error_rate: 1.0,
            max_errors: 3,
            ..FaultPlan::default()
        });
        let s = schedule(&d, 10);
        assert_eq!(s[..3], [false; 3]);
        assert!(s[3..].iter().all(|ok| *ok));
        assert_eq!(d.injected_errors(), 3);
    }

    #[test]
    fn delays_are_injected_and_counted_and_data_is_untouched() {
        let d = device(FaultPlan {
            delay_rate: 1.0,
            delay: Duration::from_millis(5),
            ..FaultPlan::default()
        });
        let t0 = std::time::Instant::now();
        let mut buf = [0u8; 8];
        d.read_at(8, &mut buf).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(5));
        assert_eq!(d.injected_delays(), 1);
        assert_eq!(buf, [8, 9, 10, 11, 12, 13, 14, 15], "data flows untouched");
    }

    #[test]
    fn injected_errors_do_not_poison_the_device() {
        let d = device(FaultPlan::fail_first(1));
        let mut buf = [0u8; 4];
        assert!(d.read_at(0, &mut buf).is_err());
        d.read_at(0, &mut buf).unwrap();
        assert_eq!(buf, [0, 1, 2, 3]);
    }
}
