//! Thin, vendorable epoll + eventfd wrapper (Linux only).
//!
//! The serve layer's reactor needs exactly three kernel facilities: a
//! readiness multiplexer (`epoll`), a cross-thread wakeup primitive that the
//! multiplexer can watch (`eventfd`), and nonblocking sockets (std already
//! provides those). This module binds the first two directly against the
//! C library that `std` already links — no `libc`/`mio` dependency, so the
//! crate stays buildable in the offline vendored workspace.
//!
//! Everything is level-triggered: the reactor re-arms nothing, it just
//! drains each readiness source until `WouldBlock`. Level-triggered epoll
//! plus drain-to-WouldBlock is the least surprising correct combination —
//! a fact the event-loop literature relearns every decade.

#![cfg(target_os = "linux")]

use std::fs::File;
use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::time::Duration;

// x86_64's epoll_event is packed (a 32-bit mask followed by an unaligned
// 64-bit cookie); other Linux targets use natural alignment.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const EFD_NONBLOCK: i32 = 0o4000;
const EFD_CLOEXEC: i32 = 0o2000000;

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// What a registered descriptor wants to be woken for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };

    fn mask(self) -> u32 {
        let mut m = EPOLLRDHUP; // always learn about peer half-close
        if self.readable {
            m |= EPOLLIN;
        }
        if self.writable {
            m |= EPOLLOUT;
        }
        m
    }
}

/// One readiness report: the registration token plus what fired.
/// `hangup`/`error` are delivered regardless of requested interest.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
    pub hangup: bool,
    pub error: bool,
}

/// A level-triggered epoll instance. Tokens are caller-chosen `u64` cookies
/// echoed back verbatim in [`Event`]s.
pub struct Poller {
    ep: OwnedFd,
}

impl Poller {
    pub fn new() -> io::Result<Poller> {
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Poller {
            ep: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest.mask(),
            data: token,
        };
        cvt(unsafe { epoll_ctl(self.ep.as_raw_fd(), op, fd, &mut ev) }).map(|_| ())
    }

    /// Watch `fd` under `token`. The fd must outlive the registration.
    pub fn register(&self, fd: &impl AsRawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd.as_raw_fd(), token, interest)
    }

    /// Change an existing registration's interest set.
    pub fn modify(&self, fd: &impl AsRawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd.as_raw_fd(), token, interest)
    }

    /// Stop watching `fd`. (Closing the fd deregisters implicitly, but an
    /// explicit removal keeps stale events from firing while it lingers.)
    pub fn deregister(&self, fd: &impl AsRawFd) -> io::Result<()> {
        let mut ev = EpollEvent { events: 0, data: 0 };
        cvt(unsafe { epoll_ctl(self.ep.as_raw_fd(), EPOLL_CTL_DEL, fd.as_raw_fd(), &mut ev) })
            .map(|_| ())
    }

    /// Block until at least one event, `timeout` elapses (`None` = forever),
    /// or a signal. Fills `events` and returns how many fired (0 = timeout).
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        // round sub-millisecond remainders up to 1 ms so a deadline of
        // "200 µs from now" sleeps instead of busy-spinning at timeout 0
        let timeout_ms: i32 = match timeout {
            Some(t) if t.is_zero() => 0,
            Some(t) => (t.as_millis().max(1)).min(i32::MAX as u128) as i32,
            None => -1,
        };
        let mut raw = [EpollEvent { events: 0, data: 0 }; 128];
        let n = loop {
            match cvt(unsafe {
                epoll_wait(
                    self.ep.as_raw_fd(),
                    raw.as_mut_ptr(),
                    raw.len() as i32,
                    timeout_ms,
                )
            }) {
                Ok(n) => break n as usize,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        };
        for ev in &raw[..n] {
            let bits = ev.events;
            events.push(Event {
                token: ev.data,
                readable: bits & (EPOLLIN | EPOLLRDHUP) != 0,
                writable: bits & EPOLLOUT != 0,
                hangup: bits & (EPOLLHUP | EPOLLRDHUP) != 0,
                error: bits & EPOLLERR != 0,
            });
        }
        Ok(n)
    }
}

/// A nonblocking eventfd: the reactor's cross-thread doorbell. Worker
/// threads [`EventFd::notify`]; the owning reactor registers it readable and
/// [`EventFd::drain`]s on wakeup. Notifications coalesce (the kernel keeps a
/// counter, not a queue), which is exactly the semantics a completion-queue
/// doorbell wants.
pub struct EventFd {
    file: File,
}

impl EventFd {
    pub fn new() -> io::Result<EventFd> {
        let fd = cvt(unsafe { eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC) })?;
        Ok(EventFd {
            file: unsafe { File::from_raw_fd(fd) },
        })
    }

    /// Ring the doorbell. Never blocks: the counter saturating (u64::MAX-1
    /// pending notifies) cannot happen before the reactor drains.
    pub fn notify(&self) -> io::Result<()> {
        match (&self.file).write_all(&1u64.to_ne_bytes()) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Consume all pending notifications; returns whether any were pending.
    pub fn drain(&self) -> io::Result<bool> {
        let mut buf = [0u8; 8];
        match (&self.file).read(&mut buf) {
            Ok(_) => Ok(true),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(false),
            Err(e) => Err(e),
        }
    }
}

impl AsRawFd for EventFd {
    fn as_raw_fd(&self) -> RawFd {
        self.file.as_raw_fd()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn eventfd_wakes_poller_and_coalesces() {
        let poller = Poller::new().unwrap();
        let efd = EventFd::new().unwrap();
        poller.register(&efd, 7, Interest::READABLE).unwrap();

        let mut events = Vec::new();
        // nothing pending: a short wait times out
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(5)))
            .unwrap();
        assert_eq!(n, 0);

        efd.notify().unwrap();
        efd.notify().unwrap(); // coalesces with the first
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        assert!(efd.drain().unwrap());
        assert!(!efd.drain().unwrap(), "drain consumed both notifies");
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(5)))
            .unwrap();
        assert_eq!(n, 0, "level-triggered readiness cleared by drain");
    }

    #[test]
    fn socket_readiness_is_level_triggered() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.register(&server, 42, Interest::BOTH).unwrap();

        let mut events = Vec::new();
        // an idle connected socket is writable but not readable
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        let ev = events.iter().find(|e| e.token == 42).unwrap();
        assert!(ev.writable && !ev.readable);

        client.write_all(b"ping").unwrap();
        client.flush().unwrap();
        // level-triggered: readable stays asserted until the bytes are read
        for _ in 0..2 {
            poller
                .wait(&mut events, Some(Duration::from_secs(2)))
                .unwrap();
            let ev = events.iter().find(|e| e.token == 42).unwrap();
            assert!(ev.readable);
        }

        poller.deregister(&server).unwrap();
        client.write_all(b"more").unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0, "deregistered fd no longer reports");
    }

    #[test]
    fn hangup_is_reported() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.register(&server, 1, Interest::READABLE).unwrap();
        drop(client);
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        let ev = events.iter().find(|e| e.token == 1).unwrap();
        assert!(ev.hangup || ev.readable, "peer close surfaces as rdhup");
    }
}
