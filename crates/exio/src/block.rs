//! Disk-block arithmetic.
//!
//! I/O complexity in the external-memory model is measured in *block
//! transfers*: a read of `len` bytes starting at `offset` touches every block
//! its byte range overlaps.

/// Default disk block size. The paper cites typical blocks of 4 KB or 8 KB;
/// we default to 8 KB.
pub const DEFAULT_BLOCK_BYTES: u64 = 8192;

/// Number of blocks of size `block` overlapped by the byte range
/// `[offset, offset + len)`. Zero-length reads touch zero blocks.
#[inline]
pub fn blocks_spanned(offset: u64, len: u64, block: u64) -> u64 {
    assert!(block > 0, "block size must be positive");
    if len == 0 {
        return 0;
    }
    let first = offset / block;
    let last = (offset + len - 1) / block;
    last - first + 1
}

/// Round `offset` down to its block boundary.
#[inline]
pub fn block_floor(offset: u64, block: u64) -> u64 {
    offset - offset % block
}

/// Round `offset` up to the next block boundary.
#[inline]
pub fn block_ceil(offset: u64, block: u64) -> u64 {
    offset.div_ceil(block) * block
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_within_one_block() {
        assert_eq!(blocks_spanned(0, 1, 8192), 1);
        assert_eq!(blocks_spanned(100, 100, 8192), 1);
        assert_eq!(blocks_spanned(8191, 1, 8192), 1);
    }

    #[test]
    fn spans_across_boundaries() {
        assert_eq!(blocks_spanned(8191, 2, 8192), 2);
        assert_eq!(blocks_spanned(0, 8193, 8192), 2);
        assert_eq!(blocks_spanned(4096, 16384, 8192), 3);
    }

    #[test]
    fn zero_len_touches_nothing() {
        assert_eq!(blocks_spanned(12345, 0, 8192), 0);
    }

    #[test]
    fn exact_block_multiples() {
        assert_eq!(blocks_spanned(8192, 8192, 8192), 1);
        assert_eq!(blocks_spanned(0, 3 * 8192, 8192), 3);
    }

    #[test]
    fn floors_and_ceils() {
        assert_eq!(block_floor(10000, 8192), 8192);
        assert_eq!(block_ceil(10000, 8192), 16384);
        assert_eq!(block_ceil(8192, 8192), 8192);
        assert_eq!(block_floor(0, 8192), 0);
    }
}
