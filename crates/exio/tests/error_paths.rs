//! Error-path coverage for the pipelining substrate: a producer failing
//! mid-stream must never leave consumers (or other producers) blocked, and
//! device wrappers must propagate inner errors without corrupting their
//! accounting.

use oociso_exio::{BlockDevice, BoundedQueue, FaultPlan, FaultyDevice, MemDevice, ThrottledDevice};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The pipeline shape: one retrieval thread reading records off a device and
/// pushing them into the bounded queue, a pool of consumers popping. When
/// the device errors mid-stream the producer's only correct move is to close
/// the queue on its way out — this test pins that down: every consumer
/// observes end-of-stream (`None`), none hangs, and the items pushed before
/// the fault all arrive.
#[test]
fn producer_error_midstream_unblocks_consumers() {
    let device = FaultyDevice::new(
        MemDevice::new((0..=255u8).cycle().take(1 << 12).collect()),
        FaultPlan {
            fail_reads: Some(5..6), // the 6th read fails
            ..FaultPlan::default()
        },
    );
    let queue: BoundedQueue<Vec<u8>> = BoundedQueue::new(2);
    let consumed = AtomicU64::new(0);
    let producer_result = std::thread::scope(|scope| {
        let mut consumers = Vec::new();
        for _ in 0..3 {
            consumers.push(scope.spawn(|| {
                while let Some(item) = queue.pop() {
                    consumed.fetch_add(item.len() as u64, Ordering::Relaxed);
                    // slow consumers: the producer hits its fault while the
                    // queue is contended, not after everything drained
                    std::thread::sleep(Duration::from_millis(2));
                }
            }));
        }
        let result = (|| -> std::io::Result<()> {
            for i in 0..64u64 {
                let mut buf = vec![0u8; 32];
                device.read_at(i * 32, &mut buf)?;
                if queue.push(buf, 32, 1).is_err() {
                    break;
                }
            }
            Ok(())
        })();
        // the close is what keeps the failure from wedging the pipeline
        queue.close();
        for c in consumers {
            c.join().expect("consumer panicked");
        }
        result
    });
    let err = producer_result.expect_err("read #5 was scheduled to fail");
    assert!(err.to_string().contains("injected fault"), "{err}");
    assert_eq!(device.injected_errors(), 1);
    assert_eq!(
        consumed.load(Ordering::Relaxed),
        5 * 32,
        "exactly the records read before the fault were consumed"
    );
    assert_eq!(queue.stats().pushed_items, 5);
}

/// The symmetric case: consumers all give up (close from the consumer side)
/// while a producer is blocked on a full queue. The blocked push must return
/// the item instead of wedging.
#[test]
fn consumer_side_close_unblocks_full_producer() {
    let queue: BoundedQueue<u32> = BoundedQueue::new(1);
    queue.push(0, 4, 1).unwrap();
    std::thread::scope(|scope| {
        let blocked = scope.spawn(|| queue.push(1, 4, 1));
        // let the producer actually block on the full queue first
        std::thread::sleep(Duration::from_millis(20));
        queue.close();
        assert_eq!(
            blocked.join().unwrap(),
            Err(1),
            "the push hands the item back"
        );
    });
    assert!(
        queue.waits().push_wait > Duration::ZERO,
        "the producer did block"
    );
}

/// A device error through the throttle wrapper: the error propagates verbatim
/// and the wrapper keeps working afterwards — a failed read does not poison
/// the throttle or its accounting.
#[test]
fn throttled_device_propagates_inner_errors_and_survives() {
    let device = ThrottledDevice::new(
        FaultyDevice::new(
            MemDevice::new((0..64u8).collect()),
            FaultPlan::fail_first(1),
        ),
        Duration::ZERO,
        1e9,
    );
    let mut buf = [0u8; 8];
    let err = device.read_at(0, &mut buf).expect_err("first read fails");
    assert!(err.to_string().contains("injected fault"), "{err}");
    device.read_at(8, &mut buf).expect("the device heals");
    assert_eq!(buf, [8, 9, 10, 11, 12, 13, 14, 15]);
    // only the successful read reached the inner MemDevice's accounting
    assert_eq!(device.stats().snapshot().read_calls, 1);
}

/// An out-of-range read errors through the throttle without sleeping for
/// bytes that will never transfer.
#[test]
fn throttled_device_rejects_out_of_range_reads() {
    let device = ThrottledDevice::new(MemDevice::new(vec![0u8; 100]), Duration::ZERO, 1e9);
    let mut buf = [0u8; 16];
    assert!(device.read_at(96, &mut buf).is_err(), "read past end fails");
    assert_eq!(device.len(), 100, "length reporting unaffected");
    device
        .read_at(84, &mut buf)
        .expect("in-range read still works");
}
