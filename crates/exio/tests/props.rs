//! Property tests for block arithmetic, spans and I/O accounting.

use oociso_exio::{blocks_spanned, BlockDevice, IoCostModel, MemDevice, Span};
use proptest::prelude::*;

proptest! {
    #[test]
    fn blocks_spanned_matches_enumeration(
        offset in 0u64..1_000_000,
        len in 0u64..100_000,
        block in prop::sample::select(vec![512u64, 4096, 8192, 65536]),
    ) {
        let got = blocks_spanned(offset, len, block);
        let expected = if len == 0 {
            0
        } else {
            let first = offset / block;
            let last = (offset + len - 1) / block;
            last - first + 1
        };
        prop_assert_eq!(got, expected);
        // reading the same range in two halves touches at least as many blocks
        if len >= 2 {
            let half = len / 2;
            let two = blocks_spanned(offset, half, block)
                + blocks_spanned(offset + half, len - half, block);
            prop_assert!(two >= got);
            prop_assert!(two <= got + 1, "split adds at most one boundary block");
        }
    }

    #[test]
    fn span_join_preserves_extent(offset in 0u64..1_000_000, a in 0u64..10_000, b in 0u64..10_000) {
        let s1 = Span { offset, len: a };
        let s2 = Span { offset: offset + a, len: b };
        prop_assert!(s1.abuts(&s2));
        let joined = s1.join(&s2);
        prop_assert_eq!(joined.offset, offset);
        prop_assert_eq!(joined.end(), s2.end());
    }

    #[test]
    fn io_stats_counts_conserved(reads in prop::collection::vec((0u64..10_000, 1u64..500), 1..50)) {
        let total_len: u64 = 12_000;
        let dev = MemDevice::new(vec![0u8; total_len as usize]).with_block_bytes(512);
        let mut expected_bytes = 0u64;
        let mut issued = 0u64;
        for (off, len) in reads {
            let off = off % (total_len - 500);
            let mut buf = vec![0u8; len as usize];
            dev.read_at(off, &mut buf).unwrap();
            expected_bytes += len;
            issued += 1;
        }
        let snap = dev.io_snapshot();
        prop_assert_eq!(snap.bytes_read, expected_bytes);
        prop_assert_eq!(snap.read_calls, issued);
        prop_assert_eq!(
            snap.seeks + snap.sequential_reads + snap.forward_skips,
            issued
        );
    }

    #[test]
    fn modeled_time_is_monotone_in_work(
        bytes_a in 0u64..1_000_000_000,
        bytes_b in 0u64..1_000_000_000,
        seeks_a in 0u64..10_000,
        seeks_b in 0u64..10_000,
    ) {
        let m = IoCostModel::paper_disk();
        let snap = |bytes, seeks| oociso_exio::IoSnapshot {
            read_calls: seeks,
            seeks,
            forward_skips: 0,
            skip_bytes: 0,
            sequential_reads: 0,
            bytes_read: bytes,
            blocks_read: bytes / 8192,
        };
        let ta = m.modeled_time(&snap(bytes_a.min(bytes_b), seeks_a.min(seeks_b)));
        let tb = m.modeled_time(&snap(bytes_a.max(bytes_b), seeks_a.max(seeks_b)));
        prop_assert!(ta <= tb);
    }

    #[test]
    fn device_reads_consistent_with_source(data in prop::collection::vec(any::<u8>(), 1..4096)) {
        let dev = MemDevice::new(data.clone());
        // read back in random-ish chunks and reassemble
        let mut out = Vec::with_capacity(data.len());
        let mut at = 0usize;
        let mut chunk = 7usize;
        while at < data.len() {
            let take = chunk.min(data.len() - at);
            let mut buf = vec![0u8; take];
            dev.read_at(at as u64, &mut buf).unwrap();
            out.extend_from_slice(&buf);
            at += take;
            chunk = chunk * 2 % 97 + 1;
        }
        prop_assert_eq!(out, data);
    }
}
