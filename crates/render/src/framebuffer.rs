//! Color + depth framebuffers.

use std::io::{self, Write};
use std::path::Path;

/// An RGBA8 color buffer with an `f32` depth buffer (smaller = closer, NDC
/// convention; cleared to `+∞`).
#[derive(Clone, Debug, PartialEq)]
pub struct Framebuffer {
    width: usize,
    height: usize,
    color: Vec<[u8; 4]>,
    depth: Vec<f32>,
}

impl Framebuffer {
    /// A cleared framebuffer (black, infinite depth).
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0);
        Framebuffer {
            width,
            height,
            color: vec![[0, 0, 0, 0]; width * height],
            depth: vec![f32::INFINITY; width * height],
        }
    }

    /// Width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Reset to the cleared state.
    pub fn clear(&mut self) {
        self.color.fill([0, 0, 0, 0]);
        self.depth.fill(f32::INFINITY);
    }

    #[inline]
    fn idx(&self, x: usize, y: usize) -> usize {
        debug_assert!(x < self.width && y < self.height);
        y * self.width + x
    }

    /// Depth test + write: stores the fragment if it is closer.
    #[inline]
    pub fn shade(&mut self, x: usize, y: usize, depth: f32, rgba: [u8; 4]) {
        let i = self.idx(x, y);
        if depth < self.depth[i] {
            self.depth[i] = depth;
            self.color[i] = rgba;
        }
    }

    /// Color at a pixel.
    pub fn color_at(&self, x: usize, y: usize) -> [u8; 4] {
        self.color[self.idx(x, y)]
    }

    /// Depth at a pixel.
    pub fn depth_at(&self, x: usize, y: usize) -> f32 {
        self.depth[self.idx(x, y)]
    }

    /// Raw color plane.
    pub fn color_plane(&self) -> &[[u8; 4]] {
        &self.color
    }

    /// Raw depth plane.
    pub fn depth_plane(&self) -> &[f32] {
        &self.depth
    }

    /// Mutable planes (compositor use).
    pub(crate) fn planes_mut(&mut self) -> (&mut [[u8; 4]], &mut [f32]) {
        (&mut self.color, &mut self.depth)
    }

    /// Number of pixels covered by at least one fragment.
    pub fn covered_pixels(&self) -> usize {
        self.depth.iter().filter(|d| d.is_finite()).count()
    }

    /// Bytes a sort-last exchange moves per pixel: RGBA8 + f32 depth.
    pub const BYTES_PER_PIXEL: u64 = 8;

    /// Write the color plane as a binary PPM (P6) file.
    pub fn write_ppm(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
        writeln!(out, "P6\n{} {}\n255", self.width, self.height)?;
        for px in &self.color {
            out.write_all(&px[..3])?;
        }
        out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_buffer_is_clear() {
        let fb = Framebuffer::new(4, 3);
        assert_eq!(fb.width(), 4);
        assert_eq!(fb.height(), 3);
        assert_eq!(fb.covered_pixels(), 0);
        assert_eq!(fb.color_at(0, 0), [0, 0, 0, 0]);
        assert!(fb.depth_at(3, 2).is_infinite());
    }

    #[test]
    fn depth_test_keeps_closest() {
        let mut fb = Framebuffer::new(2, 2);
        fb.shade(0, 0, 0.5, [10, 0, 0, 255]);
        fb.shade(0, 0, 0.7, [20, 0, 0, 255]); // behind: rejected
        assert_eq!(fb.color_at(0, 0), [10, 0, 0, 255]);
        fb.shade(0, 0, 0.3, [30, 0, 0, 255]); // in front: accepted
        assert_eq!(fb.color_at(0, 0), [30, 0, 0, 255]);
        assert_eq!(fb.depth_at(0, 0), 0.3);
        assert_eq!(fb.covered_pixels(), 1);
    }

    #[test]
    fn clear_resets() {
        let mut fb = Framebuffer::new(2, 2);
        fb.shade(1, 1, 0.1, [1, 2, 3, 255]);
        fb.clear();
        assert_eq!(fb.covered_pixels(), 0);
    }

    #[test]
    fn ppm_roundtrip_header() {
        let mut fb = Framebuffer::new(3, 2);
        fb.shade(0, 0, 0.5, [255, 128, 0, 255]);
        let mut p = std::env::temp_dir();
        p.push(format!("oociso_fb_{}.ppm", std::process::id()));
        fb.write_ppm(&p).unwrap();
        let bytes = std::fs::read(&p).unwrap();
        assert!(bytes.starts_with(b"P6\n3 2\n255\n"));
        assert_eq!(bytes.len(), 11 + 3 * 2 * 3);
        std::fs::remove_file(&p).ok();
    }
}
