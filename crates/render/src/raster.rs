//! Barycentric triangle rasterization with z-buffering.

use crate::camera::{ndc_to_screen, Camera};
use crate::framebuffer::Framebuffer;
use oociso_march::{IndexedMesh, Triangle, TriangleSoup, Vec3};

/// Counters from a rasterization pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RasterStats {
    /// Triangles submitted.
    pub triangles_in: u64,
    /// Triangles surviving near-plane / degeneracy rejection.
    pub triangles_rasterized: u64,
    /// Fragments passing the depth test.
    pub fragments_shaded: u64,
}

/// Rasterize a triangle soup into `fb` with two-sided Lambert shading.
///
/// Triangles with any vertex behind the near plane are rejected rather than
/// clipped — the viz cameras of the examples and benches always keep the
/// volume fully in front of the camera, matching the paper's setup where the
/// dataset sits on a display wall well inside the frustum.
pub fn rasterize_soup(
    soup: &TriangleSoup,
    camera: &Camera,
    base_color: [f32; 3],
    fb: &mut Framebuffer,
) -> RasterStats {
    rasterize_triangles(soup.triangles().iter().copied(), camera, base_color, fb)
}

/// Rasterize an indexed mesh (same pipeline as [`rasterize_soup`], but
/// triangles are materialized from the shared vertex buffer on the fly — the
/// extraction path never has to expand to an unindexed soup just to render).
pub fn rasterize_mesh(
    mesh: &IndexedMesh,
    camera: &Camera,
    base_color: [f32; 3],
    fb: &mut Framebuffer,
) -> RasterStats {
    rasterize_triangles(mesh.triangles(), camera, base_color, fb)
}

/// The shared pipeline behind both entry points: set up the view-projection
/// and headlight once, then rasterize every triangle the iterator yields.
fn rasterize_triangles(
    tris: impl Iterator<Item = Triangle>,
    camera: &Camera,
    base_color: [f32; 3],
    fb: &mut Framebuffer,
) -> RasterStats {
    let aspect = fb.width() as f32 / fb.height() as f32;
    let vp = camera.view_projection(aspect);
    let light = (camera.eye - camera.target).normalized(); // headlight
    let mut stats = RasterStats::default();
    for tri in tris {
        stats.triangles_in += 1;
        stats.fragments_shaded += rasterize_one(&tri, &vp, light, base_color, fb, &mut stats);
    }
    stats
}

fn rasterize_one(
    tri: &Triangle,
    vp: &crate::math::Mat4,
    light: Vec3,
    base_color: [f32; 3],
    fb: &mut Framebuffer,
    stats: &mut RasterStats,
) -> u64 {
    // project
    let mut sx = [0.0f32; 3];
    let mut sy = [0.0f32; 3];
    let mut sz = [0.0f32; 3];
    for i in 0..3 {
        let h = vp.transform(tri.v[i]);
        if h[3] <= 1e-6 {
            return 0; // behind the camera: reject
        }
        let inv_w = 1.0 / h[3];
        let (x, y) = ndc_to_screen(h[0] * inv_w, h[1] * inv_w, fb.width(), fb.height());
        sx[i] = x;
        sy[i] = y;
        sz[i] = h[2] * inv_w; // NDC depth: screen-affine for planar triangles
    }
    // signed double area in screen space
    let area = (sx[1] - sx[0]) * (sy[2] - sy[0]) - (sy[1] - sy[0]) * (sx[2] - sx[0]);
    if area.abs() < 1e-9 {
        return 0;
    }
    stats.triangles_rasterized += 1;

    // two-sided Lambert shade, computed once per triangle (flat shading)
    let n = tri.normal();
    let lambert = n.dot(light).abs();
    let shade = 0.25 + 0.75 * lambert;
    let rgba = [
        (base_color[0] * shade * 255.0).clamp(0.0, 255.0) as u8,
        (base_color[1] * shade * 255.0).clamp(0.0, 255.0) as u8,
        (base_color[2] * shade * 255.0).clamp(0.0, 255.0) as u8,
        255,
    ];

    // bounding box clamped to the viewport
    let min_x = sx
        .iter()
        .fold(f32::INFINITY, |a, &b| a.min(b))
        .floor()
        .max(0.0) as usize;
    let max_x = (sx.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b)).ceil() as i64)
        .clamp(0, fb.width() as i64 - 1) as usize;
    let min_y = sy
        .iter()
        .fold(f32::INFINITY, |a, &b| a.min(b))
        .floor()
        .max(0.0) as usize;
    let max_y = (sy.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b)).ceil() as i64)
        .clamp(0, fb.height() as i64 - 1) as usize;
    if min_x > max_x || min_y > max_y {
        return 0;
    }

    let inv_area = 1.0 / area;
    let mut shaded = 0u64;
    for py in min_y..=max_y {
        for px in min_x..=max_x {
            let (cx, cy) = (px as f32 + 0.5, py as f32 + 0.5);
            // barycentric via edge functions (sign-normalized by inv_area)
            let w0 = ((sx[1] - cx) * (sy[2] - cy) - (sy[1] - cy) * (sx[2] - cx)) * inv_area;
            let w1 = ((sx[2] - cx) * (sy[0] - cy) - (sy[2] - cy) * (sx[0] - cx)) * inv_area;
            let w2 = 1.0 - w0 - w1;
            // small inclusive tolerance: pixels whose centers lie exactly on
            // a shared edge must be covered by at least one of the triangles
            // despite floating-point cancellation (z-buffering makes the
            // occasional double cover harmless)
            const EPS: f32 = -1e-5;
            if w0 < EPS || w1 < EPS || w2 < EPS {
                continue;
            }
            let depth = w0 * sz[0] + w1 * sz[1] + w2 * sz[2];
            let before = fb.depth_at(px, py);
            fb.shade(px, py, depth, rgba);
            if fb.depth_at(px, py) < before {
                shaded += 1;
            }
        }
    }
    shaded
}

#[cfg(test)]
mod tests {
    use super::*;
    use oociso_march::Aabb;

    fn quad_soup(z: f32, half: f32) -> TriangleSoup {
        // two triangles forming a square in the plane z = `z`
        let a = Vec3::new(-half, -half, z);
        let b = Vec3::new(half, -half, z);
        let c = Vec3::new(half, half, z);
        let d = Vec3::new(-half, half, z);
        let mut s = TriangleSoup::new();
        s.push(Triangle { v: [a, b, c] });
        s.push(Triangle { v: [a, c, d] });
        s
    }

    fn quad_mesh(z: f32, half: f32) -> IndexedMesh {
        let mut m = IndexedMesh::new();
        let a = m.push_vertex(Vec3::new(-half, -half, z));
        let b = m.push_vertex(Vec3::new(half, -half, z));
        let c = m.push_vertex(Vec3::new(half, half, z));
        let d = m.push_vertex(Vec3::new(-half, half, z));
        m.push_triangle(a, b, c);
        m.push_triangle(a, c, d);
        m
    }

    fn front_camera() -> Camera {
        let mut b = Aabb::empty();
        b.grow(Vec3::new(-1.0, -1.0, -1.0));
        b.grow(Vec3::new(1.0, 1.0, 1.0));
        Camera {
            eye: Vec3::new(0.0, 0.0, 5.0),
            target: Vec3::ZERO,
            up: Vec3::new(0.0, 1.0, 0.0),
            fov_y: 60f32.to_radians(),
            near: 0.1,
            far: 100.0,
        }
    }

    #[test]
    fn quad_covers_center() {
        let mut fb = Framebuffer::new(64, 64);
        let stats = rasterize_soup(
            &quad_soup(0.0, 1.0),
            &front_camera(),
            [1.0, 0.0, 0.0],
            &mut fb,
        );
        assert_eq!(stats.triangles_in, 2);
        assert_eq!(stats.triangles_rasterized, 2);
        assert!(stats.fragments_shaded > 100);
        let c = fb.color_at(32, 32);
        assert!(c[0] > 0 && c[1] == 0 && c[2] == 0);
        assert!(fb.depth_at(32, 32).is_finite());
        // corners of the viewport are outside the quad
        assert_eq!(fb.color_at(0, 0), [0, 0, 0, 0]);
    }

    #[test]
    fn mesh_and_soup_rasterize_identically() {
        let cam = front_camera();
        let mut fb_soup = Framebuffer::new(64, 64);
        let s_soup = rasterize_soup(&quad_soup(0.3, 1.1), &cam, [0.9, 0.4, 0.2], &mut fb_soup);
        let mut fb_mesh = Framebuffer::new(64, 64);
        let s_mesh = rasterize_mesh(&quad_mesh(0.3, 1.1), &cam, [0.9, 0.4, 0.2], &mut fb_mesh);
        assert_eq!(s_soup, s_mesh);
        for y in 0..64 {
            for x in 0..64 {
                assert_eq!(fb_soup.color_at(x, y), fb_mesh.color_at(x, y));
                assert_eq!(fb_soup.depth_at(x, y), fb_mesh.depth_at(x, y));
            }
        }
    }

    #[test]
    fn nearer_surface_wins() {
        let mut fb = Framebuffer::new(32, 32);
        let cam = front_camera();
        rasterize_soup(&quad_soup(0.0, 1.0), &cam, [1.0, 0.0, 0.0], &mut fb);
        // nearer quad (z = 1 is closer to the camera at z = 5)
        rasterize_soup(&quad_soup(1.0, 1.0), &cam, [0.0, 1.0, 0.0], &mut fb);
        let c = fb.color_at(16, 16);
        assert!(c[1] > 0 && c[0] == 0, "near quad must win: {c:?}");
        // drawing the far quad again must not overwrite
        rasterize_soup(&quad_soup(0.0, 1.0), &cam, [1.0, 0.0, 0.0], &mut fb);
        let c = fb.color_at(16, 16);
        assert!(c[1] > 0 && c[0] == 0, "z-test must reject far quad: {c:?}");
    }

    #[test]
    fn behind_camera_rejected() {
        let mut fb = Framebuffer::new(16, 16);
        let stats = rasterize_soup(
            &quad_soup(10.0, 1.0),
            &front_camera(),
            [1.0, 1.0, 1.0],
            &mut fb,
        );
        assert_eq!(stats.triangles_rasterized, 0);
        assert_eq!(fb.covered_pixels(), 0);
    }

    #[test]
    fn adjacent_triangles_leave_no_cracks() {
        // the shared diagonal of the quad must not produce uncovered pixels
        let mut fb = Framebuffer::new(128, 128);
        rasterize_soup(
            &quad_soup(0.0, 1.2),
            &front_camera(),
            [1.0, 1.0, 1.0],
            &mut fb,
        );
        // the quad (half = 1.2 at distance 5, fov 60°) covers screen pixels
        // ≈ [37, 91]²; its triangle seam runs along the anti-diagonal of that
        // square. Sample well inside: every pixel must be covered.
        let mut holes = 0;
        for i in 42..86 {
            if fb.color_at(i, i) == [0, 0, 0, 0] {
                holes += 1;
            }
            if fb.color_at(i, 127 - i) == [0, 0, 0, 0] {
                holes += 1; // anti-diagonal: crosses the shared seam
            }
        }
        assert_eq!(holes, 0, "{holes} holes inside the quad");
    }

    #[test]
    fn shading_modulates_by_angle() {
        // a triangle tilted away from the light is darker than a facing one
        let cam = front_camera();
        let mut fb1 = Framebuffer::new(32, 32);
        rasterize_soup(&quad_soup(0.0, 1.0), &cam, [1.0, 1.0, 1.0], &mut fb1);
        let facing = fb1.color_at(16, 16)[0];

        let mut tilted = TriangleSoup::new();
        tilted.push(Triangle {
            v: [
                Vec3::new(-1.0, -1.0, -0.9),
                Vec3::new(1.0, -1.0, 0.9),
                Vec3::new(1.0, 1.0, 0.9),
            ],
        });
        tilted.push(Triangle {
            v: [
                Vec3::new(-1.0, -1.0, -0.9),
                Vec3::new(1.0, 1.0, 0.9),
                Vec3::new(-1.0, 1.0, -0.9),
            ],
        });
        let mut fb2 = Framebuffer::new(32, 32);
        rasterize_soup(&tilted, &cam, [1.0, 1.0, 1.0], &mut fb2);
        let slanted = fb2.color_at(16, 16)[0];
        assert!(
            facing > slanted,
            "facing {facing} should be brighter than slanted {slanted}"
        );
    }
}
