//! Minimal 4×4 matrix algebra for the camera pipeline.

use oociso_march::Vec3;

/// Column-major 4×4 matrix.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Mat4 {
    /// `m[col][row]`.
    pub m: [[f32; 4]; 4],
}

impl Mat4 {
    /// Identity matrix.
    pub fn identity() -> Self {
        let mut m = [[0.0; 4]; 4];
        for (i, col) in m.iter_mut().enumerate() {
            col[i] = 1.0;
        }
        Mat4 { m }
    }

    /// Matrix product `self * rhs`.
    pub fn mul(&self, rhs: &Mat4) -> Mat4 {
        let mut out = [[0.0f32; 4]; 4];
        for (c, out_col) in out.iter_mut().enumerate() {
            for (r, out_val) in out_col.iter_mut().enumerate() {
                let mut acc = 0.0;
                for k in 0..4 {
                    acc += self.m[k][r] * rhs.m[c][k];
                }
                *out_val = acc;
            }
        }
        Mat4 { m: out }
    }

    /// Transform a point, returning homogeneous `(x, y, z, w)`.
    pub fn transform(&self, p: Vec3) -> [f32; 4] {
        let mut out = [0.0f32; 4];
        for (r, out_val) in out.iter_mut().enumerate() {
            *out_val = self.m[0][r] * p.x + self.m[1][r] * p.y + self.m[2][r] * p.z + self.m[3][r];
        }
        out
    }

    /// Transform a direction (w = 0).
    pub fn transform_dir(&self, d: Vec3) -> Vec3 {
        Vec3::new(
            self.m[0][0] * d.x + self.m[1][0] * d.y + self.m[2][0] * d.z,
            self.m[0][1] * d.x + self.m[1][1] * d.y + self.m[2][1] * d.z,
            self.m[0][2] * d.x + self.m[1][2] * d.y + self.m[2][2] * d.z,
        )
    }

    /// Right-handed look-at view matrix.
    pub fn look_at(eye: Vec3, target: Vec3, up: Vec3) -> Mat4 {
        let f = (target - eye).normalized();
        let s = f.cross(up).normalized();
        let u = s.cross(f);
        let mut m = Mat4::identity().m;
        m[0][0] = s.x;
        m[1][0] = s.y;
        m[2][0] = s.z;
        m[0][1] = u.x;
        m[1][1] = u.y;
        m[2][1] = u.z;
        m[0][2] = -f.x;
        m[1][2] = -f.y;
        m[2][2] = -f.z;
        m[3][0] = -s.dot(eye);
        m[3][1] = -u.dot(eye);
        m[3][2] = f.dot(eye);
        Mat4 { m }
    }

    /// Right-handed perspective projection (depth mapped to `[-1, 1]`).
    pub fn perspective(fov_y_rad: f32, aspect: f32, near: f32, far: f32) -> Mat4 {
        let t = 1.0 / (fov_y_rad / 2.0).tan();
        let mut m = [[0.0f32; 4]; 4];
        m[0][0] = t / aspect;
        m[1][1] = t;
        m[2][2] = (far + near) / (near - far);
        m[2][3] = -1.0;
        m[3][2] = 2.0 * far * near / (near - far);
        Mat4 { m }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_neutral() {
        let p = Vec3::new(1.0, 2.0, 3.0);
        let id = Mat4::identity();
        assert_eq!(id.transform(p), [1.0, 2.0, 3.0, 1.0]);
        assert_eq!(id.mul(&id), id);
    }

    #[test]
    fn look_at_centers_target() {
        let v = Mat4::look_at(
            Vec3::new(0.0, 0.0, 5.0),
            Vec3::ZERO,
            Vec3::new(0.0, 1.0, 0.0),
        );
        let t = v.transform(Vec3::ZERO);
        assert!(t[0].abs() < 1e-6 && t[1].abs() < 1e-6);
        assert!((t[2] + 5.0).abs() < 1e-5, "target at -5 in view space");
    }

    #[test]
    fn perspective_maps_near_far() {
        let p = Mat4::perspective(std::f32::consts::FRAC_PI_2, 1.0, 1.0, 100.0);
        // view-space z = -near → NDC z = -1
        let n = p.transform(Vec3::new(0.0, 0.0, -1.0));
        assert!((n[2] / n[3] + 1.0).abs() < 1e-5);
        let f = p.transform(Vec3::new(0.0, 0.0, -100.0));
        assert!((f[2] / f[3] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn transform_dir_ignores_translation() {
        let v = Mat4::look_at(
            Vec3::new(10.0, 20.0, 30.0),
            Vec3::ZERO,
            Vec3::new(0.0, 1.0, 0.0),
        );
        let d = v.transform_dir(Vec3::new(0.0, 0.0, 1.0));
        assert!((d.length() - 1.0).abs() < 1e-5);
    }
}
