//! Software rendering substrate: rasterizer, z-buffer, sort-last compositing.
//!
//! The paper's cluster renders each node's locally-generated triangles on its
//! own GPU, reads back color+depth, and composites the framebuffers sort-last
//! over 10 Gbps InfiniBand onto a tiled display wall (§6, Chromium/[30]).
//! With no GPUs available here, this crate substitutes a deterministic
//! software pipeline that preserves the architecture the evaluation depends
//! on:
//!
//! * [`raster`] — barycentric triangle rasterization with z-buffer and
//!   two-sided Lambert shading (per-node local rendering);
//! * [`framebuffer`] — color + depth buffers with PPM export;
//! * [`camera`] — look-at/perspective transforms;
//! * [`composite`] — z-based sort-last merge of per-node framebuffers and the
//!   tiled-display region shuffle;
//! * [`net`] — the interconnect cost model (10 Gbps, per-message latency)
//!   that prices the composite phase — the only communication in the whole
//!   parallel algorithm;
//! * [`transport`] — the pluggable region-shuffle transport behind
//!   compositing: the same composite runs over a zero-cost local hand-off,
//!   the modeled interconnect, or a real TCP socket (`oociso-serve`).

pub mod camera;
pub mod composite;
pub mod framebuffer;
pub mod lod;
pub mod math;
pub mod net;
pub mod raster;
pub mod transport;

pub use camera::Camera;
pub use composite::{z_merge, FrameRegion, TileLayout};
pub use framebuffer::Framebuffer;
pub use lod::{screen_space_error, select_tile_levels};
pub use math::Mat4;
pub use net::InterconnectModel;
pub use raster::{rasterize_mesh, rasterize_soup, RasterStats};
pub use transport::{LocalTransport, SimTransport, Transport};
