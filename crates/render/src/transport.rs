//! Pluggable compositing transport.
//!
//! The sort-last shuffle is the only communication of the whole parallel
//! algorithm, so it is the only place a real interconnect can appear. This
//! module abstracts *how* framebuffer regions travel from the node that
//! rendered them to the compositor owning their display tile:
//!
//! * [`LocalTransport`] — zero-cost in-process hand-off (what
//!   [`crate::TileLayout::composite`] uses);
//! * [`SimTransport`] — hands regions over in-process but *prices* every
//!   remote route with an [`InterconnectModel`], reproducing the paper's
//!   modeled 10 Gbps shuffle;
//! * `oociso_serve::TcpLoopbackTransport` — serializes every region through
//!   a real kernel TCP socket and decodes it on the far side.
//!
//! Whatever the transport, the composited framebuffer must be bit-identical:
//! transports move pixels, they never transform them. The
//! `render_pipeline` integration tests assert exactly that across the
//! simulated and the real-socket implementations.

use crate::composite::FrameRegion;
use crate::net::InterconnectModel;
use std::io;
use std::time::Duration;

/// Moves framebuffer regions between nodes during the sort-last shuffle.
///
/// [`crate::TileLayout::composite_via`] routes every `(node, tile)` region
/// through [`Transport::send_region`]; the transport delivers it to the
/// compositor owning `tile` and returns the region *as observed at the
/// receiver*. In-process transports return it unchanged; a network transport
/// serializes it, moves the bytes, and decodes on the far side.
pub trait Transport {
    /// Ship `region` from node `from` to the compositor owning `tile` and
    /// return the received copy. `local` flags a region whose destination
    /// tile is owned by the sending node itself — in the paper's
    /// architecture such regions never cross the wire, so transports charge
    /// (or move) nothing for them.
    fn send_region(
        &mut self,
        from: usize,
        tile: usize,
        local: bool,
        region: FrameRegion,
    ) -> io::Result<FrameRegion>;

    /// Bytes moved across the (real or modeled) wire so far.
    fn bytes_moved(&self) -> u64;

    /// Cost of the moves so far: modeled time for simulators, measured
    /// wall-clock for real transports.
    fn cost(&self) -> Duration;

    /// Short human-readable name for reports (`"local"`, `"sim"`, `"tcp"`).
    fn name(&self) -> &'static str;
}

/// Zero-cost in-process hand-off: regions are delivered by move, nothing is
/// priced or serialized. [`crate::TileLayout::composite`] is exactly
/// `composite_via` over this transport.
#[derive(Clone, Copy, Debug, Default)]
pub struct LocalTransport;

impl Transport for LocalTransport {
    fn send_region(
        &mut self,
        _from: usize,
        _tile: usize,
        _local: bool,
        region: FrameRegion,
    ) -> io::Result<FrameRegion> {
        Ok(region)
    }

    fn bytes_moved(&self) -> u64 {
        0
    }

    fn cost(&self) -> Duration {
        Duration::ZERO
    }

    fn name(&self) -> &'static str {
        "local"
    }
}

/// In-process delivery priced by an [`InterconnectModel`]: every remote
/// region accrues one message of modeled latency plus its wire bytes at the
/// modeled bandwidth — the simulator the benches compare against real
/// sockets.
#[derive(Clone, Copy, Debug)]
pub struct SimTransport {
    model: InterconnectModel,
    bytes: u64,
    modeled: Duration,
}

impl SimTransport {
    /// Simulate the shuffle over `model`.
    pub fn new(model: InterconnectModel) -> Self {
        SimTransport {
            model,
            bytes: 0,
            modeled: Duration::ZERO,
        }
    }

    /// The model being simulated.
    pub fn model(&self) -> &InterconnectModel {
        &self.model
    }
}

impl Transport for SimTransport {
    fn send_region(
        &mut self,
        _from: usize,
        _tile: usize,
        local: bool,
        region: FrameRegion,
    ) -> io::Result<FrameRegion> {
        if !local {
            let bytes = region.wire_bytes();
            self.bytes += bytes;
            self.modeled += self.model.transfer_time(1, bytes);
        }
        Ok(region)
    }

    fn bytes_moved(&self) -> u64 {
        self.bytes
    }

    fn cost(&self) -> Duration {
        self.modeled
    }

    fn name(&self) -> &'static str {
        "sim"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(px: usize) -> FrameRegion {
        FrameRegion {
            origin: (0, 0),
            size: (px, 1),
            color: vec![[1, 2, 3, 4]; px],
            depth: vec![0.5; px],
        }
    }

    #[test]
    fn local_transport_is_free_and_lossless() {
        let mut t = LocalTransport;
        let r = region(16);
        let got = t.send_region(0, 1, false, r.clone()).unwrap();
        assert_eq!(got, r);
        assert_eq!(t.bytes_moved(), 0);
        assert_eq!(t.cost(), Duration::ZERO);
    }

    #[test]
    fn sim_transport_prices_remote_only() {
        let mut t = SimTransport::new(InterconnectModel::infiniband_10g());
        let r = region(100);
        let wire = r.wire_bytes();
        let got = t.send_region(0, 0, true, r.clone()).unwrap();
        assert_eq!(got, r);
        assert_eq!(t.bytes_moved(), 0, "local routes are free");
        t.send_region(0, 1, false, r.clone()).unwrap();
        assert_eq!(t.bytes_moved(), wire);
        assert_eq!(
            t.cost(),
            InterconnectModel::infiniband_10g().transfer_time(1, wire)
        );
        t.send_region(1, 0, false, r).unwrap();
        assert_eq!(t.bytes_moved(), 2 * wire);
    }
}
