//! Screen-space-error LOD selection for the tiled display wall.
//!
//! A decimated level carries a world-space error gauge (the accumulated
//! quadric error of its collapses, as a length — `LodChain::world_error` in
//! `oociso-march`). Whether that error is *visible* depends on the camera:
//! projected onto the screen it spans `error · focal_px / distance` pixels.
//! [`select_tile_levels`] applies that test per display tile, so a wall
//! server renders distant (or surface-free) tiles from a coarse level while
//! tiles the surface fills at close range stay at full resolution — the
//! LOD analogue of sort-last compositing's "only ship what the tile shows".
//!
//! Selection is deterministic and purely geometric: same camera, bounds,
//! and error ladder → same levels, on every node of the cluster.

use crate::camera::{ndc_to_screen, Camera};
use crate::composite::TileLayout;
use oociso_march::{Aabb, Vec3};

/// Pixels a world-space length `world_error` spans when viewed from
/// `distance` through a `fov_y` lens rendered at `viewport_height_px`.
/// Monotonic in the error and inversely proportional to distance — the
/// classic geometric-error projection used for LOD ladders.
pub fn screen_space_error(
    world_error: f32,
    distance: f32,
    viewport_height_px: f32,
    fov_y: f32,
) -> f32 {
    if world_error <= 0.0 {
        return 0.0;
    }
    let world_per_screen = 2.0 * distance.max(1e-6) * (fov_y * 0.5).tan();
    world_error * viewport_height_px / world_per_screen
}

/// The nearest point of `bounds` to `p` (clamp per axis), i.e. the
/// conservative closest approach of the surface to the camera.
fn closest_point(bounds: &Aabb, p: Vec3) -> Vec3 {
    Vec3::new(
        p.x.clamp(bounds.lo.x, bounds.hi.x),
        p.y.clamp(bounds.lo.y, bounds.hi.y),
        p.z.clamp(bounds.lo.z, bounds.hi.z),
    )
}

/// Pick one LOD level per display tile: the **coarsest** level whose
/// projected screen-space error stays at or under `tolerance_px`, judged at
/// the mesh's closest approach to the camera (conservative — the worst-case
/// pixel of the tile). Tiles whose pixel rectangle the mesh's projected
/// bounds never touch show no surface at all and take the coarsest level
/// outright.
///
/// `world_errors` is the error ladder, finest first; `world_errors[0]`
/// should be 0 (full resolution), which keeps every tile selectable even at
/// `tolerance_px = 0`. Returns one level index per tile of `tiles`.
pub fn select_tile_levels(
    tiles: &TileLayout,
    camera: &Camera,
    bounds: &Aabb,
    world_errors: &[f64],
    tolerance_px: f32,
) -> Vec<usize> {
    let levels = world_errors.len();
    if levels <= 1 {
        return vec![0; tiles.num_tiles()];
    }
    let coarsest = levels - 1;
    if bounds.lo.x > bounds.hi.x {
        // empty mesh: nothing visible anywhere
        return vec![coarsest; tiles.num_tiles()];
    }

    // conservative viewing distance: the closest the surface can get
    let distance = (closest_point(bounds, camera.eye) - camera.eye)
        .length()
        .max(camera.near);

    // project the 8 bbox corners to a screen-pixel AABB; a corner behind
    // the near plane makes the projection unbounded → treat the mesh as
    // covering every tile (conservative)
    let vp = camera.view_projection(tiles.width as f32 / tiles.height as f32);
    let mut min_px = (f32::INFINITY, f32::INFINITY);
    let mut max_px = (f32::NEG_INFINITY, f32::NEG_INFINITY);
    let mut covers_all = false;
    for i in 0..8 {
        let corner = Vec3::new(
            if i & 1 == 0 { bounds.lo.x } else { bounds.hi.x },
            if i & 2 == 0 { bounds.lo.y } else { bounds.hi.y },
            if i & 4 == 0 { bounds.lo.z } else { bounds.hi.z },
        );
        let h = vp.transform(corner);
        if h[3] <= 0.0 {
            covers_all = true;
            break;
        }
        let (sx, sy) = ndc_to_screen(h[0] / h[3], h[1] / h[3], tiles.width, tiles.height);
        min_px.0 = min_px.0.min(sx);
        min_px.1 = min_px.1.min(sy);
        max_px.0 = max_px.0.max(sx);
        max_px.1 = max_px.1.max(sy);
    }

    // the visible-tile level: coarsest whose projected error fits the budget
    let visible_level = (0..levels)
        .rev()
        .find(|&i| {
            screen_space_error(
                world_errors[i] as f32,
                distance,
                tiles.height as f32,
                camera.fov_y,
            ) <= tolerance_px
        })
        .unwrap_or(0);

    let (tw, th) = tiles.tile_size();
    (0..tiles.num_tiles())
        .map(|t| {
            if covers_all {
                return visible_level;
            }
            let (ox, oy) = tiles.tile_origin(t);
            let (x0, y0) = (ox as f32, oy as f32);
            let (x1, y1) = ((ox + tw) as f32, (oy + th) as f32);
            let hit = min_px.0 <= x1 && max_px.0 >= x0 && min_px.1 <= y1 && max_px.1 >= y0;
            if hit {
                visible_level
            } else {
                coarsest
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_bounds() -> Aabb {
        let mut b = Aabb::empty();
        b.grow(Vec3::ZERO);
        b.grow(Vec3::new(1.0, 1.0, 1.0));
        b
    }

    #[test]
    fn projection_shrinks_with_distance() {
        let fov = 45f32.to_radians();
        let near = screen_space_error(0.1, 2.0, 512.0, fov);
        let far = screen_space_error(0.1, 4.0, 512.0, fov);
        assert!(near > far);
        assert!(
            (near / far - 2.0).abs() < 1e-4,
            "inverse-linear in distance"
        );
        assert_eq!(screen_space_error(0.0, 2.0, 512.0, fov), 0.0);
    }

    #[test]
    fn zero_tolerance_selects_full_resolution() {
        let tiles = TileLayout::paper_wall(128, 128);
        let camera = Camera::orbiting(&unit_bounds(), 0.4, 0.3, 2.5);
        let errors = [0.0, 0.05, 0.2];
        let picks = select_tile_levels(&tiles, &camera, &unit_bounds(), &errors, 0.0);
        assert_eq!(picks.len(), 4);
        // tiles showing the surface must stay at level 0; the box orbits
        // centered, so at least one tile shows it
        assert!(picks.contains(&0), "{picks:?}");
    }

    #[test]
    fn generous_tolerance_selects_coarsest_everywhere() {
        let tiles = TileLayout::paper_wall(128, 128);
        let camera = Camera::orbiting(&unit_bounds(), 0.4, 0.3, 2.5);
        let errors = [0.0, 0.05, 0.2];
        let picks = select_tile_levels(&tiles, &camera, &unit_bounds(), &errors, 1e6);
        assert_eq!(picks, vec![2, 2, 2, 2]);
    }

    #[test]
    fn surface_free_tiles_take_the_coarsest_level() {
        // a tiny box pushed into one screen corner: tiles it never projects
        // into must pick the coarsest level even under a strict tolerance
        let mut small = Aabb::empty();
        small.grow(Vec3::new(0.0, 0.0, 0.0));
        small.grow(Vec3::new(0.05, 0.05, 0.05));
        let mut camera = Camera::orbiting(&small, 0.0, 0.0, 8.0);
        // look past the box so it lands off-center
        camera.target = Vec3::new(0.2, 0.2, 0.0);
        let tiles = TileLayout::paper_wall(256, 256);
        let errors = [0.0, 0.01, 0.08];
        let picks = select_tile_levels(&tiles, &camera, &small, &errors, 0.0);
        assert!(picks.contains(&2), "empty tiles must coarsen: {picks:?}");
        assert!(picks.contains(&0), "covered tile must stay fine: {picks:?}");
    }

    #[test]
    fn farther_cameras_coarsen() {
        let tiles = TileLayout::new(1, 1, 128, 128);
        let bounds = unit_bounds();
        let errors = [0.0, 0.004, 0.02];
        // tolerance of 1.5 px: close camera needs detail, far one does not
        let near_cam = Camera::orbiting(&bounds, 0.4, 0.3, 1.2);
        let close = select_tile_levels(&tiles, &near_cam, &bounds, &errors, 1.5);
        let far_cam = Camera::orbiting(&bounds, 0.4, 0.3, 60.0);
        let far = select_tile_levels(&tiles, &far_cam, &bounds, &errors, 1.5);
        assert!(far[0] >= close[0], "close {close:?} vs far {far:?}");
        assert_eq!(far[0], 2, "at 60 diagonals everything fits the budget");
    }

    #[test]
    fn single_level_ladder_is_always_level_zero() {
        let tiles = TileLayout::paper_wall(64, 64);
        let camera = Camera::orbiting(&unit_bounds(), 0.1, 0.1, 2.0);
        assert_eq!(
            select_tile_levels(&tiles, &camera, &unit_bounds(), &[0.0], 0.0),
            vec![0; 4]
        );
        // empty ladder degrades to level 0 too
        assert_eq!(
            select_tile_levels(&tiles, &camera, &unit_bounds(), &[], 0.0),
            vec![0; 4]
        );
    }
}
