//! Camera: view + projection + viewport.

use crate::math::Mat4;
use oociso_march::{Aabb, Vec3};

/// A perspective camera.
#[derive(Clone, Copy, Debug)]
pub struct Camera {
    pub eye: Vec3,
    pub target: Vec3,
    pub up: Vec3,
    /// Vertical field of view in radians.
    pub fov_y: f32,
    pub near: f32,
    pub far: f32,
}

impl Camera {
    /// A camera orbiting `bounds` at `distance_factor ×` its diagonal,
    /// looking at its center — the default view the examples use.
    pub fn orbiting(bounds: &Aabb, azimuth: f32, elevation: f32, distance_factor: f32) -> Camera {
        let center = bounds.center();
        let diag = bounds.extent().length().max(1e-3);
        let d = diag * distance_factor;
        let eye = center
            + Vec3::new(
                d * elevation.cos() * azimuth.cos(),
                d * elevation.cos() * azimuth.sin(),
                d * elevation.sin(),
            );
        Camera {
            eye,
            target: center,
            up: Vec3::new(0.0, 0.0, 1.0),
            fov_y: 45f32.to_radians(),
            near: diag * 0.01,
            far: diag * 10.0,
        }
    }

    /// Combined view-projection matrix for an `aspect = w/h` viewport.
    pub fn view_projection(&self, aspect: f32) -> Mat4 {
        let proj = Mat4::perspective(self.fov_y, aspect, self.near, self.far);
        let view = Mat4::look_at(self.eye, self.target, self.up);
        proj.mul(&view)
    }

    /// View direction (unit).
    pub fn forward(&self) -> Vec3 {
        (self.target - self.eye).normalized()
    }
}

/// Map NDC coordinates to pixel coordinates (origin top-left).
#[inline]
pub fn ndc_to_screen(ndc_x: f32, ndc_y: f32, width: usize, height: usize) -> (f32, f32) {
    (
        (ndc_x + 1.0) * 0.5 * width as f32,
        (1.0 - ndc_y) * 0.5 * height as f32,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_bounds() -> Aabb {
        let mut b = Aabb::empty();
        b.grow(Vec3::ZERO);
        b.grow(Vec3::new(1.0, 1.0, 1.0));
        b
    }

    #[test]
    fn orbit_looks_at_center() {
        let c = Camera::orbiting(&unit_bounds(), 0.3, 0.4, 2.5);
        assert!((c.target - Vec3::new(0.5, 0.5, 0.5)).length() < 1e-6);
        let d = (c.eye - c.target).length();
        let diag = 3.0f32.sqrt();
        assert!((d - diag * 2.5).abs() < 1e-4);
    }

    #[test]
    fn center_projects_to_screen_center() {
        let c = Camera::orbiting(&unit_bounds(), 1.0, 0.5, 3.0);
        let vp = c.view_projection(1.0);
        let h = vp.transform(c.target);
        let (x, y) = (h[0] / h[3], h[1] / h[3]);
        assert!(x.abs() < 1e-4 && y.abs() < 1e-4);
        let (sx, sy) = ndc_to_screen(x, y, 100, 100);
        assert!((sx - 50.0).abs() < 0.01 && (sy - 50.0).abs() < 0.01);
    }

    #[test]
    fn screen_mapping_corners() {
        assert_eq!(ndc_to_screen(-1.0, 1.0, 200, 100), (0.0, 0.0));
        assert_eq!(ndc_to_screen(1.0, -1.0, 200, 100), (200.0, 100.0));
    }
}
