//! Sort-last compositing and the tiled display shuffle.
//!
//! The paper uses the sort-last method [30]: every node renders its own
//! triangles locally, then framebuffer regions (color + z) are forwarded to
//! the rendering server owning each display tile, which merges them by depth.
//! [`z_merge`] is the merge operator (associative and commutative for
//! distinct depths — the property the tests verify, since it is what makes
//! the composite order-independent and hence parallelizable), and
//! [`TileLayout`] carves framebuffers into per-server regions.

use crate::framebuffer::Framebuffer;
use crate::transport::{LocalTransport, Transport};
use std::io;

/// Merge `src` into `dst`, keeping the nearer fragment per pixel.
pub fn z_merge(dst: &mut Framebuffer, src: &Framebuffer) {
    assert_eq!(dst.width(), src.width());
    assert_eq!(dst.height(), src.height());
    let (dc, dd) = dst.planes_mut();
    let sc = src.color_plane();
    let sd = src.depth_plane();
    for i in 0..sd.len() {
        if sd[i] < dd[i] {
            dd[i] = sd[i];
            dc[i] = sc[i];
        }
    }
}

/// A rectangular framebuffer region with its pixels (color + depth), as sent
/// across the interconnect during the shuffle.
#[derive(Clone, Debug, PartialEq)]
pub struct FrameRegion {
    /// Pixel origin `(x, y)` in the full display.
    pub origin: (usize, usize),
    /// Region size `(w, h)`.
    pub size: (usize, usize),
    /// Row-major color samples.
    pub color: Vec<[u8; 4]>,
    /// Row-major depth samples.
    pub depth: Vec<f32>,
}

impl FrameRegion {
    /// Extract a region from a framebuffer.
    pub fn extract(fb: &Framebuffer, origin: (usize, usize), size: (usize, usize)) -> Self {
        assert!(origin.0 + size.0 <= fb.width() && origin.1 + size.1 <= fb.height());
        let mut color = Vec::with_capacity(size.0 * size.1);
        let mut depth = Vec::with_capacity(size.0 * size.1);
        for y in origin.1..origin.1 + size.1 {
            for x in origin.0..origin.0 + size.0 {
                color.push(fb.color_at(x, y));
                depth.push(fb.depth_at(x, y));
            }
        }
        FrameRegion {
            origin,
            size,
            color,
            depth,
        }
    }

    /// Bytes this region occupies on the wire (RGBA8 + f32 z per pixel).
    pub fn wire_bytes(&self) -> u64 {
        (self.size.0 * self.size.1) as u64 * Framebuffer::BYTES_PER_PIXEL
    }

    /// Depth-merge this region into a tile-local framebuffer whose pixel
    /// `(0, 0)` corresponds to display pixel `tile_origin`.
    pub fn merge_into(&self, tile: &mut Framebuffer, tile_origin: (usize, usize)) {
        for ry in 0..self.size.1 {
            for rx in 0..self.size.0 {
                let d = self.depth[ry * self.size.0 + rx];
                if !d.is_finite() {
                    continue;
                }
                let gx = self.origin.0 + rx;
                let gy = self.origin.1 + ry;
                let tx = gx - tile_origin.0;
                let ty = gy - tile_origin.1;
                tile.shade(tx, ty, d, self.color[ry * self.size.0 + rx]);
            }
        }
    }
}

/// Partition of the display wall into `cols × rows` tiles, one per rendering
/// server (the paper's wall uses 2×2 = four projectors).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TileLayout {
    pub cols: usize,
    pub rows: usize,
    pub width: usize,
    pub height: usize,
}

impl TileLayout {
    /// Layout for a `width × height` display split into `cols × rows` tiles.
    pub fn new(cols: usize, rows: usize, width: usize, height: usize) -> Self {
        assert!(cols > 0 && rows > 0);
        assert_eq!(width % cols, 0, "width must divide evenly");
        assert_eq!(height % rows, 0, "height must divide evenly");
        TileLayout {
            cols,
            rows,
            width,
            height,
        }
    }

    /// The paper's four-way tiled wall.
    pub fn paper_wall(width: usize, height: usize) -> Self {
        Self::new(2, 2, width, height)
    }

    /// Number of tiles (display servers).
    pub fn num_tiles(&self) -> usize {
        self.cols * self.rows
    }

    /// Pixel origin of tile `t`.
    pub fn tile_origin(&self, t: usize) -> (usize, usize) {
        let tw = self.width / self.cols;
        let th = self.height / self.rows;
        ((t % self.cols) * tw, (t / self.cols) * th)
    }

    /// Pixel size of every tile.
    pub fn tile_size(&self) -> (usize, usize) {
        (self.width / self.cols, self.height / self.rows)
    }

    /// Carve a node's full framebuffer into per-tile regions for the shuffle.
    pub fn shard(&self, fb: &Framebuffer) -> Vec<FrameRegion> {
        assert_eq!(fb.width(), self.width);
        assert_eq!(fb.height(), self.height);
        (0..self.num_tiles())
            .map(|t| FrameRegion::extract(fb, self.tile_origin(t), self.tile_size()))
            .collect()
    }

    /// Full sort-last composite: shard every node framebuffer, route regions
    /// to their tiles, depth-merge per tile, and reassemble the final image.
    /// Returns the composited display plus total bytes moved on the wire.
    ///
    /// Equivalent to [`TileLayout::composite_via`] over the zero-cost
    /// in-process [`LocalTransport`].
    pub fn composite(&self, node_buffers: &[Framebuffer]) -> (Framebuffer, u64) {
        self.composite_via(node_buffers, &mut LocalTransport)
            .expect("LocalTransport is infallible")
    }

    /// [`TileLayout::composite`] with the region shuffle routed through an
    /// explicit [`Transport`]: each node's framebuffer is sharded, every
    /// region travels through `transport.send_region` to the compositor
    /// owning its tile, and the received copies are depth-merged. The result
    /// is bit-identical for any lossless transport; only the transport's
    /// accounted cost differs.
    pub fn composite_via(
        &self,
        node_buffers: &[Framebuffer],
        transport: &mut dyn Transport,
    ) -> io::Result<(Framebuffer, u64)> {
        let (tw, th) = self.tile_size();
        let mut tiles: Vec<Framebuffer> = (0..self.num_tiles())
            .map(|_| Framebuffer::new(tw, th))
            .collect();
        let mut wire_bytes = 0u64;
        for (node, fb) in node_buffers.iter().enumerate() {
            for (t, region) in self.shard(fb).into_iter().enumerate() {
                // a region destined for a tile the node itself owns would not
                // cross the network; the paper's compositing nodes are a
                // subset of the render nodes, so charge only remote routes
                let local = t == node % self.num_tiles();
                if !local {
                    wire_bytes += region.wire_bytes();
                }
                let received = transport.send_region(node, t, local, region)?;
                received.merge_into(&mut tiles[t], self.tile_origin(t));
            }
        }
        // assemble the wall image
        let mut out = Framebuffer::new(self.width, self.height);
        for (t, tile) in tiles.iter().enumerate() {
            let (ox, oy) = self.tile_origin(t);
            for y in 0..th {
                for x in 0..tw {
                    let d = tile.depth_at(x, y);
                    if d.is_finite() {
                        out.shade(ox + x, oy + y, d, tile.color_at(x, y));
                    }
                }
            }
        }
        Ok((out, wire_bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fb_with(pixels: &[(usize, usize, f32, [u8; 4])], w: usize, h: usize) -> Framebuffer {
        let mut fb = Framebuffer::new(w, h);
        for &(x, y, d, c) in pixels {
            fb.shade(x, y, d, c);
        }
        fb
    }

    #[test]
    fn z_merge_keeps_nearest() {
        let mut a = fb_with(&[(0, 0, 0.5, [1, 0, 0, 255])], 2, 2);
        let b = fb_with(
            &[(0, 0, 0.3, [0, 1, 0, 255]), (1, 1, 0.9, [0, 0, 1, 255])],
            2,
            2,
        );
        z_merge(&mut a, &b);
        assert_eq!(a.color_at(0, 0), [0, 1, 0, 255]);
        assert_eq!(a.color_at(1, 1), [0, 0, 1, 255]);
    }

    #[test]
    fn z_merge_commutative_for_distinct_depths() {
        let a = fb_with(
            &[(0, 0, 0.5, [1, 0, 0, 255]), (1, 0, 0.2, [9, 9, 9, 255])],
            2,
            1,
        );
        let b = fb_with(
            &[(0, 0, 0.3, [0, 1, 0, 255]), (1, 0, 0.7, [7, 7, 7, 255])],
            2,
            1,
        );
        let mut ab = a.clone();
        z_merge(&mut ab, &b);
        let mut ba = b.clone();
        z_merge(&mut ba, &a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn z_merge_associative() {
        let a = fb_with(&[(0, 0, 0.5, [1, 0, 0, 255])], 1, 1);
        let b = fb_with(&[(0, 0, 0.3, [2, 0, 0, 255])], 1, 1);
        let c = fb_with(&[(0, 0, 0.4, [3, 0, 0, 255])], 1, 1);
        let mut ab_c = a.clone();
        z_merge(&mut ab_c, &b);
        z_merge(&mut ab_c, &c);
        let mut bc = b.clone();
        z_merge(&mut bc, &c);
        let mut a_bc = a.clone();
        z_merge(&mut a_bc, &bc);
        assert_eq!(ab_c, a_bc);
    }

    #[test]
    fn tile_layout_origins() {
        let l = TileLayout::paper_wall(200, 100);
        assert_eq!(l.num_tiles(), 4);
        assert_eq!(l.tile_size(), (100, 50));
        assert_eq!(l.tile_origin(0), (0, 0));
        assert_eq!(l.tile_origin(1), (100, 0));
        assert_eq!(l.tile_origin(2), (0, 50));
        assert_eq!(l.tile_origin(3), (100, 50));
    }

    #[test]
    fn composite_equals_single_merge() {
        // compositing through tiles must equal a flat z_merge of all buffers
        let w = 8;
        let h = 8;
        let a = fb_with(
            &[(1, 1, 0.5, [1, 0, 0, 255]), (6, 6, 0.2, [2, 0, 0, 255])],
            w,
            h,
        );
        let b = fb_with(
            &[(1, 1, 0.3, [0, 1, 0, 255]), (5, 2, 0.8, [0, 2, 0, 255])],
            w,
            h,
        );
        let layout = TileLayout::new(2, 2, w, h);
        let (wall, wire) = layout.composite(&[a.clone(), b.clone()]);
        let mut flat = a;
        z_merge(&mut flat, &b);
        for y in 0..h {
            for x in 0..w {
                assert_eq!(wall.color_at(x, y), flat.color_at(x, y), "({x},{y})");
            }
        }
        assert!(wire > 0);
    }

    #[test]
    fn wire_bytes_independent_of_triangle_count() {
        // the shuffle moves framebuffer regions: its size depends only on the
        // resolution and node count — the paper's argument for why the final
        // phase is cheap relative to hundreds of millions of triangles.
        let layout = TileLayout::new(2, 2, 16, 16);
        let empty = Framebuffer::new(16, 16);
        let (_, wire1) = layout.composite(&[empty.clone(), empty.clone()]);
        let busy = fb_with(
            &(0..256)
                .map(|i| (i % 16, i / 16, 0.1, [255, 255, 255, 255]))
                .collect::<Vec<_>>(),
            16,
            16,
        );
        let (_, wire2) = layout.composite(&[busy.clone(), busy]);
        assert_eq!(wire1, wire2);
    }

    #[test]
    fn region_extract_merge_roundtrip() {
        let fb = fb_with(&[(2, 1, 0.4, [5, 6, 7, 255])], 4, 4);
        let region = FrameRegion::extract(&fb, (2, 0), (2, 2));
        assert_eq!(region.wire_bytes(), 4 * 8);
        let mut tile = Framebuffer::new(2, 2);
        region.merge_into(&mut tile, (2, 0));
        assert_eq!(tile.color_at(0, 1), [5, 6, 7, 255]);
    }
}
