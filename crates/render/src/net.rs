//! Interconnect cost model for the compositing phase.
//!
//! The only communication in the whole parallel algorithm is the final
//! framebuffer shuffle (§5.1: "no communication is required except for the
//! final phase of compositing the frame buffers"). The paper's cluster uses
//! 10 Gbps InfiniBand and reports the shuffle "doesn't cause a noticeable
//! overhead". This model prices the shuffle so benches can verify that claim
//! at our scale: `time = messages × latency + bytes / bandwidth`.

use std::time::Duration;

/// A simple bandwidth + per-message-latency network model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InterconnectModel {
    /// Usable bandwidth, bytes per second.
    pub bytes_per_sec: f64,
    /// Per-message latency.
    pub latency: Duration,
}

impl InterconnectModel {
    /// The paper's 10 Gbps Topspin InfiniBand (≈ 1.25 GB/s raw; ~1 GB/s
    /// usable) with a few microseconds of RDMA latency.
    pub fn infiniband_10g() -> Self {
        InterconnectModel {
            bytes_per_sec: 1.0e9,
            latency: Duration::from_micros(5),
        }
    }

    /// Gigabit Ethernet, for contrast experiments.
    pub fn gige() -> Self {
        InterconnectModel {
            bytes_per_sec: 0.118e9,
            latency: Duration::from_micros(50),
        }
    }

    /// Kernel TCP over `127.0.0.1` — the link the real
    /// `oociso_serve::TcpLoopbackTransport` actually crosses, so
    /// simulator-vs-socket bench comparisons are apples-to-apples. The
    /// constants are a measured round-trip on the development container
    /// (`oociso_serve::measure_loopback` with an 8 MiB bulk probe, which
    /// re-calibrates them live): ~3 µs one-way for a small message,
    /// ~0.8 GB/s streaming through the full echo path.
    pub fn loopback() -> Self {
        InterconnectModel {
            bytes_per_sec: 0.8e9,
            latency: Duration::from_micros(3),
        }
    }

    /// Build a profile from live measurements: a small-message round trip
    /// (`latency = round_trip / 2`) and a timed bulk transfer
    /// (`bytes_per_sec = bulk_bytes / bulk_time`, with the per-message
    /// latency deducted first so the two constants stay independent).
    pub fn from_measurement(round_trip: Duration, bulk_bytes: u64, bulk_time: Duration) -> Self {
        let latency = round_trip / 2;
        let stream = bulk_time
            .saturating_sub(latency)
            .as_secs_f64()
            .max(f64::EPSILON);
        InterconnectModel {
            bytes_per_sec: bulk_bytes as f64 / stream,
            latency,
        }
    }

    /// Time to deliver `messages` totalling `bytes` (serialized on one link —
    /// a conservative upper bound for the all-to-all shuffle).
    pub fn transfer_time(&self, messages: u64, bytes: u64) -> Duration {
        let t = self.latency.as_secs_f64() * messages as f64 + bytes as f64 / self.bytes_per_sec;
        Duration::from_secs_f64(t)
    }

    /// Shuffle time for a sort-last composite: `nodes × (tiles - 1)` regions
    /// of `region_bytes` each (each node keeps its own tile's region local).
    pub fn composite_time(&self, nodes: usize, tiles: usize, region_bytes: u64) -> Duration {
        let messages = nodes as u64 * (tiles as u64).saturating_sub(1);
        self.transfer_time(messages, messages * region_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_shuffle_is_milliseconds() {
        // 8 nodes, 4 tiles, 1024×1024 display → region = (1024×1024/4) px × 8 B
        let m = InterconnectModel::infiniband_10g();
        let region_bytes = (1024u64 * 1024 / 4) * 8;
        let t = m.composite_time(8, 4, region_bytes);
        // the paper: compositing "doesn't cause a noticeable overhead" —
        // tens of milliseconds against multi-second extraction times
        assert!(t < Duration::from_millis(100), "shuffle took {t:?}");
        assert!(t > Duration::from_micros(100));
    }

    #[test]
    fn bandwidth_dominates_large_transfers() {
        let m = InterconnectModel::infiniband_10g();
        let t = m.transfer_time(1, 1_000_000_000);
        assert!((t.as_secs_f64() - 1.0).abs() < 0.01);
    }

    #[test]
    fn latency_dominates_tiny_messages() {
        let m = InterconnectModel::infiniband_10g();
        let t = m.transfer_time(1000, 1000);
        assert!(t >= Duration::from_millis(5));
    }

    #[test]
    fn gige_slower_than_ib() {
        let ib = InterconnectModel::infiniband_10g();
        let ge = InterconnectModel::gige();
        let bytes = 100_000_000;
        assert!(ge.transfer_time(10, bytes) > ib.transfer_time(10, bytes) * 5);
    }

    #[test]
    fn loopback_sits_between_gige_and_free() {
        let lo = InterconnectModel::loopback();
        let ge = InterconnectModel::gige();
        let bytes = 50_000_000;
        assert!(lo.transfer_time(10, bytes) < ge.transfer_time(10, bytes));
        assert!(lo.transfer_time(1, bytes) > Duration::ZERO);
    }

    #[test]
    fn from_measurement_recovers_constants() {
        // 40 µs RTT → 20 µs latency; 100 MB in 50 ms (minus latency) → 2 GB/s
        let m = InterconnectModel::from_measurement(
            Duration::from_micros(40),
            100_000_000,
            Duration::from_micros(50_020),
        );
        assert_eq!(m.latency, Duration::from_micros(20));
        assert!((m.bytes_per_sec - 2.0e9).abs() / 2.0e9 < 1e-6);
    }

    #[test]
    fn single_node_single_tile_is_free() {
        let m = InterconnectModel::infiniband_10g();
        assert_eq!(m.composite_time(1, 1, 1 << 20), Duration::ZERO);
    }
}
