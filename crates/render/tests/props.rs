//! Property tests for the sort-last compositing algebra.

use oociso_render::{z_merge, FrameRegion, Framebuffer, TileLayout};
use proptest::prelude::*;

/// Random framebuffer: a list of (x, y, depth-milli, color) fragments.
fn fb_strategy(w: usize, h: usize) -> impl Strategy<Value = Framebuffer> {
    prop::collection::vec((0..w, 0..h, 1u32..1000, any::<[u8; 3]>()), 0..40).prop_map(
        move |frags| {
            let mut fb = Framebuffer::new(w, h);
            for (x, y, dm, c) in frags {
                fb.shade(x, y, dm as f32 / 1000.0, [c[0], c[1], c[2], 255]);
            }
            fb
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn z_merge_is_commutative_on_distinct_depths(
        a in fb_strategy(8, 8),
        b in fb_strategy(8, 8),
    ) {
        // depths are quantized to millis; ties can legitimately differ, so
        // compare only pixels whose depths differ between the two buffers
        let mut ab = a.clone();
        z_merge(&mut ab, &b);
        let mut ba = b.clone();
        z_merge(&mut ba, &a);
        for y in 0..8 {
            for x in 0..8 {
                if a.depth_at(x, y) != b.depth_at(x, y) {
                    prop_assert_eq!(ab.color_at(x, y), ba.color_at(x, y));
                    prop_assert_eq!(ab.depth_at(x, y), ba.depth_at(x, y));
                }
            }
        }
    }

    #[test]
    fn z_merge_is_associative(
        a in fb_strategy(6, 6),
        b in fb_strategy(6, 6),
        c in fb_strategy(6, 6),
    ) {
        let mut left = a.clone();
        z_merge(&mut left, &b);
        z_merge(&mut left, &c);
        let mut bc = b.clone();
        z_merge(&mut bc, &c);
        let mut right = a.clone();
        z_merge(&mut right, &bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn z_merge_idempotent(a in fb_strategy(6, 6)) {
        let mut aa = a.clone();
        z_merge(&mut aa, &a);
        prop_assert_eq!(aa, a);
    }

    #[test]
    fn tiled_composite_equals_flat_merge(
        buffers in prop::collection::vec(fb_strategy(8, 8), 1..5),
    ) {
        let layout = TileLayout::new(2, 2, 8, 8);
        let (wall, _) = layout.composite(&buffers);
        let mut flat = Framebuffer::new(8, 8);
        for b in &buffers {
            z_merge(&mut flat, b);
        }
        // depths must agree everywhere; colors agree wherever depths are
        // unique across buffers (ties may break differently)
        for y in 0..8 {
            for x in 0..8 {
                prop_assert_eq!(wall.depth_at(x, y), flat.depth_at(x, y));
            }
        }
    }

    #[test]
    fn shard_regions_tile_the_display(fb in fb_strategy(8, 8)) {
        let layout = TileLayout::new(2, 2, 8, 8);
        let regions = layout.shard(&fb);
        prop_assert_eq!(regions.len(), 4);
        let total_px: usize = regions.iter().map(|r| r.size.0 * r.size.1).sum();
        prop_assert_eq!(total_px, 64);
        let total_bytes: u64 = regions.iter().map(FrameRegion::wire_bytes).sum();
        prop_assert_eq!(total_bytes, 64 * 8);
        // reassembling the regions reproduces the original buffer
        let mut rebuilt = Framebuffer::new(8, 8);
        for r in &regions {
            r.merge_into(&mut rebuilt, (0, 0));
        }
        prop_assert_eq!(rebuilt, fb);
    }
}
