//! Log-spaced fixed-bucket latency histograms.
//!
//! The recording side is a handful of relaxed atomic adds — safe to call from
//! every request thread with no coordination — and the readout side works on
//! immutable [`HistSnapshot`]s, so percentiles, merging, and exposition never
//! block a recorder.
//!
//! Bucketing is log-linear (HDR-histogram style): values `0..8` get exact
//! unit buckets, and every octave above that is split into 4 sub-buckets, so
//! the relative width of any bucket is ≤ 25 %. With [`NUM_BUCKETS`] = 128 the
//! top regular bucket starts near 2³² — recording in microseconds that covers
//! ~71 minutes before the overflow bucket saturates, far beyond any latency
//! this system can legally report. Merging two histograms bucket-wise is
//! *exact*: `merge(a, b)` equals recording the union of both value streams.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Duration;

/// Total bucket count, including the final overflow (saturation) bucket.
pub const NUM_BUCKETS: usize = 128;

/// The bucket a value lands in. Monotonic in `v`; values past the last
/// regular bucket saturate into bucket `NUM_BUCKETS - 1`.
pub fn bucket_index(v: u64) -> usize {
    if v < 8 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize; // >= 3
    let sub = ((v >> (msb - 2)) & 3) as usize;
    (8 + (msb - 3) * 4 + sub).min(NUM_BUCKETS - 1)
}

/// Inclusive lower bound of bucket `i`.
pub fn bucket_lower(i: usize) -> u64 {
    debug_assert!(i < NUM_BUCKETS);
    if i < 8 {
        return i as u64;
    }
    let g = i - 8;
    let msb = 3 + g / 4;
    let sub = (g % 4) as u64;
    (1u64 << msb) + sub * (1u64 << (msb - 2))
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the overflow bucket).
pub fn bucket_upper(i: usize) -> u64 {
    debug_assert!(i < NUM_BUCKETS);
    if i == NUM_BUCKETS - 1 {
        u64::MAX
    } else {
        bucket_lower(i + 1) - 1
    }
}

#[derive(Debug)]
pub(crate) struct HistCore {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistCore {
    fn new() -> HistCore {
        HistCore {
            buckets: [0u64; NUM_BUCKETS].map(AtomicU64::new),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// A shared histogram handle. Cloning shares the underlying counters.
#[derive(Clone, Debug)]
pub struct Histogram(pub(crate) Arc<HistCore>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// A fresh detached histogram (registry-owned ones come from
    /// [`crate::Registry::histogram`]).
    pub fn new() -> Histogram {
        Histogram(Arc::new(HistCore::new()))
    }

    /// Record one observation. Relaxed atomics only — no locks, no
    /// allocation. Compiled out under the `no-obs` feature.
    pub fn record(&self, v: u64) {
        if cfg!(feature = "no-obs") {
            return;
        }
        let c = &self.0;
        c.buckets[bucket_index(v)].fetch_add(1, Relaxed);
        c.count.fetch_add(1, Relaxed);
        c.sum.fetch_add(v, Relaxed);
        c.max.fetch_max(v, Relaxed);
    }

    /// Record a duration in microseconds (the convention for every latency
    /// histogram in this workspace).
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Copy out the current counts. Individual loads are relaxed, so a
    /// snapshot taken while recorders run may be mid-update by one
    /// observation — exactness holds for quiesced histograms (tests, merged
    /// offline readouts).
    pub fn snapshot(&self) -> HistSnapshot {
        let c = &self.0;
        HistSnapshot {
            buckets: c.buckets.iter().map(|b| b.load(Relaxed)).collect(),
            count: c.count.load(Relaxed),
            sum: c.sum.load(Relaxed),
            max: c.max.load(Relaxed),
        }
    }
}

/// An immutable copy of a histogram's counters: what percentile readout,
/// exact merging, and exposition operate on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket observation counts (`NUM_BUCKETS` entries).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values (wrapping beyond u64 — practically unreachable
    /// for microsecond latencies).
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistSnapshot {
    /// Exact merge: the result is bucket-for-bucket identical to having
    /// recorded both value streams into one histogram.
    pub fn merge(&self, other: &HistSnapshot) -> HistSnapshot {
        HistSnapshot {
            buckets: self
                .buckets
                .iter()
                .zip(&other.buckets)
                .map(|(a, b)| a + b)
                .collect(),
            count: self.count + other.count,
            sum: self.sum.wrapping_add(other.sum),
            max: self.max.max(other.max),
        }
    }

    /// The value estimate for quantile `q` in `[0, 1]`: the upper bound of
    /// the bucket holding the rank-`ceil(q·count)` observation (so the true
    /// quantile is ≤ the estimate, and within one bucket's width of it). 0
    /// when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // the overflow bucket has no finite upper bound; report the
                // recorded max, which is the best truthful answer there
                return if i == NUM_BUCKETS - 1 {
                    self.max
                } else {
                    bucket_upper(i)
                };
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean of observed values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Iterate the populated buckets as `(lower, upper, count)`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_lower(i), bucket_upper(i), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn buckets_tile_the_u64_line() {
        // lower bounds strictly increase and each bucket starts one past the
        // previous bucket's upper bound
        for i in 1..NUM_BUCKETS {
            assert!(bucket_lower(i) > bucket_lower(i - 1), "bucket {i}");
            assert_eq!(bucket_lower(i), bucket_upper(i - 1) + 1, "bucket {i}");
        }
        assert_eq!(bucket_lower(0), 0);
        assert_eq!(bucket_upper(NUM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn small_values_are_exact() {
        for v in 0..8u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lower(v as usize), v);
            assert_eq!(bucket_upper(v as usize), v);
        }
    }

    #[test]
    fn recording_accumulates_and_saturates() {
        let h = Histogram::new();
        h.record(3);
        h.record(3);
        h.record(100);
        h.record(u64::MAX); // overflow bucket
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.buckets[3], 2);
        assert_eq!(s.buckets[NUM_BUCKETS - 1], 1);
        assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
    }

    #[test]
    fn quantile_of_known_stream() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        // p50's bucket must contain the true median (50)
        let est = s.p50();
        let bi = bucket_index(est);
        assert!(
            bucket_lower(bi) <= 50 && 50 <= bucket_upper(bi),
            "p50 bucket [{}, {}] should contain 50",
            bucket_lower(bi),
            bucket_upper(bi)
        );
        assert!(s.p99() >= s.p50());
        assert_eq!(s.quantile(1.0), bucket_upper(bucket_index(100)));
        assert_eq!(s.mean(), 50.5);
    }

    #[test]
    fn empty_snapshot_reads_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!((s.count, s.p50(), s.p99(), s.max), (0, 0, 0, 0));
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.nonzero_buckets().count(), 0);
    }

    proptest! {
        /// Bucket index is monotone non-decreasing in the value.
        #[test]
        fn prop_bucket_monotone(a in any::<u64>(), b in any::<u64>()) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(bucket_index(lo) <= bucket_index(hi));
        }

        /// Every value lands in the bucket whose bounds contain it.
        #[test]
        fn prop_bucket_bounds_contain_value(v in any::<u64>()) {
            let i = bucket_index(v);
            prop_assert!(bucket_lower(i) <= v);
            prop_assert!(v <= bucket_upper(i));
        }
    }

    proptest! {
        /// merge(h1, h2) is exactly the histogram of the concatenated
        /// streams.
        #[test]
        fn prop_merge_is_exact(
            xs in proptest::collection::vec(0u64..1_000_000, 0..64),
            ys in proptest::collection::vec(0u64..1_000_000, 0..64),
        ) {
            let (h1, h2, hu) = (Histogram::new(), Histogram::new(), Histogram::new());
            for &x in &xs { h1.record(x); hu.record(x); }
            for &y in &ys { h2.record(y); hu.record(y); }
            prop_assert_eq!(h1.snapshot().merge(&h2.snapshot()), hu.snapshot());
        }
    }

    proptest! {
        /// The quantile estimate's bucket contains the sorted-reference
        /// quantile (estimate within one bucket of the truth).
        #[test]
        fn prop_quantile_within_one_bucket(
            xs in proptest::collection::vec(0u64..10_000_000, 1..128),
            q in 0.01f64..1.0,
        ) {
            let mut xs = xs;
            let h = Histogram::new();
            for &x in &xs { h.record(x); }
            xs.sort_unstable();
            let rank = ((q * xs.len() as f64).ceil() as usize).clamp(1, xs.len());
            let truth = xs[rank - 1];
            let est = h.snapshot().quantile(q);
            // the estimate is the upper bound of the truth's bucket
            prop_assert_eq!(est, bucket_upper(bucket_index(truth)));
            prop_assert!(est >= truth);
        }
    }

    proptest! {
        /// Values of any magnitude saturate into the overflow bucket without
        /// disturbing totals.
        #[test]
        fn prop_overflow_saturates(vs in proptest::collection::vec(any::<u64>(), 1..64)) {
            let h = Histogram::new();
            for &v in &vs { h.record(v); }
            let s = h.snapshot();
            prop_assert_eq!(s.count, vs.len() as u64);
            prop_assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
            prop_assert_eq!(s.max, *vs.iter().max().unwrap());
        }
    }
}
