//! A lock-light metrics registry.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`-shared atomics:
//! the registry's mutex is taken only at registration and readout time, never
//! on the record path. Names follow Prometheus conventions
//! (`snake_case`, unit-suffixed: `requests_total`, `extract_latency_us`);
//! [`Registry::render`] emits the Prometheus text exposition format.

use crate::hist::Histogram;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh detached counter (registry-owned ones come from
    /// [`Registry::counter`]).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Increment by 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`. Compiled out under the `no-obs` feature.
    pub fn add(&self, n: u64) {
        if cfg!(feature = "no-obs") {
            return;
        }
        self.0.fetch_add(n, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// A settable instantaneous value.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A fresh detached gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Set the value. Compiled out under the `no-obs` feature.
    pub fn set(&self, v: i64) {
        if cfg!(feature = "no-obs") {
            return;
        }
        self.0.store(v, Relaxed);
    }

    /// Add a (possibly negative) delta.
    pub fn add(&self, d: i64) {
        if cfg!(feature = "no-obs") {
            return;
        }
        self.0.fetch_add(d, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Relaxed)
    }
}

#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A named collection of metrics. Cheap to clone handles out of; the inner
/// mutex guards only the name table.
#[derive(Debug, Default)]
pub struct Registry {
    // registration order preserved for stable exposition output
    metrics: Mutex<Vec<(String, Metric)>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut m = self.metrics.lock().unwrap();
        if let Some((_, metric)) = m.iter().find(|(n, _)| n == name) {
            return metric.clone();
        }
        let metric = make();
        m.push((name.to_string(), metric.clone()));
        metric
    }

    /// The counter registered under `name`, creating it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        match self.get_or_insert(name, || Metric::Counter(Counter::new())) {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} is a {}, not a counter", other.kind()),
        }
    }

    /// The gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.get_or_insert(name, || Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name:?} is a {}, not a gauge", other.kind()),
        }
    }

    /// The histogram registered under `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        match self.get_or_insert(name, || Metric::Histogram(Histogram::new())) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name:?} is a {}, not a histogram", other.kind()),
        }
    }

    /// Snapshot every metric as `(name, value)` rows, in registration order.
    pub fn snapshot(&self) -> Vec<(String, MetricValue)> {
        let m = self.metrics.lock().unwrap();
        m.iter()
            .map(|(name, metric)| {
                let v = match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                };
                (name.clone(), v)
            })
            .collect()
    }

    /// Prometheus text exposition of every registered metric. Histograms
    /// emit cumulative `_bucket{le="..."}` rows for their populated buckets
    /// (plus `le="+Inf"`), `_sum`, `_count`, and a `_max` gauge; quantile
    /// summary rows (`_p50`/`_p90`/`_p99`) ride along as plain gauges so a
    /// bare `grep` can read tail latency without a PromQL evaluator.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, value) in self.snapshot() {
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "# TYPE {name} counter\n{name} {v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "# TYPE {name} gauge\n{name} {v}");
                }
                MetricValue::Histogram(s) => {
                    let _ = writeln!(out, "# TYPE {name} histogram");
                    let mut cum = 0u64;
                    for (_, upper, count) in s.nonzero_buckets() {
                        cum += count;
                        if upper == u64::MAX {
                            continue; // folded into +Inf below
                        }
                        let _ = writeln!(out, "{name}_bucket{{le=\"{upper}\"}} {cum}");
                    }
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", s.count);
                    let _ = writeln!(out, "{name}_sum {}", s.sum);
                    let _ = writeln!(out, "{name}_count {}", s.count);
                    let _ = writeln!(out, "{name}_p50 {}", s.p50());
                    let _ = writeln!(out, "{name}_p90 {}", s.p90());
                    let _ = writeln!(out, "{name}_p99 {}", s.p99());
                    let _ = writeln!(out, "{name}_max {}", s.max);
                }
            }
        }
        out
    }
}

/// One metric's snapshot value.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(i64),
    Histogram(crate::hist::HistSnapshot),
}

/// The process-wide default registry — for instrumentation points with no
/// natural owner to plumb a registry through (e.g. the bounded queue's wait
/// histograms deep inside the extraction pipeline). Server-owned registries
/// stay separate so per-server counters never alias across instances.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_state_and_names_are_idempotent() {
        let r = Registry::new();
        let a = r.counter("requests_total");
        let b = r.counter("requests_total");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        let g = r.gauge("inflight");
        g.set(5);
        g.add(-2);
        assert_eq!(r.gauge("inflight").get(), 3);
        let h = r.histogram("latency_us");
        h.record(7);
        assert_eq!(r.histogram("latency_us").snapshot().count, 1);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn render_is_greppable_prometheus_text() {
        let r = Registry::new();
        r.counter("requests_total").add(42);
        r.gauge("inflight").set(-1);
        let h = r.histogram("latency_us");
        for v in [3u64, 3, 900] {
            h.record(v);
        }
        let text = r.render();
        assert!(text.contains("# TYPE requests_total counter\nrequests_total 42\n"));
        assert!(text.contains("# TYPE inflight gauge\ninflight -1\n"));
        assert!(text.contains("# TYPE latency_us histogram\n"));
        assert!(text.contains("latency_us_bucket{le=\"3\"} 2\n"));
        assert!(text.contains("latency_us_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("latency_us_count 3\n"));
        assert!(text.contains("latency_us_sum 906\n"));
        assert!(text.contains("latency_us_p50 3\n"));
        assert!(text.contains("latency_us_max 900\n"));
        // cumulative bucket rows are non-decreasing
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.starts_with("latency_us_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "bucket rows must be cumulative: {line}");
            last = v;
        }
    }

    #[test]
    fn global_registry_is_a_singleton() {
        global().counter("obs_selftest_total").inc();
        assert!(global().counter("obs_selftest_total").get() >= 1);
    }
}
