//! Structured per-request tracing.
//!
//! A [`Trace`] is a bounded, shareable buffer of finished [`SpanEvent`]s for
//! one request (or one library-level operation). [`Span`]s are RAII guards:
//! starting one stamps the clock, finishing (or dropping) it records a
//! `(name, start, dur, fields)` event with its parent link, so the events
//! reconstruct a tree. Span ids are assigned at start, which lets children
//! finish before their parents without losing the tree shape — and lets
//! worker threads record into the same trace through a cloned handle.
//!
//! `finish()` returns the measured duration *whether or not the event was
//! recorded*: timing-derived report fields (see `oociso-cluster`'s
//! `NodeReport`) read that return value, so they stay exact under the
//! `no-obs` feature and when a full trace drops events.
//!
//! The [`TraceJournal`] is the ring buffer behind the server's recent-trace
//! and slow-query logs: pushing a finished trace clones its events out, so
//! journals never pin live request state.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Sentinel parent id for root spans.
pub const NO_PARENT: u32 = u32::MAX;

/// Default per-trace event capacity.
pub const DEFAULT_TRACE_EVENTS: usize = 512;

/// One finished span: `start` is the offset from the trace's epoch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span id (assigned at start, unique within the trace).
    pub id: u32,
    /// Parent span id, or [`NO_PARENT`] for roots.
    pub parent: u32,
    /// Static span name (see `docs/observability.md` for the naming scheme).
    pub name: &'static str,
    /// Start offset from the trace epoch.
    pub start: Duration,
    /// Measured duration.
    pub dur: Duration,
    /// Numeric key/value annotations.
    pub fields: Vec<(&'static str, u64)>,
}

#[derive(Debug)]
struct TraceInner {
    id: u64,
    t0: Instant,
    cap: usize,
    next_id: AtomicU32,
    events: Mutex<Vec<SpanEvent>>,
    dropped: AtomicU64,
}

/// A bounded per-request event buffer, cheaply cloneable across the threads
/// serving one request.
#[derive(Clone, Debug)]
pub struct Trace {
    inner: Arc<TraceInner>,
}

impl Default for Trace {
    fn default() -> Self {
        Trace::new(0, DEFAULT_TRACE_EVENTS)
    }
}

impl Trace {
    /// A trace identified by `id` (the wire trace id for served requests),
    /// holding at most `cap` events — further events are counted in
    /// [`Trace::dropped_events`] instead of growing the buffer.
    pub fn new(id: u64, cap: usize) -> Trace {
        Trace {
            inner: Arc::new(TraceInner {
                id,
                t0: Instant::now(),
                cap: cap.max(1),
                next_id: AtomicU32::new(0),
                events: Mutex::new(Vec::new()),
                dropped: AtomicU64::new(0),
            }),
        }
    }

    /// An anonymous trace (id 0) with the default capacity — what library
    /// code uses when no request trace was supplied.
    pub fn detached() -> Trace {
        Trace::default()
    }

    /// The trace id.
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// The trace epoch (what event `start` offsets are relative to).
    pub fn epoch(&self) -> Instant {
        self.inner.t0
    }

    /// Start a root span.
    pub fn span(&self, name: &'static str) -> Span {
        self.start_span(name, NO_PARENT)
    }

    fn start_span(&self, name: &'static str, parent: u32) -> Span {
        let start = Instant::now();
        Span {
            trace: self.clone(),
            id: self.inner.next_id.fetch_add(1, Relaxed),
            parent,
            name,
            start,
            start_off: start.saturating_duration_since(self.inner.t0),
            fields: Vec::new(),
            finished: false,
        }
    }

    /// Record a pre-measured event (a phase whose duration was accumulated
    /// out-of-band, e.g. a worker's summed busy time or a queue's total
    /// wait). `start` is the offset from the trace epoch.
    pub fn record_complete(
        &self,
        name: &'static str,
        parent: u32,
        start: Duration,
        dur: Duration,
        fields: &[(&'static str, u64)],
    ) {
        let id = self.inner.next_id.fetch_add(1, Relaxed);
        self.push(SpanEvent {
            id,
            parent,
            name,
            start,
            dur,
            fields: fields.to_vec(),
        });
    }

    fn push(&self, ev: SpanEvent) {
        if cfg!(feature = "no-obs") {
            return;
        }
        let mut events = self.inner.events.lock().unwrap();
        if events.len() >= self.inner.cap {
            self.inner.dropped.fetch_add(1, Relaxed);
        } else {
            events.push(ev);
        }
    }

    /// Copy out the recorded events (finish order).
    pub fn events(&self) -> Vec<SpanEvent> {
        self.inner.events.lock().unwrap().clone()
    }

    /// Events discarded because the buffer was full.
    pub fn dropped_events(&self) -> u64 {
        self.inner.dropped.load(Relaxed)
    }

    /// Sum of durations over events named `name` — the derived-view
    /// primitive report fields are rebuilt from.
    pub fn sum(&self, name: &str) -> Duration {
        self.inner
            .events
            .lock()
            .unwrap()
            .iter()
            .filter(|e| e.name == name)
            .map(|e| e.dur)
            .sum()
    }

    /// Render the span tree as indented text (one span per line:
    /// `name  dur  [k=v ...]`), children ordered by start time.
    pub fn render_tree(&self) -> String {
        render_events(&self.events())
    }
}

/// Render a finished event list as an indented tree.
pub fn render_events(events: &[SpanEvent]) -> String {
    let mut out = String::new();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); events.len()];
    let mut roots: Vec<usize> = Vec::new();
    for (i, e) in events.iter().enumerate() {
        if e.parent == NO_PARENT {
            roots.push(i);
        } else if let Some(p) = events.iter().position(|c| c.id == e.parent) {
            children[p].push(i);
        } else {
            roots.push(i); // parent dropped from a full buffer: promote
        }
    }
    let by_start = |l: &mut Vec<usize>| l.sort_by_key(|&i| (events[i].start, events[i].id));
    by_start(&mut roots);
    for l in &mut children {
        by_start(l);
    }
    fn emit(
        out: &mut String,
        events: &[SpanEvent],
        children: &[Vec<usize>],
        i: usize,
        depth: usize,
    ) {
        let e = &events[i];
        out.push_str(&"  ".repeat(depth));
        out.push_str(e.name);
        out.push_str(&format!(" {:.3}ms", e.dur.as_secs_f64() * 1e3));
        for (k, v) in &e.fields {
            out.push_str(&format!(" {k}={v}"));
        }
        out.push('\n');
        for &c in &children[i] {
            emit(out, events, children, c, depth + 1);
        }
    }
    for &r in &roots {
        emit(&mut out, events, &children, r, 0);
    }
    out
}

/// An in-flight span. Dropping it records the event; [`Span::finish`] does
/// the same but hands back the measured duration.
#[derive(Debug)]
pub struct Span {
    trace: Trace,
    id: u32,
    parent: u32,
    name: &'static str,
    start: Instant,
    start_off: Duration,
    fields: Vec<(&'static str, u64)>,
    finished: bool,
}

impl Span {
    /// Start a child span.
    pub fn child(&self, name: &'static str) -> Span {
        self.trace.start_span(name, self.id)
    }

    /// Attach a numeric field.
    pub fn field(&mut self, key: &'static str, value: u64) {
        self.fields.push((key, value));
    }

    /// Record a pre-measured child event under this span (for durations
    /// accumulated out-of-band). The event is back-dated so it ends "now".
    pub fn annotate(&self, name: &'static str, dur: Duration, fields: &[(&'static str, u64)]) {
        let end = Instant::now().saturating_duration_since(self.trace.inner.t0);
        self.trace
            .record_complete(name, self.id, end.saturating_sub(dur), dur, fields);
    }

    /// The span's id (parent link for [`Trace::record_complete`]).
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Finish the span, recording its event, and return the measured
    /// duration. The return value is computed even when recording is
    /// disabled (`no-obs`) or the trace buffer is full — derived timing
    /// views rely on that.
    pub fn finish(mut self) -> Duration {
        self.finish_inner()
    }

    fn finish_inner(&mut self) -> Duration {
        let dur = self.start.elapsed();
        if !self.finished {
            self.finished = true;
            self.trace.push(SpanEvent {
                id: self.id,
                parent: self.parent,
                name: self.name,
                start: self.start_off,
                dur,
                fields: std::mem::take(&mut self.fields),
            });
        }
        dur
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.finished {
            self.finish_inner();
        }
    }
}

/// A finished trace retained by a [`TraceJournal`].
#[derive(Clone, Debug)]
pub struct FinishedTrace {
    /// The wire trace id (0 for untraced requests).
    pub id: u64,
    /// End-to-end duration the pusher attributed to the request.
    pub total: Duration,
    /// The recorded span events.
    pub events: Vec<SpanEvent>,
    /// Events lost to the per-trace cap.
    pub dropped: u64,
}

impl FinishedTrace {
    /// Render the span tree (see [`Trace::render_tree`]).
    pub fn render_tree(&self) -> String {
        render_events(&self.events)
    }
}

/// A bounded ring of recently finished traces (the newest at the back).
#[derive(Debug)]
pub struct TraceJournal {
    cap: usize,
    ring: Mutex<VecDeque<FinishedTrace>>,
}

impl TraceJournal {
    /// A journal retaining the last `cap` traces.
    pub fn new(cap: usize) -> TraceJournal {
        TraceJournal {
            cap: cap.max(1),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// Retain `trace` (clone-out; the live trace is untouched).
    pub fn push(&self, trace: &Trace, total: Duration) {
        let t = FinishedTrace {
            id: trace.id(),
            total,
            events: trace.events(),
            dropped: trace.dropped_events(),
        };
        let mut ring = self.ring.lock().unwrap();
        if ring.len() == self.cap {
            ring.pop_front();
        }
        ring.push_back(t);
    }

    /// The most recently pushed trace.
    pub fn latest(&self) -> Option<FinishedTrace> {
        self.ring.lock().unwrap().back().cloned()
    }

    /// The most recent trace with id `id`.
    pub fn find(&self, id: u64) -> Option<FinishedTrace> {
        self.ring
            .lock()
            .unwrap()
            .iter()
            .rev()
            .find(|t| t.id == id)
            .cloned()
    }

    /// Retained trace count.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().len()
    }

    /// Whether the journal is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_a_tree() {
        let trace = Trace::new(7, 64);
        let mut root = trace.span("request");
        root.field("iso", 110);
        {
            let child = root.child("extract");
            let grand = child.child("execute_plan");
            drop(grand);
            child.finish();
        }
        root.annotate("triangulate", Duration::from_millis(3), &[("worker", 1)]);
        drop(root);
        let events = trace.events();
        assert_eq!(events.len(), 4);
        // finish order: leaf first, root last
        assert_eq!(events[0].name, "execute_plan");
        assert_eq!(events[3].name, "request");
        let root_ev = &events[3];
        let extract = &events[1];
        assert_eq!(extract.parent, root_ev.id);
        assert_eq!(events[0].parent, extract.id);
        assert_eq!(events[2].name, "triangulate");
        assert_eq!(events[2].dur, Duration::from_millis(3));
        assert_eq!(events[2].fields, vec![("worker", 1)]);
        assert_eq!(root_ev.fields, vec![("iso", 110)]);
        let tree = trace.render_tree();
        let lines: Vec<&str> = tree.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("request"));
        // siblings order by start time; the back-dated annotate may precede
        // "extract", but "execute_plan" always nests directly under it
        let extract = lines
            .iter()
            .position(|l| l.starts_with("  extract"))
            .unwrap();
        assert!(lines[extract + 1].starts_with("    execute_plan"));
        assert!(lines.iter().any(|l| l.starts_with("  triangulate")));
    }

    #[test]
    fn finish_returns_duration_and_bounded_buffer_drops() {
        let trace = Trace::new(1, 2);
        let d = trace.span("a").finish();
        assert!(d < Duration::from_secs(1));
        trace.span("b").finish();
        trace.span("c").finish(); // over cap: dropped, still measured
        assert_eq!(trace.events().len(), 2);
        assert_eq!(trace.dropped_events(), 1);
    }

    #[test]
    fn sum_is_per_name() {
        let trace = Trace::detached();
        let root = trace.span("r");
        root.annotate("w", Duration::from_millis(2), &[]);
        root.annotate("w", Duration::from_millis(3), &[]);
        root.annotate("x", Duration::from_millis(10), &[]);
        drop(root);
        assert_eq!(trace.sum("w"), Duration::from_millis(5));
        assert_eq!(trace.sum("x"), Duration::from_millis(10));
        assert_eq!(trace.sum("absent"), Duration::ZERO);
    }

    #[test]
    fn cross_thread_spans_land_in_one_trace() {
        let trace = Trace::new(9, 64);
        let root = trace.span("request");
        std::thread::scope(|scope| {
            for w in 0..4u64 {
                let span = root.child("triangulate");
                scope.spawn(move || {
                    let mut span = span;
                    span.field("worker", w);
                    span.finish();
                });
            }
        });
        drop(root);
        let events = trace.events();
        assert_eq!(events.len(), 5);
        assert_eq!(events.iter().filter(|e| e.name == "triangulate").count(), 4);
    }

    #[test]
    fn journal_is_a_ring_with_id_lookup() {
        let j = TraceJournal::new(2);
        for id in 1..=3u64 {
            let t = Trace::new(id, 8);
            t.span("request").finish();
            j.push(&t, Duration::from_millis(id));
        }
        assert_eq!(j.len(), 2);
        assert!(j.find(1).is_none(), "oldest trace evicted");
        assert_eq!(j.find(2).unwrap().total, Duration::from_millis(2));
        assert_eq!(j.latest().unwrap().id, 3);
        assert!(j.latest().unwrap().render_tree().starts_with("request"));
    }
}
