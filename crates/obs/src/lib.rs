//! Observability substrate for the out-of-core isosurface system.
//!
//! The paper's claims are throughput and latency numbers; this crate is how
//! the grown system measures its own. Three pieces, shared by every layer
//! from the bounded queue up to the TCP server:
//!
//! * [`registry`] — a lock-light metrics registry: named [`Counter`] /
//!   [`Gauge`] / [`Histogram`] handles backed by relaxed atomics, with
//!   log-spaced fixed-bucket histograms ([`hist`]) supporting exact merge,
//!   p50/p90/p99/max readout, snapshot iteration, and Prometheus text
//!   exposition ([`Registry::render`]).
//! * [`trace`] — structured request tracing: RAII [`Span`]s recorded into a
//!   bounded per-request [`Trace`] of `(name, start, dur, fields)` events,
//!   plus the [`TraceJournal`] ring behind the server's recent-trace and
//!   slow-query logs.
//! * [`log`] — structured operational events ([`LogEvent`]) through a
//!   pluggable [`LogSink`] (stderr in production, [`CaptureSink`] in tests).
//!
//! Compiling with the `no-obs` feature turns every *recording* path into a
//! no-op while keeping measured return values (span durations) exact — the
//! `metrics_overhead` bench group uses it as the uninstrumented baseline.
//!
//! Metric names, span names, and exposition format are cataloged in
//! `docs/observability.md`.

pub mod hist;
pub mod log;
pub mod registry;
pub mod trace;

pub use hist::{bucket_index, bucket_lower, bucket_upper, HistSnapshot, Histogram, NUM_BUCKETS};
pub use log::{CaptureSink, Level, LogEvent, LogSink, Logger, StderrSink};
pub use registry::{global, Counter, Gauge, MetricValue, Registry};
pub use trace::{
    render_events, FinishedTrace, Span, SpanEvent, Trace, TraceJournal, DEFAULT_TRACE_EVENTS,
    NO_PARENT,
};

/// Whether this build records observability data (`false` under the
/// `no-obs` feature). Benchmarks use it to label instrumented vs baseline
/// runs of the same binary.
pub const RECORDING: bool = !cfg!(feature = "no-obs");
