//! Structured log events.
//!
//! The serve layer used to `eprintln!` its operational warnings (accept
//! backoff, drain progress), which made them both invisible to tests and
//! unparseable in production. A [`LogEvent`] is a level + target + message +
//! structured fields; a [`LogSink`] consumes them. [`StderrSink`] keeps the
//! old behavior (one formatted line per event), [`CaptureSink`] retains
//! events in memory so tests can assert on exactly what was emitted.

use std::sync::{Arc, Mutex};

/// Event severity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Debug,
    Info,
    Warn,
    Error,
}

impl Level {
    /// Lowercase name, as rendered by [`StderrSink`].
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

/// One structured log event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogEvent {
    pub level: Level,
    /// The emitting subsystem (e.g. `"serve"`).
    pub target: &'static str,
    /// Stable event name (what tests match on), e.g. `"accept_backoff"`.
    pub name: &'static str,
    /// Human-readable context.
    pub message: String,
    /// Structured key/value context.
    pub fields: Vec<(&'static str, String)>,
}

impl LogEvent {
    /// Render as one line: `level target name: message k=v ...`.
    pub fn render(&self) -> String {
        let mut line = format!(
            "{} {} {}: {}",
            self.level.as_str(),
            self.target,
            self.name,
            self.message
        );
        for (k, v) in &self.fields {
            line.push_str(&format!(" {k}={v}"));
        }
        line
    }
}

/// A consumer of log events. Implementations must be cheap and non-blocking
/// enough to call from request threads.
pub trait LogSink: Send + Sync {
    fn log(&self, event: LogEvent);
}

/// Formats each event as one line on stderr (the production default).
#[derive(Clone, Copy, Debug, Default)]
pub struct StderrSink;

impl LogSink for StderrSink {
    fn log(&self, event: LogEvent) {
        eprintln!("{}", event.render());
    }
}

/// Retains every event in memory — the test sink.
#[derive(Debug, Default)]
pub struct CaptureSink {
    events: Mutex<Vec<LogEvent>>,
}

impl CaptureSink {
    pub fn new() -> CaptureSink {
        CaptureSink::default()
    }

    /// Copy out everything captured so far.
    pub fn events(&self) -> Vec<LogEvent> {
        self.events.lock().unwrap().clone()
    }

    /// Captured events with the given name.
    pub fn named(&self, name: &str) -> Vec<LogEvent> {
        self.events()
            .into_iter()
            .filter(|e| e.name == name)
            .collect()
    }

    /// Count of captured events at `level`.
    pub fn count_at(&self, level: Level) -> usize {
        self.events().iter().filter(|e| e.level == level).count()
    }
}

impl LogSink for CaptureSink {
    fn log(&self, event: LogEvent) {
        self.events.lock().unwrap().push(event);
    }
}

/// A cloneable handle to a sink, with level helpers. `Debug` prints only the
/// handle identity, so it can ride inside `derive(Debug)` option structs.
#[derive(Clone)]
pub struct Logger(Arc<dyn LogSink>);

impl std::fmt::Debug for Logger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Logger(..)")
    }
}

impl Default for Logger {
    fn default() -> Self {
        Logger::stderr()
    }
}

impl Logger {
    /// Wrap any sink.
    pub fn new(sink: Arc<dyn LogSink>) -> Logger {
        Logger(sink)
    }

    /// The production default: formatted lines on stderr.
    pub fn stderr() -> Logger {
        Logger(Arc::new(StderrSink))
    }

    /// Emit an event.
    pub fn log(
        &self,
        level: Level,
        target: &'static str,
        name: &'static str,
        message: impl Into<String>,
        fields: &[(&'static str, String)],
    ) {
        self.0.log(LogEvent {
            level,
            target,
            name,
            message: message.into(),
            fields: fields.to_vec(),
        });
    }

    /// Emit at [`Level::Info`].
    pub fn info(
        &self,
        target: &'static str,
        name: &'static str,
        message: impl Into<String>,
        fields: &[(&'static str, String)],
    ) {
        self.log(Level::Info, target, name, message, fields);
    }

    /// Emit at [`Level::Warn`].
    pub fn warn(
        &self,
        target: &'static str,
        name: &'static str,
        message: impl Into<String>,
        fields: &[(&'static str, String)],
    ) {
        self.log(Level::Warn, target, name, message, fields);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_sink_retains_structured_events() {
        let sink = Arc::new(CaptureSink::new());
        let log = Logger::new(sink.clone());
        log.warn(
            "serve",
            "accept_backoff",
            "accept failed; backing off until fds free up",
            &[("error", "EMFILE".to_string())],
        );
        log.info("serve", "drain", "draining", &[]);
        assert_eq!(sink.count_at(Level::Warn), 1);
        assert_eq!(sink.named("accept_backoff").len(), 1);
        let e = &sink.events()[0];
        assert_eq!(e.level, Level::Warn);
        assert_eq!(e.fields, vec![("error", "EMFILE".to_string())]);
        assert!(e.render().starts_with("warn serve accept_backoff:"));
        assert!(e.render().ends_with("error=EMFILE"));
    }

    #[test]
    fn levels_order() {
        assert!(Level::Debug < Level::Info);
        assert!(Level::Info < Level::Warn);
        assert!(Level::Warn < Level::Error);
    }
}
