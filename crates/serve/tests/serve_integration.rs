//! End-to-end serving tests: concurrent clients against one live TCP server
//! must observe responses bit-identical to direct library calls, the result
//! cache must be visibly doing its job, and protocol abuse must produce
//! structured errors without wedging the server.

use oociso_cluster::{ExtractOptions, LodSpec};
use oociso_core::{ClusterDatabase, PreprocessOptions};
use oociso_march::{Backend, IndexedMesh};
use oociso_serve::protocol::{
    encode_payload, encode_payload_at, read_frame, write_frame, FrameIn, ERR_BAD_CHECKSUM,
    ERR_MALFORMED, ERR_UNSUPPORTED_VERSION, HEADER_BYTES, MSG_MESH_REQUEST, MSG_MESH_RESPONSE,
    MSG_PROGRESSIVE_REQUEST, MSG_STATS_REQUEST,
};
use oociso_serve::{
    read_progressive_reply, render_trace_events, ChaosStream, Client, ConnFault, FrameParams,
    IsoServer, Message, Region, ServeOptions, ERR_BAD_BACKEND, ERR_BAD_LOD, MAGIC,
};
use oociso_volume::field::{FieldExt, SphereField};
use oociso_volume::{Dims3, Volume};
use std::collections::HashMap;
use std::path::PathBuf;

fn tmpdir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("oociso_serve_{}_{}", std::process::id(), name));
    p
}

fn test_volume() -> Volume<u8> {
    SphereField::centered(0.32, 128.0).sample(Dims3::cube(29))
}

/// A 2-node database + a bound server over it + a second direct-access
/// database on the same directory for ground truth.
fn serve_fixture(name: &str, cache_bytes: u64) -> (PathBuf, IsoServer, ClusterDatabase<u8>) {
    let dir = tmpdir(name);
    let vol = test_volume();
    let opts = PreprocessOptions {
        nodes: 2,
        ..Default::default()
    };
    let served = ClusterDatabase::preprocess(&vol, &dir, &opts).unwrap();
    let direct = ClusterDatabase::<u8>::open(&dir, false).unwrap();
    let server = IsoServer::bind(
        served,
        ("127.0.0.1", 0),
        ServeOptions {
            cache_bytes,
            ..Default::default()
        },
    )
    .unwrap();
    (dir, server, direct)
}

/// Like [`serve_fixture`] but with the 100%/25%/6% LOD pyramid enabled.
fn lod_fixture(name: &str) -> (PathBuf, IsoServer, ClusterDatabase<u8>) {
    let dir = tmpdir(name);
    let vol = test_volume();
    let opts = PreprocessOptions {
        nodes: 2,
        ..Default::default()
    };
    let served = ClusterDatabase::preprocess(&vol, &dir, &opts).unwrap();
    let direct = ClusterDatabase::<u8>::open(&dir, false).unwrap();
    let server = IsoServer::bind(
        served,
        ("127.0.0.1", 0),
        ServeOptions {
            lod_ratios: vec![0.25, 0.06],
            ..Default::default()
        },
    )
    .unwrap();
    (dir, server, direct)
}

fn assert_same_mesh(a: &IndexedMesh, b: &IndexedMesh, ctx: &str) {
    assert_eq!(
        a.positions().len(),
        b.positions().len(),
        "{ctx}: vertex count"
    );
    for (i, (x, y)) in a.positions().iter().zip(b.positions()).enumerate() {
        assert_eq!(x.x.to_bits(), y.x.to_bits(), "{ctx}: vertex {i}.x");
        assert_eq!(x.y.to_bits(), y.y.to_bits(), "{ctx}: vertex {i}.y");
        assert_eq!(x.z.to_bits(), y.z.to_bits(), "{ctx}: vertex {i}.z");
    }
    assert_eq!(a.indices(), b.indices(), "{ctx}: indices");
}

#[test]
fn concurrent_clients_get_bit_identical_results_and_cache_hits() {
    let (dir, server, direct) = serve_fixture("concurrent", 256 << 20);
    let addr = server.addr();
    let isovalues = [90.0f32, 120.0, 150.0];

    // ground truth once per isovalue, via direct library calls
    let truth: HashMap<u32, IndexedMesh> = isovalues
        .iter()
        .map(|&iso| (iso.to_bits(), direct.extract(iso).unwrap().mesh))
        .collect();

    // warm pass: one sequential client populates the cache (all misses)
    {
        let mut warm = Client::connect(addr).unwrap();
        for &iso in &isovalues {
            let reply = warm.query_mesh(iso, None).unwrap();
            assert!(!reply.cache_hit, "first query of {iso} cannot hit");
            assert_same_mesh(&reply.mesh, &truth[&iso.to_bits()], "warm");
        }
        let s = warm.stats().unwrap();
        assert_eq!(s.cache_misses, isovalues.len() as u64);
        assert_eq!(s.cache_resident_entries, isovalues.len() as u64);
    }

    // storm pass: N threads × mixed isovalues, all concurrent, all hits
    let threads = 6;
    let per_thread = 4;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let truth = &truth;
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for q in 0..per_thread {
                    let iso = isovalues[(t + q) % isovalues.len()];
                    let reply = client.query_mesh(iso, None).unwrap();
                    assert!(reply.cache_hit, "warmed isovalue {iso} must hit");
                    assert!(reply.active_metacells > 0);
                    assert_same_mesh(
                        &reply.mesh,
                        &truth[&iso.to_bits()],
                        &format!("thread {t} query {q} iso {iso}"),
                    );
                }
            });
        }
    });

    let report = server.report();
    assert_eq!(report.connections, 1 + threads as u64);
    assert_eq!(
        report.cache_hits,
        (threads * per_thread) as u64,
        "every storm query must be a cache hit: {report:?}"
    );
    assert_eq!(report.cache_misses, isovalues.len() as u64);
    assert_eq!(
        report.mesh_requests,
        (isovalues.len() + threads * per_thread) as u64
    );
    assert_eq!(report.errors, 0);
    assert!(report.bytes_out > 0);

    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn region_and_frame_requests_match_direct_calls() {
    let (dir, server, direct) = serve_fixture("modes", 256 << 20);
    let mut client = Client::connect(server.addr()).unwrap();
    let iso = 120.0f32;
    let full = direct.extract(iso).unwrap().mesh;

    // region-restricted mesh = the same public filter applied locally
    let region = Region {
        lo: [0.0, 0.0, 0.0],
        hi: [14.0, 14.0, 14.0],
    };
    let (lo, hi) = region.corners();
    let expected = full.filter_region(lo, hi);
    let reply = client.query_mesh(iso, Some(region)).unwrap();
    assert!(
        !reply.mesh.is_empty(),
        "test region should catch some surface"
    );
    assert!(
        reply.mesh.len() < full.len(),
        "region should truly restrict"
    );
    assert_same_mesh(&reply.mesh, &expected, "region");

    // frame mode = rasterizing the same mesh locally, pixel for pixel
    let params = FrameParams {
        width: 96,
        height: 96,
        azimuth: 0.7,
        elevation: 0.4,
        distance: 2.5,
        tile_cols: 2,
        tile_rows: 2,
    };
    let frame = client.query_frame(iso, params).unwrap();
    assert!(frame.cache_hit, "mesh query warmed this isovalue");
    let mut local = oociso_render::Framebuffer::new(96, 96);
    let camera = oociso_render::Camera::orbiting(&full.bounds(), 0.7, 0.4, 2.5);
    oociso_render::rasterize_mesh(&full, &camera, [0.9, 0.78, 0.5], &mut local);
    assert_eq!(
        frame.framebuffer, local,
        "remote frame differs from local raster"
    );
    assert_eq!(frame.regions.len(), 4);
    assert!(frame.framebuffer.covered_pixels() > 100);

    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn malformed_and_wrong_version_requests_get_structured_errors() {
    let (dir, server, _direct) = serve_fixture("abuse", 256 << 20);
    let addr = server.addr();
    // encoded at v4 so the payload ends at the lod field (no backend byte,
    // no trace id) — the torn-field cases below append bytes one at a time
    let good_payload = encode_payload_at(
        4,
        &Message::MeshRequest {
            iso: 120.0,
            region: None,
            lod: 0,
            backend: None,
            trace_id: 0,
        },
    );

    // future protocol version → ERR_UNSUPPORTED_VERSION, connection survives
    let mut client = Client::connect(addr).unwrap();
    match client
        .roundtrip_raw(
            oociso_serve::MAGIC,
            oociso_serve::VERSION + 7,
            MSG_MESH_REQUEST,
            &good_payload,
            false,
        )
        .unwrap()
    {
        Some(Message::Error { code, detail, .. }) => {
            assert_eq!(code, ERR_UNSUPPORTED_VERSION, "{detail}");
        }
        other => panic!("expected version error, got {other:?}"),
    }
    // ...and a well-formed request on the same connection still works
    let reply = client.query_mesh(120.0, None).unwrap();
    assert!(!reply.mesh.is_empty());

    // corrupted checksum → ERR_BAD_CHECKSUM
    match client
        .roundtrip_raw(
            oociso_serve::MAGIC,
            oociso_serve::VERSION,
            MSG_MESH_REQUEST,
            &good_payload,
            true,
        )
        .unwrap()
    {
        Some(Message::Error { code, .. }) => assert_eq!(code, ERR_BAD_CHECKSUM),
        other => panic!("expected checksum error, got {other:?}"),
    }

    // truncated request body → ERR_MALFORMED
    match client
        .roundtrip_raw(
            oociso_serve::MAGIC,
            oociso_serve::VERSION,
            MSG_MESH_REQUEST,
            &good_payload[..2],
            false,
        )
        .unwrap()
    {
        Some(Message::Error { code, .. }) => assert_eq!(code, ERR_MALFORMED),
        other => panic!("expected malformed error, got {other:?}"),
    }

    // one byte past the v2 lod field is the v4 backend selector: an unknown
    // id must draw the structured ERR_BAD_BACKEND, while junk beyond the
    // selector is still ERR_MALFORMED — a torn field is never misread
    for (extra, want) in [(1usize, ERR_BAD_BACKEND), (3, ERR_MALFORMED)] {
        let mut torn = good_payload.clone();
        torn.extend(std::iter::repeat_n(0xEEu8, extra));
        match client
            .roundtrip_raw(
                oociso_serve::MAGIC,
                oociso_serve::VERSION,
                MSG_MESH_REQUEST,
                &torn,
                false,
            )
            .unwrap()
        {
            Some(Message::Error { code, .. }) => {
                assert_eq!(code, want, "{extra} trailing bytes")
            }
            other => panic!("expected error for torn request, got {other:?}"),
        }
    }

    // a client sending a server-to-server message type → ERR_MALFORMED
    match client
        .roundtrip_raw(
            oociso_serve::MAGIC,
            oociso_serve::VERSION,
            MSG_MESH_RESPONSE,
            &encode_payload(&Message::MeshResponse {
                cache_hit: false,
                active_metacells: 0,
                served_lod: 0,
                degraded: false,
                backend: 0,
                trace_id: 0,
                mesh: IndexedMesh::new(),
            }),
            false,
        )
        .unwrap()
    {
        Some(Message::Error { code, .. }) => assert_eq!(code, ERR_MALFORMED),
        other => panic!("expected malformed error, got {other:?}"),
    }

    // wrong magic: the server replies (if it can) and hangs up
    let mut bad_magic = Client::connect(addr).unwrap();
    match bad_magic.roundtrip_raw(
        0x0BAD_CAFE,
        oociso_serve::VERSION,
        MSG_MESH_REQUEST,
        &good_payload,
        false,
    ) {
        Ok(Some(Message::Error { code, .. })) => {
            assert_eq!(code, oociso_serve::protocol::ERR_BAD_MAGIC)
        }
        Ok(Some(other)) => panic!("expected error frame, got {other:?}"),
        Ok(None) | Err(_) => {} // hung up before/while replying: acceptable
    }

    // a request claiming a payload over the server's request cap is
    // rejected before any allocation (the header alone cannot commit
    // memory), and that connection is closed
    let mut hostile = Client::connect(addr).unwrap();
    let big = vec![0u8; (oociso_serve::protocol::MAX_REQUEST_PAYLOAD + 1) as usize];
    match hostile.roundtrip_raw(
        oociso_serve::MAGIC,
        oociso_serve::VERSION,
        oociso_serve::protocol::MSG_PING,
        &big,
        false,
    ) {
        Ok(Some(Message::Error { code, detail, .. })) => {
            assert_eq!(code, ERR_MALFORMED, "{detail}");
            assert!(detail.contains("exceeds cap"), "{detail}");
        }
        Ok(Some(other)) => panic!("oversized request accepted: {other:?}"),
        Ok(None) | Err(_) => {} // hung up mid-write: also acceptable
    }

    // a well-formed frame request demanding a multi-gigabyte viewport is
    // refused by the pixel cap
    let mut greedy = Client::connect(addr).unwrap();
    let err = greedy
        .query_frame(
            120.0,
            FrameParams {
                width: 16_384,
                height: 16_384,
                azimuth: 0.0,
                elevation: 0.0,
                distance: 2.0,
                tile_cols: 1,
                tile_rows: 1,
            },
        )
        .unwrap_err();
    assert!(err.to_string().contains("pixel cap"), "{err}");

    // the server is still healthy for new connections after all the abuse
    let mut fresh = Client::connect(addr).unwrap();
    assert!(!fresh.query_mesh(120.0, None).unwrap().mesh.is_empty());
    let s = fresh.stats().unwrap();
    assert!(s.errors >= 4, "abuse must be counted: {s:?}");

    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cache_eviction_under_tiny_budget_still_serves_correct_meshes() {
    // a budget big enough for roughly one mesh: every new isovalue evicts,
    // correctness must be unaffected
    let (dir, server, direct) = serve_fixture("evict", 40 << 10);
    let mut client = Client::connect(server.addr()).unwrap();
    for &iso in &[90.0f32, 120.0, 150.0, 90.0] {
        let reply = client.query_mesh(iso, None).unwrap();
        let truth = direct.extract(iso).unwrap().mesh;
        assert_same_mesh(&reply.mesh, &truth, &format!("iso {iso}"));
    }
    let s = client.stats().unwrap();
    assert!(
        s.cache_evictions > 0 || s.cache_resident_entries <= 1,
        "tiny budget must constrain the cache: {s:?}"
    );
    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn lod_pyramid_roundtrips_bit_exact_with_exact_per_level_accounting() {
    let (dir, server, direct) = lod_fixture("lod");
    let addr = server.addr();
    let iso = 127.5f32;

    // ground truth: the same post-weld pyramid the server builds
    let (chain, _report) = direct.extract_lods(iso, &LodSpec::pyramid()).unwrap();
    assert_eq!(chain.len(), 3);

    let mut client = Client::connect(addr).unwrap();
    // query level 1 first: its miss extracts the pyramid and caches every
    // level, so levels 0 and 2 are hits afterwards
    let l1 = client.query_mesh_lod(iso, None, 1).unwrap();
    assert!(!l1.cache_hit, "first query of the isovalue cannot hit");
    let l0 = client.query_mesh_lod(iso, None, 0).unwrap();
    assert!(l0.cache_hit, "level 0 was cached by the pyramid build");
    let l2 = client.query_mesh_lod(iso, None, 2).unwrap();
    assert!(l2.cache_hit);
    let l1_again = client.query_mesh_lod(iso, None, 1).unwrap();
    assert!(l1_again.cache_hit);

    // every level crosses the wire bit-exactly
    for (lod, reply) in [(0u16, &l0), (1, &l1), (2, &l2)] {
        let want = &chain.level(lod as usize).unwrap().mesh;
        assert_same_mesh(&reply.mesh, want, &format!("lod {lod}"));
    }
    assert_same_mesh(&l1_again.mesh, &l1.mesh, "cache hit bytes");

    // the pyramid really decimates: budgets respected, topology intact
    let v0 = l0.mesh.num_vertices();
    assert!(l1.mesh.num_vertices() <= (v0 as f64 * 0.25).ceil() as usize);
    assert!(l2.mesh.num_vertices() <= (v0 as f64 * 0.06).ceil() as usize);
    for (lod, reply) in [(0u16, &l0), (1, &l1), (2, &l2)] {
        let topo = oociso_march::analyze_mesh_connectivity(&reply.mesh);
        assert!(topo.is_closed_manifold(), "lod {lod}: {topo:?}");
        assert_eq!(topo.euler_characteristic(), 2, "lod {lod}");
    }

    // out-of-range levels: structured ERR_BAD_LOD, connection survives
    for bad in [3u16, 9] {
        let err = client.query_mesh_lod(iso, None, bad).unwrap_err();
        assert!(
            err.to_string()
                .contains(&format!("server error {ERR_BAD_LOD}")),
            "lod {bad}: {err}"
        );
    }
    let still = client.query_mesh_lod(iso, None, 2).unwrap();
    assert!(still.cache_hit, "connection must survive bad-lod errors");

    // exact per-level accounting: 1 miss (level 1), then hits 0/2/1/2
    let s = client.stats().unwrap();
    assert_eq!(s.lod_misses, [0, 1, 0, 0], "{s:?}");
    assert_eq!(s.lod_hits, [1, 1, 2, 0], "{s:?}");
    assert_eq!(s.cache_hits, s.lod_hits.iter().sum::<u64>());
    assert_eq!(s.cache_misses, s.lod_misses.iter().sum::<u64>());
    assert_eq!(s.errors, 2, "the two bad-lod requests: {s:?}");
    assert_eq!(s.cache_resident_entries, 3, "one entry per level");

    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn malformed_lod_ladders_are_rejected_at_bind_not_per_request() {
    let dir = tmpdir("badlods");
    let vol = test_volume();
    let opts = PreprocessOptions {
        nodes: 1,
        ..Default::default()
    };
    for ratios in [
        vec![0.5, 0.6],             // not decreasing
        vec![1.5],                  // out of range
        vec![f64::NAN],             // not finite
        vec![0.0],                  // zero
        vec![0.5, 0.25, 0.1, 0.05], // too many levels
    ] {
        let db = ClusterDatabase::preprocess(&vol, &dir, &opts).unwrap();
        match IsoServer::bind(
            db,
            ("127.0.0.1", 0),
            ServeOptions {
                lod_ratios: ratios.clone(),
                ..Default::default()
            },
        ) {
            Err(err) => assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput, "{ratios:?}"),
            Ok(server) => {
                server.stop();
                panic!("{ratios:?} must be rejected at bind");
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn v1_clients_still_get_full_resolution() {
    // a v1 client's mesh request has no lod field and its frames say
    // version 1: the server must decode it as level 0, reply with frames
    // stamped v1, and keep the v1 stats payload layout parseable
    let (dir, server, direct) = lod_fixture("v1compat");
    let iso = 120.0f32;
    let truth = direct.extract(iso).unwrap().mesh;

    // hand-built v1 MeshRequest payload: f32 iso + region flag 0, no lod
    let mut v1_payload = Vec::new();
    v1_payload.extend_from_slice(&iso.to_bits().to_le_bytes());
    v1_payload.push(0);

    let mut client = Client::connect(server.addr()).unwrap();
    match client
        .roundtrip_raw(oociso_serve::MAGIC, 1, MSG_MESH_REQUEST, &v1_payload, false)
        .unwrap()
    {
        Some(Message::MeshResponse { mesh, .. }) => {
            assert_same_mesh(&mesh, &truth, "v1 request must get LOD 0");
        }
        other => panic!("expected a mesh response, got {other:?}"),
    }

    // v1 stats: the reply must parse (11-counter layout) with the per-level
    // arrays absent → zeroed, while aggregates are live
    match client
        .roundtrip_raw(oociso_serve::MAGIC, 1, MSG_STATS_REQUEST, &[], false)
        .unwrap()
    {
        Some(Message::StatsResponse(s)) => {
            assert!(s.cache_misses > 0, "{s:?}");
            assert_eq!(s.lod_hits, [0; 4], "v1 payload carries no lod arrays");
            assert_eq!(s.lod_misses, [0; 4]);
        }
        other => panic!("expected stats, got {other:?}"),
    }

    // ...whereas the v2 view of the same counters has the per-level rows
    let s2 = client.stats().unwrap();
    assert_eq!(s2.lod_misses[0], 1, "{s2:?}");

    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn frame_requests_select_lods_by_screen_space_error() {
    // with the pyramid enabled, a frame request rasterizes each tile from
    // the level its projected error budget allows — reproduce the server's
    // choice client-side from the same public selection function and the
    // cached per-level meshes
    let (dir, server, direct) = lod_fixture("lodframe");
    let iso = 127.5f32;
    let (chain, _) = direct.extract_lods(iso, &LodSpec::pyramid()).unwrap();

    let mut client = Client::connect(server.addr()).unwrap();
    let params = FrameParams {
        width: 96,
        height: 96,
        azimuth: 0.7,
        elevation: 0.4,
        distance: 2.5,
        tile_cols: 2,
        tile_rows: 2,
    };
    let frame = client.query_frame(iso, params).unwrap();

    // expectation: same camera, same selection, same rasterization
    let bounds = chain.full().bounds();
    let camera = oociso_render::Camera::orbiting(&bounds, 0.7, 0.4, 2.5);
    let tiles = oociso_render::TileLayout::new(2, 2, 96, 96);
    let picks = oociso_render::select_tile_levels(
        &tiles,
        &camera,
        &bounds,
        &chain.world_errors(),
        1.0, // ServeOptions::default().lod_tolerance_px
    );
    let mut expected = Vec::new();
    for (t, &level) in picks.iter().enumerate() {
        let mut fb = oociso_render::Framebuffer::new(96, 96);
        oociso_render::rasterize_mesh(
            &chain.level(level).unwrap().mesh,
            &camera,
            [0.9, 0.78, 0.5],
            &mut fb,
        );
        expected.push(oociso_render::FrameRegion::extract(
            &fb,
            tiles.tile_origin(t),
            tiles.tile_size(),
        ));
    }
    assert_eq!(
        frame.regions, expected,
        "served tiles must match the public per-tile LOD selection"
    );

    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ping_echoes_and_measures() {
    let (dir, server, _direct) = serve_fixture("ping", 1 << 20);
    let mut client = Client::connect(server.addr()).unwrap();
    let rtt = client.ping(1024).unwrap();
    assert!(rtt > std::time::Duration::ZERO);
    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn welded_mesh_roundtrips_bit_exact_and_cache_serves_identical_bytes() {
    // Extraction welds seams by default, so the mesh a client receives must
    // be watertight, bit-identical to the in-process welded extraction, and
    // — because the cache stores the welded result — every later cache hit
    // must hand back the very same bytes.
    let (dir, server, direct) = serve_fixture("welded", 256 << 20);
    let addr = server.addr();
    // half-integer isovalue: crossings stay off the u8 lattice, the sphere
    // is closed, and quantized welding collapses nothing
    let iso = 127.5f32;
    let truth = direct.extract(iso).unwrap().mesh;
    assert!(!truth.is_empty());

    let mut client = Client::connect(addr).unwrap();
    let first = client.query_mesh(iso, None).unwrap();
    assert!(!first.cache_hit, "first query cannot hit");
    assert_same_mesh(&first.mesh, &truth, "served vs in-process weld");

    let topo = oociso_march::analyze_mesh(&first.mesh);
    assert!(topo.is_closed_manifold(), "{topo:?}");
    assert_eq!(topo.components, 1);
    assert_eq!(topo.euler_characteristic(), 2, "{topo:?}");
    assert_eq!(
        topo.vertices,
        first.mesh.num_vertices(),
        "no duplicate seam vertices survive the weld"
    );

    let second = client.query_mesh(iso, None).unwrap();
    assert!(second.cache_hit, "second identical query must hit");
    assert_same_mesh(&second.mesh, &first.mesh, "cache hit bytes");
    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

/// Ground-truth SurfaceNets extraction via the library, for comparing
/// against served responses.
fn sn_truth(direct: &ClusterDatabase<u8>, iso: f32) -> IndexedMesh {
    direct
        .extract_with_options(
            iso,
            &ExtractOptions {
                backend: Backend::SurfaceNets,
                ..Default::default()
            },
        )
        .unwrap()
        .mesh
}

#[test]
fn backend_selection_round_trips_with_isolated_cache_slots() {
    let (dir, server, direct) = serve_fixture("backend", 256 << 20);
    let addr = server.addr();
    // half-integer isovalue keeps crossings off the u8 lattice for both
    // backends
    let iso = 127.5f32;

    let mc_truth = direct.extract(iso).unwrap().mesh;
    let sn_truth = sn_truth(&direct, iso);
    assert!(!mc_truth.is_empty() && !sn_truth.is_empty());

    let mut client = Client::connect(addr).unwrap();

    // a selector-less request gets the server default (MC) and says so
    let mc = client.query_mesh(iso, None).unwrap();
    assert!(!mc.cache_hit);
    assert_eq!(mc.backend, Backend::Mc.id());
    assert_same_mesh(&mc.mesh, &mc_truth, "default backend");

    // the same isovalue under SurfaceNets lives in a different cache slot:
    // it must miss, produce the SN surface, and stamp the SN id
    let sn = client
        .query_mesh_backend(iso, None, 0, Backend::SurfaceNets)
        .unwrap();
    assert!(!sn.cache_hit, "per-backend slots must not alias");
    assert_eq!(sn.backend, Backend::SurfaceNets.id());
    assert_same_mesh(&sn.mesh, &sn_truth, "surfacenets");
    let same_geometry = mc.mesh.num_vertices() == sn.mesh.num_vertices()
        && mc
            .mesh
            .positions()
            .iter()
            .zip(sn.mesh.positions())
            .all(|(a, b)| a.x.to_bits() == b.x.to_bits() && a.y.to_bits() == b.y.to_bits());
    assert!(
        !same_geometry,
        "the two backends must produce distinct surfaces"
    );

    // repeats hit, each from its own slot, bytes unchanged
    let mc2 = client
        .query_mesh_backend(iso, None, 0, Backend::Mc)
        .unwrap();
    assert!(mc2.cache_hit);
    assert_same_mesh(&mc2.mesh, &mc.mesh, "mc cache hit");
    let sn2 = client
        .query_mesh_backend(iso, None, 0, Backend::SurfaceNets)
        .unwrap();
    assert!(sn2.cache_hit);
    assert_same_mesh(&sn2.mesh, &sn.mesh, "sn cache hit");

    // exact per-backend accounting: one miss + one hit each
    let s = client.stats().unwrap();
    assert_eq!(s.backend_misses, [1, 1], "{s:?}");
    assert_eq!(s.backend_hits, [1, 1], "{s:?}");

    // an unknown backend id draws the structured error naming the known
    // ids, and the connection survives
    let bad = encode_payload(&Message::MeshRequest {
        iso,
        region: None,
        lod: 0,
        backend: Some(9),
        trace_id: 0,
    });
    match client
        .roundtrip_raw(
            oociso_serve::MAGIC,
            oociso_serve::VERSION,
            MSG_MESH_REQUEST,
            &bad,
            false,
        )
        .unwrap()
    {
        Some(Message::Error { code, detail, .. }) => {
            assert_eq!(code, ERR_BAD_BACKEND, "{detail}");
            assert!(detail.contains("surfacenets"), "{detail}");
        }
        other => panic!("expected backend error, got {other:?}"),
    }
    assert!(client.query_mesh(iso, None).unwrap().cache_hit);

    // a v3-dialect request (no selector byte on the wire) gets the default
    // backend — old clients keep receiving exactly what they always got
    let mut v3_payload = Vec::new();
    v3_payload.extend_from_slice(&iso.to_bits().to_le_bytes());
    v3_payload.push(0); // no region
    v3_payload.extend_from_slice(&0u16.to_le_bytes()); // lod 0
    match client
        .roundtrip_raw(oociso_serve::MAGIC, 3, MSG_MESH_REQUEST, &v3_payload, false)
        .unwrap()
    {
        Some(Message::MeshResponse { mesh, backend, .. }) => {
            assert_eq!(backend, 0, "a v3 reply carries no backend byte");
            assert_same_mesh(&mesh, &mc_truth, "v3 client");
        }
        other => panic!("expected mesh response, got {other:?}"),
    }

    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn server_default_backend_applies_to_selector_less_requests() {
    // a server configured with SurfaceNets as its default serves SN to
    // every client that names no backend — including pre-v4 dialects —
    // while an explicit MC request still reaches the MC slot
    let dir = tmpdir("sndefault");
    let vol = test_volume();
    let opts = PreprocessOptions {
        nodes: 2,
        ..Default::default()
    };
    let served = ClusterDatabase::preprocess(&vol, &dir, &opts).unwrap();
    let direct = ClusterDatabase::<u8>::open(&dir, false).unwrap();
    let server = IsoServer::bind(
        served,
        ("127.0.0.1", 0),
        ServeOptions {
            backend: Backend::SurfaceNets,
            ..Default::default()
        },
    )
    .unwrap();
    let iso = 127.5f32;
    let truth = sn_truth(&direct, iso);

    let mut client = Client::connect(server.addr()).unwrap();
    let reply = client.query_mesh(iso, None).unwrap();
    assert_eq!(reply.backend, Backend::SurfaceNets.id());
    assert_same_mesh(&reply.mesh, &truth, "sn default");

    let mc = client
        .query_mesh_backend(iso, None, 0, Backend::Mc)
        .unwrap();
    assert!(!mc.cache_hit, "MC slot starts cold on an SN-default server");
    assert_eq!(mc.backend, Backend::Mc.id());
    assert_same_mesh(&mc.mesh, &direct.extract(iso).unwrap().mesh, "explicit mc");

    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_ids_round_trip_and_journals_serve_traces() {
    let (dir, server, _direct) = serve_fixture("traced", 256 << 20);
    let mut client = Client::connect(server.addr()).unwrap();
    let iso = 120.0f32;

    // a traced cold query: the id is echoed and the retained span tree
    // shows the extraction actually happening under the request root
    let cold = client
        .query_mesh_traced(iso, None, 0, None, 0xDEAD_BEEF)
        .unwrap();
    assert!(!cold.cache_hit);
    assert_eq!(cold.trace_id, 0xDEAD_BEEF, "id echoed on the reply");
    let t = client.trace(0xDEAD_BEEF).unwrap();
    assert!(t.found, "traced request retained in the journal");
    assert_eq!(t.id, 0xDEAD_BEEF);
    assert!(t.total_us > 0);
    let tree = render_trace_events(&t.events);
    for span in ["request", "cache", "extract", "encode"] {
        assert!(tree.contains(span), "cold trace missing `{span}`:\n{tree}");
    }

    // a traced warm query: cache annotate says hit, no extract span
    let warm = client.query_mesh_traced(iso, None, 0, None, 77).unwrap();
    assert!(warm.cache_hit);
    assert_eq!(warm.trace_id, 77);
    let t = client.trace(77).unwrap();
    assert!(t.found);
    let tree = render_trace_events(&t.events);
    assert!(tree.contains("hit=1"), "{tree}");
    assert!(!tree.contains("extract"), "{tree}");

    // id 0 = "latest traced request" = the warm one; unknown ids miss
    let latest = client.trace(0).unwrap();
    assert!(latest.found);
    assert_eq!(latest.id, 77);
    assert!(!client.trace(0xBAD0_BAD0).unwrap().found);

    // an untraced request (trace_id 0 on the wire) does not enter the journal
    let plain = client.query_mesh(iso, None).unwrap();
    assert_eq!(plain.trace_id, 0);
    assert_eq!(
        client.trace(0).unwrap().id,
        77,
        "untraced requests not journaled"
    );

    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_exposition_agrees_with_stats() {
    let (dir, server, _direct) = serve_fixture("metrics", 256 << 20);
    let mut client = Client::connect(server.addr()).unwrap();
    let iso = 120.0f32;
    client.query_mesh(iso, None).unwrap(); // miss
    client.query_mesh(iso, None).unwrap(); // hit

    let text = client.metrics().unwrap();
    let line = |name: &str| -> u64 {
        text.lines()
            .find(|l| l.starts_with(name) && l[name.len()..].starts_with(' '))
            .unwrap_or_else(|| panic!("metric `{name}` missing from:\n{text}"))
            .rsplit(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap_or_else(|_| panic!("metric `{name}` not an integer"))
    };
    // the exposition reads the same counter handles as the stats reply, so
    // the two views can never disagree
    let s = client.stats().unwrap();
    assert_eq!(line("mesh_requests_total"), s.mesh_requests);
    assert_eq!(line("cache_hits_total"), s.cache_hits);
    assert_eq!(line("cache_misses_total"), s.cache_misses);
    assert_eq!(line("connections_total"), s.connections);
    // requests_total on the wire text was sampled before the metrics and
    // stats requests themselves were counted; allow that skew only
    assert!(line("requests_total") >= 2);
    // histograms made it into the exposition with recorded samples
    assert!(
        text.contains("request_latency_us_count"),
        "histogram missing:\n{text}"
    );
    assert!(text.contains("phase_triangulate_us_count"), "{text}");

    // the in-process view matches too
    assert!(server.metrics().contains("mesh_requests_total"));

    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pre_v5_dialects_are_served_untraced() {
    let (dir, server, direct) = serve_fixture("prev5", 256 << 20);
    let iso = 120.0f32;
    let truth = direct.extract(iso).unwrap().mesh;
    let mut client = Client::connect(server.addr()).unwrap();

    // the same logical request spoken at v2, v3, and v4 — none carry a
    // trace id, every one gets the full mesh and decodes trace_id as 0,
    // and the connection survives for the next dialect
    let req = Message::MeshRequest {
        iso,
        region: None,
        lod: 0,
        backend: None,
        trace_id: 0xFFFF_FFFF, // must never reach a pre-v5 wire
    };
    for version in 2u16..=4 {
        let payload = encode_payload_at(version, &req);
        match client
            .roundtrip_raw(
                oociso_serve::MAGIC,
                version,
                MSG_MESH_REQUEST,
                &payload,
                false,
            )
            .unwrap()
        {
            Some(Message::MeshResponse { mesh, trace_id, .. }) => {
                assert_eq!(trace_id, 0, "v{version} reply must carry no trace id");
                assert_same_mesh(&mesh, &truth, "pre-v5 dialect");
            }
            other => panic!("v{version}: expected mesh response, got {other:?}"),
        }
    }
    // ...and a v5 traced request on the same connection still works
    let traced = client.query_mesh_traced(iso, None, 0, None, 5).unwrap();
    assert_eq!(traced.trace_id, 5);

    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

/// Read one complete raw reply frame (header + payload + checksum) off a
/// progressive delivery's socket.
fn read_raw_frame(stream: &mut std::net::TcpStream) -> Vec<u8> {
    use std::io::Read;
    let mut frame = vec![0u8; HEADER_BYTES];
    stream.read_exact(&mut frame).unwrap();
    let len = u64::from_le_bytes(frame[8..16].try_into().unwrap()) as usize;
    let mut body = vec![0u8; len + 4];
    stream.read_exact(&mut body).unwrap();
    frame.extend_from_slice(&body);
    frame
}

/// Satellite: chunked-response reassembly under a torn stream. The raw
/// bytes of one complete progressive delivery are captured, then replayed
/// truncated at every chunk boundary (±1 byte) and a sweep of mid-frame
/// offsets: reassembly must either complete or fail cleanly — a refinement
/// the callback observed is always a whole, bit-correct level, never a
/// half-applied one.
#[test]
fn progressive_reassembly_survives_truncation_at_every_boundary() {
    let (dir, server, direct) = lod_fixture("prog_torn");
    let iso = 120.0f32;

    // capture one complete delivery, recording where each chunk ends
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    write_frame(
        &mut stream,
        &Message::ProgressiveRequest {
            iso,
            lod: 0,
            backend: None,
            trace_id: 0,
        },
    )
    .unwrap();
    let mut raw: Vec<u8> = Vec::new();
    let mut boundaries: Vec<usize> = Vec::new();
    loop {
        let frame = read_raw_frame(&mut stream);
        raw.extend_from_slice(&frame);
        boundaries.push(raw.len());
        match read_frame(&mut &frame[..]).unwrap() {
            Some(FrameIn::Ok {
                msg: Message::MeshChunk { last, .. },
                ..
            }) => {
                if last {
                    break;
                }
            }
            other => panic!("expected a chunk frame, got {other:?}"),
        }
    }
    server.stop();

    // the intact capture reassembles to the direct extraction
    let mut expected: Vec<(u16, IndexedMesh)> = Vec::new();
    let full = read_progressive_reply(&mut std::io::Cursor::new(&raw[..]), 0, |u| {
        expected.push((u.level, u.mesh.clone()))
    })
    .unwrap();
    assert_eq!(
        expected.iter().map(|e| e.0).collect::<Vec<_>>(),
        vec![2, 1, 0]
    );
    assert_same_mesh(&full.mesh, &direct.extract(iso).unwrap().mesh, "intact");

    // every chunk boundary (and its neighbors), plus a mid-frame sweep
    let mut cuts: Vec<usize> = boundaries
        .iter()
        .flat_map(|&b| [b.saturating_sub(1), b, b + 1])
        .collect();
    cuts.extend((0..raw.len()).step_by(611));
    cuts.sort_unstable();
    cuts.dedup();
    for cut in cuts.into_iter().filter(|&c| c < raw.len()) {
        let mut seen: Vec<(u16, IndexedMesh)> = Vec::new();
        let mut torn = ChaosStream::new(
            std::io::Cursor::new(&raw[..]),
            ConnFault::TruncateResponse {
                after_bytes: cut as u64,
            },
        );
        let res = read_progressive_reply(&mut torn, 0, |u| seen.push((u.level, u.mesh.clone())));
        assert!(
            res.is_err(),
            "cut at {cut}/{} bytes must surface an error",
            raw.len()
        );
        // whatever arrived before the tear is a clean prefix of the true
        // refinement sequence — complete levels only, bit-exact
        assert!(
            seen.len() < expected.len(),
            "cut {cut}: delivery cannot finish"
        );
        for ((lvl, mesh), (want_lvl, want_mesh)) in seen.iter().zip(&expected) {
            assert_eq!(lvl, want_lvl, "cut {cut}: refinement order");
            assert_same_mesh(mesh, want_mesh, &format!("cut {cut} level {lvl}"));
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A pre-v6 frame smuggling the v6 progressive message type draws a
/// structured `ERR_MALFORMED` — and the connection survives to serve a
/// well-formed v6 delivery right after.
#[test]
fn pre_v6_frames_cannot_carry_progressive_requests() {
    let (dir, server, _direct) = lod_fixture("prog_v5gate");
    let mut client = Client::connect(server.addr()).unwrap();

    // hand-rolled ProgressiveRequest payload inside a v5 frame
    let mut payload = Vec::new();
    payload.extend_from_slice(&120.0f32.to_le_bytes());
    payload.extend_from_slice(&0u16.to_le_bytes());
    payload.push(0xFF); // BACKEND_DEFAULT
    payload.extend_from_slice(&0u64.to_le_bytes());
    match client
        .roundtrip_raw(MAGIC, 5, MSG_PROGRESSIVE_REQUEST, &payload, false)
        .unwrap()
    {
        Some(Message::Error { code, detail, .. }) => {
            assert_eq!(code, ERR_MALFORMED, "{detail}");
            assert!(detail.contains("v6"), "{detail}");
        }
        other => panic!("expected a structured error, got {other:?}"),
    }

    let mut levels = Vec::new();
    let reply = client
        .query_mesh_progressive(120.0, 0, None, |u| levels.push(u.level))
        .unwrap();
    assert_eq!(levels, vec![2, 1, 0]);
    assert!(!reply.degraded);

    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}
