//! End-to-end serving tests: concurrent clients against one live TCP server
//! must observe responses bit-identical to direct library calls, the result
//! cache must be visibly doing its job, and protocol abuse must produce
//! structured errors without wedging the server.

use oociso_core::{ClusterDatabase, PreprocessOptions};
use oociso_march::IndexedMesh;
use oociso_serve::protocol::{
    encode_payload, ERR_BAD_CHECKSUM, ERR_MALFORMED, ERR_UNSUPPORTED_VERSION, MSG_MESH_REQUEST,
    MSG_MESH_RESPONSE,
};
use oociso_serve::{Client, FrameParams, IsoServer, Message, Region, ServeOptions};
use oociso_volume::field::{FieldExt, SphereField};
use oociso_volume::{Dims3, Volume};
use std::collections::HashMap;
use std::path::PathBuf;

fn tmpdir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("oociso_serve_{}_{}", std::process::id(), name));
    p
}

fn test_volume() -> Volume<u8> {
    SphereField::centered(0.32, 128.0).sample(Dims3::cube(29))
}

/// A 2-node database + a bound server over it + a second direct-access
/// database on the same directory for ground truth.
fn serve_fixture(name: &str, cache_bytes: u64) -> (PathBuf, IsoServer, ClusterDatabase<u8>) {
    let dir = tmpdir(name);
    let vol = test_volume();
    let opts = PreprocessOptions {
        nodes: 2,
        ..Default::default()
    };
    let served = ClusterDatabase::preprocess(&vol, &dir, &opts).unwrap();
    let direct = ClusterDatabase::<u8>::open(&dir, false).unwrap();
    let server = IsoServer::bind(served, ("127.0.0.1", 0), ServeOptions { cache_bytes }).unwrap();
    (dir, server, direct)
}

fn assert_same_mesh(a: &IndexedMesh, b: &IndexedMesh, ctx: &str) {
    assert_eq!(
        a.positions().len(),
        b.positions().len(),
        "{ctx}: vertex count"
    );
    for (i, (x, y)) in a.positions().iter().zip(b.positions()).enumerate() {
        assert_eq!(x.x.to_bits(), y.x.to_bits(), "{ctx}: vertex {i}.x");
        assert_eq!(x.y.to_bits(), y.y.to_bits(), "{ctx}: vertex {i}.y");
        assert_eq!(x.z.to_bits(), y.z.to_bits(), "{ctx}: vertex {i}.z");
    }
    assert_eq!(a.indices(), b.indices(), "{ctx}: indices");
}

#[test]
fn concurrent_clients_get_bit_identical_results_and_cache_hits() {
    let (dir, server, direct) = serve_fixture("concurrent", 256 << 20);
    let addr = server.addr();
    let isovalues = [90.0f32, 120.0, 150.0];

    // ground truth once per isovalue, via direct library calls
    let truth: HashMap<u32, IndexedMesh> = isovalues
        .iter()
        .map(|&iso| (iso.to_bits(), direct.extract(iso).unwrap().mesh))
        .collect();

    // warm pass: one sequential client populates the cache (all misses)
    {
        let mut warm = Client::connect(addr).unwrap();
        for &iso in &isovalues {
            let reply = warm.query_mesh(iso, None).unwrap();
            assert!(!reply.cache_hit, "first query of {iso} cannot hit");
            assert_same_mesh(&reply.mesh, &truth[&iso.to_bits()], "warm");
        }
        let s = warm.stats().unwrap();
        assert_eq!(s.cache_misses, isovalues.len() as u64);
        assert_eq!(s.cache_resident_entries, isovalues.len() as u64);
    }

    // storm pass: N threads × mixed isovalues, all concurrent, all hits
    let threads = 6;
    let per_thread = 4;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let truth = &truth;
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for q in 0..per_thread {
                    let iso = isovalues[(t + q) % isovalues.len()];
                    let reply = client.query_mesh(iso, None).unwrap();
                    assert!(reply.cache_hit, "warmed isovalue {iso} must hit");
                    assert!(reply.active_metacells > 0);
                    assert_same_mesh(
                        &reply.mesh,
                        &truth[&iso.to_bits()],
                        &format!("thread {t} query {q} iso {iso}"),
                    );
                }
            });
        }
    });

    let report = server.report();
    assert_eq!(report.connections, 1 + threads as u64);
    assert_eq!(
        report.cache_hits,
        (threads * per_thread) as u64,
        "every storm query must be a cache hit: {report:?}"
    );
    assert_eq!(report.cache_misses, isovalues.len() as u64);
    assert_eq!(
        report.mesh_requests,
        (isovalues.len() + threads * per_thread) as u64
    );
    assert_eq!(report.errors, 0);
    assert!(report.bytes_out > 0);

    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn region_and_frame_requests_match_direct_calls() {
    let (dir, server, direct) = serve_fixture("modes", 256 << 20);
    let mut client = Client::connect(server.addr()).unwrap();
    let iso = 120.0f32;
    let full = direct.extract(iso).unwrap().mesh;

    // region-restricted mesh = the same public filter applied locally
    let region = Region {
        lo: [0.0, 0.0, 0.0],
        hi: [14.0, 14.0, 14.0],
    };
    let (lo, hi) = region.corners();
    let expected = full.filter_region(lo, hi);
    let reply = client.query_mesh(iso, Some(region)).unwrap();
    assert!(
        !reply.mesh.is_empty(),
        "test region should catch some surface"
    );
    assert!(
        reply.mesh.len() < full.len(),
        "region should truly restrict"
    );
    assert_same_mesh(&reply.mesh, &expected, "region");

    // frame mode = rasterizing the same mesh locally, pixel for pixel
    let params = FrameParams {
        width: 96,
        height: 96,
        azimuth: 0.7,
        elevation: 0.4,
        distance: 2.5,
        tile_cols: 2,
        tile_rows: 2,
    };
    let frame = client.query_frame(iso, params).unwrap();
    assert!(frame.cache_hit, "mesh query warmed this isovalue");
    let mut local = oociso_render::Framebuffer::new(96, 96);
    let camera = oociso_render::Camera::orbiting(&full.bounds(), 0.7, 0.4, 2.5);
    oociso_render::rasterize_mesh(&full, &camera, [0.9, 0.78, 0.5], &mut local);
    assert_eq!(
        frame.framebuffer, local,
        "remote frame differs from local raster"
    );
    assert_eq!(frame.regions.len(), 4);
    assert!(frame.framebuffer.covered_pixels() > 100);

    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn malformed_and_wrong_version_requests_get_structured_errors() {
    let (dir, server, _direct) = serve_fixture("abuse", 256 << 20);
    let addr = server.addr();
    let good_payload = encode_payload(&Message::MeshRequest {
        iso: 120.0,
        region: None,
    });

    // future protocol version → ERR_UNSUPPORTED_VERSION, connection survives
    let mut client = Client::connect(addr).unwrap();
    match client
        .roundtrip_raw(
            oociso_serve::MAGIC,
            oociso_serve::VERSION + 7,
            MSG_MESH_REQUEST,
            &good_payload,
            false,
        )
        .unwrap()
    {
        Some(Message::Error { code, detail }) => {
            assert_eq!(code, ERR_UNSUPPORTED_VERSION, "{detail}");
        }
        other => panic!("expected version error, got {other:?}"),
    }
    // ...and a well-formed request on the same connection still works
    let reply = client.query_mesh(120.0, None).unwrap();
    assert!(!reply.mesh.is_empty());

    // corrupted checksum → ERR_BAD_CHECKSUM
    match client
        .roundtrip_raw(
            oociso_serve::MAGIC,
            oociso_serve::VERSION,
            MSG_MESH_REQUEST,
            &good_payload,
            true,
        )
        .unwrap()
    {
        Some(Message::Error { code, .. }) => assert_eq!(code, ERR_BAD_CHECKSUM),
        other => panic!("expected checksum error, got {other:?}"),
    }

    // truncated request body → ERR_MALFORMED
    match client
        .roundtrip_raw(
            oociso_serve::MAGIC,
            oociso_serve::VERSION,
            MSG_MESH_REQUEST,
            &good_payload[..2],
            false,
        )
        .unwrap()
    {
        Some(Message::Error { code, .. }) => assert_eq!(code, ERR_MALFORMED),
        other => panic!("expected malformed error, got {other:?}"),
    }

    // a client sending a server-to-server message type → ERR_MALFORMED
    match client
        .roundtrip_raw(
            oociso_serve::MAGIC,
            oociso_serve::VERSION,
            MSG_MESH_RESPONSE,
            &encode_payload(&Message::MeshResponse {
                cache_hit: false,
                active_metacells: 0,
                mesh: IndexedMesh::new(),
            }),
            false,
        )
        .unwrap()
    {
        Some(Message::Error { code, .. }) => assert_eq!(code, ERR_MALFORMED),
        other => panic!("expected malformed error, got {other:?}"),
    }

    // wrong magic: the server replies (if it can) and hangs up
    let mut bad_magic = Client::connect(addr).unwrap();
    match bad_magic.roundtrip_raw(
        0x0BAD_CAFE,
        oociso_serve::VERSION,
        MSG_MESH_REQUEST,
        &good_payload,
        false,
    ) {
        Ok(Some(Message::Error { code, .. })) => {
            assert_eq!(code, oociso_serve::protocol::ERR_BAD_MAGIC)
        }
        Ok(Some(other)) => panic!("expected error frame, got {other:?}"),
        Ok(None) | Err(_) => {} // hung up before/while replying: acceptable
    }

    // a request claiming a payload over the server's request cap is
    // rejected before any allocation (the header alone cannot commit
    // memory), and that connection is closed
    let mut hostile = Client::connect(addr).unwrap();
    let big = vec![0u8; (oociso_serve::protocol::MAX_REQUEST_PAYLOAD + 1) as usize];
    match hostile.roundtrip_raw(
        oociso_serve::MAGIC,
        oociso_serve::VERSION,
        oociso_serve::protocol::MSG_PING,
        &big,
        false,
    ) {
        Ok(Some(Message::Error { code, detail })) => {
            assert_eq!(code, ERR_MALFORMED, "{detail}");
            assert!(detail.contains("exceeds cap"), "{detail}");
        }
        Ok(Some(other)) => panic!("oversized request accepted: {other:?}"),
        Ok(None) | Err(_) => {} // hung up mid-write: also acceptable
    }

    // a well-formed frame request demanding a multi-gigabyte viewport is
    // refused by the pixel cap
    let mut greedy = Client::connect(addr).unwrap();
    let err = greedy
        .query_frame(
            120.0,
            FrameParams {
                width: 16_384,
                height: 16_384,
                azimuth: 0.0,
                elevation: 0.0,
                distance: 2.0,
                tile_cols: 1,
                tile_rows: 1,
            },
        )
        .unwrap_err();
    assert!(err.to_string().contains("pixel cap"), "{err}");

    // the server is still healthy for new connections after all the abuse
    let mut fresh = Client::connect(addr).unwrap();
    assert!(!fresh.query_mesh(120.0, None).unwrap().mesh.is_empty());
    let s = fresh.stats().unwrap();
    assert!(s.errors >= 4, "abuse must be counted: {s:?}");

    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cache_eviction_under_tiny_budget_still_serves_correct_meshes() {
    // a budget big enough for roughly one mesh: every new isovalue evicts,
    // correctness must be unaffected
    let (dir, server, direct) = serve_fixture("evict", 40 << 10);
    let mut client = Client::connect(server.addr()).unwrap();
    for &iso in &[90.0f32, 120.0, 150.0, 90.0] {
        let reply = client.query_mesh(iso, None).unwrap();
        let truth = direct.extract(iso).unwrap().mesh;
        assert_same_mesh(&reply.mesh, &truth, &format!("iso {iso}"));
    }
    let s = client.stats().unwrap();
    assert!(
        s.cache_evictions > 0 || s.cache_resident_entries <= 1,
        "tiny budget must constrain the cache: {s:?}"
    );
    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ping_echoes_and_measures() {
    let (dir, server, _direct) = serve_fixture("ping", 1 << 20);
    let mut client = Client::connect(server.addr()).unwrap();
    let rtt = client.ping(1024).unwrap();
    assert!(rtt > std::time::Duration::ZERO);
    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn welded_mesh_roundtrips_bit_exact_and_cache_serves_identical_bytes() {
    // Extraction welds seams by default, so the mesh a client receives must
    // be watertight, bit-identical to the in-process welded extraction, and
    // — because the cache stores the welded result — every later cache hit
    // must hand back the very same bytes.
    let (dir, server, direct) = serve_fixture("welded", 256 << 20);
    let addr = server.addr();
    // half-integer isovalue: crossings stay off the u8 lattice, the sphere
    // is closed, and quantized welding collapses nothing
    let iso = 127.5f32;
    let truth = direct.extract(iso).unwrap().mesh;
    assert!(!truth.is_empty());

    let mut client = Client::connect(addr).unwrap();
    let first = client.query_mesh(iso, None).unwrap();
    assert!(!first.cache_hit, "first query cannot hit");
    assert_same_mesh(&first.mesh, &truth, "served vs in-process weld");

    let topo = oociso_march::analyze_mesh(&first.mesh);
    assert!(topo.is_closed_manifold(), "{topo:?}");
    assert_eq!(topo.components, 1);
    assert_eq!(topo.euler_characteristic(), 2, "{topo:?}");
    assert_eq!(
        topo.vertices,
        first.mesh.num_vertices(),
        "no duplicate seam vertices survive the weld"
    );

    let second = client.query_mesh(iso, None).unwrap();
    assert!(second.cache_hit, "second identical query must hit");
    assert_same_mesh(&second.mesh, &first.mesh, "cache hit bytes");
    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}
