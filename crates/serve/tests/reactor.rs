//! Reactor-core tests: pipelining order and equivalence with the threaded
//! core, burst accepts, torn-frame safety under write stalls, outbound
//! backpressure, and the 512-connection pipelining storm.
//!
//! The equivalence tests intentionally compare **raw reply bytes** between
//! the two serving cores and between pipelined and sequential delivery —
//! the reactor's contract is not "similar" responses, but the same bytes
//! in request order.

use oociso_core::{ClusterDatabase, PreprocessOptions};
use oociso_march::IndexedMesh;
use oociso_serve::protocol::{
    read_frame, write_frame, FrameIn, HEADER_BYTES, MSG_MESH_CHUNK, MSG_MESH_RESPONSE, MSG_PONG,
};
use oociso_serve::{
    ChaosProxy, Client, ClientOptions, ConnFault, FrameParams, IsoServer, Message, ServeOptions,
};
use oociso_volume::field::{FieldExt, SphereField};
use oociso_volume::{Dims3, Volume};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn tmpdir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("oociso_reactor_{}_{}", std::process::id(), name));
    p
}

fn test_volume() -> Volume<u8> {
    SphereField::centered(0.32, 128.0).sample(Dims3::cube(29))
}

/// Which serving core a scenario runs against. Every test here must hold
/// for both unless it targets a core-specific mechanism.
#[derive(Clone, Copy, Debug)]
enum Core {
    Threaded,
    #[cfg(target_os = "linux")]
    Reactor,
}

impl Core {
    fn options(self, opts: ServeOptions) -> ServeOptions {
        match self {
            Core::Threaded => ServeOptions {
                reactor_threads: 0,
                ..opts
            },
            #[cfg(target_os = "linux")]
            Core::Reactor => ServeOptions {
                reactor_threads: 2,
                ..opts
            },
        }
    }

    fn all() -> Vec<Core> {
        #[cfg(target_os = "linux")]
        {
            vec![Core::Threaded, Core::Reactor]
        }
        #[cfg(not(target_os = "linux"))]
        {
            vec![Core::Threaded]
        }
    }
}

fn bind(name: &str, core: Core, opts: ServeOptions) -> (PathBuf, IsoServer) {
    let dir = tmpdir(name);
    let vol = test_volume();
    let served = ClusterDatabase::preprocess(&vol, &dir, &PreprocessOptions::default()).unwrap();
    let server = IsoServer::bind(served, ("127.0.0.1", 0), core.options(opts)).unwrap();
    (dir, server)
}

fn frame_params() -> FrameParams {
    FrameParams {
        width: 64,
        height: 64,
        azimuth: 0.6,
        elevation: 0.3,
        distance: 2.5,
        tile_cols: 2,
        tile_rows: 2,
    }
}

/// The 8-request interleaved pipeline of the equivalence scenario:
/// mesh/frame/stats (and a ping) with distinct v5 trace ids.
fn pipeline_requests(iso: f32) -> Vec<Message> {
    vec![
        Message::MeshRequest {
            iso,
            region: None,
            lod: 0,
            backend: None,
            trace_id: 0xA1,
        },
        Message::FrameRequest {
            iso,
            params: frame_params(),
            trace_id: 0xA2,
        },
        Message::StatsRequest,
        Message::MeshRequest {
            iso,
            region: None,
            lod: 0,
            backend: None,
            trace_id: 0xA3,
        },
        Message::FrameRequest {
            iso,
            params: frame_params(),
            trace_id: 0xA4,
        },
        Message::StatsRequest,
        Message::Ping {
            payload: vec![7u8; 512],
        },
        Message::MeshRequest {
            iso,
            region: None,
            lod: 0,
            backend: None,
            trace_id: 0,
        },
    ]
}

fn decode_reply(raw: &[u8]) -> Message {
    match read_frame(&mut &raw[..]).unwrap() {
        Some(FrameIn::Ok { msg, .. }) => msg,
        other => panic!("undecodable reply frame: {other:?}"),
    }
}

/// One core's run of the equivalence scenario: warm the cache, issue the 8
/// requests pipelined on one connection, then the same 8 sequentially on 8
/// fresh connections, and cross-check. Returns the pipelined raw replies
/// for cross-core comparison.
fn equivalence_run(core: Core) -> Vec<Vec<u8>> {
    let iso = 120.0f32;
    let (dir, server) = bind(
        &format!("equiv_{core:?}").to_lowercase(),
        core,
        ServeOptions::default(),
    );
    let addr = server.addr();
    // warm: after this, every mesh/frame request below is a cache hit in
    // both delivery orders, so replies carry identical cache_hit bits
    Client::connect(addr)
        .unwrap()
        .query_mesh(iso, None)
        .unwrap();

    let requests = pipeline_requests(iso);
    let pipelined = Client::connect(addr)
        .unwrap()
        .pipeline_raw(&requests)
        .unwrap();
    assert_eq!(pipelined.len(), requests.len());

    // sequential baseline: each request alone on a fresh connection
    let sequential: Vec<Vec<u8>> = requests
        .iter()
        .map(|req| {
            Client::connect(addr)
                .unwrap()
                .pipeline_raw(std::slice::from_ref(req))
                .unwrap()
                .remove(0)
        })
        .collect();

    for (i, req) in requests.iter().enumerate() {
        match req {
            // stats responses cannot be byte-identical across delivery
            // modes: the connection/request counters necessarily differ
            // between "one pipelined connection" and "eight fresh ones".
            // Compare the fields the scenario does pin.
            Message::StatsRequest => {
                let (a, b) = (decode_reply(&pipelined[i]), decode_reply(&sequential[i]));
                let (Message::StatsResponse(p), Message::StatsResponse(s)) = (a, b) else {
                    panic!("slot {i}: stats reply expected");
                };
                for (r, mode) in [(p, "pipelined"), (s, "sequential")] {
                    assert_eq!(r.shed, 0, "{mode} slot {i}");
                    assert_eq!(r.timed_out, 0, "{mode} slot {i}");
                    assert_eq!(r.errors, 0, "{mode} slot {i}");
                    assert_eq!(r.degraded, 0, "{mode} slot {i}");
                    // active_connections is NOT compared: a just-closed
                    // fresh connection may linger until its handler
                    // notices the EOF, so the gauge is timing-dependent
                }
            }
            _ => assert_eq!(
                pipelined[i], sequential[i],
                "slot {i}: pipelined reply must be byte-identical to its \
                 sequential twin ({core:?})"
            ),
        }
        // in-order delivery is observable through the trace-id echo
        let echoed = match decode_reply(&pipelined[i]) {
            Message::MeshResponse { trace_id, .. } => Some(trace_id),
            Message::FrameResponse { trace_id, .. } => Some(trace_id),
            _ => None,
        };
        let sent = match req {
            Message::MeshRequest { trace_id, .. } => Some(*trace_id),
            Message::FrameRequest { trace_id, .. } => Some(*trace_id),
            _ => None,
        };
        assert_eq!(echoed, sent, "slot {i}: trace id echo out of order");
    }
    server.stop();
    std::fs::remove_dir_all(&dir).ok();
    pipelined
}

/// Satellite: 8 interleaved v5 mesh/frame/stats requests pipelined on one
/// connection come back in order and byte-identical to sequential fresh
/// connections — on both cores — and the mesh/frame bytes also match
/// *across* cores.
#[test]
fn pipelined_replies_in_order_and_byte_identical_to_sequential() {
    let runs: Vec<(Core, Vec<Vec<u8>>)> = Core::all()
        .into_iter()
        .map(|core| (core, equivalence_run(core)))
        .collect();
    if runs.len() == 2 {
        let (threaded, reactor) = (&runs[0].1, &runs[1].1);
        for (i, req) in pipeline_requests(120.0).iter().enumerate() {
            if !matches!(req, Message::StatsRequest) {
                assert_eq!(
                    threaded[i], reactor[i],
                    "slot {i}: serving cores disagree on reply bytes"
                );
            }
        }
    }
}

/// Satellite regression: a burst of simultaneous connects is accepted by
/// draining the whole backlog per wakeup. An accept loop that takes one
/// connection per 2 ms park would need >= 190 ms for 96 connections; the
/// fixed loop admits them all in a couple of wakeups.
#[test]
fn burst_connect_drains_backlog_per_wakeup() {
    let (dir, server) = bind("burst", Core::Threaded, ServeOptions::default());
    let addr = server.addr();
    let n = 96usize;
    let streams: Vec<TcpStream> = (0..n).map(|_| TcpStream::connect(addr).unwrap()).collect();
    let t0 = Instant::now();
    let deadline = Duration::from_secs(5);
    while (server.report().active_connections as usize) < n {
        assert!(
            t0.elapsed() < deadline,
            "only {}/{n} accepted after {deadline:?}",
            server.report().active_connections
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    let elapsed = t0.elapsed();
    assert!(
        elapsed < Duration::from_millis(150),
        "backlog of {n} took {elapsed:?} to accept — not drained per wakeup"
    );
    drop(streams);
    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

/// Walk `received` as a sequence of reply frames: every frame must be
/// complete except possibly the last, and nothing may follow a partial
/// one. Returns (complete, partial_bytes).
fn assert_no_torn_interleaving(received: &[u8]) -> (usize, usize) {
    let mut off = 0usize;
    let mut complete = 0usize;
    while off < received.len() {
        let rest = received.len() - off;
        if rest < HEADER_BYTES {
            return (complete, rest); // partial header ends the stream
        }
        let len = u64::from_le_bytes(received[off + 8..off + 16].try_into().unwrap()) as usize;
        let total = HEADER_BYTES + len + 4;
        if rest < total {
            return (complete, rest); // partial frame ends the stream
        }
        off += total;
        complete += 1;
    }
    (complete, 0)
}

/// Freeze a socket's receive buffer at `bytes`, disabling receiver-side
/// autotuning. Without this, Linux grows the unread client's window toward
/// `tcp_rmem[2]` (32 MB on some hosts) and the server's "stalled" write
/// keeps trickling — the deadline under test measures *zero* progress.
#[cfg(target_os = "linux")]
fn clamp_rcvbuf(stream: &TcpStream, bytes: i32) {
    use std::os::fd::AsRawFd;
    const SOL_SOCKET: i32 = 1;
    const SO_RCVBUF: i32 = 8;
    extern "C" {
        fn setsockopt(
            fd: i32,
            level: i32,
            name: i32,
            val: *const core::ffi::c_void,
            len: u32,
        ) -> i32;
    }
    let rc = unsafe {
        setsockopt(
            stream.as_raw_fd(),
            SOL_SOCKET,
            SO_RCVBUF,
            (&bytes as *const i32).cast(),
            4,
        )
    };
    assert_eq!(rc, 0, "setsockopt(SO_RCVBUF)");
}

#[cfg(not(target_os = "linux"))]
fn clamp_rcvbuf(_stream: &TcpStream, _bytes: i32) {}

/// Satellite audit pin: when the peer stops reading and the write deadline
/// fires, the connection is cut — a partially written response frame is
/// never followed by bytes of another reply.
fn write_stall_scenario(core: Core) {
    let (dir, server) = bind(
        &format!("stall_{core:?}").to_lowercase(),
        core,
        ServeOptions {
            write_timeout: Some(Duration::from_millis(150)),
            read_timeout: Some(Duration::from_secs(30)),
            // keep backpressure out of the picture: this scenario is about
            // the write deadline, not the outbound budget
            outbound_budget: 1 << 30,
            ..Default::default()
        },
    );
    let addr = server.addr();
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    clamp_rcvbuf(&stream, 128 * 1024);
    stream
        .set_write_timeout(Some(Duration::from_secs(2)))
        .unwrap();

    // pipeline far more reply bytes than the (clamped) socket buffers can
    // hold, and do not read any of them: the server's write must stall
    // mid-frame with zero progress until the deadline cuts it
    let requests = 48usize;
    let frame = oociso_serve::protocol::encode_frame(&Message::Ping {
        payload: vec![0x5A; 512 * 1024],
    });
    let mut sent_all = true;
    for _ in 0..requests {
        if stream.write_all(&frame).is_err() {
            // the server already cut us off (threaded core blocks its
            // reads behind its stalled write) — expected, stop sending
            sent_all = false;
            break;
        }
    }
    // wait for the server to cut the stalled connection (it may still be
    // chewing through the pipelined backlog before its first write blocks)
    let t0 = Instant::now();
    while server.report().timed_out == 0 {
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "{core:?}: write deadline never fired"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut received = Vec::new();
    let mut buf = [0u8; 64 * 1024];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => received.extend_from_slice(&buf[..n]),
            Err(_) => break, // reset counts as the end of the stream too
        }
    }
    let (complete, partial) = assert_no_torn_interleaving(&received);
    assert!(
        complete < requests,
        "{core:?}: all {requests} replies flushed — the stall never happened \
         (got {complete} complete, {partial} partial bytes, sent_all={sent_all})"
    );
    let report = server.stop();
    assert_eq!(report.timed_out, 1, "{core:?}: the cut is counted");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn write_stall_is_cut_without_torn_frame_threaded() {
    write_stall_scenario(Core::Threaded);
}

#[cfg(target_os = "linux")]
#[test]
fn write_stall_is_cut_without_torn_frame_reactor() {
    write_stall_scenario(Core::Reactor);
}

/// Tentpole: a client that pipelines requests faster than it reads replies
/// trips the outbound byte budget — the reactor pauses *reading* that
/// connection (never dropping or reordering anything) and resumes once the
/// queue drains. Every reply still arrives, intact and in order.
#[cfg(target_os = "linux")]
#[test]
fn backpressure_pauses_reads_and_every_reply_survives() {
    let (dir, server) = bind(
        "backpressure",
        Core::Reactor,
        ServeOptions {
            outbound_budget: 64 * 1024,
            ..Default::default()
        },
    );
    let addr = server.addr();
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    let requests = 32usize;
    let payload_len = 512 * 1024usize;

    let writer = {
        let mut half = stream.try_clone().unwrap();
        std::thread::spawn(move || {
            for i in 0..requests {
                let frame = oociso_serve::protocol::encode_frame(&Message::Ping {
                    payload: vec![i as u8; payload_len],
                });
                half.write_all(&frame).unwrap();
            }
        })
    };
    // let the writer run ahead so replies pile into the outbound queue
    // beyond the 64 KiB budget before any are drained
    std::thread::sleep(Duration::from_millis(300));

    let mut reader = stream;
    reader
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    for i in 0..requests {
        match read_frame(&mut reader).unwrap() {
            Some(FrameIn::Ok {
                msg: Message::Pong { payload },
                ..
            }) => {
                assert_eq!(payload.len(), payload_len, "reply {i}");
                assert!(
                    payload.iter().all(|&b| b == i as u8),
                    "reply {i} out of order or corrupted"
                );
            }
            other => panic!("reply {i}: expected a pong, got {other:?}"),
        }
    }
    writer.join().unwrap();

    let metrics = server.metrics();
    let pauses: u64 = metrics
        .lines()
        .find(|l| l.starts_with("reactor_backpressure_pauses_total"))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("pause counter missing from metrics:\n{metrics}"));
    assert!(pauses >= 1, "the budget was never hit (pauses = {pauses})");
    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

/// Tentpole acceptance: 512 concurrent pipelining connections, every reply
/// correct and in order — and with all 512 still connected, warm-cache
/// latency keeps p99 under 25 ms (no tick quantization: the event loop
/// reacts to request arrival, not to a poll interval).
#[cfg(target_os = "linux")]
#[test]
fn storm_512_pipelining_connections_warm_p99_under_25ms() {
    let iso = 120.0f32;
    let (dir, server) = bind("storm512", Core::Reactor, ServeOptions::default());
    let addr = server.addr();
    Client::connect(addr)
        .unwrap()
        .query_mesh(iso, None)
        .unwrap();

    let conns = 512usize;
    let mut clients: Vec<Client> = (0..conns)
        .map(|_| {
            Client::connect_with(
                addr,
                ClientOptions {
                    request_timeout: Some(Duration::from_secs(60)),
                    ..Default::default()
                },
            )
            .unwrap()
        })
        .collect();

    // phase 1: every connection pipelines a mixed batch concurrently
    std::thread::scope(|scope| {
        for chunk in clients.chunks_mut(64) {
            scope.spawn(move || {
                for (i, client) in chunk.iter_mut().enumerate() {
                    let batch = vec![
                        Message::Ping {
                            payload: vec![i as u8; 256],
                        },
                        Message::MeshRequest {
                            iso,
                            region: None,
                            lod: 0,
                            backend: None,
                            trace_id: 1 + i as u64,
                        },
                        Message::StatsRequest,
                    ];
                    let replies = client.pipeline(&batch).unwrap();
                    match &replies[0] {
                        Message::Pong { payload } => {
                            assert!(payload.iter().all(|&b| b == i as u8))
                        }
                        other => panic!("slot 0: {other:?}"),
                    }
                    match &replies[1] {
                        Message::MeshResponse {
                            cache_hit,
                            trace_id,
                            ..
                        } => {
                            assert!(*cache_hit, "storm runs warm");
                            assert_eq!(*trace_id, 1 + i as u64);
                        }
                        other => panic!("slot 1: {other:?}"),
                    }
                    assert!(matches!(&replies[2], Message::StatsResponse(_)));
                }
            });
        }
    });

    // phase 2: with all 512 connections still open, warm-hit latency —
    // one timed request per connection, p99 must clear the old 25 ms
    // tick floor with room to spare
    let mesh_req = [Message::MeshRequest {
        iso,
        region: None,
        lod: 0,
        backend: None,
        trace_id: 0,
    }];
    let mut lat: Vec<Duration> = clients
        .iter_mut()
        .map(|c| {
            let t0 = Instant::now();
            c.pipeline_raw(&mesh_req).unwrap();
            t0.elapsed()
        })
        .collect();
    lat.sort();
    let p99 = lat[(conns * 99) / 100 - 1];
    assert!(
        p99 < Duration::from_millis(25),
        "warm-cache p99 {p99:?} across {conns} live connections — \
         quantized or queue-bound"
    );
    drop(clients);
    let report = server.stop();
    assert_eq!(report.timed_out, 0);
    assert_eq!(report.shed, 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite pin: a response stream stalled *inside the 16-byte response
/// header* (8 bytes in) trips the client deadline; the retrying client
/// redials and converges on the second connection with a bit-correct
/// reply — on both cores.
#[test]
fn stall_inside_response_header_retry_converges() {
    for core in Core::all() {
        let iso = 120.0f32;
        let (dir, server) = bind(
            &format!("hdrstall_{core:?}").to_lowercase(),
            core,
            ServeOptions::default(),
        );
        let mut direct = Client::connect(server.addr()).unwrap();
        let truth = direct.query_mesh(iso, None).unwrap();

        let proxy = ChaosProxy::start(
            server.addr(),
            vec![
                ConnFault::Stall {
                    after_bytes: 8, // mid-header: client holds a torn prefix
                    pause: Duration::from_millis(700),
                },
                ConnFault::Clean,
            ],
        )
        .unwrap();
        let mut client = Client::connect_with(
            proxy.addr(),
            ClientOptions {
                request_timeout: Some(Duration::from_millis(150)),
                retries: 3,
                backoff: Duration::from_millis(10),
                ..Default::default()
            },
        )
        .unwrap();
        let reply = client.query_mesh(iso, None).unwrap();
        assert_eq!(
            reply.mesh.positions().len(),
            truth.mesh.positions().len(),
            "{core:?}: converged reply must be the real mesh"
        );
        assert_eq!(reply.mesh.indices(), truth.mesh.indices(), "{core:?}");
        assert_eq!(
            proxy.connections(),
            2,
            "{core:?}: torn attempt + converging redial"
        );
        proxy.stop();
        server.stop();
        std::fs::remove_dir_all(&dir).ok();
    }
}

fn assert_same_mesh(a: &IndexedMesh, b: &IndexedMesh, ctx: &str) {
    assert_eq!(
        a.positions().len(),
        b.positions().len(),
        "{ctx}: vertex count"
    );
    for (i, (x, y)) in a.positions().iter().zip(b.positions()).enumerate() {
        assert_eq!(x.x.to_bits(), y.x.to_bits(), "{ctx}: vertex {i}.x");
        assert_eq!(x.y.to_bits(), y.y.to_bits(), "{ctx}: vertex {i}.y");
        assert_eq!(x.z.to_bits(), y.z.to_bits(), "{ctx}: vertex {i}.z");
    }
    assert_eq!(a.indices(), b.indices(), "{ctx}: indices");
}

/// Tentpole: a progressive (v6) delivery streams the LOD pyramid coarsest
/// first — cold (one extraction feeds all chunks) and warm (all cache
/// hits) — with every refinement bit-identical to the plain per-level
/// query, and strict reply ordering around pipelined neighbors. Both cores.
fn progressive_delivery_scenario(core: Core) {
    let (dir, server) = bind(
        &format!("prog_{core:?}").to_lowercase(),
        core,
        ServeOptions {
            lod_ratios: vec![0.25, 0.06],
            ..Default::default()
        },
    );
    let addr = server.addr();
    let iso = 120.0f32;
    let mut client = Client::connect(addr).unwrap();

    // cold: nothing resident, every level rides the one fresh extraction
    let mut cold: Vec<(u16, bool, IndexedMesh)> = Vec::new();
    let reply = client
        .query_mesh_progressive(iso, 0, None, |u| {
            cold.push((u.level, u.cache_hit, u.mesh.clone()))
        })
        .unwrap();
    assert!(!reply.degraded, "{core:?}");
    assert_eq!(reply.served_lod, 0, "{core:?}");
    assert_eq!(
        cold.iter().map(|c| c.0).collect::<Vec<_>>(),
        vec![2, 1, 0],
        "{core:?}: coarsest first, strictly refining"
    );
    assert!(
        cold.iter().all(|c| !c.1),
        "{core:?}: cold chunks cannot be cache hits"
    );
    assert_same_mesh(&cold[2].2, &reply.mesh, "final refinement is the reply");

    // each streamed level is bit-identical to the plain per-level query
    // (cache hits now: the delivery populated the pyramid)
    for (level, _, mesh) in &cold {
        let plain = client.query_mesh_lod(iso, None, *level).unwrap();
        assert!(plain.cache_hit, "{core:?}: level {level} resident");
        assert_same_mesh(mesh, &plain.mesh, &format!("{core:?} level {level}"));
    }

    // warm: a second delivery streams entirely from cache
    let mut warm_hits = Vec::new();
    let again = client
        .query_mesh_progressive(iso, 0, None, |u| warm_hits.push(u.cache_hit))
        .unwrap();
    assert_eq!(warm_hits, vec![true; 3], "{core:?}: warm delivery all hits");
    assert!(again.cache_hit, "{core:?}");
    assert_same_mesh(&again.mesh, &reply.mesh, "warm delivery");

    // strict per-connection ordering: a progressive request pipelined
    // between two plain requests keeps all five reply frames in order
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        write_frame(
            &mut stream,
            &Message::MeshRequest {
                iso,
                region: None,
                lod: 2,
                backend: None,
                trace_id: 0,
            },
        )
        .unwrap();
        write_frame(
            &mut stream,
            &Message::ProgressiveRequest {
                iso,
                lod: 0,
                backend: None,
                trace_id: 0,
            },
        )
        .unwrap();
        write_frame(
            &mut stream,
            &Message::Ping {
                payload: vec![9u8; 32],
            },
        )
        .unwrap();
        let mut kinds = Vec::new();
        for _ in 0..5 {
            match read_frame(&mut stream).unwrap().unwrap() {
                FrameIn::Ok { msg, .. } => kinds.push(msg.msg_type()),
                other => panic!("{core:?}: violation mid-pipeline: {other:?}"),
            }
        }
        assert_eq!(
            kinds,
            vec![
                MSG_MESH_RESPONSE,
                MSG_MESH_CHUNK,
                MSG_MESH_CHUNK,
                MSG_MESH_CHUNK,
                MSG_PONG
            ],
            "{core:?}: replies must stay in request order around the stream"
        );
    }
    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn progressive_delivery_streams_coarse_to_fine_in_order() {
    for core in Core::all() {
        progressive_delivery_scenario(core);
    }
}
