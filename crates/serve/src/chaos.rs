//! Fault injection for the transport: a byte-level chaos wrapper and a
//! TCP proxy that applies scripted faults per connection.
//!
//! The robustness claims of the serving layer ("the retrying client
//! converges through a flaky network", "a mid-frame disconnect never
//! corrupts a result") are only testable if flakiness can be produced on
//! demand, deterministically. Two pieces:
//!
//! * [`ChaosStream`] wraps any `Read` and applies one [`ConnFault`] to the
//!   byte stream — truncate after N bytes (a mid-frame disconnect when N
//!   lands inside a frame), or stall for a fixed pause at byte N (a
//!   deadline trigger).
//! * [`ChaosProxy`] listens on an ephemeral port, forwards each accepted
//!   connection to a real upstream server, and applies a scripted fault to
//!   the **response** stream of connection *i* — the *i*-th entry of its
//!   plan (connections beyond the plan run clean). A sequential client
//!   (the retrying [`crate::Client`] redials one connection at a time)
//!   therefore sees an exactly reproducible fault schedule.
//!
//! The faults here are transport-level; disk-level faults live in
//! `oociso_exio::FaultyDevice`. See `docs/robustness.md` for the matrix.

use std::io::{self, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// One scripted fault applied to a proxied connection's response stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConnFault {
    /// Forward everything untouched.
    Clean,
    /// Forward only the first `after_bytes` response bytes, then sever the
    /// connection — a mid-frame disconnect when the cut lands inside a
    /// frame (response headers are 16 bytes, so almost any small value
    /// does).
    TruncateResponse { after_bytes: u64 },
    /// Pause the response stream once for `pause` after `after_bytes` have
    /// been forwarded, then continue normally — long enough a pause trips
    /// the client's read deadline.
    Stall { after_bytes: u64, pause: Duration },
    /// Accept the connection and immediately drop it without forwarding
    /// anything — the client's write may land in a buffer, but the read
    /// sees an EOF/reset.
    Refuse,
}

/// A `Read` adapter applying one [`ConnFault`] to the bytes flowing
/// through it. Truncation surfaces as a clean EOF (`Ok(0)`) so the driver
/// can sever the underlying socket; a stall is a one-shot blocking sleep.
pub struct ChaosStream<R> {
    inner: R,
    fault: ConnFault,
    forwarded: u64,
    stalled: bool,
}

impl<R> ChaosStream<R> {
    pub fn new(inner: R, fault: ConnFault) -> Self {
        ChaosStream {
            inner,
            fault,
            forwarded: 0,
            stalled: false,
        }
    }

    /// Bytes passed through so far.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }
}

impl<R: Read> Read for ChaosStream<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let cap = match self.fault {
            ConnFault::Clean => buf.len() as u64,
            ConnFault::Refuse => return Ok(0),
            ConnFault::TruncateResponse { after_bytes } => {
                after_bytes.saturating_sub(self.forwarded)
            }
            ConnFault::Stall { after_bytes, pause } => {
                if !self.stalled && self.forwarded >= after_bytes {
                    self.stalled = true;
                    std::thread::sleep(pause);
                }
                buf.len() as u64
            }
        };
        if cap == 0 {
            return Ok(0); // truncation point reached: EOF
        }
        let want = (cap.min(buf.len() as u64)) as usize;
        let n = self.inner.read(&mut buf[..want])?;
        self.forwarded += n as u64;
        Ok(n)
    }
}

/// A TCP fault-injection proxy in front of a real server.
///
/// Connection *i* (in accept order) gets `plan[i]`; connections past the
/// end of the plan run [`ConnFault::Clean`]. Requests always flow through
/// untouched — the faults model a flaky server/network as seen by the
/// client, which is where retry logic lives.
pub struct ChaosProxy {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accepted: Arc<AtomicU64>,
    accept_loop: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Bind an ephemeral local port and start proxying to `upstream` under
    /// `plan`.
    pub fn start(upstream: SocketAddr, plan: Vec<ConnFault>) -> io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accepted = Arc::new(AtomicU64::new(0));
        let loop_shutdown = shutdown.clone();
        let loop_accepted = accepted.clone();
        let accept_loop = std::thread::Builder::new()
            .name("oociso-chaos".to_string())
            .spawn(move || {
                while !loop_shutdown.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((client, _)) => {
                            let idx = loop_accepted.fetch_add(1, Ordering::SeqCst) as usize;
                            let fault = plan.get(idx).cloned().unwrap_or(ConnFault::Clean);
                            if fault == ConnFault::Refuse {
                                let _ = client.shutdown(Shutdown::Both);
                                continue;
                            }
                            // connection setup errors just drop the client —
                            // from its side that is one more fault to retry
                            let _ = pipe_connection(client, upstream, fault);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::park_timeout(Duration::from_millis(2));
                        }
                        Err(_) => std::thread::park_timeout(Duration::from_millis(10)),
                    }
                }
            })?;
        Ok(ChaosProxy {
            addr,
            shutdown,
            accepted,
            accept_loop: Some(accept_loop),
        })
    }

    /// The proxy's listening address (what clients dial).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections accepted so far — how a test asserts exactly how many
    /// attempts a client needed to converge.
    pub fn connections(&self) -> u64 {
        self.accepted.load(Ordering::SeqCst)
    }

    /// Stop accepting. Connections already being piped run to completion
    /// on their own threads.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_loop.take() {
            let _ = h.join();
        }
    }
}

/// Wire one proxied connection: requests copied to the upstream untouched,
/// responses copied back through a [`ChaosStream`]. When the response pipe
/// ends (fault-truncated or upstream EOF), both sockets are severed so the
/// client observes a hard disconnect, not a half-open stall.
fn pipe_connection(client: TcpStream, upstream: SocketAddr, fault: ConnFault) -> io::Result<()> {
    let server = TcpStream::connect(upstream)?;
    let mut client_r = client.try_clone()?;
    let mut server_w = server.try_clone()?;
    let client_w = client;
    let server_r = server;
    std::thread::Builder::new()
        .name("oociso-chaos-up".to_string())
        .spawn(move || {
            let _ = io::copy(&mut client_r, &mut server_w);
            let _ = server_w.shutdown(Shutdown::Write);
        })?;
    std::thread::Builder::new()
        .name("oociso-chaos-down".to_string())
        .spawn(move || {
            let mut faulty = ChaosStream::new(server_r, fault);
            let mut client_w = client_w;
            let _ = io::copy(&mut faulty, &mut client_w);
            let _ = client_w.shutdown(Shutdown::Both);
            let _ = faulty.inner.shutdown(Shutdown::Both);
        })?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_stream_truncates_at_the_exact_byte() {
        let data = (0u8..200).collect::<Vec<_>>();
        let mut s = ChaosStream::new(&data[..], ConnFault::TruncateResponse { after_bytes: 37 });
        let mut out = Vec::new();
        s.read_to_end(&mut out).unwrap();
        assert_eq!(out, &data[..37], "exactly the first 37 bytes pass");
        assert_eq!(s.forwarded(), 37);
    }

    #[test]
    fn chaos_stream_clean_is_transparent() {
        let data = vec![9u8; 4096];
        let mut s = ChaosStream::new(&data[..], ConnFault::Clean);
        let mut out = Vec::new();
        s.read_to_end(&mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn chaos_stream_stall_pauses_once_then_continues() {
        let data = vec![1u8; 64];
        let pause = Duration::from_millis(30);
        let mut s = ChaosStream::new(
            &data[..],
            ConnFault::Stall {
                after_bytes: 10,
                pause,
            },
        );
        let mut out = Vec::new();
        let t0 = std::time::Instant::now();
        s.read_to_end(&mut out).unwrap();
        assert_eq!(out, data, "a stall delays, it does not drop bytes");
        assert!(t0.elapsed() >= pause, "the pause actually happened");
    }
}
