//! Real-socket compositing transport and loopback calibration.

use crate::protocol::{read_frame, write_frame, FrameIn, Message};
use oociso_render::{FrameRegion, InterconnectModel, Transport};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A [`Transport`] that pushes every remote region through a real kernel TCP
/// connection on `127.0.0.1`.
///
/// The sender serializes each region as a [`Message::Region`] frame and
/// writes it to a connected socket; a receiver thread on the other end of
/// the connection reads, checksum-verifies, and decodes the frame, then
/// hands the received copy back for compositing. Every byte of every remote
/// region crosses the loopback device and the full encode/decode path, so a
/// composite through this transport proves the wire protocol preserves
/// framebuffers bit-exactly — and its measured [`Transport::cost`] is what
/// [`InterconnectModel::loopback`] is calibrated against.
///
/// Regions whose destination tile lives on the sending node skip the socket
/// (the paper's architecture never puts those on the wire), mirroring
/// [`oociso_render::SimTransport`]'s accounting so the two are directly
/// comparable.
pub struct TcpLoopbackTransport {
    sender: TcpStream,
    received: mpsc::Receiver<io::Result<FrameRegion>>,
    receiver: Option<JoinHandle<()>>,
    bytes: u64,
    elapsed: Duration,
}

impl TcpLoopbackTransport {
    /// Stand up the loopback pair (ephemeral port, connect, accept) and the
    /// receiver thread.
    pub fn new() -> io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let sender = TcpStream::connect(listener.local_addr()?)?;
        sender.set_nodelay(true)?;
        let (mut peer, _) = listener.accept()?;
        peer.set_nodelay(true)?;
        let (tx, rx) = mpsc::channel();
        let receiver = std::thread::Builder::new()
            .name("oociso-composite-rx".to_string())
            .spawn(move || loop {
                match read_frame(&mut peer) {
                    Ok(None) => return, // sender hung up: shuffle over
                    Ok(Some(FrameIn::Ok {
                        msg: Message::Region(region),
                        ..
                    })) => {
                        if tx.send(Ok(region)).is_err() {
                            return;
                        }
                    }
                    Ok(Some(FrameIn::Ok { .. })) | Ok(Some(FrameIn::Violation { .. })) => {
                        let _ = tx.send(Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            "unexpected frame on compositing channel",
                        )));
                        return;
                    }
                    Err(e) => {
                        let _ = tx.send(Err(e));
                        return;
                    }
                }
            })?;
        Ok(TcpLoopbackTransport {
            sender,
            received: rx,
            receiver: Some(receiver),
            bytes: 0,
            elapsed: Duration::ZERO,
        })
    }
}

impl Transport for TcpLoopbackTransport {
    fn send_region(
        &mut self,
        _from: usize,
        _tile: usize,
        local: bool,
        region: FrameRegion,
    ) -> io::Result<FrameRegion> {
        if local {
            return Ok(region);
        }
        let t0 = Instant::now();
        let frame_bytes = write_frame(&mut self.sender, &Message::Region(region))?;
        let received = self
            .received
            .recv()
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "composite receiver died"))??;
        self.elapsed += t0.elapsed();
        self.bytes += frame_bytes as u64;
        Ok(received)
    }

    fn bytes_moved(&self) -> u64 {
        self.bytes
    }

    fn cost(&self) -> Duration {
        self.elapsed
    }

    fn name(&self) -> &'static str {
        "tcp"
    }
}

impl Drop for TcpLoopbackTransport {
    fn drop(&mut self) {
        let _ = self.sender.shutdown(std::net::Shutdown::Both);
        if let Some(h) = self.receiver.take() {
            let _ = h.join();
        }
    }
}

/// Measure the real TCP loopback and build an [`InterconnectModel`] from it,
/// so simulator runs can be priced with the same constants the real
/// transport pays (the `loopback()` profile's live recalibration).
///
/// Two probes over one raw echo connection:
/// 1. **latency** — median round-trip of 32 one-byte echoes, halved;
/// 2. **bandwidth** — one bulk transfer (default 8 MiB) echoed back,
///    `2 × bytes / wall` since the payload crosses the link twice.
pub fn measure_loopback(bulk_bytes: usize) -> io::Result<InterconnectModel> {
    let listener = TcpListener::bind(("127.0.0.1", 0))?;
    let mut client = TcpStream::connect(listener.local_addr()?)?;
    client.set_nodelay(true)?;
    let (mut peer, _) = listener.accept()?;
    peer.set_nodelay(true)?;
    // echo thread: bounce every byte straight back
    let echo = std::thread::spawn(move || {
        let mut buf = [0u8; 64 << 10];
        loop {
            match peer.read(&mut buf) {
                Ok(0) | Err(_) => return,
                Ok(n) => {
                    if peer.write_all(&buf[..n]).is_err() {
                        return;
                    }
                }
            }
        }
    });

    // probe 1: small-message round trips
    let mut rtts = Vec::with_capacity(32);
    let mut byte = [0u8; 1];
    for i in 0..32u8 {
        let t0 = Instant::now();
        client.write_all(&[i])?;
        client.read_exact(&mut byte)?;
        rtts.push(t0.elapsed());
    }
    rtts.sort_unstable();
    let round_trip = rtts[rtts.len() / 2];

    // probe 2: bulk echo (writer thread keeps the pipe full while this
    // thread drains the echo, so the measurement is streaming, not ping-pong)
    let bulk = vec![0x5Au8; bulk_bytes.max(1)];
    let mut writer = client.try_clone()?;
    let t0 = Instant::now();
    let w = std::thread::spawn(move || writer.write_all(&bulk).and_then(|()| writer.flush()));
    let mut drain = vec![0u8; 64 << 10];
    let mut seen = 0usize;
    while seen < bulk_bytes.max(1) {
        let n = client.read(&mut drain)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "echo ended early",
            ));
        }
        seen += n;
    }
    let bulk_time = t0.elapsed();
    w.join()
        .map_err(|_| io::Error::other("bulk writer panicked"))??;
    drop(client);
    let _ = echo.join();

    // the payload crossed the loopback twice (out and back)
    Ok(InterconnectModel::from_measurement(
        round_trip,
        2 * bulk_bytes.max(1) as u64,
        bulk_time,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_survive_the_socket_bit_exactly() {
        let mut t = TcpLoopbackTransport::new().unwrap();
        let region = FrameRegion {
            origin: (5, 9),
            size: (3, 2),
            color: vec![[255, 0, 127, 1]; 6],
            depth: vec![0.125, f32::INFINITY, -0.5, 1.0, 0.75, 2.5],
        };
        let got = t.send_region(0, 1, false, region.clone()).unwrap();
        assert_eq!(got, region);
        assert!(
            t.bytes_moved() > region.wire_bytes(),
            "framing overhead counts"
        );
        assert!(t.cost() > Duration::ZERO);
        // local regions skip the wire
        let moved_before = t.bytes_moved();
        let local = t.send_region(1, 1, true, region.clone()).unwrap();
        assert_eq!(local, region);
        assert_eq!(
            t.bytes_moved(),
            moved_before,
            "local route must not move bytes"
        );
    }

    #[test]
    fn loopback_calibration_is_sane() {
        let m = measure_loopback(1 << 20).unwrap();
        assert!(m.latency > Duration::ZERO);
        assert!(
            m.latency < Duration::from_millis(50),
            "loopback RTT {:?}",
            m.latency
        );
        // any loopback should stream far faster than spinning rust
        assert!(
            m.bytes_per_sec > 50e6,
            "loopback bandwidth {:.0} B/s",
            m.bytes_per_sec
        );
    }
}

#[cfg(test)]
mod calib_print {
    /// Diagnostic, not an assertion: run with
    /// `cargo test -p oociso-serve print_measured_loopback -- --ignored --nocapture`
    /// to re-measure the constants behind `InterconnectModel::loopback()` on
    /// the current machine.
    #[test]
    #[ignore]
    fn print_measured_loopback() {
        let m = super::measure_loopback(8 << 20).unwrap();
        println!(
            "measured loopback: latency {:?}, {:.3e} B/s",
            m.latency, m.bytes_per_sec
        );
    }
}
