//! The length-prefixed binary wire protocol.
//!
//! Every message travels as one **frame**:
//!
//! ```text
//! offset  size  field
//! 0       4     magic       0x4F49534F ("OISO", little-endian u32)
//! 4       2     version     protocol version (currently 1)
//! 6       2     msg type    see the `MSG_*` constants
//! 8       8     payload len bytes that follow the header
//! 16      n     payload     message-specific little-endian encoding
//! 16+n    4     checksum    CRC-32 (IEEE) of the payload bytes
//! ```
//!
//! The header is fixed-size so a reader always knows how much to pull next
//! (length-prefixed framing — no delimiters, binary-safe payloads). The
//! version rides in *every* frame: a server can reject a client from the
//! future with a structured [`Message::Error`] instead of misparsing it. The
//! checksum closes the loop on torn or corrupted writes: a payload that does
//! not hash to its trailer is rejected as [`ERR_BAD_CHECKSUM`] before any
//! field of it is interpreted.
//!
//! All integers and floats are little-endian; `f32`s are moved as their IEEE
//! bit patterns, so a mesh or framebuffer survives the wire **bit-exactly**
//! (the round-trip property every serve test leans on).

use oociso_march::{IndexedMesh, MeshDelta, Vec3};
use oociso_render::FrameRegion;
use std::io::{self, Read, Write};

/// Frame magic: `"OISO"` read as a little-endian u32.
pub const MAGIC: u32 = u32::from_le_bytes(*b"OISO");
/// Current protocol version. Version 2 added the optional trailing `lod`
/// field to mesh requests and the per-level cache counters to stats
/// responses. Version 3 added the overload vocabulary: a trailing
/// retry-after-millis hint on error frames (how [`ERR_BUSY`] tells clients
/// when to come back), trailing `served_lod`/`degraded` fields on mesh
/// responses (how a degraded coarser-LOD answer is flagged), and the
/// robustness counters on stats responses. Version 4 added extraction-backend
/// selection: a trailing backend id on mesh requests (absent = the server's
/// default backend), a trailing served-backend id on mesh responses, the
/// per-backend counters on stats responses, and [`ERR_BAD_BACKEND`]. Version
/// 5 added wire-propagated request tracing and the observability messages: a
/// trailing client-supplied trace id on mesh and frame requests (echoed on
/// the matching responses), the [`MSG_METRICS_REQUEST`] /
/// [`MSG_METRICS_RESPONSE`] pair carrying the server's metrics exposition
/// text, and the [`MSG_TRACE_REQUEST`] / [`MSG_TRACE_RESPONSE`] pair
/// returning a finished request trace's span events. At v5 the mesh-request
/// backend byte is always present ([`BACKEND_DEFAULT`] = server default), so
/// the 8-byte trace id that follows is unambiguous by length. Readers accept
/// Version 6 added progressive (coarse-to-fine) mesh delivery as two *new*
/// message types — [`MSG_PROGRESSIVE_REQUEST`] and the chunked
/// [`MSG_MESH_CHUNK`] response it elicits, one frame per LOD level
/// (coarsest first, refinements optionally encoded as collapse-record
/// deltas against the previous chunk) — so no existing payload layout
/// changed at all: every v1–v5 message encodes byte-identically at v6.
/// Readers accept
/// any version in [`MIN_VERSION`]`..=`[`VERSION`], and a server answers each
/// frame at the version the client spoke — a v1 client simply never asks for
/// (and never hears about) LOD levels, so it gets level 0, exactly as
/// before, a v2 client never sees the v3 trailing fields, a pre-v4 client
/// always gets the server's default backend, a pre-v5 client is served
/// bit-identically, untraced, and a pre-v6 client never learns the
/// progressive message types exist.
pub const VERSION: u16 = 6;
/// Oldest protocol version still accepted on the wire.
pub const MIN_VERSION: u16 = 1;
/// Most LOD pyramid levels the protocol (and the per-level stats counters)
/// can address, level 0 included.
pub const MAX_LOD_LEVELS: usize = 4;
/// Fixed frame header size in bytes (magic + version + type + payload len).
pub const HEADER_BYTES: usize = 16;
/// Upper bound on a single frame's payload (guards readers against
/// allocating unbounded memory for a hostile or corrupted length field).
/// This is the *response*-side bound — meshes are legitimately huge.
pub const MAX_PAYLOAD: u64 = 1 << 31; // 2 GiB

/// Upper bound the **server** enforces on request payloads. Every
/// legitimate request is under 100 bytes (pings aside), so a client
/// claiming more is hostile or broken — rejected before any allocation,
/// closing the hole where a 16-byte header could commit gigabytes.
pub const MAX_REQUEST_PAYLOAD: u64 = 1 << 20; // 1 MiB

/// Message type tags (the `msg type` header field).
pub const MSG_MESH_REQUEST: u16 = 1;
pub const MSG_FRAME_REQUEST: u16 = 2;
pub const MSG_STATS_REQUEST: u16 = 3;
pub const MSG_PING: u16 = 4;
pub const MSG_MESH_RESPONSE: u16 = 5;
pub const MSG_FRAME_RESPONSE: u16 = 6;
pub const MSG_STATS_RESPONSE: u16 = 7;
pub const MSG_ERROR: u16 = 8;
pub const MSG_PONG: u16 = 9;
pub const MSG_REGION: u16 = 10;
/// Ask the server for its metrics registry exposition. **v5.**
pub const MSG_METRICS_REQUEST: u16 = 11;
/// Metrics exposition text (UTF-8, Prometheus text format). **v5.**
pub const MSG_METRICS_RESPONSE: u16 = 12;
/// Ask the server for a finished request trace by id (0 = most recent).
/// **v5.**
pub const MSG_TRACE_REQUEST: u16 = 13;
/// A finished request trace's span events. **v5.**
pub const MSG_TRACE_RESPONSE: u16 = 14;
/// Ask for a progressive (coarse-to-fine) mesh delivery: the server answers
/// with one [`MSG_MESH_CHUNK`] frame per LOD level, coarsest first. **v6.**
pub const MSG_PROGRESSIVE_REQUEST: u16 = 15;
/// One level of a progressive mesh delivery. The final chunk of a delivery
/// sets its `last` flag; refinement chunks may carry a collapse-record
/// delta against the previous chunk instead of a full mesh. **v6.**
pub const MSG_MESH_CHUNK: u16 = 16;
/// Oldest protocol version whose frames may carry the progressive message
/// types above — a pre-v6 frame smuggling one in is rejected as malformed.
pub const MIN_PROGRESSIVE_VERSION: u16 = 6;

/// Error codes carried by [`Message::Error`].
pub const ERR_UNSUPPORTED_VERSION: u16 = 1;
pub const ERR_BAD_MAGIC: u16 = 2;
pub const ERR_BAD_CHECKSUM: u16 = 3;
pub const ERR_MALFORMED: u16 = 4;
pub const ERR_INTERNAL: u16 = 5;
/// The requested LOD level does not exist on this server (the reply's
/// detail names the server's level count; the connection stays usable).
pub const ERR_BAD_LOD: u16 = 6;
/// The server is at capacity and shed this request instead of queueing it
/// behind an unbounded backlog. The reply is honest overload, not failure:
/// the request was never started, so retrying is always safe, and v3 error
/// frames carry a `retry_after_ms` hint for when. The connection stays
/// usable.
pub const ERR_BUSY: u16 = 7;
/// The requested extraction backend id is not one this server knows (the
/// reply's detail lists the known ids; the connection stays usable). **v4.**
pub const ERR_BAD_BACKEND: u16 = 8;

/// Number of extraction backends the per-backend stats counters can address
/// (matches `oociso_march::Backend::ALL`).
pub const NUM_BACKENDS: usize = 2;

/// The mesh-request backend byte a v5 encoder writes when the client wants
/// the server's default backend. Pre-v5 encoders express "default" by
/// omitting the byte entirely; v5 must always write one so the trailing
/// trace id stays unambiguous by length. The value is outside every real
/// backend id, so a v4 client that somehow sends `0xFF` raw still draws
/// [`ERR_BAD_BACKEND`]-equivalent treatment (it decodes as "default" only
/// when followed by a trace id, i.e. only in a v5-shaped request).
pub const BACKEND_DEFAULT: u8 = 0xFF;

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) lookup table, built at compile
/// time — no dependency, no runtime init.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut b = 0;
        while b < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            b += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// An axis-aligned query region in mesh (vertex-grid) coordinates.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Region {
    pub lo: [f32; 3],
    pub hi: [f32; 3],
}

impl Region {
    /// Corner vectors for mesh filtering.
    pub fn corners(&self) -> (Vec3, Vec3) {
        (
            Vec3::new(self.lo[0], self.lo[1], self.lo[2]),
            Vec3::new(self.hi[0], self.hi[1], self.hi[2]),
        )
    }
}

/// Camera + viewport parameters of a framebuffer-mode request (the orbiting
/// camera every example and test uses, made explicit on the wire).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FrameParams {
    pub width: u32,
    pub height: u32,
    pub azimuth: f32,
    pub elevation: f32,
    pub distance: f32,
    /// Tile grid the response framebuffer is sharded into.
    pub tile_cols: u16,
    pub tile_rows: u16,
}

/// Server-side counters returned by a stats request — the serving layer's
/// analogue of a `NodeReport` row.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerReport {
    /// Client connections accepted so far.
    pub connections: u64,
    /// Requests answered (all types, errors included).
    pub requests: u64,
    /// Mesh-mode requests answered.
    pub mesh_requests: u64,
    /// Framebuffer-mode requests answered.
    pub frame_requests: u64,
    /// Error responses sent.
    pub errors: u64,
    /// Response payload bytes written.
    pub bytes_out: u64,
    /// Result-cache hits.
    pub cache_hits: u64,
    /// Result-cache misses (each one ran a full extraction).
    pub cache_misses: u64,
    /// Entries evicted to stay under the cache's byte budget.
    pub cache_evictions: u64,
    /// Mesh bytes currently resident in the cache.
    pub cache_resident_bytes: u64,
    /// Meshes currently resident in the cache.
    pub cache_resident_entries: u64,
    /// Cache hits per LOD level (level 0 first; levels beyond the server's
    /// pyramid stay 0). Sums to `cache_hits`.
    pub lod_hits: [u64; MAX_LOD_LEVELS],
    /// Cache misses per LOD level. Sums to `cache_misses`.
    pub lod_misses: [u64; MAX_LOD_LEVELS],
    /// Requests answered with [`ERR_BUSY`] by admission control (no
    /// extraction slot / connection cap reached). **v3.**
    pub shed: u64,
    /// Mesh requests satisfied from a cached coarser LOD level instead of
    /// being shed (graceful-degradation mode). **v3.**
    pub degraded: u64,
    /// Connections closed by a read/write deadline (slowloris defense) or
    /// the idle timeout. **v3.**
    pub timed_out: u64,
    /// Requests that completed during a graceful drain. **v3.**
    pub drained: u64,
    /// Accept-loop backoffs taken on fd exhaustion (`EMFILE`/`ENFILE`).
    /// **v3.**
    pub accept_backoffs: u64,
    /// Connections currently being served (a gauge, not a counter). **v3.**
    pub active_connections: u64,
    /// Cache hits per extraction backend, indexed by backend id (0 = MC,
    /// 1 = SurfaceNets). Sums to `cache_hits`. **v4.**
    pub backend_hits: [u64; NUM_BACKENDS],
    /// Cache misses per extraction backend. Sums to `cache_misses`. **v4.**
    pub backend_misses: [u64; NUM_BACKENDS],
}

/// One decoded protocol message.
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    /// Extract (or serve from cache) the isosurface at `iso`, optionally
    /// restricted to triangles intersecting `region`, at LOD pyramid level
    /// `lod` (0 = full resolution — the only level v1 clients, whose
    /// requests carry no `lod` field, can address).
    MeshRequest {
        iso: f32,
        region: Option<Region>,
        lod: u16,
        /// Extraction backend id (`oociso_march::Backend::id`), or `None`
        /// for the server's default. **v4** trailing field: pre-v4 requests
        /// carry no backend byte and decode as `None`, so older clients
        /// always get the server default. The id travels raw so an unknown
        /// value reaches the server, which answers [`ERR_BAD_BACKEND`]
        /// (mirroring how an out-of-range `lod` draws [`ERR_BAD_LOD`]).
        backend: Option<u8>,
        /// Client-supplied trace id, echoed on the response and used to key
        /// the server's trace journal. **v5** trailing field: pre-v5
        /// requests carry no id and decode as 0 (= untraced).
        trace_id: u64,
    },
    /// Extract, rasterize, and return the framebuffer as tile frames.
    FrameRequest {
        iso: f32,
        params: FrameParams,
        /// Client-supplied trace id. **v5** trailing field (absent = 0).
        trace_id: u64,
    },
    /// Ask for the server's counters.
    StatsRequest,
    /// Latency/bandwidth probe; the payload is echoed back in a `Pong`.
    Ping { payload: Vec<u8> },
    /// The isosurface (welded vertices + triangle indices), with serving
    /// metadata.
    MeshResponse {
        cache_hit: bool,
        active_metacells: u64,
        /// The LOD level actually served — equal to the requested level
        /// unless `degraded`. **v3** trailing field: absent on the wire for
        /// v1/v2 speakers, decoded as 0.
        served_lod: u16,
        /// True when admission control satisfied this request from a cached
        /// coarser level than requested instead of shedding it. **v3**
        /// trailing field (absent = false).
        degraded: bool,
        /// Extraction backend id that produced this mesh. **v4** trailing
        /// field: absent on the wire for pre-v4 speakers, decoded as 0
        /// (MC — the only backend pre-v4 servers had).
        backend: u8,
        /// Echo of the request's trace id. **v5** trailing field (absent =
        /// 0 — pre-v5 responses are bit-identical to v4).
        trace_id: u64,
        mesh: IndexedMesh,
    },
    /// The rendered framebuffer, sharded into per-tile regions.
    FrameResponse {
        cache_hit: bool,
        width: u32,
        height: u32,
        regions: Vec<FrameRegion>,
        /// Echo of the request's trace id. **v5** trailing field (absent = 0).
        trace_id: u64,
    },
    /// Server counters.
    StatsResponse(ServerReport),
    /// Structured failure (`ERR_*` code + human-readable detail).
    Error {
        code: u16,
        detail: String,
        /// For [`ERR_BUSY`]: how long the client should wait before
        /// retrying, in milliseconds. **v3** trailing field — v1/v2 error
        /// frames never carry it (the hint rides in the detail text
        /// instead), and it decodes as `None` when absent.
        retry_after_ms: Option<u32>,
    },
    /// Echo of a `Ping` payload.
    Pong { payload: Vec<u8> },
    /// One compositing frame region (the TCP transport's unit of transfer).
    Region(FrameRegion),
    /// Ask the server for its metrics registry exposition. **v5.**
    MetricsRequest,
    /// The server's metrics exposition (Prometheus text format). **v5.**
    MetricsResponse { text: String },
    /// Ask for a finished request trace by id (0 = most recent). **v5.**
    TraceRequest { id: u64 },
    /// A finished request trace: its span events, total wall time, and how
    /// many events overflowed the trace's bounded buffer. `found` is false
    /// (and everything else zero/empty) when the journal no longer holds the
    /// requested id. **v5.**
    TraceResponse {
        found: bool,
        id: u64,
        total_us: u64,
        dropped: u64,
        events: Vec<TraceEvent>,
    },
    /// Ask for a progressive (coarse-to-fine) mesh delivery down to LOD
    /// pyramid level `lod` (0 = full resolution). The server streams one
    /// [`Message::MeshChunk`] per level, coarsest first, on this
    /// connection, in request order relative to every other reply. **v6** —
    /// unlike the trailing-field extensions of v2–v5 this is a new message
    /// type, so every pre-v6 payload layout is untouched.
    ProgressiveRequest {
        iso: f32,
        /// The finest level wanted (the delivery ends there).
        lod: u16,
        /// Extraction backend id, or `None` for the server's default
        /// (encoded as [`BACKEND_DEFAULT`]).
        backend: Option<u8>,
        /// Client-supplied trace id, echoed on every chunk (0 = untraced).
        trace_id: u64,
    },
    /// One level of a progressive mesh delivery. **v6.**
    MeshChunk {
        /// True on the delivery's final (finest) chunk.
        last: bool,
        /// The LOD pyramid level this chunk carries.
        level: u16,
        /// Whether this level was served from the result cache.
        cache_hit: bool,
        /// Extraction backend id that produced the level.
        backend: u8,
        active_metacells: u64,
        /// Echo of the request's trace id.
        trace_id: u64,
        /// The level itself — full mesh, or a delta against the previous
        /// chunk of the same delivery.
        body: ChunkBody,
    },
}

/// The mesh carried by one [`Message::MeshChunk`]: either the level's
/// complete mesh, or — when it is smaller on the wire — a bit-exact
/// collapse-record delta ([`oociso_march::MeshDelta`]) against the mesh the
/// previous chunk of the same delivery reconstructed.
#[derive(Clone, Debug, PartialEq)]
pub enum ChunkBody {
    /// The level's complete mesh.
    Full(IndexedMesh),
    /// The level encoded against the previous chunk's reconstructed mesh.
    Delta(MeshDelta),
}

/// Choose the cheaper wire encoding for a chunk: a collapse-record delta
/// against `prev` when one exists and beats the full mesh, else the full
/// mesh. The first chunk of a delivery has no `prev` and is always full.
pub fn chunk_body_for(prev: Option<&IndexedMesh>, mesh: &IndexedMesh) -> ChunkBody {
    if let Some(prev) = prev {
        let delta = MeshDelta::between(prev, mesh);
        let full_bytes = mesh.num_vertices() * 12 + mesh.indices().len() * 4;
        if delta.wire_bytes() < full_bytes {
            return ChunkBody::Delta(delta);
        }
    }
    ChunkBody::Full(mesh.clone())
}

/// One span event inside a [`Message::TraceResponse`] — the wire twin of
/// `oociso_obs::SpanEvent`, with owned strings so it survives decoding.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Span id, unique within the trace.
    pub id: u32,
    /// Parent span id, or `u32::MAX` for a root span.
    pub parent: u32,
    /// Span name (e.g. `request`, `extract`, `cache`).
    pub name: String,
    /// Start offset from the trace origin, in microseconds.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
    /// Structured key/value annotations.
    pub fields: Vec<(String, u64)>,
}

/// Render a decoded trace's events as the same indented tree
/// `oociso_obs::Trace::render_tree` produces server-side: one line per span,
/// children indented two spaces under their parent, siblings ordered by
/// (start, id).
pub fn render_trace_events(events: &[TraceEvent]) -> String {
    let mut by_parent: Vec<(u32, usize)> = events
        .iter()
        .enumerate()
        .map(|(i, e)| (e.parent, i))
        .collect();
    by_parent.sort_by_key(|&(parent, i)| (parent, events[i].start_us, events[i].id));
    let mut out = String::new();
    fn emit(
        events: &[TraceEvent],
        by_parent: &[(u32, usize)],
        parent: u32,
        depth: usize,
        out: &mut String,
    ) {
        let lo = by_parent.partition_point(|&(p, _)| p < parent);
        for &(p, i) in &by_parent[lo..] {
            if p != parent {
                break;
            }
            let e = &events[i];
            for _ in 0..depth {
                out.push_str("  ");
            }
            out.push_str(&e.name);
            out.push_str(&format!(" {:.3}ms", e.dur_us as f64 / 1e3));
            for (k, v) in &e.fields {
                out.push_str(&format!(" {k}={v}"));
            }
            out.push('\n');
            emit(events, by_parent, e.id, depth + 1, out);
        }
    }
    emit(events, &by_parent, u32::MAX, 0, &mut out);
    out
}

impl Message {
    /// The wire tag of this message.
    pub fn msg_type(&self) -> u16 {
        match self {
            Message::MeshRequest { .. } => MSG_MESH_REQUEST,
            Message::FrameRequest { .. } => MSG_FRAME_REQUEST,
            Message::StatsRequest => MSG_STATS_REQUEST,
            Message::Ping { .. } => MSG_PING,
            Message::MeshResponse { .. } => MSG_MESH_RESPONSE,
            Message::FrameResponse { .. } => MSG_FRAME_RESPONSE,
            Message::StatsResponse(_) => MSG_STATS_RESPONSE,
            Message::Error { .. } => MSG_ERROR,
            Message::Pong { .. } => MSG_PONG,
            Message::Region(_) => MSG_REGION,
            Message::MetricsRequest => MSG_METRICS_REQUEST,
            Message::MetricsResponse { .. } => MSG_METRICS_RESPONSE,
            Message::TraceRequest { .. } => MSG_TRACE_REQUEST,
            Message::TraceResponse { .. } => MSG_TRACE_RESPONSE,
            Message::ProgressiveRequest { .. } => MSG_PROGRESSIVE_REQUEST,
            Message::MeshChunk { .. } => MSG_MESH_CHUNK,
        }
    }
}

fn malformed(what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("malformed frame: {what}"),
    )
}

/// Little-endian payload reader with truncation checks.
struct Rd<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Rd<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Rd { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| malformed("truncated payload"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> io::Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f32(&mut self) -> io::Result<f32> {
        Ok(f32::from_bits(self.u32()?))
    }

    /// Read an element count, requiring the `elem_bytes` each element needs
    /// at minimum to still fit in the unread payload — so a hostile count
    /// can never drive a pre-reservation larger than the bytes actually
    /// received.
    fn len(&mut self, what: &str, elem_bytes: usize) -> io::Result<usize> {
        let n = self.u64()?;
        let remaining = (self.buf.len() - self.pos) as u64;
        let need = n.checked_mul(elem_bytes.max(1) as u64);
        if need.is_none_or(|b| b > remaining) {
            return Err(malformed(what));
        }
        Ok(n as usize)
    }

    /// Unread bytes left in the payload — how optional trailing fields
    /// (added by later protocol versions) detect their presence.
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn done(&self) -> io::Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(malformed("trailing bytes"))
        }
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f32(out: &mut Vec<u8>, v: f32) {
    put_u32(out, v.to_bits());
}

fn put_region(out: &mut Vec<u8>, r: &FrameRegion) {
    put_u64(out, r.origin.0 as u64);
    put_u64(out, r.origin.1 as u64);
    put_u64(out, r.size.0 as u64);
    put_u64(out, r.size.1 as u64);
    for px in &r.color {
        out.extend_from_slice(px);
    }
    for &d in &r.depth {
        put_f32(out, d);
    }
}

fn read_region(rd: &mut Rd) -> io::Result<FrameRegion> {
    let origin = (rd.u64()? as usize, rd.u64()? as usize);
    let w = rd.u64()? as usize;
    let h = rd.u64()? as usize;
    let n = w
        .checked_mul(h)
        .filter(|&n| {
            (n as u64)
                .checked_mul(8)
                .is_some_and(|b| b <= rd.buf.len() as u64)
        })
        .ok_or_else(|| malformed("region size"))?;
    let mut color = Vec::with_capacity(n);
    for _ in 0..n {
        color.push(rd.take(4)?.try_into().unwrap());
    }
    let mut depth = Vec::with_capacity(n);
    for _ in 0..n {
        depth.push(rd.f32()?);
    }
    Ok(FrameRegion {
        origin,
        size: (w, h),
        color,
        depth,
    })
}

/// The version-independent mesh body shared by mesh responses and full
/// chunks: vertex/index counts followed by positions and indices.
fn put_mesh_body(out: &mut Vec<u8>, mesh: &IndexedMesh) {
    put_u64(out, mesh.num_vertices() as u64);
    put_u64(out, mesh.indices().len() as u64);
    for p in mesh.positions() {
        put_f32(out, p.x);
        put_f32(out, p.y);
        put_f32(out, p.z);
    }
    for &i in mesh.indices() {
        put_u32(out, i);
    }
}

/// A collapse-record delta body: counts, reuse bitmap, references into the
/// previous chunk's mesh, literal positions, then the index buffer.
fn put_delta_body(out: &mut Vec<u8>, delta: &MeshDelta) {
    put_u64(out, delta.reused.len() as u64);
    put_u64(out, delta.indices.len() as u64);
    put_u64(out, delta.refs.len() as u64);
    let mut bitmap = vec![0u8; delta.reused.len().div_ceil(8)];
    for (i, &r) in delta.reused.iter().enumerate() {
        if r {
            bitmap[i / 8] |= 1 << (i % 8);
        }
    }
    out.extend_from_slice(&bitmap);
    for &r in &delta.refs {
        put_u32(out, r);
    }
    for p in &delta.literals {
        put_f32(out, p.x);
        put_f32(out, p.y);
        put_f32(out, p.z);
    }
    for &i in &delta.indices {
        put_u32(out, i);
    }
}

/// A mesh-chunk payload around either body kind. Chunks only ever travel in
/// v6+ frames, so unlike the trailing-field messages nothing here is
/// version-gated.
#[allow(clippy::too_many_arguments)]
fn put_mesh_chunk(
    out: &mut Vec<u8>,
    last: bool,
    level: u16,
    cache_hit: bool,
    backend: u8,
    active_metacells: u64,
    trace_id: u64,
    body: &ChunkBody,
) {
    out.push(last as u8);
    put_u16(out, level);
    out.push(cache_hit as u8);
    out.push(backend);
    out.push(matches!(body, ChunkBody::Delta(_)) as u8);
    put_u64(out, active_metacells);
    match body {
        ChunkBody::Full(mesh) => put_mesh_body(out, mesh),
        ChunkBody::Delta(delta) => put_delta_body(out, delta),
    }
    put_u64(out, trace_id);
}

/// Encode a complete `MeshChunk` frame from **borrowed** meshes — the
/// progressive serve's hot path, which must not deep-clone cached LOD
/// levels. The body is the cheaper of the full mesh and a collapse-record
/// delta against `prev` (the mesh the previous chunk of this delivery
/// reconstructed); the first chunk passes `prev = None` and is always full.
/// `version` stamps the frame header (v6+ in practice — pre-v6 clients
/// cannot ask for chunks).
#[allow(clippy::too_many_arguments)]
pub fn encode_mesh_chunk_frame(
    last: bool,
    level: u16,
    cache_hit: bool,
    backend: u8,
    active_metacells: u64,
    trace_id: u64,
    prev: Option<&IndexedMesh>,
    mesh: &IndexedMesh,
    version: u16,
) -> Vec<u8> {
    let mut payload = Vec::new();
    payload.push(last as u8);
    put_u16(&mut payload, level);
    payload.push(cache_hit as u8);
    payload.push(backend);
    let delta = prev
        .map(|p| MeshDelta::between(p, mesh))
        .filter(|d| d.wire_bytes() < mesh.num_vertices() * 12 + mesh.indices().len() * 4);
    payload.push(delta.is_some() as u8);
    put_u64(&mut payload, active_metacells);
    match &delta {
        Some(d) => put_delta_body(&mut payload, d),
        None => put_mesh_body(&mut payload, mesh),
    }
    put_u64(&mut payload, trace_id);
    encode_frame_raw(MAGIC, version, MSG_MESH_CHUNK, &payload)
}

#[allow(clippy::too_many_arguments)]
fn put_mesh_response(
    out: &mut Vec<u8>,
    cache_hit: bool,
    active_metacells: u64,
    served_lod: u16,
    degraded: bool,
    backend: u8,
    trace_id: u64,
    mesh: &IndexedMesh,
    version: u16,
) {
    // fixed prefix: 1 (cache_hit) + 3×8 (active/vertex/index counts)
    out.reserve(
        28 + std::mem::size_of_val(mesh.positions()) + std::mem::size_of_val(mesh.indices()),
    );
    out.push(cache_hit as u8);
    put_u64(out, active_metacells);
    put_mesh_body(out, mesh);
    // v3 trailing fields; older dialects end at the indices (decoded as
    // served_lod 0 / not degraded — pre-v3 servers could not degrade)
    if version >= 3 {
        put_u16(out, served_lod);
        out.push(degraded as u8);
    }
    // v4 trailing field: which extraction backend produced the mesh
    // (pre-v4 servers only had MC, so absent decodes as id 0)
    if version >= 4 {
        out.push(backend);
    }
    // v5 trailing field: echo of the request's trace id (0 = untraced)
    if version >= 5 {
        put_u64(out, trace_id);
    }
}

/// Encode a complete `MeshResponse` frame from a **borrowed** mesh — the
/// server's cache-hit hot path, which must not deep-clone a
/// hundreds-of-MB cached mesh just to hand `Message` an owned copy for
/// serialization. `version` stamps the frame header so the reply speaks the
/// client's dialect, and gates the v3 trailing `served_lod`/`degraded`
/// fields (the rest of the mesh payload layout is version-independent).
#[allow(clippy::too_many_arguments)]
pub fn encode_mesh_response_frame(
    cache_hit: bool,
    active_metacells: u64,
    served_lod: u16,
    degraded: bool,
    backend: u8,
    trace_id: u64,
    mesh: &IndexedMesh,
    version: u16,
) -> Vec<u8> {
    let mut payload = Vec::new();
    put_mesh_response(
        &mut payload,
        cache_hit,
        active_metacells,
        served_lod,
        degraded,
        backend,
        trace_id,
        mesh,
        version,
    );
    encode_frame_raw(MAGIC, version, MSG_MESH_RESPONSE, &payload)
}

/// Serialize a [`ServerReport`] at the given protocol version: v1 payloads
/// carry only the 11 base counters (what v1 clients can parse), v2 appends
/// the per-LOD-level hit/miss arrays, v3 appends the robustness counters.
fn put_server_report(out: &mut Vec<u8>, s: &ServerReport, version: u16) {
    for v in [
        s.connections,
        s.requests,
        s.mesh_requests,
        s.frame_requests,
        s.errors,
        s.bytes_out,
        s.cache_hits,
        s.cache_misses,
        s.cache_evictions,
        s.cache_resident_bytes,
        s.cache_resident_entries,
    ] {
        put_u64(out, v);
    }
    if version >= 2 {
        for v in s.lod_hits.iter().chain(&s.lod_misses) {
            put_u64(out, *v);
        }
    }
    if version >= 3 {
        for v in [
            s.shed,
            s.degraded,
            s.timed_out,
            s.drained,
            s.accept_backoffs,
            s.active_connections,
        ] {
            put_u64(out, v);
        }
    }
    if version >= 4 {
        for v in s.backend_hits.iter().chain(&s.backend_misses) {
            put_u64(out, *v);
        }
    }
}

/// Encode a complete `StatsResponse` frame at the client's protocol
/// `version` — v1 clients get the payload layout they can parse.
pub fn encode_stats_response_frame(report: &ServerReport, version: u16) -> Vec<u8> {
    let mut payload = Vec::new();
    put_server_report(&mut payload, report, version);
    encode_frame_raw(MAGIC, version, MSG_STATS_RESPONSE, &payload)
}

/// Encode a message's payload (everything between header and checksum) at
/// the current protocol [`VERSION`].
pub fn encode_payload(msg: &Message) -> Vec<u8> {
    encode_payload_at(VERSION, msg)
}

/// [`encode_payload`] at an explicit protocol version: the v3 trailing
/// fields (mesh-response `served_lod`/`degraded`, error `retry_after_ms`,
/// stats robustness counters) are emitted only for v3 speakers, so a reply
/// stamped with an older client's version also *encodes* in that client's
/// layout.
pub fn encode_payload_at(version: u16, msg: &Message) -> Vec<u8> {
    let mut out = Vec::new();
    match msg {
        Message::MeshRequest {
            iso,
            region,
            lod,
            backend,
            trace_id,
        } => {
            put_f32(&mut out, *iso);
            out.push(region.is_some() as u8);
            if let Some(r) = region {
                for v in r.lo.iter().chain(&r.hi) {
                    put_f32(&mut out, *v);
                }
            }
            // v2 trailing field; v1 payloads simply end here (decoded as 0)
            put_u16(&mut out, *lod);
            if version >= 5 {
                // v5 always writes the backend byte (BACKEND_DEFAULT = let
                // the server pick) so the trace id after it is unambiguous
                out.push(backend.unwrap_or(BACKEND_DEFAULT));
                put_u64(&mut out, *trace_id);
            } else if version >= 4 {
                // v4 trailing field; absent = the server's default backend
                if let Some(b) = backend {
                    out.push(*b);
                }
            }
        }
        Message::FrameRequest {
            iso,
            params,
            trace_id,
        } => {
            put_f32(&mut out, *iso);
            put_u32(&mut out, params.width);
            put_u32(&mut out, params.height);
            put_f32(&mut out, params.azimuth);
            put_f32(&mut out, params.elevation);
            put_f32(&mut out, params.distance);
            put_u16(&mut out, params.tile_cols);
            put_u16(&mut out, params.tile_rows);
            // v5 trailing field (absent = untraced)
            if version >= 5 {
                put_u64(&mut out, *trace_id);
            }
        }
        Message::StatsRequest => {}
        Message::Ping { payload } | Message::Pong { payload } => {
            out.extend_from_slice(payload);
        }
        Message::MeshResponse {
            cache_hit,
            active_metacells,
            served_lod,
            degraded,
            backend,
            trace_id,
            mesh,
        } => put_mesh_response(
            &mut out,
            *cache_hit,
            *active_metacells,
            *served_lod,
            *degraded,
            *backend,
            *trace_id,
            mesh,
            version,
        ),
        Message::FrameResponse {
            cache_hit,
            width,
            height,
            regions,
            trace_id,
        } => {
            out.push(*cache_hit as u8);
            put_u32(&mut out, *width);
            put_u32(&mut out, *height);
            put_u64(&mut out, regions.len() as u64);
            for r in regions {
                put_region(&mut out, r);
            }
            // v5 trailing field (absent = untraced)
            if version >= 5 {
                put_u64(&mut out, *trace_id);
            }
        }
        Message::StatsResponse(s) => put_server_report(&mut out, s, version),
        Message::Error {
            code,
            detail,
            retry_after_ms,
        } => {
            put_u16(&mut out, *code);
            put_u64(&mut out, detail.len() as u64);
            out.extend_from_slice(detail.as_bytes());
            if version >= 3 {
                if let Some(ms) = retry_after_ms {
                    put_u32(&mut out, *ms);
                }
            }
        }
        Message::Region(r) => put_region(&mut out, r),
        Message::MetricsRequest => {}
        Message::MetricsResponse { text } => {
            out.extend_from_slice(text.as_bytes());
        }
        Message::TraceRequest { id } => {
            put_u64(&mut out, *id);
        }
        Message::TraceResponse {
            found,
            id,
            total_us,
            dropped,
            events,
        } => {
            out.push(*found as u8);
            put_u64(&mut out, *id);
            put_u64(&mut out, *total_us);
            put_u64(&mut out, *dropped);
            put_u64(&mut out, events.len() as u64);
            for e in events {
                put_u32(&mut out, e.id);
                put_u32(&mut out, e.parent);
                put_u16(&mut out, e.name.len() as u16);
                out.extend_from_slice(e.name.as_bytes());
                put_u64(&mut out, e.start_us);
                put_u64(&mut out, e.dur_us);
                put_u16(&mut out, e.fields.len() as u16);
                for (k, v) in &e.fields {
                    put_u16(&mut out, k.len() as u16);
                    out.extend_from_slice(k.as_bytes());
                    put_u64(&mut out, *v);
                }
            }
        }
        // v6 message types: these never travel in pre-v6 frames, so their
        // payloads need no version gates at all.
        Message::ProgressiveRequest {
            iso,
            lod,
            backend,
            trace_id,
        } => {
            put_f32(&mut out, *iso);
            put_u16(&mut out, *lod);
            out.push(backend.unwrap_or(BACKEND_DEFAULT));
            put_u64(&mut out, *trace_id);
        }
        Message::MeshChunk {
            last,
            level,
            cache_hit,
            backend,
            active_metacells,
            trace_id,
            body,
        } => put_mesh_chunk(
            &mut out,
            *last,
            *level,
            *cache_hit,
            *backend,
            *active_metacells,
            *trace_id,
            body,
        ),
    }
    out
}

/// Decode a payload of known `msg_type`.
pub fn decode_payload(msg_type: u16, payload: &[u8]) -> io::Result<Message> {
    let mut rd = Rd::new(payload);
    let msg = match msg_type {
        MSG_MESH_REQUEST => {
            let iso = rd.f32()?;
            let region = match rd.u8()? {
                0 => None,
                1 => Some(Region {
                    lo: [rd.f32()?, rd.f32()?, rd.f32()?],
                    hi: [rd.f32()?, rd.f32()?, rd.f32()?],
                }),
                _ => return Err(malformed("region flag")),
            };
            // v1 requests end here; absent lod means full resolution
            let lod = if rd.remaining() > 0 { rd.u16()? } else { 0 };
            // trailing fields, disambiguated by length: a lone byte is the
            // v4 backend id; a v5 request always carries backend byte (with
            // BACKEND_DEFAULT standing in for "server default") + trace id
            let (backend, trace_id) = match rd.remaining() {
                0 => (None, 0),
                1 => (Some(rd.u8()?), 0),
                _ => {
                    let b = rd.u8()?;
                    let t = rd.u64()?;
                    (if b == BACKEND_DEFAULT { None } else { Some(b) }, t)
                }
            };
            Message::MeshRequest {
                iso,
                region,
                lod,
                backend,
                trace_id,
            }
        }
        MSG_FRAME_REQUEST => {
            let iso = rd.f32()?;
            let params = FrameParams {
                width: rd.u32()?,
                height: rd.u32()?,
                azimuth: rd.f32()?,
                elevation: rd.f32()?,
                distance: rd.f32()?,
                tile_cols: rd.u16()?,
                tile_rows: rd.u16()?,
            };
            // v5 appends the trace id; absent = untraced
            let trace_id = if rd.remaining() > 0 { rd.u64()? } else { 0 };
            Message::FrameRequest {
                iso,
                params,
                trace_id,
            }
        }
        MSG_STATS_REQUEST => Message::StatsRequest,
        MSG_PING => Message::Ping {
            payload: rd.take(payload.len())?.to_vec(),
        },
        MSG_PONG => Message::Pong {
            payload: rd.take(payload.len())?.to_vec(),
        },
        MSG_MESH_RESPONSE => {
            let cache_hit = rd.u8()? != 0;
            let active_metacells = rd.u64()?;
            let nvert = rd.len("vertex count", 12)?;
            let nidx = rd.len("index count", 4)?;
            if nidx % 3 != 0 {
                return Err(malformed("index count not a triangle multiple"));
            }
            let mut mesh = IndexedMesh::with_capacity(nidx / 3);
            for _ in 0..nvert {
                mesh.push_vertex(Vec3::new(rd.f32()?, rd.f32()?, rd.f32()?));
            }
            for _ in 0..nidx / 3 {
                let (a, b, c) = (rd.u32()?, rd.u32()?, rd.u32()?);
                if a as usize >= nvert || b as usize >= nvert || c as usize >= nvert {
                    return Err(malformed("index out of range"));
                }
                mesh.push_triangle(a, b, c);
            }
            // v3 appends served_lod + degraded; older payloads end at the
            // indices (a pre-v3 server always served the requested level)
            let (served_lod, degraded) = if rd.remaining() > 0 {
                (rd.u16()?, rd.u8()? != 0)
            } else {
                (0, false)
            };
            // v4 appends the served backend id (pre-v4 servers: MC = 0)
            let backend = if rd.remaining() > 0 { rd.u8()? } else { 0 };
            // v5 appends the echoed trace id (absent = untraced)
            let trace_id = if rd.remaining() > 0 { rd.u64()? } else { 0 };
            Message::MeshResponse {
                cache_hit,
                active_metacells,
                served_lod,
                degraded,
                backend,
                trace_id,
                mesh,
            }
        }
        MSG_FRAME_RESPONSE => {
            let cache_hit = rd.u8()? != 0;
            let width = rd.u32()?;
            let height = rd.u32()?;
            // even an empty region carries its 32-byte origin/size header
            let n = rd.len("region count", 32)?;
            let mut regions = Vec::with_capacity(n);
            for _ in 0..n {
                regions.push(read_region(&mut rd)?);
            }
            // v5 appends the echoed trace id (absent = untraced)
            let trace_id = if rd.remaining() > 0 { rd.u64()? } else { 0 };
            Message::FrameResponse {
                cache_hit,
                width,
                height,
                regions,
                trace_id,
            }
        }
        MSG_STATS_RESPONSE => {
            let mut v = [0u64; 11];
            for slot in &mut v {
                *slot = rd.u64()?;
            }
            // v2 appends the per-level arrays; a v1 payload ends here
            let mut lod_hits = [0u64; MAX_LOD_LEVELS];
            let mut lod_misses = [0u64; MAX_LOD_LEVELS];
            if rd.remaining() > 0 {
                for slot in lod_hits.iter_mut().chain(&mut lod_misses) {
                    *slot = rd.u64()?;
                }
            }
            // v3 appends the robustness counters; a v2 payload ends above
            let mut robust = [0u64; 6];
            if rd.remaining() > 0 {
                for slot in &mut robust {
                    *slot = rd.u64()?;
                }
            }
            // v4 appends the per-backend hit/miss arrays
            let mut backend_hits = [0u64; NUM_BACKENDS];
            let mut backend_misses = [0u64; NUM_BACKENDS];
            if rd.remaining() > 0 {
                for slot in backend_hits.iter_mut().chain(&mut backend_misses) {
                    *slot = rd.u64()?;
                }
            }
            Message::StatsResponse(ServerReport {
                connections: v[0],
                requests: v[1],
                mesh_requests: v[2],
                frame_requests: v[3],
                errors: v[4],
                bytes_out: v[5],
                cache_hits: v[6],
                cache_misses: v[7],
                cache_evictions: v[8],
                cache_resident_bytes: v[9],
                cache_resident_entries: v[10],
                lod_hits,
                lod_misses,
                shed: robust[0],
                degraded: robust[1],
                timed_out: robust[2],
                drained: robust[3],
                accept_backoffs: robust[4],
                active_connections: robust[5],
                backend_hits,
                backend_misses,
            })
        }
        MSG_ERROR => {
            let code = rd.u16()?;
            let n = rd.len("detail length", 1)?;
            let detail = String::from_utf8(rd.take(n)?.to_vec())
                .map_err(|_| malformed("detail not UTF-8"))?;
            // v3 may append a retry-after hint (ERR_BUSY); absent = none
            let retry_after_ms = if rd.remaining() >= 4 {
                Some(rd.u32()?)
            } else {
                None
            };
            Message::Error {
                code,
                detail,
                retry_after_ms,
            }
        }
        MSG_REGION => Message::Region(read_region(&mut rd)?),
        MSG_METRICS_REQUEST => Message::MetricsRequest,
        MSG_METRICS_RESPONSE => Message::MetricsResponse {
            text: String::from_utf8(rd.take(payload.len())?.to_vec())
                .map_err(|_| malformed("metrics text not UTF-8"))?,
        },
        MSG_TRACE_REQUEST => Message::TraceRequest { id: rd.u64()? },
        MSG_TRACE_RESPONSE => {
            let found = rd.u8()? != 0;
            let id = rd.u64()?;
            let total_us = rd.u64()?;
            let dropped = rd.u64()?;
            // minimal event: ids + empty name + times + zero fields
            let n = rd.len("trace event count", 28)?;
            let mut events = Vec::with_capacity(n);
            for _ in 0..n {
                let eid = rd.u32()?;
                let parent = rd.u32()?;
                let name_len = rd.u16()? as usize;
                let name = String::from_utf8(rd.take(name_len)?.to_vec())
                    .map_err(|_| malformed("span name not UTF-8"))?;
                let start_us = rd.u64()?;
                let dur_us = rd.u64()?;
                let nfields = rd.u16()? as usize;
                if nfields * 10 > rd.remaining() {
                    return Err(malformed("trace field count"));
                }
                let mut fields = Vec::with_capacity(nfields);
                for _ in 0..nfields {
                    let klen = rd.u16()? as usize;
                    let key = String::from_utf8(rd.take(klen)?.to_vec())
                        .map_err(|_| malformed("field key not UTF-8"))?;
                    fields.push((key, rd.u64()?));
                }
                events.push(TraceEvent {
                    id: eid,
                    parent,
                    name,
                    start_us,
                    dur_us,
                    fields,
                });
            }
            Message::TraceResponse {
                found,
                id,
                total_us,
                dropped,
                events,
            }
        }
        MSG_PROGRESSIVE_REQUEST => {
            let iso = rd.f32()?;
            let lod = rd.u16()?;
            let b = rd.u8()?;
            let trace_id = rd.u64()?;
            Message::ProgressiveRequest {
                iso,
                lod,
                backend: if b == BACKEND_DEFAULT { None } else { Some(b) },
                trace_id,
            }
        }
        MSG_MESH_CHUNK => {
            let last = rd.u8()? != 0;
            let level = rd.u16()?;
            let cache_hit = rd.u8()? != 0;
            let backend = rd.u8()?;
            let encoding = rd.u8()?;
            let active_metacells = rd.u64()?;
            let body = match encoding {
                0 => {
                    let nvert = rd.len("chunk vertex count", 12)?;
                    let nidx = rd.len("chunk index count", 4)?;
                    if nidx % 3 != 0 {
                        return Err(malformed("chunk index count not a triangle multiple"));
                    }
                    let mut mesh = IndexedMesh::with_capacity(nidx / 3);
                    for _ in 0..nvert {
                        mesh.push_vertex(Vec3::new(rd.f32()?, rd.f32()?, rd.f32()?));
                    }
                    for _ in 0..nidx / 3 {
                        let (a, b, c) = (rd.u32()?, rd.u32()?, rd.u32()?);
                        if a as usize >= nvert || b as usize >= nvert || c as usize >= nvert {
                            return Err(malformed("chunk index out of range"));
                        }
                        mesh.push_triangle(a, b, c);
                    }
                    ChunkBody::Full(mesh)
                }
                1 => {
                    // every delta vertex costs at least 4 bytes (a reused
                    // slot's reference; literals cost 12), bounding the
                    // hostile-count pre-reservation
                    let nvert = rd.len("chunk delta vertex count", 4)?;
                    let nidx = rd.len("chunk delta index count", 4)?;
                    if nidx % 3 != 0 {
                        return Err(malformed("chunk index count not a triangle multiple"));
                    }
                    let nrefs = rd.len("chunk delta ref count", 4)?;
                    if nrefs > nvert {
                        return Err(malformed("chunk delta ref count"));
                    }
                    let bitmap = rd.take(nvert.div_ceil(8))?;
                    let mut reused = Vec::with_capacity(nvert);
                    for i in 0..nvert {
                        reused.push(bitmap[i / 8] >> (i % 8) & 1 != 0);
                    }
                    if reused.iter().filter(|&&r| r).count() != nrefs {
                        return Err(malformed("chunk delta bitmap disagrees with ref count"));
                    }
                    // references are validated against the *previous* chunk's
                    // mesh at apply time — the decoder cannot see it
                    let mut refs = Vec::with_capacity(nrefs);
                    for _ in 0..nrefs {
                        refs.push(rd.u32()?);
                    }
                    let mut literals = Vec::with_capacity(nvert - nrefs);
                    for _ in 0..nvert - nrefs {
                        literals.push(Vec3::new(rd.f32()?, rd.f32()?, rd.f32()?));
                    }
                    let mut indices = Vec::with_capacity(nidx);
                    for _ in 0..nidx {
                        let i = rd.u32()?;
                        if i as usize >= nvert {
                            return Err(malformed("chunk delta index out of range"));
                        }
                        indices.push(i);
                    }
                    ChunkBody::Delta(MeshDelta {
                        reused,
                        refs,
                        literals,
                        indices,
                    })
                }
                _ => return Err(malformed("chunk encoding")),
            };
            let trace_id = rd.u64()?;
            Message::MeshChunk {
                last,
                level,
                cache_hit,
                backend,
                active_metacells,
                trace_id,
                body,
            }
        }
        other => return Err(malformed(&format!("unknown message type {other}"))),
    };
    rd.done()?;
    Ok(msg)
}

/// Serialize a whole frame (header + payload + checksum) into a byte vector.
pub fn encode_frame(msg: &Message) -> Vec<u8> {
    encode_frame_at(VERSION, msg)
}

/// [`encode_frame`] with an explicit header version — how the server stamps
/// each reply with the version its client spoke. The payload is encoded at
/// the same version, so the v3 trailing fields never reach a pre-v3 reader.
pub fn encode_frame_at(version: u16, msg: &Message) -> Vec<u8> {
    let payload = encode_payload_at(version, msg);
    encode_frame_raw(MAGIC, version, msg.msg_type(), &payload)
}

/// Serialize a frame with explicit header fields — the doctored-frame hook
/// the protocol-abuse tests (bad magic, future version, corrupt checksum)
/// are built on.
pub fn encode_frame_raw(magic: u32, version: u16, msg_type: u16, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_BYTES + payload.len() + 4);
    put_u32(&mut out, magic);
    put_u16(&mut out, version);
    put_u16(&mut out, msg_type);
    put_u64(&mut out, payload.len() as u64);
    out.extend_from_slice(payload);
    put_u32(&mut out, crc32(payload));
    out
}

/// Write one frame to `w` (single `write_all`, then flush).
pub fn write_frame(w: &mut impl Write, msg: &Message) -> io::Result<usize> {
    let frame = encode_frame(msg);
    w.write_all(&frame)?;
    w.flush()?;
    Ok(frame.len())
}

/// What a frame read produced before payload interpretation: either a decoded
/// message or a structured protocol violation the server answers with an
/// `ERR_*` response.
// `Ok` carries a whole `Message` (inline stats arrays dominate its size);
// one `FrameIn` exists per in-flight frame read, never in bulk, so the
// size skew is irrelevant and boxing would just add a hop.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum FrameIn {
    /// A well-formed frame carrying `msg`, spoken at protocol `version`
    /// (any accepted version in [`MIN_VERSION`]`..=`[`VERSION`]) — the
    /// version a server echoes in its reply so older clients can parse it.
    Ok { msg: Message, version: u16 },
    /// The header or checksum was unacceptable; `close` means framing is
    /// lost (wrong magic) and the connection cannot continue. `version` is
    /// the dialect to *reply* in: the frame's own version when it parsed to
    /// a supported one, [`VERSION`] otherwise — so a v1 client's corrupted
    /// frame still gets an error reply it can decode.
    Violation {
        code: u16,
        detail: String,
        close: bool,
        version: u16,
    },
}

/// Read one frame from `r`. Returns `Ok(None)` on clean EOF at a frame
/// boundary; hard I/O errors and mid-frame truncation surface as `Err`.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<FrameIn>> {
    read_frame_limited(r, MAX_PAYLOAD)
}

/// [`read_frame`] with an explicit payload cap: the length field is checked
/// against `min(max_payload, MAX_PAYLOAD)` **before** any payload
/// allocation, so a reader of small messages (the server reading requests)
/// never commits memory on a hostile header's say-so.
pub fn read_frame_limited(r: &mut impl Read, max_payload: u64) -> io::Result<Option<FrameIn>> {
    let mut header = [0u8; HEADER_BYTES];
    // EOF before any header byte = peer closed between frames
    let mut got = 0;
    while got < HEADER_BYTES {
        match r.read(&mut header[got..])? {
            0 if got == 0 => return Ok(None),
            0 => return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "torn header")),
            n => got += n,
        }
    }
    let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
    let version = u16::from_le_bytes(header[4..6].try_into().unwrap());
    let msg_type = u16::from_le_bytes(header[6..8].try_into().unwrap());
    let len = u64::from_le_bytes(header[8..16].try_into().unwrap());
    // the dialect violations are replied in: the client's own, when sane
    let reply_version = if (MIN_VERSION..=VERSION).contains(&version) {
        version
    } else {
        VERSION
    };
    if magic != MAGIC {
        // the stream cannot be re-synchronized: report and hang up
        return Ok(Some(FrameIn::Violation {
            code: ERR_BAD_MAGIC,
            detail: format!("bad magic {magic:#x}"),
            close: true,
            version: reply_version,
        }));
    }
    let cap = max_payload.min(MAX_PAYLOAD);
    if len > cap {
        // not draining `len` bytes is deliberate: the claim may be hostile
        // and gigabytes long, so framing is abandoned and the connection
        // closed after the error reply
        return Ok(Some(FrameIn::Violation {
            code: ERR_MALFORMED,
            detail: format!("payload length {len} exceeds cap {cap}"),
            close: true,
            version: reply_version,
        }));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let mut crc_buf = [0u8; 4];
    r.read_exact(&mut crc_buf)?;
    // the version check comes after draining the frame so the connection
    // stays framed and usable for the error reply; anything in the
    // supported window (v1 clients included) is decoded
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Ok(Some(FrameIn::Violation {
            code: ERR_UNSUPPORTED_VERSION,
            detail: format!(
                "protocol version {version} not supported (server speaks {MIN_VERSION}..={VERSION})"
            ),
            close: false,
            version: reply_version,
        }));
    }
    let crc = u32::from_le_bytes(crc_buf);
    if crc != crc32(&payload) {
        return Ok(Some(FrameIn::Violation {
            code: ERR_BAD_CHECKSUM,
            detail: "payload checksum mismatch".to_string(),
            close: false,
            version: reply_version,
        }));
    }
    match decode_payload(msg_type, &payload) {
        Ok(msg) => Ok(Some(FrameIn::Ok { msg, version })),
        Err(e) => Ok(Some(FrameIn::Violation {
            code: ERR_MALFORMED,
            detail: e.to_string(),
            close: false,
            version: reply_version,
        })),
    }
}

/// One step of buffer-based incremental frame decoding — the nonblocking
/// reactor's counterpart to [`read_frame_limited`], sharing its exact
/// violation semantics (same codes, same close-the-connection decisions).
#[allow(clippy::large_enum_variant)] // same rationale as `FrameIn`
#[derive(Debug)]
pub enum FrameStep {
    /// The buffer does not yet hold a whole frame. `need` is the total
    /// buffered byte count required before decoding can complete — a lower
    /// bound the caller can use to size its next read (16 until the header
    /// is in, then the frame's exact length).
    NeedMore { need: usize },
    /// One complete frame occupied the first `consumed` buffer bytes.
    /// For violations with `close: true` (bad magic, oversized length
    /// claim) framing is lost and `consumed` covers the whole buffer:
    /// nothing behind the poisoned header may be interpreted.
    Frame { frame: FrameIn, consumed: usize },
}

/// Decode one frame from the front of `buf` without consuming input — the
/// caller drains `consumed` bytes after acting on the result. Semantics
/// mirror [`read_frame_limited`] exactly: same payload cap enforced before
/// the payload is even buffered, same violation codes, same reply-version
/// selection. (EOF handling stays with the caller: an empty buffer at peer
/// close is a clean boundary, a partial frame is a torn one.)
pub fn decode_frame_bytes(buf: &[u8], max_payload: u64) -> FrameStep {
    if buf.len() < HEADER_BYTES {
        return FrameStep::NeedMore { need: HEADER_BYTES };
    }
    let magic = u32::from_le_bytes(buf[0..4].try_into().unwrap());
    let version = u16::from_le_bytes(buf[4..6].try_into().unwrap());
    let msg_type = u16::from_le_bytes(buf[6..8].try_into().unwrap());
    let len = u64::from_le_bytes(buf[8..16].try_into().unwrap());
    let reply_version = if (MIN_VERSION..=VERSION).contains(&version) {
        version
    } else {
        VERSION
    };
    if magic != MAGIC {
        return FrameStep::Frame {
            frame: FrameIn::Violation {
                code: ERR_BAD_MAGIC,
                detail: format!("bad magic {magic:#x}"),
                close: true,
                version: reply_version,
            },
            consumed: buf.len(),
        };
    }
    let cap = max_payload.min(MAX_PAYLOAD);
    if len > cap {
        // as in the blocking reader: the length claim may be hostile, so
        // the frame is never buffered out — connection to be closed
        return FrameStep::Frame {
            frame: FrameIn::Violation {
                code: ERR_MALFORMED,
                detail: format!("payload length {len} exceeds cap {cap}"),
                close: true,
                version: reply_version,
            },
            consumed: buf.len(),
        };
    }
    let total = HEADER_BYTES + len as usize + 4;
    if buf.len() < total {
        return FrameStep::NeedMore { need: total };
    }
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return FrameStep::Frame {
            frame: FrameIn::Violation {
                code: ERR_UNSUPPORTED_VERSION,
                detail: format!(
                    "protocol version {version} not supported (server speaks {MIN_VERSION}..={VERSION})"
                ),
                close: false,
                version: reply_version,
            },
            consumed: total,
        };
    }
    let payload = &buf[HEADER_BYTES..HEADER_BYTES + len as usize];
    let crc = u32::from_le_bytes(buf[HEADER_BYTES + len as usize..total].try_into().unwrap());
    if crc != crc32(payload) {
        return FrameStep::Frame {
            frame: FrameIn::Violation {
                code: ERR_BAD_CHECKSUM,
                detail: "payload checksum mismatch".to_string(),
                close: false,
                version: reply_version,
            },
            consumed: total,
        };
    }
    let frame = match decode_payload(msg_type, payload) {
        Ok(msg) => FrameIn::Ok { msg, version },
        Err(e) => FrameIn::Violation {
            code: ERR_MALFORMED,
            detail: e.to_string(),
            close: false,
            version: reply_version,
        },
    };
    FrameStep::Frame {
        frame,
        consumed: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // standard IEEE CRC-32 check values
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    fn roundtrip(msg: Message) {
        let frame = encode_frame(&msg);
        let mut cursor = &frame[..];
        match read_frame(&mut cursor).unwrap().unwrap() {
            FrameIn::Ok { msg: got, version } => {
                assert_eq!(got, msg);
                assert_eq!(version, VERSION);
            }
            FrameIn::Violation { detail, .. } => panic!("rejected own frame: {detail}"),
        }
        assert!(cursor.is_empty(), "frame not fully consumed");
    }

    fn sample_mesh() -> IndexedMesh {
        let mut m = IndexedMesh::new();
        let a = m.push_vertex(Vec3::new(0.25, -1.5, 3.0));
        let b = m.push_vertex(Vec3::new(1.0, 0.0, f32::MIN_POSITIVE));
        let c = m.push_vertex(Vec3::new(-0.0, 9.75, 2.5));
        m.push_triangle(a, b, c);
        m.push_triangle(c, b, a);
        m
    }

    fn sample_region() -> FrameRegion {
        FrameRegion {
            origin: (3, 7),
            size: (2, 2),
            color: vec![[1, 2, 3, 4], [5, 6, 7, 8], [9, 10, 11, 12], [0, 0, 0, 0]],
            depth: vec![0.5, f32::INFINITY, -1.25, 0.0],
        }
    }

    #[test]
    fn all_messages_roundtrip() {
        roundtrip(Message::MeshRequest {
            iso: 127.5,
            region: None,
            lod: 0,
            backend: None,
            trace_id: 0,
        });
        roundtrip(Message::MeshRequest {
            iso: -3.25,
            region: Some(Region {
                lo: [0.0, 1.0, 2.0],
                hi: [3.0, 4.0, 5.0],
            }),
            lod: 2,
            backend: Some(1),
            trace_id: 0xDEAD_BEEF_0042_1337,
        });
        roundtrip(Message::FrameRequest {
            iso: 190.0,
            params: FrameParams {
                width: 640,
                height: 480,
                azimuth: 0.9,
                elevation: 0.45,
                distance: 2.0,
                tile_cols: 2,
                tile_rows: 2,
            },
            trace_id: 77,
        });
        roundtrip(Message::StatsRequest);
        roundtrip(Message::Ping {
            payload: vec![0xAB; 1000],
        });
        roundtrip(Message::Pong { payload: vec![] });
        roundtrip(Message::MeshResponse {
            cache_hit: true,
            active_metacells: 42,
            served_lod: 0,
            degraded: false,
            backend: 0,
            trace_id: 0,
            mesh: sample_mesh(),
        });
        roundtrip(Message::MeshResponse {
            cache_hit: true,
            active_metacells: 42,
            served_lod: 2,
            degraded: true,
            backend: 1,
            trace_id: u64::MAX,
            mesh: sample_mesh(),
        });
        roundtrip(Message::FrameResponse {
            cache_hit: false,
            width: 8,
            height: 8,
            regions: vec![sample_region(), sample_region()],
            trace_id: 9,
        });
        roundtrip(Message::StatsResponse(ServerReport {
            connections: 1,
            requests: 2,
            mesh_requests: 3,
            frame_requests: 4,
            errors: 5,
            bytes_out: 6,
            cache_hits: 7,
            cache_misses: 8,
            cache_evictions: 9,
            cache_resident_bytes: 10,
            cache_resident_entries: 11,
            lod_hits: [4, 2, 1, 0],
            lod_misses: [1, 1, 1, 0],
            shed: 12,
            degraded: 13,
            timed_out: 14,
            drained: 15,
            accept_backoffs: 16,
            active_connections: 17,
            backend_hits: [5, 2],
            backend_misses: [6, 2],
        }));
        roundtrip(Message::Error {
            code: ERR_MALFORMED,
            detail: "¿qué?".to_string(),
            retry_after_ms: None,
        });
        roundtrip(Message::Error {
            code: ERR_BUSY,
            detail: "server busy".to_string(),
            retry_after_ms: Some(75),
        });
        roundtrip(Message::Region(sample_region()));
        roundtrip(Message::MetricsRequest);
        roundtrip(Message::MetricsResponse {
            text: "# TYPE requests_total counter\nrequests_total 3\n".to_string(),
        });
        roundtrip(Message::TraceRequest { id: 0 });
        roundtrip(Message::TraceRequest { id: u64::MAX });
        roundtrip(Message::TraceResponse {
            found: false,
            id: 0,
            total_us: 0,
            dropped: 0,
            events: vec![],
        });
        roundtrip(Message::TraceResponse {
            found: true,
            id: 42,
            total_us: 1500,
            dropped: 2,
            events: vec![
                TraceEvent {
                    id: 0,
                    parent: u32::MAX,
                    name: "request".to_string(),
                    start_us: 0,
                    dur_us: 1500,
                    fields: vec![("iso_millis".to_string(), 127_500)],
                },
                TraceEvent {
                    id: 1,
                    parent: 0,
                    name: "extract".to_string(),
                    start_us: 10,
                    dur_us: 1400,
                    fields: vec![("nodes".to_string(), 4), ("triangles".to_string(), 99)],
                },
            ],
        });
        roundtrip(Message::ProgressiveRequest {
            iso: 127.5,
            lod: 0,
            backend: None,
            trace_id: 0,
        });
        roundtrip(Message::ProgressiveRequest {
            iso: -2.75,
            lod: 3,
            backend: Some(1),
            trace_id: u64::MAX,
        });
        roundtrip(Message::MeshChunk {
            last: false,
            level: 2,
            cache_hit: true,
            backend: 0,
            active_metacells: 17,
            trace_id: 55,
            body: ChunkBody::Full(sample_mesh()),
        });
        roundtrip(Message::MeshChunk {
            last: true,
            level: 0,
            cache_hit: false,
            backend: 1,
            active_metacells: 17,
            trace_id: 55,
            body: ChunkBody::Delta(MeshDelta::between(&sample_mesh(), &sample_mesh())),
        });
        // a delta with every slot kind: reused, literal, empty indices
        roundtrip(Message::MeshChunk {
            last: true,
            level: 0,
            cache_hit: false,
            backend: 0,
            active_metacells: 0,
            trace_id: 0,
            body: ChunkBody::Delta(MeshDelta {
                reused: vec![true, false, true],
                refs: vec![2, 0],
                literals: vec![Vec3::new(1.0, -2.0, f32::MIN_POSITIVE)],
                indices: vec![0, 1, 2],
            }),
        });
    }

    #[test]
    fn borrowed_chunk_encode_matches_owned_message_encode() {
        let coarse = sample_mesh();
        let mut fine = sample_mesh();
        let d = fine.push_vertex(Vec3::new(4.0, 4.0, 4.0));
        fine.push_triangle(0, 1, d);
        for (prev, mesh) in [(None, &coarse), (Some(&coarse), &fine)] {
            let borrowed = encode_mesh_chunk_frame(true, 0, false, 1, 9, 77, prev, mesh, VERSION);
            let owned = encode_frame(&Message::MeshChunk {
                last: true,
                level: 0,
                cache_hit: false,
                backend: 1,
                active_metacells: 9,
                trace_id: 77,
                body: chunk_body_for(prev, mesh),
            });
            assert_eq!(borrowed, owned);
        }
    }

    #[test]
    fn chunk_delta_reconstructs_the_fine_level_bit_exactly() {
        let coarse = sample_mesh();
        let mut fine = sample_mesh();
        let d = fine.push_vertex(Vec3::new(4.0, 4.0, 4.0));
        fine.push_triangle(0, 1, d);
        // all of `coarse`'s positions recur in `fine`, so the delta encoding
        // must win and survive the wire intact
        let frame = encode_mesh_chunk_frame(true, 0, false, 0, 0, 0, Some(&coarse), &fine, VERSION);
        let mut cursor = &frame[..];
        match read_frame(&mut cursor).unwrap().unwrap() {
            FrameIn::Ok {
                msg: Message::MeshChunk { body, .. },
                ..
            } => match body {
                ChunkBody::Delta(delta) => {
                    let rebuilt = delta.apply(&coarse).expect("wire delta applies");
                    assert_eq!(rebuilt.positions(), fine.positions());
                    assert_eq!(rebuilt.indices(), fine.indices());
                }
                ChunkBody::Full(_) => panic!("expected the delta encoding to win"),
            },
            other => panic!("unexpected frame: {other:?}"),
        }
    }

    #[test]
    fn hostile_chunk_payloads_are_errors_not_panics() {
        // valid chunk, then flip the encoding byte to an unknown value
        let frame = encode_frame(&Message::MeshChunk {
            last: true,
            level: 0,
            cache_hit: false,
            backend: 0,
            active_metacells: 0,
            trace_id: 0,
            body: ChunkBody::Full(sample_mesh()),
        });
        let payload = &frame[HEADER_BYTES..frame.len() - 4];
        // encoding byte is at offset 5 of the payload
        let mut bad = payload.to_vec();
        bad[5] = 9;
        assert!(decode_payload(MSG_MESH_CHUNK, &bad).is_err());
        // a delta whose bitmap popcount disagrees with its ref count
        let mut delta_payload = Vec::new();
        delta_payload.extend_from_slice(&[1, 0, 0, 0, 0, 1]); // last, level, hit, backend, delta
        delta_payload.extend_from_slice(&0u64.to_le_bytes()); // active
        delta_payload.extend_from_slice(&2u64.to_le_bytes()); // nvert
        delta_payload.extend_from_slice(&0u64.to_le_bytes()); // nidx
        delta_payload.extend_from_slice(&2u64.to_le_bytes()); // nrefs
        delta_payload.push(0b01); // bitmap says 1 reused, refs say 2
        delta_payload.extend_from_slice(&[0u8; 8]); // two refs
        delta_payload.extend_from_slice(&[0u8; 12]); // one literal
        delta_payload.extend_from_slice(&0u64.to_le_bytes()); // trace id
        assert!(decode_payload(MSG_MESH_CHUNK, &delta_payload).is_err());
        // truncation at every prefix must error, never panic
        for cut in 0..payload.len() {
            let _ = decode_payload(MSG_MESH_CHUNK, &payload[..cut]);
        }
    }

    #[test]
    fn mesh_response_is_bit_exact() {
        let mesh = sample_mesh();
        let frame = encode_frame(&Message::MeshResponse {
            cache_hit: false,
            active_metacells: 0,
            served_lod: 0,
            degraded: false,
            backend: 0,
            trace_id: 0,
            mesh: mesh.clone(),
        });
        let Some(FrameIn::Ok {
            msg: Message::MeshResponse { mesh: got, .. },
            ..
        }) = read_frame(&mut &frame[..]).unwrap()
        else {
            panic!("decode failed");
        };
        // bit patterns, not approximate equality
        for (a, b) in mesh.positions().iter().zip(got.positions()) {
            assert_eq!(a.x.to_bits(), b.x.to_bits());
            assert_eq!(a.y.to_bits(), b.y.to_bits());
            assert_eq!(a.z.to_bits(), b.z.to_bits());
        }
        assert_eq!(mesh.indices(), got.indices());
    }

    #[test]
    fn borrowed_mesh_encode_matches_owned_message_encode() {
        let mesh = sample_mesh();
        for version in MIN_VERSION..=VERSION {
            let borrowed = encode_mesh_response_frame(true, 42, 1, true, 1, 77, &mesh, version);
            let owned = encode_frame_at(
                version,
                &Message::MeshResponse {
                    cache_hit: true,
                    active_metacells: 42,
                    served_lod: 1,
                    degraded: true,
                    backend: 1,
                    trace_id: 77,
                    mesh: mesh.clone(),
                },
            );
            assert_eq!(
                borrowed, owned,
                "hot path must emit identical bytes at v{version}"
            );
        }
    }

    #[test]
    fn v3_trailing_fields_never_reach_older_dialects() {
        // a reply encoded for a v2 speaker must not carry the v3 fields...
        let busy = Message::Error {
            code: ERR_BUSY,
            detail: "busy".to_string(),
            retry_after_ms: Some(120),
        };
        let v2 = encode_payload_at(2, &busy);
        let v3 = encode_payload_at(3, &busy);
        assert_eq!(v3.len(), v2.len() + 4, "hint is a 4-byte v3 trailer");
        // ...and the v2 payload decodes with the hint absent, v3 with it
        match decode_payload(MSG_ERROR, &v2).unwrap() {
            Message::Error { retry_after_ms, .. } => assert_eq!(retry_after_ms, None),
            other => panic!("unexpected {other:?}"),
        }
        match decode_payload(MSG_ERROR, &v3).unwrap() {
            Message::Error { retry_after_ms, .. } => assert_eq!(retry_after_ms, Some(120)),
            other => panic!("unexpected {other:?}"),
        }
        // same story for the mesh-response served_lod/degraded trailer
        let resp = Message::MeshResponse {
            cache_hit: true,
            active_metacells: 7,
            served_lod: 2,
            degraded: true,
            backend: 0,
            trace_id: 0,
            mesh: sample_mesh(),
        };
        let v2 = encode_payload_at(2, &resp);
        assert_eq!(encode_payload_at(3, &resp).len(), v2.len() + 3);
        match decode_payload(MSG_MESH_RESPONSE, &v2).unwrap() {
            Message::MeshResponse {
                served_lod,
                degraded,
                ..
            } => {
                assert_eq!(served_lod, 0, "absent trailer decodes as level 0");
                assert!(!degraded, "absent trailer decodes as not degraded");
            }
            other => panic!("unexpected {other:?}"),
        }
        // and the stats robustness counters
        let mut report = ServerReport {
            shed: 3,
            degraded: 2,
            ..ServerReport::default()
        };
        let mut v2_out = Vec::new();
        put_server_report(&mut v2_out, &report, 2);
        match decode_payload(MSG_STATS_RESPONSE, &v2_out).unwrap() {
            Message::StatsResponse(got) => {
                report.shed = 0;
                report.degraded = 0;
                assert_eq!(got, report, "v2 layout zeroes the v3 counters");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn v4_backend_fields_never_reach_older_dialects() {
        // the request's backend selector is a 1-byte v4 trailer
        let req = Message::MeshRequest {
            iso: 1.5,
            region: None,
            lod: 1,
            backend: Some(1),
            trace_id: 0,
        };
        let v3 = encode_payload_at(3, &req);
        let v4 = encode_payload_at(4, &req);
        assert_eq!(v4.len(), v3.len() + 1, "backend id is a 1-byte v4 trailer");
        match decode_payload(MSG_MESH_REQUEST, &v3).unwrap() {
            Message::MeshRequest { backend, .. } => {
                assert_eq!(backend, None, "absent selector = server default")
            }
            other => panic!("unexpected {other:?}"),
        }
        match decode_payload(MSG_MESH_REQUEST, &v4).unwrap() {
            Message::MeshRequest { backend, .. } => assert_eq!(backend, Some(1)),
            other => panic!("unexpected {other:?}"),
        }
        // the response's served-backend id likewise
        let resp = Message::MeshResponse {
            cache_hit: false,
            active_metacells: 3,
            served_lod: 0,
            degraded: false,
            backend: 1,
            trace_id: 0,
            mesh: sample_mesh(),
        };
        let v3 = encode_payload_at(3, &resp);
        assert_eq!(encode_payload_at(4, &resp).len(), v3.len() + 1);
        match decode_payload(MSG_MESH_RESPONSE, &v3).unwrap() {
            Message::MeshResponse { backend, .. } => {
                assert_eq!(backend, 0, "absent trailer decodes as MC")
            }
            other => panic!("unexpected {other:?}"),
        }
        // and the per-backend stats arrays
        let mut report = ServerReport {
            backend_hits: [3, 1],
            backend_misses: [0, 2],
            ..ServerReport::default()
        };
        let mut v3_out = Vec::new();
        put_server_report(&mut v3_out, &report, 3);
        match decode_payload(MSG_STATS_RESPONSE, &v3_out).unwrap() {
            Message::StatsResponse(got) => {
                report.backend_hits = [0; NUM_BACKENDS];
                report.backend_misses = [0; NUM_BACKENDS];
                assert_eq!(got, report, "v3 layout zeroes the v4 counters");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn v5_trace_fields_never_reach_older_dialects() {
        // the request's trace id rides behind an always-present backend
        // byte at v5; a v4 encoding of the same message carries neither
        let req = Message::MeshRequest {
            iso: 1.5,
            region: None,
            lod: 1,
            backend: None,
            trace_id: 0xABCD,
        };
        let v4 = encode_payload_at(4, &req);
        let v5 = encode_payload_at(5, &req);
        assert_eq!(
            v5.len(),
            v4.len() + 9,
            "v5 trailer is backend byte + 8-byte trace id"
        );
        match decode_payload(MSG_MESH_REQUEST, &v4).unwrap() {
            Message::MeshRequest {
                backend, trace_id, ..
            } => {
                assert_eq!(backend, None);
                assert_eq!(trace_id, 0, "absent trailer decodes as untraced");
            }
            other => panic!("unexpected {other:?}"),
        }
        match decode_payload(MSG_MESH_REQUEST, &v5).unwrap() {
            Message::MeshRequest {
                backend, trace_id, ..
            } => {
                assert_eq!(backend, None, "BACKEND_DEFAULT decodes as server default");
                assert_eq!(trace_id, 0xABCD);
            }
            other => panic!("unexpected {other:?}"),
        }
        // an explicit backend survives alongside the trace id at v5
        let req = Message::MeshRequest {
            iso: 1.5,
            region: None,
            lod: 1,
            backend: Some(1),
            trace_id: 7,
        };
        match decode_payload(MSG_MESH_REQUEST, &encode_payload_at(5, &req)).unwrap() {
            Message::MeshRequest {
                backend, trace_id, ..
            } => {
                assert_eq!(backend, Some(1));
                assert_eq!(trace_id, 7);
            }
            other => panic!("unexpected {other:?}"),
        }
        // a v4 backend-only trailer (one lone byte) still decodes as v4
        let v4_with_backend = encode_payload_at(4, &req);
        match decode_payload(MSG_MESH_REQUEST, &v4_with_backend).unwrap() {
            Message::MeshRequest {
                backend, trace_id, ..
            } => {
                assert_eq!(backend, Some(1));
                assert_eq!(trace_id, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
        // frame requests: the id is a plain 8-byte v5 trailer
        let freq = Message::FrameRequest {
            iso: 2.0,
            params: FrameParams {
                width: 64,
                height: 64,
                azimuth: 0.0,
                elevation: 0.0,
                distance: 2.0,
                tile_cols: 1,
                tile_rows: 1,
            },
            trace_id: 99,
        };
        let v4 = encode_payload_at(4, &freq);
        assert_eq!(encode_payload_at(5, &freq).len(), v4.len() + 8);
        match decode_payload(MSG_FRAME_REQUEST, &v4).unwrap() {
            Message::FrameRequest { trace_id, .. } => assert_eq!(trace_id, 0),
            other => panic!("unexpected {other:?}"),
        }
        // responses: the echoed id is a v5 trailer on mesh + frame replies
        let resp = Message::MeshResponse {
            cache_hit: true,
            active_metacells: 7,
            served_lod: 0,
            degraded: false,
            backend: 0,
            trace_id: 0xABCD,
            mesh: sample_mesh(),
        };
        let v4 = encode_payload_at(4, &resp);
        assert_eq!(encode_payload_at(5, &resp).len(), v4.len() + 8);
        match decode_payload(MSG_MESH_RESPONSE, &v4).unwrap() {
            Message::MeshResponse { trace_id, .. } => {
                assert_eq!(trace_id, 0, "pre-v5 replies stay bit-identical")
            }
            other => panic!("unexpected {other:?}"),
        }
        let fresp = Message::FrameResponse {
            cache_hit: false,
            width: 4,
            height: 4,
            regions: vec![],
            trace_id: 3,
        };
        let v4 = encode_payload_at(4, &fresp);
        assert_eq!(encode_payload_at(5, &fresp).len(), v4.len() + 8);
        match decode_payload(MSG_FRAME_RESPONSE, &v4).unwrap() {
            Message::FrameResponse { trace_id, .. } => assert_eq!(trace_id, 0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn trace_tree_renders_from_wire_events() {
        let events = vec![
            TraceEvent {
                id: 0,
                parent: u32::MAX,
                name: "request".to_string(),
                start_us: 0,
                dur_us: 2000,
                fields: vec![],
            },
            TraceEvent {
                id: 1,
                parent: 0,
                name: "cache".to_string(),
                start_us: 5,
                dur_us: 10,
                fields: vec![("hit".to_string(), 0)],
            },
            TraceEvent {
                id: 2,
                parent: 0,
                name: "extract".to_string(),
                start_us: 20,
                dur_us: 1900,
                fields: vec![],
            },
        ];
        let tree = render_trace_events(&events);
        let lines: Vec<&str> = tree.lines().collect();
        assert_eq!(lines[0], "request 2.000ms");
        assert_eq!(lines[1], "  cache 0.010ms hit=0");
        assert_eq!(lines[2], "  extract 1.900ms");
    }

    #[test]
    fn limited_reader_rejects_hostile_length_before_allocating() {
        // header claims 1 GiB (within MAX_PAYLOAD) but the reader's cap is
        // 1 KiB: must reject from the header alone — the stream holds no
        // payload at all, so any attempt to read/allocate it would error
        let mut frame = encode_frame_raw(MAGIC, VERSION, MSG_PING, b"");
        frame[8..16].copy_from_slice(&(1u64 << 30).to_le_bytes());
        let header_only = &frame[..HEADER_BYTES];
        match read_frame_limited(&mut &header_only[..], 1024)
            .unwrap()
            .unwrap()
        {
            FrameIn::Violation { code, close, .. } => {
                assert_eq!(code, ERR_MALFORMED);
                assert!(close, "framing is abandoned, not drained");
            }
            FrameIn::Ok { .. } => panic!("hostile length accepted"),
        }
        // under the cap, the same reader still works
        let ok = encode_frame(&Message::Ping {
            payload: vec![1; 16],
        });
        assert!(matches!(
            read_frame_limited(&mut &ok[..], 1024).unwrap().unwrap(),
            FrameIn::Ok {
                msg: Message::Ping { .. },
                ..
            }
        ));
    }

    #[test]
    fn violations_carry_the_client_dialect_for_the_reply() {
        // a corrupt v1 frame must be answered in v1, not the server's
        // current version — the reader reports which dialect to reply in
        let payload = encode_payload(&Message::StatsRequest);
        let mut v1 = encode_frame_raw(MAGIC, 1, MSG_STATS_REQUEST, &payload);
        let n = v1.len();
        v1[n - 1] ^= 0x01;
        match read_frame(&mut &v1[..]).unwrap().unwrap() {
            FrameIn::Violation { code, version, .. } => {
                assert_eq!(code, ERR_BAD_CHECKSUM);
                assert_eq!(version, 1, "reply must speak the client's v1");
            }
            FrameIn::Ok { .. } => panic!("corrupt frame accepted"),
        }
        // an insane header version falls back to the server's own dialect
        let future = encode_frame_raw(MAGIC, 999, MSG_STATS_REQUEST, &payload);
        match read_frame(&mut &future[..]).unwrap().unwrap() {
            FrameIn::Violation { code, version, .. } => {
                assert_eq!(code, ERR_UNSUPPORTED_VERSION);
                assert_eq!(version, VERSION);
            }
            FrameIn::Ok { .. } => panic!("future version accepted"),
        }
    }

    #[test]
    fn corrupted_checksum_is_flagged() {
        let mut frame = encode_frame(&Message::MeshRequest {
            iso: 1.0,
            region: None,
            lod: 0,
            backend: None,
            trace_id: 0,
        });
        let n = frame.len();
        frame[n - 1] ^= 0x40; // flip a checksum bit
        match read_frame(&mut &frame[..]).unwrap().unwrap() {
            FrameIn::Violation { code, close, .. } => {
                assert_eq!(code, ERR_BAD_CHECKSUM);
                assert!(!close, "checksum failure keeps the connection framed");
            }
            FrameIn::Ok { .. } => panic!("corrupt frame accepted"),
        }
        // corrupt a payload byte instead: same verdict
        let mut frame2 = encode_frame(&Message::Ping {
            payload: vec![7; 32],
        });
        frame2[HEADER_BYTES + 3] ^= 0x01;
        assert!(matches!(
            read_frame(&mut &frame2[..]).unwrap().unwrap(),
            FrameIn::Violation {
                code: ERR_BAD_CHECKSUM,
                ..
            }
        ));
    }

    #[test]
    fn wrong_magic_and_future_version_are_flagged() {
        let payload = encode_payload(&Message::StatsRequest);
        let bad_magic = encode_frame_raw(0xDEAD_BEEF, VERSION, MSG_STATS_REQUEST, &payload);
        match read_frame(&mut &bad_magic[..]).unwrap().unwrap() {
            FrameIn::Violation { code, close, .. } => {
                assert_eq!(code, ERR_BAD_MAGIC);
                assert!(close, "framing is lost after a magic mismatch");
            }
            FrameIn::Ok { .. } => panic!("bad magic accepted"),
        }
        let future = encode_frame_raw(MAGIC, VERSION + 41, MSG_STATS_REQUEST, &payload);
        match read_frame(&mut &future[..]).unwrap().unwrap() {
            FrameIn::Violation { code, close, .. } => {
                assert_eq!(code, ERR_UNSUPPORTED_VERSION);
                assert!(!close, "version rejection is a framed, recoverable reply");
            }
            FrameIn::Ok { .. } => panic!("future version accepted"),
        }
    }

    #[test]
    fn truncation_and_garbage_are_errors_not_panics() {
        // empty stream = clean EOF
        assert!(read_frame(&mut &[][..]).unwrap().is_none());
        // half a header
        let frame = encode_frame(&Message::StatsRequest);
        assert!(read_frame(&mut &frame[..7]).is_err());
        // header promises more payload than the stream holds
        assert!(read_frame(&mut &frame[..HEADER_BYTES]).is_err());
        // unknown message type decodes to a violation, not a panic
        let junk = encode_frame_raw(MAGIC, VERSION, 999, b"junk");
        assert!(matches!(
            read_frame(&mut &junk[..]).unwrap().unwrap(),
            FrameIn::Violation {
                code: ERR_MALFORMED,
                ..
            }
        ));
        // absurd length field is capped, not allocated
        let mut huge = encode_frame_raw(MAGIC, VERSION, MSG_PING, b"");
        huge[8..16].copy_from_slice(&(u64::MAX).to_le_bytes());
        assert!(matches!(
            read_frame(&mut &huge[..]).unwrap().unwrap(),
            FrameIn::Violation {
                code: ERR_MALFORMED,
                close: true,
                ..
            }
        ));
        // element counts that can't fit the received bytes are rejected
        // before any proportional reservation happens
        let mut hostile = vec![0u8]; // cache_hit
        hostile.extend_from_slice(&0u64.to_le_bytes()); // active_metacells
        hostile.extend_from_slice(&0u64.to_le_bytes()); // nvert = 0
        hostile.extend_from_slice(&(1u64 << 31).to_le_bytes()); // nidx: 2^31
        assert!(decode_payload(MSG_MESH_RESPONSE, &hostile).is_err());
        // ...and a count whose byte requirement overflows u64
        let mut overflow = vec![0u8];
        overflow.extend_from_slice(&0u64.to_le_bytes());
        overflow.extend_from_slice(&u64::MAX.to_le_bytes()); // nvert: 2^64-1
        overflow.extend_from_slice(&0u64.to_le_bytes());
        assert!(decode_payload(MSG_MESH_RESPONSE, &overflow).is_err());
        // mesh payload with out-of-range indices is rejected
        let mut mesh = IndexedMesh::new();
        let v = mesh.push_vertex(Vec3::ZERO);
        mesh.push_triangle(v, v, v);
        let mut payload = encode_payload(&Message::MeshResponse {
            cache_hit: false,
            active_metacells: 0,
            served_lod: 0,
            degraded: false,
            backend: 0,
            trace_id: 0,
            mesh,
        });
        // the last index sits just before the 12-byte v3+v4+v5 trailer
        // (served_lod u16 + degraded u8 + backend u8 + trace id u64)
        let off = payload.len() - 12 - 4;
        payload[off..off + 4].copy_from_slice(&99u32.to_le_bytes());
        assert!(decode_payload(MSG_MESH_RESPONSE, &payload).is_err());
    }

    // the incremental decoder must agree with the blocking reader on every
    // prefix: NeedMore until the frame completes, then the same FrameIn
    #[test]
    fn incremental_decode_agrees_with_blocking_reader() {
        let msgs = [
            Message::Ping {
                payload: b"abc".to_vec(),
            },
            Message::StatsRequest,
            Message::MeshRequest {
                iso: 0.5,
                region: None,
                lod: 1,
                backend: Some(1),
                trace_id: 77,
            },
        ];
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend_from_slice(&encode_frame(m));
        }
        // feed the concatenated stream byte by byte
        let mut decoded = Vec::new();
        let mut buf: Vec<u8> = Vec::new();
        for &b in &stream {
            buf.push(b);
            match decode_frame_bytes(&buf, MAX_REQUEST_PAYLOAD) {
                FrameStep::NeedMore { need } => assert!(need > buf.len()),
                FrameStep::Frame { frame, consumed } => {
                    assert_eq!(consumed, buf.len(), "frames decode exactly at their end");
                    decoded.push(frame);
                    buf.clear();
                }
            }
        }
        assert!(buf.is_empty());
        assert_eq!(decoded.len(), msgs.len());
        for (frame, want) in decoded.iter().zip(&msgs) {
            match frame {
                FrameIn::Ok { msg, version } => {
                    assert_eq!(msg, want);
                    assert_eq!(*version, VERSION);
                }
                FrameIn::Violation { detail, .. } => panic!("rejected own frame: {detail}"),
            }
        }
        // two whole frames buffered at once decode one at a time
        let FrameStep::Frame { consumed, .. } = decode_frame_bytes(&stream, MAX_REQUEST_PAYLOAD)
        else {
            panic!("complete frame not decoded");
        };
        assert_eq!(consumed, encode_frame(&msgs[0]).len());
    }

    #[test]
    fn incremental_decode_violations_match_blocking_reader() {
        // bad magic: close, whole buffer poisoned
        let bad = encode_frame_raw(0xDEAD_BEEF, VERSION, MSG_PING, b"x");
        match decode_frame_bytes(&bad, MAX_REQUEST_PAYLOAD) {
            FrameStep::Frame {
                frame:
                    FrameIn::Violation {
                        code: ERR_BAD_MAGIC,
                        close: true,
                        ..
                    },
                consumed,
            } => assert_eq!(consumed, bad.len()),
            other => panic!("bad magic not flagged: {other:?}"),
        }
        // hostile length claim: rejected from the header alone, close
        let mut huge = encode_frame_raw(MAGIC, VERSION, MSG_PING, b"");
        huge[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            decode_frame_bytes(&huge[..HEADER_BYTES], MAX_REQUEST_PAYLOAD),
            FrameStep::Frame {
                frame: FrameIn::Violation {
                    code: ERR_MALFORMED,
                    close: true,
                    ..
                },
                ..
            }
        ));
        // future version: full frame consumed, connection survives, and the
        // reply dialect falls back to the server's current version
        let fut = encode_frame_raw(MAGIC, VERSION + 10, MSG_PING, b"");
        match decode_frame_bytes(&fut, MAX_REQUEST_PAYLOAD) {
            FrameStep::Frame {
                frame:
                    FrameIn::Violation {
                        code: ERR_UNSUPPORTED_VERSION,
                        close: false,
                        version,
                        ..
                    },
                consumed,
            } => {
                assert_eq!(consumed, fut.len());
                assert_eq!(version, VERSION);
            }
            other => panic!("future version not flagged: {other:?}"),
        }
        // corrupt checksum: full frame consumed, connection survives
        let mut corrupt = encode_frame(&Message::Ping {
            payload: b"payload".to_vec(),
        });
        let n = corrupt.len();
        corrupt[n - 1] ^= 0xFF;
        assert!(matches!(
            decode_frame_bytes(&corrupt, MAX_REQUEST_PAYLOAD),
            FrameStep::Frame {
                frame: FrameIn::Violation {
                    code: ERR_BAD_CHECKSUM,
                    close: false,
                    ..
                },
                ..
            }
        ));
    }
}
