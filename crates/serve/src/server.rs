//! The multi-threaded TCP query server.
//!
//! One accept loop, one OS thread per connection (the paper's cluster serves
//! a handful of display clients; thread-per-connection keeps the handler a
//! plain blocking loop). Every handler shares one [`oociso_core::ClusterDatabase`]
//! — extraction already fans out across node threads and per-node worker
//! pools internally, so concurrent requests ride the existing streaming
//! extraction path — plus one [`ResultCache`] behind a mutex (held only for
//! lookup/insert, never across an extraction).

use crate::cache::{CachedSurface, ResultCache};
use crate::protocol::{
    encode_frame, encode_mesh_response_frame, read_frame_limited, FrameIn, Message, ServerReport,
    ERR_INTERNAL, ERR_MALFORMED, MAX_REQUEST_PAYLOAD,
};
use oociso_core::ClusterDatabase;
use oociso_render::{rasterize_mesh, Camera, Framebuffer, TileLayout};
use oociso_volume::ScalarValue;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServeOptions {
    /// Result-cache byte budget (default 256 MiB).
    pub cache_bytes: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            cache_bytes: 256 << 20,
        }
    }
}

/// Shared state behind every connection handler.
struct State<S: ScalarValue> {
    db: ClusterDatabase<S>,
    cache: Mutex<ResultCache>,
    connections: AtomicU64,
    requests: AtomicU64,
    mesh_requests: AtomicU64,
    frame_requests: AtomicU64,
    errors: AtomicU64,
    bytes_out: AtomicU64,
}

impl<S: ScalarValue> State<S> {
    fn report(&self) -> ServerReport {
        let cache = self.cache.lock().expect("cache lock").stats();
        ServerReport {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            mesh_requests: self.mesh_requests.load(Ordering::Relaxed),
            frame_requests: self.frame_requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_evictions: cache.evictions,
            cache_resident_bytes: cache.resident_bytes,
            cache_resident_entries: cache.resident_entries,
        }
    }

    /// The full surface at `iso`, from cache or a fresh extraction.
    /// Returns `(surface, cache_hit)`.
    fn surface(&self, iso: f32) -> io::Result<(Arc<CachedSurface>, bool)> {
        if let Some(hit) = self.cache.lock().expect("cache lock").get(iso) {
            return Ok((hit, true));
        }
        // extract outside the lock: concurrent first-queries of one isovalue
        // may each extract (both count as misses, last insert wins), but no
        // request ever blocks behind another's extraction
        let result = self.db.extract(iso)?;
        let surface = CachedSurface {
            mesh: result.mesh,
            active_metacells: result.report.total_active_metacells(),
        };
        let arc = self.cache.lock().expect("cache lock").insert(iso, surface);
        Ok((arc, false))
    }
}

/// A running server: the bound address plus the accept-loop handle.
///
/// Dropping the handle without calling [`IsoServer::stop`] leaves the accept
/// loop running detached until the process exits (what the CLI's foreground
/// `serve` does by parking forever).
pub struct IsoServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_loop: Option<JoinHandle<()>>,
    report: Arc<dyn Fn() -> ServerReport + Send + Sync>,
}

impl IsoServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving
    /// `db`. Returns once the listener is bound and accepting.
    pub fn bind<S: ScalarValue>(
        db: ClusterDatabase<S>,
        addr: impl ToSocketAddrs,
        opts: ServeOptions,
    ) -> io::Result<IsoServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        // polling accept loop: nonblocking listener + short sleep lets
        // `stop()` take effect without a wake-up connection
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let state = Arc::new(State {
            db,
            cache: Mutex::new(ResultCache::new(opts.cache_bytes)),
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            mesh_requests: AtomicU64::new(0),
            frame_requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
        });
        let report_state = state.clone();
        let loop_shutdown = shutdown.clone();
        let accept_loop = std::thread::Builder::new()
            .name("oociso-accept".to_string())
            .spawn(move || accept_loop(listener, state, loop_shutdown))?;
        Ok(IsoServer {
            addr,
            shutdown,
            accept_loop: Some(accept_loop),
            report: Arc::new(move || report_state.report()),
        })
    }

    /// The address the server actually bound (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Server counters, as a stats request would see them.
    pub fn report(&self) -> ServerReport {
        (self.report)()
    }

    /// Stop accepting and join the accept loop. Connections already being
    /// served finish their current request loop on their own threads.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_loop.take() {
            let _ = h.join();
        }
    }

    /// Block this thread forever (foreground serving).
    pub fn park(self) -> ! {
        loop {
            std::thread::park();
        }
    }
}

fn accept_loop<S: ScalarValue>(
    listener: TcpListener,
    state: Arc<State<S>>,
    shutdown: Arc<AtomicBool>,
) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                state.connections.fetch_add(1, Ordering::Relaxed);
                let state = state.clone();
                let _ = std::thread::Builder::new()
                    .name("oociso-conn".to_string())
                    .spawn(move || {
                        // connection errors (peer vanished mid-frame) end the
                        // handler; the server itself is unaffected
                        let _ = handle_connection(stream, &state);
                    });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// A computed response: either a message still to encode, or a frame
/// pre-encoded from borrowed data (the cache-hit path, which must not clone
/// the cached mesh).
enum Reply {
    Msg(Message),
    Encoded(Vec<u8>),
}

/// Serve one connection until EOF, a hard I/O error, or an unrecoverable
/// protocol violation. Requests are read under [`MAX_REQUEST_PAYLOAD`]:
/// a hostile length header is rejected before any payload allocation.
fn handle_connection<S: ScalarValue>(mut stream: TcpStream, state: &State<S>) -> io::Result<()> {
    stream.set_nodelay(true)?;
    loop {
        let frame = match read_frame_limited(&mut stream, MAX_REQUEST_PAYLOAD)? {
            None => return Ok(()), // clean EOF between frames
            Some(f) => f,
        };
        let (reply, close) = match frame {
            FrameIn::Ok(msg) => (respond(state, msg), false),
            FrameIn::Violation {
                code,
                detail,
                close,
            } => (Reply::Msg(Message::Error { code, detail }), close),
        };
        if matches!(reply, Reply::Msg(Message::Error { .. })) {
            state.errors.fetch_add(1, Ordering::Relaxed);
        }
        state.requests.fetch_add(1, Ordering::Relaxed);
        let frame_bytes = match reply {
            Reply::Msg(msg) => encode_frame(&msg),
            Reply::Encoded(bytes) => bytes,
        };
        stream.write_all(&frame_bytes)?;
        stream.flush()?;
        state
            .bytes_out
            .fetch_add(frame_bytes.len() as u64, Ordering::Relaxed);
        if close {
            return Ok(());
        }
    }
}

/// Largest viewport a frame request may ask for, in pixels. A framebuffer
/// is 8 B/px and the response roughly triples that (buffer + regions +
/// encoded payload), so this bounds a single well-formed request's
/// allocations to ~200 MB instead of letting a 16384² ask commit gigabytes.
const MAX_FRAME_PIXELS: usize = 8 << 20;

/// Compute the response for one well-formed request.
fn respond<S: ScalarValue>(state: &State<S>, msg: Message) -> Reply {
    match msg {
        Message::MeshRequest { iso, region } => {
            state.mesh_requests.fetch_add(1, Ordering::Relaxed);
            match state.surface(iso) {
                // no region: serialize straight from the shared cached mesh
                Ok((surface, cache_hit)) => match region {
                    None => Reply::Encoded(encode_mesh_response_frame(
                        cache_hit,
                        surface.active_metacells,
                        &surface.mesh,
                    )),
                    Some(r) => {
                        let (lo, hi) = r.corners();
                        Reply::Msg(Message::MeshResponse {
                            cache_hit,
                            active_metacells: surface.active_metacells,
                            mesh: surface.mesh.filter_region(lo, hi),
                        })
                    }
                },
                Err(e) => Reply::Msg(Message::Error {
                    code: ERR_INTERNAL,
                    detail: format!("extraction failed: {e}"),
                }),
            }
        }
        Message::FrameRequest { iso, params } => {
            state.frame_requests.fetch_add(1, Ordering::Relaxed);
            let (w, h) = (params.width as usize, params.height as usize);
            let (cols, rows) = (params.tile_cols as usize, params.tile_rows as usize);
            if w == 0
                || h == 0
                || w.saturating_mul(h) > MAX_FRAME_PIXELS
                || cols == 0
                || rows == 0
                || w % cols != 0
                || h % rows != 0
            {
                return Reply::Msg(Message::Error {
                    code: ERR_MALFORMED,
                    detail: format!(
                        "bad viewport {w}x{h} in {cols}x{rows} tiles (pixel cap {MAX_FRAME_PIXELS})"
                    ),
                });
            }
            match state.surface(iso) {
                Ok((surface, cache_hit)) => {
                    let mut fb = Framebuffer::new(w, h);
                    if !surface.mesh.is_empty() {
                        let camera = Camera::orbiting(
                            &surface.mesh.bounds(),
                            params.azimuth,
                            params.elevation,
                            params.distance,
                        );
                        rasterize_mesh(&surface.mesh, &camera, [0.9, 0.78, 0.5], &mut fb);
                    }
                    let tiles = TileLayout::new(cols, rows, w, h);
                    Reply::Msg(Message::FrameResponse {
                        cache_hit,
                        width: params.width,
                        height: params.height,
                        regions: tiles.shard(&fb),
                    })
                }
                Err(e) => Reply::Msg(Message::Error {
                    code: ERR_INTERNAL,
                    detail: format!("extraction failed: {e}"),
                }),
            }
        }
        Message::StatsRequest => Reply::Msg(Message::StatsResponse(state.report())),
        Message::Ping { payload } => Reply::Msg(Message::Pong { payload }),
        // a client sending server-to-client messages is confused
        other => Reply::Msg(Message::Error {
            code: ERR_MALFORMED,
            detail: format!("unexpected client message type {}", other.msg_type()),
        }),
    }
}
