//! The multi-threaded TCP query server.
//!
//! One accept loop, one OS thread per connection (the paper's cluster serves
//! a handful of display clients; thread-per-connection keeps the handler a
//! plain blocking loop). Every handler shares one [`oociso_core::ClusterDatabase`]
//! — extraction already fans out across node threads and per-node worker
//! pools internally, so concurrent requests ride the existing streaming
//! extraction path — plus one [`ResultCache`] behind a mutex (held only for
//! lookup/insert, never across an extraction).
//!
//! With [`ServeOptions::lod_ratios`] configured the server builds the LOD
//! pyramid once per cache-missed isovalue (post-weld, via
//! `ClusterDatabase::extract_lods`), caches every level separately, serves
//! mesh requests at their requested `lod`, and picks per-tile levels for
//! frame requests by projected screen-space error.
//!
//! ## Overload and failure behavior
//!
//! The server never queues a request behind an unbounded backlog. Admission
//! control is explicit: cache misses (the expensive path — a disk-backed
//! extraction or a re-decimation) must win one of
//! [`ServeOptions::extraction_slots`]; a miss that can't is answered with a
//! structured [`ERR_BUSY`] carrying a retry-after hint derived from recent
//! miss cost — or, with [`ServeOptions::degrade`] set, satisfied from a
//! cached **coarser** LOD level and flagged `degraded` in the response.
//! Connections beyond [`ServeOptions::max_connections`] get one `ERR_BUSY`
//! reply and a clean close. Cache hits are always served: they cost
//! microseconds and shedding them would gain nothing.
//!
//! Per-connection read/write deadlines bound slow or stalled peers
//! (slowloris defense), and [`IsoServer::drain`] gives `stop()` a graceful
//! phase: stop accepting, let in-flight requests finish under a deadline,
//! then close. Every shed/degraded/timed-out/drained event is counted in
//! [`ServerReport`]. See `docs/serve.md` ("Overload & failure semantics")
//! and `docs/robustness.md`.

use crate::cache::{CachedSurface, ResultCache};
use crate::protocol::{
    encode_frame_at, encode_mesh_chunk_frame, encode_mesh_response_frame,
    encode_stats_response_frame, read_frame_limited, FrameIn, FrameParams, Message, Region,
    ServerReport, TraceEvent, ERR_BAD_BACKEND, ERR_BAD_LOD, ERR_BUSY, ERR_INTERNAL, ERR_MALFORMED,
    MAX_LOD_LEVELS, MAX_REQUEST_PAYLOAD, MIN_PROGRESSIVE_VERSION,
};
use oociso_cluster::LodSpec;
use oociso_core::ClusterDatabase;
use oociso_march::Backend;
use oociso_obs::{
    Counter, Histogram, Logger, Registry, Span, Trace, TraceJournal, DEFAULT_TRACE_EVENTS,
};
use oociso_render::{rasterize_mesh, select_tile_levels, Camera, Framebuffer, TileLayout};
use oociso_volume::ScalarValue;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Result-cache byte budget (default 256 MiB).
    pub cache_bytes: u64,
    /// Extra LOD pyramid levels to build and serve, as vertex-count ratios
    /// of the full mesh (strictly decreasing, at most
    /// [`MAX_LOD_LEVELS`]` - 1` entries). Empty (the default) serves level 0
    /// only, exactly like a v1 server.
    pub lod_ratios: Vec<f64>,
    /// Screen-space error budget (pixels) for per-tile LOD selection in
    /// frame mode. Only meaningful with `lod_ratios` set.
    pub lod_tolerance_px: f32,
    /// Concurrent cache-miss extractions admitted at once (`Some(0)` sheds
    /// every miss — useful for tests and read-only replicas; `None`, the
    /// default, admits all). Cache hits are never gated: they cost
    /// microseconds and hold no slot.
    pub extraction_slots: Option<u32>,
    /// Concurrently served connections admitted at once. A connection over
    /// the cap is answered with one structured [`ERR_BUSY`] and closed —
    /// never silently dropped. `None` (the default) admits all.
    pub max_connections: Option<u32>,
    /// Graceful degradation: a mesh request that misses the cache but can't
    /// win an extraction slot is served from the finest *cached coarser*
    /// LOD level of the same isovalue — flagged `degraded` with the
    /// `served_lod` it actually got — instead of being shed. Off by
    /// default.
    pub degrade: bool,
    /// Mid-frame socket read deadline: a peer that starts a frame and then
    /// stalls (slowloris) is disconnected and counted `timed_out`. Default
    /// 30 s; `None` waits forever (the pre-v3 behavior).
    pub read_timeout: Option<Duration>,
    /// Socket write deadline for responses (a reader that stops draining a
    /// multi-hundred-MB mesh can't pin a handler forever). Default 30 s.
    pub write_timeout: Option<Duration>,
    /// Close connections that sit idle *between* frames longer than this
    /// (counted `timed_out`). `None` (the default) keeps them forever.
    pub idle_timeout: Option<Duration>,
    /// Extraction backend for requests that carry no selector — every
    /// pre-v4 request, and v4 mesh requests with the selector omitted.
    /// Frame requests always use this backend (they have no wire selector).
    /// v4 mesh requests may override it per request; each backend's results
    /// cache under its own keys, so mixed workloads never collide. Default
    /// [`Backend::Mc`].
    pub backend: Backend,
    /// Slow-query threshold in milliseconds: a request whose end-to-end
    /// wall time reaches it is logged as a `slow_query` warning and its
    /// trace retained in the slow journal (even when the client sent no
    /// trace id). 0 disables. Default 1000.
    pub slow_ms: u64,
    /// How many finished request traces the trace journal retains for
    /// [`Message::TraceRequest`] lookups. Default 64.
    pub trace_buffer: usize,
    /// Structured log sink for operational events (`accept_backoff`,
    /// `slow_query`, `drain_timeout`). Default logs to stderr; tests
    /// install an `oociso_obs::CaptureSink` to assert on events.
    pub logger: Logger,
    /// Nonblocking reactor core: `N > 0` serves with `N` epoll event-loop
    /// threads (Linux only), each owning a set of connections — request
    /// pipelining, bounded outbound queues, no per-connection thread. `0`
    /// (the library default) keeps the classic thread-per-connection core.
    /// The CLI defaults to the reactor (`serve --threaded` opts out). On
    /// non-Linux targets a nonzero value falls back to the threaded core.
    pub reactor_threads: usize,
    /// Extraction/render worker threads behind the reactor (cache misses
    /// and rasterization run here; the event loops never block on them).
    /// `0` (the default) sizes the pool automatically. Ignored by the
    /// threaded core, whose connection threads do their own work.
    pub reactor_workers: usize,
    /// Per-connection outbound byte budget (reactor only): once a client's
    /// queued-but-unsent responses exceed it, the reactor stops *reading*
    /// that client until the queue drains below half — backpressure, so a
    /// pipelining client that never reads cannot balloon server memory.
    /// Default 8 MiB.
    pub outbound_budget: usize,
    /// Speculative cache warming for interactive isovalue scrubs: after a
    /// cache-miss extraction at isovalue `v` completes, enqueue low-priority
    /// warm jobs for `v - δ` and `v + δ` (the pyramid of `v` itself is
    /// already fully cached by the miss). Warm jobs run on a single
    /// background thread, **never take the last extraction slot**, are
    /// skipped when the target is already resident or no spare slot exists,
    /// and insert behind the recency of real traffic — so warming can slow
    /// down nothing and evict nothing a client asked for. Tracked by the
    /// `speculative_{started,completed,cancelled,hits}_total` metrics
    /// family. `None` (the default) disables warming.
    pub warm_delta: Option<f32>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            cache_bytes: 256 << 20,
            lod_ratios: Vec::new(),
            lod_tolerance_px: 1.0,
            extraction_slots: None,
            max_connections: None,
            degrade: false,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            idle_timeout: None,
            backend: Backend::Mc,
            slow_ms: 1000,
            trace_buffer: 64,
            logger: Logger::stderr(),
            reactor_threads: 0,
            reactor_workers: 0,
            outbound_budget: 8 << 20,
            warm_delta: None,
        }
    }
}

/// Shared shutdown/drain flags and the live-connection gauge — what
/// [`IsoServer::drain`] coordinates with the accept loop and every handler.
pub(crate) struct Control {
    /// Hard stop: accept loop exits, handlers close at the next frame
    /// boundary or poll tick.
    pub(crate) shutdown: AtomicBool,
    /// Graceful phase: accept loop exits, handlers finish the request they
    /// are on (replies counted `drained`) and close at the frame boundary.
    pub(crate) draining: AtomicBool,
    /// Connections currently inside a handler (the admission-cap gauge and
    /// what drain waits on).
    pub(crate) live: AtomicU64,
    /// Out-of-band wakeups registered by blocking serving cores (the
    /// reactor's eventfd doorbells), rung whenever a flag above flips so a
    /// parked event loop notices immediately instead of at its next tick.
    pub(crate) wakers: Mutex<Vec<Box<dyn Fn() + Send + Sync>>>,
}

impl Control {
    pub(crate) fn wake_all(&self) {
        for w in self.wakers.lock().expect("wakers lock").iter() {
            w();
        }
    }
}

/// The server's reporting counters, all living in its [`Registry`] (each
/// server owns its own registry so parallel test servers never alias). The
/// handles are resolved once at bind so the hot path never takes the
/// registry lock. [`ServerReport`] reads the same handles — the metrics
/// exposition and the stats response can never disagree.
pub(crate) struct Counters {
    pub(crate) connections: Counter,
    pub(crate) requests: Counter,
    pub(crate) mesh_requests: Counter,
    pub(crate) frame_requests: Counter,
    pub(crate) errors: Counter,
    pub(crate) bytes_out: Counter,
    pub(crate) shed: Counter,
    pub(crate) degraded: Counter,
    pub(crate) timed_out: Counter,
    pub(crate) drained: Counter,
    pub(crate) accept_backoffs: Counter,
    /// Warm jobs that actually began an extraction.
    pub(crate) spec_started: Counter,
    /// Warm extractions whose pyramid landed in the cache.
    pub(crate) spec_completed: Counter,
    /// Warm jobs dropped without completing: target already resident, no
    /// spare slot, queue overflow, or a failed extraction.
    pub(crate) spec_cancelled: Counter,
}

impl Counters {
    fn resolve(reg: &Registry) -> Counters {
        Counters {
            connections: reg.counter("connections_total"),
            requests: reg.counter("requests_total"),
            mesh_requests: reg.counter("mesh_requests_total"),
            frame_requests: reg.counter("frame_requests_total"),
            errors: reg.counter("errors_total"),
            bytes_out: reg.counter("bytes_out_total"),
            shed: reg.counter("shed_total"),
            degraded: reg.counter("degraded_total"),
            timed_out: reg.counter("timed_out_total"),
            drained: reg.counter("drained_total"),
            accept_backoffs: reg.counter("accept_backoffs_total"),
            spec_started: reg.counter("speculative_started_total"),
            spec_completed: reg.counter("speculative_completed_total"),
            spec_cancelled: reg.counter("speculative_cancelled_total"),
        }
    }
}

/// Cap on queued warm jobs: a fast scrub can outrun the warmer, and stale
/// neighbors of isovalues the user has already scrubbed past are worthless —
/// overflow drops the *oldest* job (counted `speculative_cancelled_total`).
const WARM_QUEUE_CAP: usize = 64;

/// How long the warmer tolerates slot contention before cancelling a job:
/// up to [`WARM_DEFER_ATTEMPTS`] polls, [`WARM_DEFER_INTERVAL`] apart
/// (~1 s total). The common transient — the miss that scheduled the job
/// still draining its own slot — clears within one or two polls; a slot
/// pool that stays full for the whole window is real load, and warming
/// yields to it.
const WARM_DEFER_ATTEMPTS: u32 = 50;
const WARM_DEFER_INTERVAL: Duration = Duration::from_millis(20);

/// The speculative-warming work queue: isovalue neighbors enqueued after
/// real cache misses, drained by the single `oociso-warm` thread whenever it
/// can win a *spare* (never the last) extraction slot.
pub(crate) struct WarmQueue {
    /// Scrub-neighbor distance δ.
    delta: f32,
    /// Pending `(iso bits, backend id)` jobs, oldest first.
    jobs: Mutex<VecDeque<(u32, u8)>>,
    /// Rung on push and on drain/shutdown so the warmer parks cheaply.
    cv: Condvar,
}

/// Shared state behind every connection handler.
pub(crate) struct State<S: ScalarValue> {
    db: ClusterDatabase<S>,
    lods: LodSpec,
    lod_tolerance_px: f32,
    cache: Mutex<ResultCache>,
    pub(crate) ctl: Arc<Control>,
    extraction_slots: Option<u32>,
    pub(crate) max_connections: Option<u32>,
    degrade: bool,
    pub(crate) default_backend: Backend,
    pub(crate) read_timeout: Option<Duration>,
    pub(crate) write_timeout: Option<Duration>,
    pub(crate) idle_timeout: Option<Duration>,
    /// Per-server metrics registry (counters below plus the latency and
    /// extraction-phase histograms; rendered by [`Message::MetricsRequest`]).
    pub(crate) metrics: Registry,
    pub(crate) c: Counters,
    /// End-to-end request wall time, decode to written reply, in µs.
    pub(crate) request_latency_us: Histogram,
    /// Cache-miss extraction wall time (full pyramid build), in µs.
    extract_latency_us: Histogram,
    /// No-disk pyramid re-decimation wall time, in µs.
    rebuild_latency_us: Histogram,
    /// Structured operational log.
    pub(crate) logger: Logger,
    /// Finished traces of wire-traced requests (trace id != 0).
    pub(crate) recent: TraceJournal,
    /// Finished traces of slow requests, traced or not.
    pub(crate) slow: TraceJournal,
    /// Slow-query threshold (ms); 0 disables.
    pub(crate) slow_ms: u64,
    /// Extractions/rebuilds currently holding a slot.
    inflight_miss: AtomicU64,
    /// Smoothed wall-clock of recent **full** cache-miss extractions, in ms
    /// — the source of the `ERR_BUSY` retry-after hint. Cheap work that
    /// costs a fraction of a real miss (pyramid re-decimations, degraded
    /// coarse serves, warm extractions) is deliberately excluded: letting
    /// it sample the EWMA drags the hint far below honest extraction cost
    /// and invites retry stampedes.
    miss_cost_ms: AtomicU64,
    /// Speculative-warming queue; `None` when warming is disabled.
    warm: Option<Arc<WarmQueue>>,
}

/// RAII extraction-slot lease: decrements the in-flight gauge on drop, so a
/// panicking or erroring extraction can never leak its slot. Owns an `Arc`
/// of the state, so a won slot can be shipped to a reactor worker thread
/// and still release on any exit path there.
pub(crate) struct SlotGuard<S: ScalarValue> {
    state: Arc<State<S>>,
    counted: bool,
}

impl<S: ScalarValue> Drop for SlotGuard<S> {
    fn drop(&mut self) {
        if self.counted {
            self.state.inflight_miss.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Floor of the `ERR_BUSY` retry-after hint, in milliseconds. Critically,
/// this is also the **cold-start** hint: before any cache miss has
/// completed, the EWMA has no samples (`miss_cost_ms == 0`), and a raw
/// hint of 0 ms would invite every shed client to retry immediately — a
/// synchronized re-storm against a server that just declared itself
/// overloaded. A shed request is therefore never told to retry sooner than
/// this, samples or not.
pub(crate) const RETRY_HINT_FLOOR_MS: u64 = 25;

/// Ceiling of the retry-after hint: even when recent misses cost minutes,
/// clients are invited back within this bound (they will simply be shed
/// again, cheaply, if the server is still busy).
pub(crate) const RETRY_HINT_CEIL_MS: u64 = 10_000;

/// Clamp a smoothed miss cost (0 = no samples yet) into the hint window.
pub(crate) fn clamp_retry_hint(miss_cost_ms: u64) -> u32 {
    miss_cost_ms.clamp(RETRY_HINT_FLOOR_MS, RETRY_HINT_CEIL_MS) as u32
}

/// What admission control decided for one mesh request.
pub(crate) enum MeshOutcome {
    Serve {
        surface: Arc<CachedSurface>,
        cache_hit: bool,
        served_lod: u16,
        degraded: bool,
    },
    Busy {
        retry_after_ms: u32,
    },
}

/// What admission control decided for one frame request.
pub(crate) enum FrameOutcome {
    Serve {
        levels: Vec<Arc<CachedSurface>>,
        cache_hit: bool,
    },
    Busy {
        retry_after_ms: u32,
    },
}

/// A mesh request's admission verdict with the *work* still unexecuted —
/// what the reactor dispatches on. [`State::surface`] (the threaded path)
/// and the reactor worker both complete an `Extract` through
/// [`State::pyramid_for`], so the two cores share admission and extraction
/// semantics by construction, not by parallel maintenance.
pub(crate) enum MeshAdmit<S: ScalarValue> {
    /// Hit, degraded serve, or busy: the outcome is already in hand.
    Ready(MeshOutcome),
    /// Miss that won a slot: extraction still to run (off-loop, for the
    /// reactor; inline, for a connection thread).
    Extract { slot: SlotGuard<S> },
}

/// A frame request's admission verdict (see [`MeshAdmit`]).
pub(crate) enum FrameAdmit<S: ScalarValue> {
    /// The whole pyramid is resident (booked as one hit, levels touched).
    Hit(Vec<Arc<CachedSurface>>),
    Busy {
        retry_after_ms: u32,
    },
    /// Miss holding a slot; `resident_full` is the still-cached level 0 to
    /// re-decimate from, if any (else a disk extraction is due).
    Extract {
        slot: SlotGuard<S>,
        resident_full: Option<Arc<CachedSurface>>,
    },
}

/// A v6 progressive request's admission verdict. A progressive serve
/// streams the pyramid **coarsest-first** down to the requested `lod`;
/// `resident`/`levels` vectors here are always in that stream order
/// (level `levels()-1` first), each a maximal contiguous cached prefix so
/// refinement never skips a level mid-stream.
pub(crate) enum ProgressiveAdmit<S: ScalarValue> {
    /// Every level from the coarsest down to the requested one is resident:
    /// the whole stream serves from cache (booked as one hit at `lod`,
    /// exactly what a plain mesh request costs).
    Ready { levels: Vec<Arc<CachedSurface>> },
    /// Miss that lost the slot race with nothing coarse to offer.
    Busy { retry_after_ms: u32 },
    /// Miss at capacity, but ([`ServeOptions::degrade`]) a cached coarse
    /// prefix exists: stream just that, the final chunk's `level` still
    /// above the requested `lod` — how a progressive client sees
    /// degradation.
    Degraded { resident: Vec<Arc<CachedSurface>> },
    /// Miss that won a slot: stream the resident coarse prefix (possibly
    /// empty) immediately, then the rest of the pyramid from the extraction
    /// this slot admits.
    Extract {
        resident: Vec<Arc<CachedSurface>>,
        slot: SlotGuard<S>,
    },
}

impl<S: ScalarValue> State<S> {
    /// Build the shared serving state: everything [`IsoServer::bind`] wires
    /// up except the listener and the serving threads. Factored out so unit
    /// tests can drive admission, extraction, and warming against a real
    /// database without binding a socket. Assumes `opts` already validated.
    pub(crate) fn new(db: ClusterDatabase<S>, opts: &ServeOptions) -> Arc<State<S>> {
        let ctl = Arc::new(Control {
            shutdown: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            live: AtomicU64::new(0),
            wakers: Mutex::new(Vec::new()),
        });
        let metrics = Registry::new();
        let c = Counters::resolve(&metrics);
        let request_latency_us = metrics.histogram("request_latency_us");
        let extract_latency_us = metrics.histogram("extract_latency_us");
        let rebuild_latency_us = metrics.histogram("rebuild_latency_us");
        let warm = opts.warm_delta.map(|delta| {
            Arc::new(WarmQueue {
                delta,
                jobs: Mutex::new(VecDeque::new()),
                cv: Condvar::new(),
            })
        });
        if let Some(q) = &warm {
            // drain/shutdown must wake a parked warmer immediately, not at
            // its next poll tick
            let q = q.clone();
            ctl.wakers
                .lock()
                .expect("wakers lock")
                .push(Box::new(move || q.cv.notify_all()));
        }
        Arc::new(State {
            db,
            lods: LodSpec {
                ratios: opts.lod_ratios.clone(),
            },
            lod_tolerance_px: opts.lod_tolerance_px,
            cache: Mutex::new(ResultCache::new(opts.cache_bytes)),
            ctl,
            extraction_slots: opts.extraction_slots,
            max_connections: opts.max_connections,
            degrade: opts.degrade,
            default_backend: opts.backend,
            read_timeout: opts.read_timeout,
            write_timeout: opts.write_timeout,
            idle_timeout: opts.idle_timeout,
            metrics,
            c,
            request_latency_us,
            extract_latency_us,
            rebuild_latency_us,
            logger: opts.logger.clone(),
            recent: TraceJournal::new(opts.trace_buffer.max(1)),
            slow: TraceJournal::new(32),
            slow_ms: opts.slow_ms,
            inflight_miss: AtomicU64::new(0),
            miss_cost_ms: AtomicU64::new(0),
            warm,
        })
    }

    /// Total levels served (1 = full resolution only).
    pub(crate) fn levels(&self) -> u16 {
        self.lods.levels() as u16
    }

    pub(crate) fn report(&self) -> ServerReport {
        let cache = self.cache.lock().expect("cache lock").stats();
        ServerReport {
            connections: self.c.connections.get(),
            requests: self.c.requests.get(),
            mesh_requests: self.c.mesh_requests.get(),
            frame_requests: self.c.frame_requests.get(),
            errors: self.c.errors.get(),
            bytes_out: self.c.bytes_out.get(),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_evictions: cache.evictions,
            cache_resident_bytes: cache.resident_bytes,
            cache_resident_entries: cache.resident_entries,
            lod_hits: cache.lod_hits,
            lod_misses: cache.lod_misses,
            shed: self.c.shed.get(),
            degraded: self.c.degraded.get(),
            timed_out: self.c.timed_out.get(),
            drained: self.c.drained.get(),
            accept_backoffs: self.c.accept_backoffs.get(),
            active_connections: self.ctl.live.load(Ordering::Relaxed),
            backend_hits: cache.backend_hits,
            backend_misses: cache.backend_misses,
        }
    }

    /// Render the full metrics exposition: the server's own registry (the
    /// gauges freshened first), the cache counters (owned by [`ResultCache`],
    /// so exposed from its stats rather than double-counted), and the
    /// process-global registry (queue-wait histograms recorded by the I/O
    /// layer, which has no handle on this server).
    pub(crate) fn metrics_text(&self) -> String {
        self.metrics
            .gauge("active_connections")
            .set(self.ctl.live.load(Ordering::Relaxed) as i64);
        self.metrics
            .gauge("inflight_miss")
            .set(self.inflight_miss.load(Ordering::Relaxed) as i64);
        let cache = self.cache.lock().expect("cache lock").stats();
        let mut out = self.metrics.render();
        for (name, v) in [
            ("cache_hits_total", cache.hits),
            ("cache_misses_total", cache.misses),
            ("cache_evictions_total", cache.evictions),
            // owned by the cache (promotion happens inside `get`), exposed
            // here next to its speculative_{started,completed,cancelled}
            // registry siblings
            ("speculative_hits_total", cache.speculative_hits),
        ] {
            out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        }
        for (name, v) in [
            ("cache_resident_bytes", cache.resident_bytes),
            ("cache_resident_entries", cache.resident_entries),
        ] {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
        }
        out.push_str(&oociso_obs::global().render());
        out
    }

    /// Build the trace-request reply: id 0 = the most recent wire-traced
    /// request, otherwise the id is looked up in the recent journal first,
    /// then among retained slow queries.
    pub(crate) fn trace_reply(&self, id: u64) -> Message {
        let found = if id == 0 {
            self.recent.latest()
        } else {
            self.recent.find(id).or_else(|| self.slow.find(id))
        };
        match found {
            Some(ft) => Message::TraceResponse {
                found: true,
                id: ft.id,
                total_us: ft.total.as_micros().min(u64::MAX as u128) as u64,
                dropped: ft.dropped,
                events: ft
                    .events
                    .iter()
                    .map(|e| TraceEvent {
                        id: e.id,
                        parent: e.parent,
                        name: e.name.to_string(),
                        start_us: e.start.as_micros().min(u64::MAX as u128) as u64,
                        dur_us: e.dur.as_micros().min(u64::MAX as u128) as u64,
                        fields: e.fields.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
                    })
                    .collect(),
            },
            None => Message::TraceResponse {
                found: false,
                id,
                total_us: 0,
                dropped: 0,
                events: Vec::new(),
            },
        }
    }

    /// Try to win one cache-miss slot. `None` means at capacity (the caller
    /// sheds or degrades); the returned guard releases the slot on drop.
    fn try_slot(self: &Arc<Self>) -> Option<SlotGuard<S>> {
        match self.extraction_slots {
            None => Some(SlotGuard {
                state: self.clone(),
                counted: false,
            }),
            Some(max) => self
                .inflight_miss
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                    (n < max as u64).then_some(n + 1)
                })
                .ok()
                .map(|_| SlotGuard {
                    state: self.clone(),
                    counted: true,
                }),
        }
    }

    /// Fold one observed cache-miss wall-clock into the smoothed cost the
    /// retry-after hint is derived from.
    fn note_miss_cost(&self, wall: Duration) {
        let ms = wall.as_millis().min(u64::MAX as u128) as u64;
        let old = self.miss_cost_ms.load(Ordering::Relaxed);
        let smoothed = if old == 0 { ms } else { (3 * old + ms) / 4 };
        self.miss_cost_ms.store(smoothed.max(1), Ordering::Relaxed);
    }

    /// The retry-after hint for a shed request: the smoothed cost of recent
    /// miss work, clamped to a sane window — before any miss completed, a
    /// conservative floor.
    pub(crate) fn retry_hint_ms(&self) -> u32 {
        clamp_retry_hint(self.miss_cost_ms.load(Ordering::Relaxed))
    }

    /// Try to win a **spare** extraction slot for speculative work: like
    /// [`State::try_slot`], but never the last one — a warm job must leave
    /// at least one slot free for a real request, so with one slot (or
    /// zero) configured warming simply never runs. Unlimited slots
    /// (`extraction_slots: None`) have no "last slot" to protect.
    pub(crate) fn try_warm_slot(self: &Arc<Self>) -> Option<SlotGuard<S>> {
        match self.extraction_slots {
            None => Some(SlotGuard {
                state: self.clone(),
                counted: false,
            }),
            Some(max) => self
                .inflight_miss
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                    (n + 1 < max as u64).then_some(n + 1)
                })
                .ok()
                .map(|_| SlotGuard {
                    state: self.clone(),
                    counted: true,
                }),
        }
    }

    /// Enqueue warm jobs for the scrub neighbors `iso ± δ` after a real
    /// cache miss at `iso` completed. Deduplicates against the pending
    /// queue; overflow drops the oldest job (a stale neighbor of an
    /// isovalue the user already scrubbed past), counted cancelled. No-op
    /// when warming is disabled.
    fn schedule_warm(&self, iso: f32, backend: Backend) {
        let Some(q) = &self.warm else { return };
        let mut jobs = q.jobs.lock().expect("warm queue lock");
        for neighbor in [iso - q.delta, iso + q.delta] {
            if !neighbor.is_finite() {
                continue;
            }
            let key = (neighbor.to_bits(), backend.id());
            if jobs.contains(&key) {
                continue;
            }
            if jobs.len() >= WARM_QUEUE_CAP {
                jobs.pop_front();
                self.c.spec_cancelled.inc();
            }
            jobs.push_back(key);
        }
        drop(jobs);
        q.cv.notify_one();
    }

    /// Run one dequeued warm job: skip (counted cancelled) when the target
    /// pyramid is already resident, and report `false` — job not consumed —
    /// when no spare slot can be won right now. The caller decides whether
    /// to defer or give up on contention; a real request wanting the
    /// capacity always outranks warming.
    pub(crate) fn warm_one(self: &Arc<Self>, iso_bits: u32, backend_id: u8) -> bool {
        let iso = f32::from_bits(iso_bits);
        let backend = Backend::from_id(backend_id).unwrap_or(self.default_backend);
        if self
            .cache
            .lock()
            .expect("cache lock")
            .peek(iso, backend.id(), 0)
            .is_some()
        {
            self.c.spec_cancelled.inc();
            return true;
        }
        let Some(slot) = self.try_warm_slot() else {
            return false;
        };
        self.c.spec_started.inc();
        let trace = Trace::detached();
        match self.warm_extract(iso, backend, &trace) {
            Ok(()) => self.c.spec_completed.inc(),
            Err(e) => {
                self.c.spec_cancelled.inc();
                self.logger.warn(
                    "serve",
                    "warm_failed",
                    "speculative extraction failed",
                    &[("iso", iso.to_string()), ("error", e.to_string())],
                );
            }
        }
        drop(slot);
        true
    }

    /// The speculative twin of [`State::extract_and_insert`]: extract the
    /// full pyramid and insert every level **speculatively** (behind the
    /// recency of real traffic, never evicting it). Deliberately feeds
    /// neither the miss-cost EWMA nor `extract_latency_us` — those describe
    /// what a *client-visible* miss costs — and never schedules further
    /// warming (no speculative cascades).
    fn warm_extract(&self, iso: f32, backend: Backend, trace: &Trace) -> io::Result<()> {
        let opts = oociso_cluster::ExtractOptions {
            lods: self.lods.clone(),
            backend,
            trace: trace.clone(),
            ..Default::default()
        };
        let (chain, report) = self.db.extract_lods_opts(iso, &opts)?;
        let active_metacells = report.total_active_metacells();
        let mut cache = self.cache.lock().expect("cache lock");
        for (i, level) in chain.into_levels().into_iter().enumerate() {
            cache.insert_speculative(
                iso,
                backend.id(),
                i as u16,
                CachedSurface {
                    mesh: level.mesh,
                    active_metacells,
                    world_error: level.cumulative_error.sqrt(),
                },
            );
        }
        Ok(())
    }

    /// Feed the extraction-phase histograms from the span durations the
    /// pipeline just recorded into `trace` — one registry-lock resolve per
    /// phase, on the miss path only (misses cost milliseconds-to-seconds;
    /// the lock costs nanoseconds).
    fn record_phases(&self, trace: &Trace) {
        for name in [
            "execute_plan",
            "triangulate",
            "weld",
            "merge_weld",
            "stitch",
            "lod",
        ] {
            let sum = trace.sum(name);
            if !sum.is_zero() {
                self.metrics
                    .histogram(&format!("phase_{name}_us"))
                    .record_duration(sum);
            }
        }
    }

    /// Extract the full pyramid for `iso` with `backend` and insert every
    /// level, returning the levels in order. Runs outside the cache lock.
    /// The extraction's span tree lands in `trace`.
    fn extract_and_insert(
        &self,
        iso: f32,
        backend: Backend,
        trace: &Trace,
    ) -> io::Result<Vec<Arc<CachedSurface>>> {
        let t0 = Instant::now();
        let opts = oociso_cluster::ExtractOptions {
            lods: self.lods.clone(),
            backend,
            trace: trace.clone(),
            ..Default::default()
        };
        let (chain, report) = self.db.extract_lods_opts(iso, &opts)?;
        let wall = t0.elapsed();
        self.extract_latency_us.record_duration(wall);
        self.record_phases(trace);
        self.note_miss_cost(wall);
        let active_metacells = report.total_active_metacells();
        let levels = {
            let mut cache = self.cache.lock().expect("cache lock");
            chain
                .into_levels()
                .into_iter()
                .enumerate()
                .map(|(i, level)| {
                    cache.insert(
                        iso,
                        backend.id(),
                        i as u16,
                        CachedSurface {
                            mesh: level.mesh,
                            active_metacells,
                            world_error: level.cumulative_error.sqrt(),
                        },
                    )
                })
                .collect()
        };
        // a real miss at `iso` is the scrub signal: warm its neighbors
        // (outside the cache lock; a no-op when warming is off)
        self.schedule_warm(iso, backend);
        Ok(levels)
    }

    /// Re-decimate the pyramid from an already-resident full-resolution
    /// mesh (deterministic, so byte-identical to the original levels) and
    /// insert the rebuilt coarse levels — the no-disk path when only they
    /// were evicted. Decimates **by reference** from the resident entry
    /// (same ladder `LodChain::build` walks: each level from the previous,
    /// targets as fractions of level 0), so the full mesh is never cloned
    /// and its cache entry is reused as level 0 untouched.
    fn rebuild_from_full(
        &self,
        iso: f32,
        backend: Backend,
        full: Arc<CachedSurface>,
        trace: &Trace,
    ) -> Vec<Arc<CachedSurface>> {
        let mut sp = trace.span("rebuild");
        sp.field("levels", self.lods.ratios.len() as u64);
        let base_vertices = full.mesh.num_vertices();
        let mut coarse: Vec<(oociso_march::IndexedMesh, f64)> = Vec::new();
        let mut cumulative = 0.0;
        for &ratio in &self.lods.ratios {
            let prev = coarse.last().map_or(&full.mesh, |(m, _)| m);
            let (mesh, stats) = oociso_march::decimate(
                prev,
                &oociso_march::DecimateOptions {
                    target_vertices: (base_vertices as f64 * ratio).ceil() as usize,
                    max_error: f64::INFINITY,
                },
            );
            cumulative += stats.max_error;
            coarse.push((mesh, cumulative));
        }
        // NOT a `note_miss_cost` sample: a re-decimation costs a fraction
        // of a disk-backed extraction, and during degraded storms rebuilds
        // dominate the miss stream — sampling them would drag the
        // `ERR_BUSY` retry hint far below honest extraction cost and
        // invite retry stampedes.
        self.rebuild_latency_us.record_duration(sp.finish());
        let mut cache = self.cache.lock().expect("cache lock");
        cache.touch(iso, backend.id(), 0);
        let mut levels = vec![full.clone()];
        for (i, (mesh, cumulative_error)) in coarse.into_iter().enumerate() {
            levels.push(cache.insert(
                iso,
                backend.id(),
                (i + 1) as u16,
                CachedSurface {
                    mesh,
                    active_metacells: full.active_metacells,
                    world_error: cumulative_error.sqrt(),
                },
            ));
        }
        levels
    }

    /// Produce the whole pyramid for a missed request: from the resident
    /// full mesh when possible, from a fresh extraction otherwise. Runs
    /// outside the cache lock (concurrent first-queries of one isovalue may
    /// each extract — both count as misses, last insert wins — but no
    /// request ever blocks behind another's extraction).
    pub(crate) fn pyramid_for(
        &self,
        iso: f32,
        backend: Backend,
        trace: &Trace,
    ) -> io::Result<Vec<Arc<CachedSurface>>> {
        let resident_full = self
            .cache
            .lock()
            .expect("cache lock")
            .peek(iso, backend.id(), 0);
        match resident_full {
            Some(full) => Ok(self.rebuild_from_full(iso, backend, full, trace)),
            None => self.extract_and_insert(iso, backend, trace),
        }
    }

    /// Level `lod` of the surface at `iso`, under admission control. A
    /// cache hit is always served (one accounted lookup against `lod`,
    /// exactly as before). A miss must win an extraction slot; at capacity
    /// the request degrades to the finest cached coarser level (when
    /// [`ServeOptions::degrade`] is set and one is resident — booked as a
    /// hit on the level actually served) or is shed with a retry hint.
    fn surface(
        self: &Arc<Self>,
        iso: f32,
        backend: Backend,
        lod: u16,
        trace: &Trace,
        root: &Span,
    ) -> io::Result<MeshOutcome> {
        match self.admit_mesh(iso, backend, lod, root) {
            MeshAdmit::Ready(outcome) => Ok(outcome),
            MeshAdmit::Extract { slot } => {
                let levels = self.pyramid_for(iso, backend, trace)?;
                drop(slot);
                Ok(MeshOutcome::Serve {
                    surface: levels[lod as usize].clone(),
                    cache_hit: false,
                    served_lod: lod,
                    degraded: false,
                })
            }
        }
    }

    /// The admission half of [`State::surface`]: probe the cache, try for a
    /// slot, degrade or shed at capacity. Everything here is cheap (mutexed
    /// lookups and atomics, no extraction), so the reactor runs it inline
    /// on the event loop; only an `Extract` verdict leaves for a worker.
    pub(crate) fn admit_mesh(
        self: &Arc<Self>,
        iso: f32,
        backend: Backend,
        lod: u16,
        root: &Span,
    ) -> MeshAdmit<S> {
        let t = Instant::now();
        let hit = self
            .cache
            .lock()
            .expect("cache lock")
            .get(iso, backend.id(), lod);
        root.annotate(
            "cache",
            t.elapsed(),
            &[("hit", hit.is_some() as u64), ("lod", lod as u64)],
        );
        if let Some(hit) = hit {
            return MeshAdmit::Ready(MeshOutcome::Serve {
                surface: hit,
                cache_hit: true,
                served_lod: lod,
                degraded: false,
            });
        }
        match self.try_slot() {
            Some(slot) => MeshAdmit::Extract { slot },
            None => {
                if self.degrade {
                    let coarser = self.cache.lock().expect("cache lock").coarser(
                        iso,
                        backend.id(),
                        lod,
                        self.levels(),
                    );
                    if let Some((level, surface)) = coarser {
                        self.c.degraded.inc();
                        root.annotate("degrade", Duration::ZERO, &[("served_lod", level as u64)]);
                        return MeshAdmit::Ready(MeshOutcome::Serve {
                            surface,
                            cache_hit: true,
                            served_lod: level,
                            degraded: true,
                        });
                    }
                }
                self.c.shed.inc();
                MeshAdmit::Ready(MeshOutcome::Busy {
                    retry_after_ms: self.retry_hint_ms(),
                })
            }
        }
    }

    /// The admission half of a v6 progressive serve. Accounted as exactly
    /// one lookup against the requested `lod` — a hit only when *every*
    /// level from the coarsest down to `lod` is resident (all of them are
    /// streamed, so all must be in hand; the coarser levels are touched so
    /// a scrub-heavy workload keeps its pyramids hot). Anything less is a
    /// miss: the resident coarse prefix streams immediately and the rest
    /// needs a slot, degrades to prefix-only, or is shed — same ladder as
    /// [`State::admit_mesh`].
    pub(crate) fn admit_progressive(
        self: &Arc<Self>,
        iso: f32,
        backend: Backend,
        lod: u16,
        root: &Span,
    ) -> ProgressiveAdmit<S> {
        let want = self.levels();
        let t = Instant::now();
        let (resident, full_hit) = {
            let mut cache = self.cache.lock().expect("cache lock");
            let mut out = Vec::new();
            for level in (lod..want).rev() {
                match cache.peek(iso, backend.id(), level) {
                    Some(s) => out.push(s),
                    None => break,
                }
            }
            let full = out.len() == (want - lod) as usize;
            if full {
                // the accounted lookup (also promotes a speculatively
                // warmed entry, counting `speculative_hits`)
                let _ = cache.get(iso, backend.id(), lod);
                for level in lod + 1..want {
                    cache.touch(iso, backend.id(), level);
                }
            } else {
                cache.account(backend.id(), lod, false);
            }
            (out, full)
        };
        root.annotate(
            "cache",
            t.elapsed(),
            &[("hit", full_hit as u64), ("lod", lod as u64)],
        );
        if full_hit {
            return ProgressiveAdmit::Ready { levels: resident };
        }
        match self.try_slot() {
            Some(slot) => ProgressiveAdmit::Extract { resident, slot },
            None => {
                if self.degrade && !resident.is_empty() {
                    self.c.degraded.inc();
                    let served = want - resident.len() as u16;
                    root.annotate("degrade", Duration::ZERO, &[("served_lod", served as u64)]);
                    return ProgressiveAdmit::Degraded { resident };
                }
                self.c.shed.inc();
                ProgressiveAdmit::Busy {
                    retry_after_ms: self.retry_hint_ms(),
                }
            }
        }
    }

    /// Every pyramid level at `iso` for the frame path, under admission
    /// control. The request is accounted as exactly one lookup against
    /// level 0 (what a v1 frame request cost): a hit only when the *whole*
    /// pyramid is resident, a miss otherwise — the levels are peeked first,
    /// so a partially evicted pyramid never books a hit for a request that
    /// still has to rebuild. When level 0 survived but a coarser level was
    /// evicted, the pyramid is re-decimated from the resident full mesh —
    /// deterministic, so byte-identical to the original levels — without
    /// touching disk. A miss that can't win a slot is shed (frames have no
    /// degraded form: per-tile LOD selection needs the whole pyramid).
    fn all_levels(
        self: &Arc<Self>,
        iso: f32,
        trace: &Trace,
        root: &Span,
    ) -> io::Result<FrameOutcome> {
        match self.admit_frame(iso, root) {
            FrameAdmit::Hit(levels) => Ok(FrameOutcome::Serve {
                levels,
                cache_hit: true,
            }),
            FrameAdmit::Busy { retry_after_ms } => Ok(FrameOutcome::Busy { retry_after_ms }),
            FrameAdmit::Extract {
                slot,
                resident_full,
            } => {
                let levels = self.complete_frame_extract(iso, resident_full, trace)?;
                drop(slot);
                Ok(FrameOutcome::Serve {
                    levels,
                    cache_hit: false,
                })
            }
        }
    }

    /// The admission half of [`State::all_levels`] (see [`State::admit_mesh`]
    /// for why the split exists).
    pub(crate) fn admit_frame(self: &Arc<Self>, iso: f32, root: &Span) -> FrameAdmit<S> {
        let want = self.levels() as usize;
        // frame requests carry no backend selector: they render the server's
        // default backend's pyramid
        let backend = self.default_backend;
        let t = Instant::now();
        let resident_full = {
            let mut cache = self.cache.lock().expect("cache lock");
            let mut levels = Vec::with_capacity(want);
            for lod in 0..want {
                match cache.peek(iso, backend.id(), lod as u16) {
                    Some(l) => levels.push(l),
                    None => break,
                }
            }
            if levels.len() == want {
                cache.account(backend.id(), 0, true);
                // the request used every level: refresh them all, or the
                // coarse levels a frame-heavy workload relies on would
                // decay to LRU victims despite being hot
                for lod in 0..want {
                    cache.touch(iso, backend.id(), lod as u16);
                }
                root.annotate("cache", t.elapsed(), &[("hit", 1)]);
                return FrameAdmit::Hit(levels);
            }
            cache.account(backend.id(), 0, false);
            levels.into_iter().next() // level 0, if it was resident
        };
        root.annotate("cache", t.elapsed(), &[("hit", 0)]);
        match self.try_slot() {
            Some(slot) => FrameAdmit::Extract {
                slot,
                resident_full,
            },
            None => {
                self.c.shed.inc();
                FrameAdmit::Busy {
                    retry_after_ms: self.retry_hint_ms(),
                }
            }
        }
    }

    /// Execute the extraction a [`FrameAdmit::Extract`] verdict committed
    /// to: re-decimate from the resident full mesh when possible, hit the
    /// disk otherwise. The caller drops the slot afterwards.
    pub(crate) fn complete_frame_extract(
        &self,
        iso: f32,
        resident_full: Option<Arc<CachedSurface>>,
        trace: &Trace,
    ) -> io::Result<Vec<Arc<CachedSurface>>> {
        let backend = self.default_backend;
        match resident_full {
            Some(full) => Ok(self.rebuild_from_full(iso, backend, full, trace)),
            None => self.extract_and_insert(iso, backend, trace),
        }
    }
}

/// A running server: the bound address plus the accept-loop handle.
///
/// Dropping the handle without calling [`IsoServer::stop`] leaves the accept
/// loop running detached until the process exits (what the CLI's foreground
/// `serve` does by parking forever).
pub struct IsoServer {
    addr: SocketAddr,
    ctl: Arc<Control>,
    accept_loop: Option<JoinHandle<()>>,
    /// The speculative-warming thread, when warming is enabled (exits on
    /// drain/shutdown; joined so its extraction finishes before teardown).
    warmer: Option<JoinHandle<()>>,
    report: Arc<dyn Fn() -> ServerReport + Send + Sync>,
    metrics: Arc<dyn Fn() -> String + Send + Sync>,
    logger: Logger,
}

impl IsoServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving
    /// `db`. Returns once the listener is bound and accepting.
    pub fn bind<S: ScalarValue>(
        db: ClusterDatabase<S>,
        addr: impl ToSocketAddrs,
        opts: ServeOptions,
    ) -> io::Result<IsoServer> {
        if opts.lod_ratios.len() >= MAX_LOD_LEVELS {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "at most {} LOD ratios (got {})",
                    MAX_LOD_LEVELS - 1,
                    opts.lod_ratios.len()
                ),
            ));
        }
        // reject malformed ladders here, not as a per-request panic deep in
        // LodChain::build: each ratio must be finite, in (0, 1), and
        // strictly decreasing
        let mut prev = 1.0f64;
        for &r in &opts.lod_ratios {
            if !r.is_finite() || r <= 0.0 || r >= prev {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!(
                        "LOD ratios must be finite, in (0, 1), strictly decreasing: {:?}",
                        opts.lod_ratios
                    ),
                ));
            }
            prev = r;
        }
        if let Some(delta) = opts.warm_delta {
            if !delta.is_finite() || delta <= 0.0 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("warm delta must be finite and positive (got {delta})"),
                ));
            }
        }
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        // polling accept loop: nonblocking listener + short sleep lets
        // `stop()` take effect without a wake-up connection
        listener.set_nonblocking(true)?;
        let state = State::new(db, &opts);
        let ctl = state.ctl.clone();
        let warmer = match state.warm.is_some() {
            true => Some(
                std::thread::Builder::new()
                    .name("oociso-warm".to_string())
                    .spawn({
                        let state = state.clone();
                        move || warmer_loop(state)
                    })?,
            ),
            false => None,
        };
        let report_state = state.clone();
        let metrics_state = state.clone();
        let logger = opts.logger.clone();
        #[cfg(target_os = "linux")]
        let accept_loop = if opts.reactor_threads > 0 {
            crate::reactor::spawn(
                listener,
                state,
                crate::reactor::ReactorConfig {
                    reactors: opts.reactor_threads,
                    workers: opts.reactor_workers,
                    outbound_budget: opts.outbound_budget.max(1),
                },
            )?
        } else {
            std::thread::Builder::new()
                .name("oociso-accept".to_string())
                .spawn(move || accept_loop(listener, state))?
        };
        #[cfg(not(target_os = "linux"))]
        let accept_loop = std::thread::Builder::new()
            .name("oociso-accept".to_string())
            .spawn(move || accept_loop(listener, state))?;
        Ok(IsoServer {
            addr,
            ctl,
            accept_loop: Some(accept_loop),
            warmer,
            report: Arc::new(move || report_state.report()),
            metrics: Arc::new(move || metrics_state.metrics_text()),
            logger,
        })
    }

    /// The address the server actually bound (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Server counters, as a stats request would see them.
    pub fn report(&self) -> ServerReport {
        (self.report)()
    }

    /// The metrics exposition, as a metrics request would see it.
    pub fn metrics(&self) -> String {
        (self.metrics)()
    }

    /// Gracefully stop: [`IsoServer::drain`] with a 5-second deadline.
    pub fn stop(self) -> ServerReport {
        self.drain(Duration::from_secs(5))
    }

    /// Graceful drain: stop accepting, let every in-flight request finish
    /// (replies completed during the drain are counted `drained`), then
    /// hard-close whatever is left when `deadline` expires and join the
    /// accept loop. Returns the final counters.
    pub fn drain(mut self, deadline: Duration) -> ServerReport {
        self.ctl.draining.store(true, Ordering::SeqCst);
        self.ctl.wake_all();
        let t0 = Instant::now();
        while self.ctl.live.load(Ordering::SeqCst) > 0 && t0.elapsed() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let stuck = self.ctl.live.load(Ordering::SeqCst);
        if stuck > 0 {
            self.logger.warn(
                "serve",
                "drain_timeout",
                "drain deadline expired with connections still live; hard-closing",
                &[
                    ("live", stuck.to_string()),
                    ("deadline_ms", deadline.as_millis().to_string()),
                ],
            );
        }
        self.ctl.shutdown.store(true, Ordering::SeqCst);
        self.ctl.wake_all();
        if let Some(h) = self.accept_loop.take() {
            let _ = h.join();
        }
        if let Some(h) = self.warmer.take() {
            let _ = h.join();
        }
        (self.report)()
    }

    /// Block this thread forever (foreground serving).
    pub fn park(self) -> ! {
        loop {
            std::thread::park();
        }
    }
}

/// `EMFILE`/`ENFILE`: the process or system is out of file descriptors.
/// Accepting will keep failing until something closes, so the loop must back
/// off instead of spinning at full speed burning the log and the CPU.
pub(crate) fn fd_exhausted(e: &io::Error) -> bool {
    matches!(e.raw_os_error(), Some(23) | Some(24)) // ENFILE | EMFILE
}

/// Book one fd-exhausted accept failure: the backoff counter ticks on every
/// failure, but the structured warning fires once per starvation *episode* —
/// `starved` stays set until a successful accept resets it, so a wedged
/// process emits one log line, not one per 100 ms of backoff.
pub(crate) fn note_fd_exhaustion(
    backoffs: &Counter,
    logger: &Logger,
    e: &io::Error,
    starved: &mut bool,
) {
    backoffs.inc();
    if !*starved {
        *starved = true;
        logger.warn(
            "serve",
            "accept_backoff",
            "accept failed; backing off until fds free up",
            &[("error", e.to_string())],
        );
    }
}

/// The speculative-warming thread: park on the warm queue, drain it one
/// job at a time, exit on drain/shutdown. Single-threaded by design — warm
/// work is strictly lower priority than everything else, so one spare-slot
/// consumer is the whole budget (the timed wait is only a backstop; the
/// queue's condvar is rung on push and registered as a [`Control`] waker).
fn warmer_loop<S: ScalarValue>(state: Arc<State<S>>) {
    let q = state.warm.clone().expect("warmer spawned without a queue");
    loop {
        let job = {
            let mut jobs = q.jobs.lock().expect("warm queue lock");
            loop {
                if state.ctl.shutdown.load(Ordering::SeqCst)
                    || state.ctl.draining.load(Ordering::SeqCst)
                {
                    return;
                }
                if let Some(job) = jobs.pop_front() {
                    break job;
                }
                let (guard, _) =
                    q.cv.wait_timeout(jobs, Duration::from_millis(100))
                        .expect("warm queue lock");
                jobs = guard;
            }
        };
        // A spare slot is often *transiently* unavailable — most commonly
        // because the very miss that scheduled this job still holds its
        // admission slot while its reply drains. Defer briefly instead of
        // cancelling on first contact; only sustained contention (real
        // traffic genuinely wanting the capacity) cancels the job.
        let mut deferrals = 0u32;
        while !state.warm_one(job.0, job.1) {
            deferrals += 1;
            if deferrals >= WARM_DEFER_ATTEMPTS {
                state.c.spec_cancelled.inc();
                break;
            }
            if state.ctl.shutdown.load(Ordering::SeqCst)
                || state.ctl.draining.load(Ordering::SeqCst)
            {
                return;
            }
            std::thread::sleep(WARM_DEFER_INTERVAL);
        }
    }
}

fn accept_loop<S: ScalarValue>(listener: TcpListener, state: Arc<State<S>>) {
    let ctl = state.ctl.clone();
    let mut fd_starved = false;
    while !ctl.shutdown.load(Ordering::SeqCst) && !ctl.draining.load(Ordering::SeqCst) {
        // drain the whole backlog before parking: a burst of K simultaneous
        // connects is accepted in one pass, not serialized behind one 2 ms
        // park per connection
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    fd_starved = false;
                    accept_one(stream, &state);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if fd_exhausted(&e) => {
                    note_fd_exhaustion(
                        &state.c.accept_backoffs,
                        &state.logger,
                        &e,
                        &mut fd_starved,
                    );
                    std::thread::park_timeout(Duration::from_millis(100));
                    break;
                }
                Err(_) => {
                    std::thread::park_timeout(Duration::from_millis(10));
                    break;
                }
            }
        }
        std::thread::park_timeout(Duration::from_millis(2));
    }
}

/// Hand one freshly accepted connection to its handler thread (or the shed
/// path when over the connection cap).
fn accept_one<S: ScalarValue>(stream: TcpStream, state: &Arc<State<S>>) {
    let ctl = &state.ctl;
    state.c.connections.inc();
    let over = state
        .max_connections
        .is_some_and(|cap| ctl.live.load(Ordering::SeqCst) >= cap as u64);
    if over {
        // over the cap: a short-lived handler answers one ERR_BUSY (at
        // whatever version the client speaks) and closes — honest
        // shedding, not a silent drop. It does not count toward `live`,
        // so shed handlers can never starve real ones.
        let state = state.clone();
        let _ = std::thread::Builder::new()
            .name("oociso-shed".to_string())
            .spawn(move || {
                let _ = shed_connection(stream, &state);
            });
        return;
    }
    ctl.live.fetch_add(1, Ordering::SeqCst);
    let state = state.clone();
    let spawned = std::thread::Builder::new()
        .name("oociso-conn".to_string())
        .spawn({
            let state = state.clone();
            move || {
                // connection errors (peer vanished mid-frame) end the
                // handler; the server itself is unaffected
                let _ = handle_connection(stream, &state);
                state.ctl.live.fetch_sub(1, Ordering::SeqCst);
            }
        });
    if spawned.is_err() {
        // thread exhaustion: the connection is dropped, but the
        // gauge must not leak or the cap wedges shut
        state.ctl.live.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Answer one over-capacity connection: read its first frame (under the
/// request cap and a short deadline — a shed slot must not be holdable
/// open), reply `ERR_BUSY` in the client's own dialect, close.
fn shed_connection<S: ScalarValue>(mut stream: TcpStream, state: &State<S>) -> io::Result<()> {
    stream.set_nodelay(true)?;
    let deadline = Some(
        state
            .read_timeout
            .unwrap_or(Duration::from_secs(2))
            .min(Duration::from_secs(2)),
    );
    stream.set_read_timeout(deadline)?;
    stream.set_write_timeout(deadline)?;
    let version = match read_frame_limited(&mut stream, MAX_REQUEST_PAYLOAD)? {
        None => return Ok(()),
        Some(FrameIn::Ok { version, .. }) => version,
        Some(FrameIn::Violation { version, .. }) => version,
    };
    state.c.shed.inc();
    state.c.requests.inc();
    state.c.errors.inc();
    let hint = state.retry_hint_ms();
    let frame = encode_frame_at(
        version,
        &Message::Error {
            code: ERR_BUSY,
            detail: format!("connection limit reached; retry in {hint} ms"),
            retry_after_ms: Some(hint),
        },
    );
    stream.write_all(&frame)?;
    stream.flush()?;
    state.c.bytes_out.add(frame.len() as u64);
    Ok(())
}

/// A computed response: either a message still to encode, or a frame
/// pre-encoded from borrowed data (the cache-hit path, which must not clone
/// the cached mesh; stats, whose payload layout is version-dependent).
// one transient `Reply` per handled request — the `Message` variant's
// inline size never accumulates, so boxing would only add indirection
#[allow(clippy::large_enum_variant)]
pub(crate) enum Reply {
    Msg(Message),
    Encoded(Vec<u8>),
}

impl Reply {
    /// Encode at the client's dialect, booking the error counter exactly as
    /// the threaded core does — both serving cores finish a reply here.
    pub(crate) fn finalize<S: ScalarValue>(self, state: &State<S>, version: u16) -> Vec<u8> {
        if matches!(self, Reply::Msg(Message::Error { .. })) {
            state.c.errors.inc();
        }
        match self {
            Reply::Msg(msg) => encode_frame_at(version, &msg),
            Reply::Encoded(bytes) => bytes,
        }
    }
}

/// Granularity at which a parked handler re-checks the drain/shutdown
/// flags while waiting for the next frame. This tick bounds only how fast a
/// *drain* takes effect on an idle connection — never data latency: the
/// blocking read below returns the moment a byte arrives, and the idle
/// deadline is enforced from its true remainder, not quantized to ticks.
/// (The previous 25 ms tick was also harmless to data latency for the same
/// reason, but computing the real remainder makes that property explicit
/// and lets the flag tick be coarse.)
const FLAG_TICK: Duration = Duration::from_millis(100);

/// Why the frame-boundary wait ended without a frame.
enum Boundary {
    /// The first byte of a new frame arrived.
    Frame(u8),
    /// Clean close: peer EOF, drain/shutdown, or idle timeout (the latter
    /// already counted).
    Close,
}

/// `SO_RCVTIMEO`/`SO_SNDTIMEO` expiry surfaces as `WouldBlock` on Unix and
/// `TimedOut` on Windows; treat both as the deadline firing.
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// The wire trace id a request carries, if its type can carry one.
pub(crate) fn request_trace_id(msg: &Message) -> u64 {
    match msg {
        Message::MeshRequest { trace_id, .. }
        | Message::FrameRequest { trace_id, .. }
        | Message::ProgressiveRequest { trace_id, .. } => *trace_id,
        _ => 0,
    }
}

/// How one reply write ended.
enum Sent {
    Ok,
    /// The peer stopped draining (write deadline fired): counted
    /// `timed_out`, connection to be closed.
    PeerGone,
}

/// Write one reply frame under the write deadline, booking `bytes_out`.
fn send_reply<S: ScalarValue>(
    stream: &mut TcpStream,
    state: &State<S>,
    bytes: &[u8],
) -> io::Result<Sent> {
    match stream.write_all(bytes).and_then(|_| stream.flush()) {
        Ok(()) => {
            state.c.bytes_out.add(bytes.len() as u64);
            Ok(Sent::Ok)
        }
        Err(e) if is_timeout(&e) => {
            state.c.timed_out.inc();
            Ok(Sent::PeerGone)
        }
        Err(e) => Err(e),
    }
}

/// Park at a frame boundary until the next request's first byte arrives.
/// The socket read blocks for the *true* remaining idle budget (capped by
/// [`FLAG_TICK`] only so drain/shutdown stay responsive): data wakes it
/// immediately, the idle deadline fires at its actual remainder. Returns
/// the byte so the frame reader can prepend it.
fn wait_for_frame<S: ScalarValue>(
    stream: &mut TcpStream,
    state: &State<S>,
) -> io::Result<Boundary> {
    let parked = Instant::now();
    let mut byte = [0u8; 1];
    loop {
        if state.ctl.shutdown.load(Ordering::SeqCst) || state.ctl.draining.load(Ordering::SeqCst) {
            return Ok(Boundary::Close);
        }
        let wait = match state.idle_timeout {
            Some(idle) => {
                let remaining = idle.saturating_sub(parked.elapsed());
                if remaining.is_zero() {
                    state.c.timed_out.inc();
                    return Ok(Boundary::Close);
                }
                remaining.min(FLAG_TICK)
            }
            None => FLAG_TICK,
        };
        // set_read_timeout(0) would mean "block forever"; floor at 1 ms
        stream.set_read_timeout(Some(wait.max(Duration::from_millis(1))))?;
        match stream.read(&mut byte) {
            Ok(0) => return Ok(Boundary::Close),
            Ok(_) => return Ok(Boundary::Frame(byte[0])),
            Err(e) if is_timeout(&e) => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// A reader that replays the frame's first byte (consumed by the boundary
/// poll) before handing through to the socket.
struct Prefixed<'a> {
    first: Option<u8>,
    inner: &'a mut TcpStream,
}

impl Read for Prefixed<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if let Some(b) = self.first.take() {
            if buf.is_empty() {
                self.first = Some(b);
                return Ok(0);
            }
            buf[0] = b;
            return Ok(1);
        }
        self.inner.read(buf)
    }
}

/// Serve one connection until EOF, a deadline, a drain, a hard I/O error,
/// or an unrecoverable protocol violation. Requests are read under
/// [`MAX_REQUEST_PAYLOAD`]: a hostile length header is rejected before any
/// payload allocation. Every reply frame is stamped with the protocol
/// version the request spoke, so older clients keep parsing a v3 server's
/// answers.
fn handle_connection<S: ScalarValue>(
    mut stream: TcpStream,
    state: &Arc<State<S>>,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_write_timeout(state.write_timeout)?;
    loop {
        // between frames: poll so drain/shutdown/idle are honored...
        let first = match wait_for_frame(&mut stream, state)? {
            Boundary::Close => return Ok(()),
            Boundary::Frame(b) => b,
        };
        // ...inside a frame: the full read deadline applies — a peer that
        // stalls mid-frame (slowloris) is cut, not waited on forever
        stream.set_read_timeout(state.read_timeout)?;
        let mut reader = Prefixed {
            first: Some(first),
            inner: &mut stream,
        };
        let frame = match read_frame_limited(&mut reader, MAX_REQUEST_PAYLOAD) {
            Ok(None) => return Ok(()), // EOF exactly at the boundary byte
            Ok(Some(f)) => f,
            Err(e) if is_timeout(&e) => {
                state.c.timed_out.inc();
                return Ok(());
            }
            // peer vanished mid-frame: close without ceremony
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) => return Err(e),
        };
        state.c.requests.inc();
        match frame {
            FrameIn::Violation {
                code,
                detail,
                close,
                version,
            } => {
                state.c.errors.inc();
                let bytes = encode_frame_at(
                    version,
                    &Message::Error {
                        code,
                        detail,
                        retry_after_ms: None,
                    },
                );
                if matches!(send_reply(&mut stream, state, &bytes)?, Sent::PeerGone) {
                    return Ok(());
                }
                if state.ctl.draining.load(Ordering::SeqCst) {
                    state.c.drained.inc();
                }
                if close {
                    return Ok(());
                }
            }
            FrameIn::Ok { msg, version } => {
                // every well-formed request gets a trace; only requests that
                // carried a wire id land in the recent journal (slow ones are
                // retained regardless)
                let trace_id = request_trace_id(&msg);
                let trace = if trace_id != 0 {
                    Trace::new(trace_id, DEFAULT_TRACE_EVENTS)
                } else {
                    Trace::detached()
                };
                let mut root = trace.span("request");
                root.field("msg_type", msg.msg_type() as u64);
                root.field("version", version as u64);
                // progressive requests write several reply frames, so they
                // bypass the single-`Reply` funnel; everything else is
                // unchanged
                let sent = if let Message::ProgressiveRequest {
                    iso,
                    lod,
                    backend,
                    trace_id: wire_id,
                } = msg
                {
                    serve_progressive(
                        &mut stream,
                        state,
                        ProgressiveParams {
                            iso,
                            lod,
                            backend,
                            trace_id: wire_id,
                            version,
                        },
                        &trace,
                        &root,
                    )?
                } else {
                    let reply = respond(state, msg, version, &trace, &root);
                    let t_enc = Instant::now();
                    let frame_bytes = reply.finalize(state, version);
                    root.annotate(
                        "encode",
                        t_enc.elapsed(),
                        &[("bytes", frame_bytes.len() as u64)],
                    );
                    send_reply(&mut stream, state, &frame_bytes)?
                };
                let total = root.finish();
                state.request_latency_us.record_duration(total);
                if trace_id != 0 {
                    state.recent.push(&trace, total);
                }
                if state.slow_ms > 0 && total >= Duration::from_millis(state.slow_ms) {
                    state.slow.push(&trace, total);
                    state.logger.warn(
                        "serve",
                        "slow_query",
                        format!("request took {} ms", total.as_millis()),
                        &[
                            ("trace_id", trace_id.to_string()),
                            ("threshold_ms", state.slow_ms.to_string()),
                        ],
                    );
                }
                if matches!(sent, Sent::PeerGone) {
                    return Ok(());
                }
                if state.ctl.draining.load(Ordering::SeqCst) {
                    // this reply completed during the graceful drain
                    state.c.drained.inc();
                }
            }
        }
    }
}

/// Largest viewport a frame request may ask for, in pixels. A framebuffer
/// is 8 B/px and the response roughly triples that (buffer + regions +
/// encoded payload), so this bounds a single well-formed request's
/// allocations to ~200 MB instead of letting a 16384² ask commit gigabytes.
const MAX_FRAME_PIXELS: usize = 8 << 20;

/// The structured overload reply (v3 clients additionally get the hint as a
/// typed field; for older dialects it survives in the detail text).
pub(crate) fn busy_reply(context: &str, retry_after_ms: u32) -> Message {
    Message::Error {
        code: ERR_BUSY,
        detail: format!("{context}; retry in {retry_after_ms} ms"),
        retry_after_ms: Some(retry_after_ms),
    }
}

/// Validate a mesh request's LOD and backend selector. `Err` is the error
/// reply to send; the connection survives either rejection.
// the Err is a ready-to-send reply by design; it is moved straight into the
// response path, never propagated through fallible call chains
#[allow(clippy::result_large_err)]
pub(crate) fn validate_mesh_request<S: ScalarValue>(
    state: &State<S>,
    lod: u16,
    backend: Option<u8>,
) -> Result<Backend, Reply> {
    if lod >= state.levels() {
        return Err(Reply::Msg(Message::Error {
            code: ERR_BAD_LOD,
            detail: format!(
                "lod {lod} out of range: server has {} level(s)",
                state.levels()
            ),
            retry_after_ms: None,
        }));
    }
    // absent selector (every pre-v4 request) = the server default;
    // an unknown id is rejected structurally, connection kept
    match backend {
        None => Ok(state.default_backend),
        Some(id) => Backend::from_id(id).ok_or_else(|| {
            Reply::Msg(Message::Error {
                code: ERR_BAD_BACKEND,
                detail: format!(
                    "unknown backend id {id}: server knows {}",
                    Backend::ALL
                        .iter()
                        .map(|b| format!("{} ({})", b.id(), b.name()))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
                retry_after_ms: None,
            })
        }),
    }
}

/// Validate a frame request's viewport/tiling. `Some` is the rejection.
pub(crate) fn validate_frame_request(params: &FrameParams) -> Option<Reply> {
    let (w, h) = (params.width as usize, params.height as usize);
    let (cols, rows) = (params.tile_cols as usize, params.tile_rows as usize);
    if w == 0
        || h == 0
        || w.saturating_mul(h) > MAX_FRAME_PIXELS
        || cols == 0
        || rows == 0
        || w % cols != 0
        || h % rows != 0
    {
        return Some(Reply::Msg(Message::Error {
            code: ERR_MALFORMED,
            detail: format!(
                "bad viewport {w}x{h} in {cols}x{rows} tiles (pixel cap {MAX_FRAME_PIXELS})"
            ),
            retry_after_ms: None,
        }));
    }
    None
}

/// The `ERR_INTERNAL` reply for a failed extraction.
pub(crate) fn internal_error_reply(e: &io::Error) -> Reply {
    Reply::Msg(Message::Error {
        code: ERR_INTERNAL,
        detail: format!("extraction failed: {e}"),
        retry_after_ms: None,
    })
}

/// Turn a decided mesh outcome into its reply — both serving cores funnel
/// through here, so region filtering, the borrowed-mesh encode path, and
/// the trace-id echo cannot diverge between them.
pub(crate) fn mesh_outcome_reply(
    outcome: MeshOutcome,
    region: Option<Region>,
    backend: Backend,
    trace_id: u64,
    version: u16,
) -> Reply {
    match outcome {
        // no region: serialize straight from the shared cached mesh
        MeshOutcome::Serve {
            surface,
            cache_hit,
            served_lod,
            degraded,
        } => match region {
            None => Reply::Encoded(encode_mesh_response_frame(
                cache_hit,
                surface.active_metacells,
                served_lod,
                degraded,
                backend.id(),
                trace_id,
                &surface.mesh,
                version,
            )),
            Some(r) => {
                let (lo, hi) = r.corners();
                Reply::Msg(Message::MeshResponse {
                    cache_hit,
                    active_metacells: surface.active_metacells,
                    served_lod,
                    degraded,
                    backend: backend.id(),
                    trace_id,
                    mesh: surface.mesh.filter_region(lo, hi),
                })
            }
        },
        MeshOutcome::Busy { retry_after_ms } => {
            Reply::Msg(busy_reply("extraction slots exhausted", retry_after_ms))
        }
    }
}

/// Rasterize an admitted frame request from its resident pyramid — the
/// render half shared by the threaded core (inline on the connection
/// thread) and the reactor (on a worker, never the event loop).
pub(crate) fn frame_render_reply<S: ScalarValue>(
    state: &State<S>,
    levels: &[Arc<CachedSurface>],
    cache_hit: bool,
    params: &FrameParams,
    trace_id: u64,
) -> Reply {
    let (w, h) = (params.width as usize, params.height as usize);
    let (cols, rows) = (params.tile_cols as usize, params.tile_rows as usize);
    let tiles = TileLayout::new(cols, rows, w, h);
    let full = &levels[0].mesh;
    let mut regions = Vec::with_capacity(tiles.num_tiles());
    if full.is_empty() {
        let fb = Framebuffer::new(w, h);
        regions = tiles.shard(&fb);
    } else {
        let bounds = full.bounds();
        let camera = Camera::orbiting(&bounds, params.azimuth, params.elevation, params.distance);
        // one LOD level per tile by projected error; each selected level
        // rasterizes its full framebuffer once, tiles then cut their
        // region from their level's buffer
        let errors: Vec<f64> = levels.iter().map(|l| l.world_error).collect();
        let picks = select_tile_levels(&tiles, &camera, &bounds, &errors, state.lod_tolerance_px);
        let mut buffers: Vec<Option<Framebuffer>> = Vec::new();
        buffers.resize_with(levels.len(), || None);
        for (t, &level) in picks.iter().enumerate() {
            if buffers[level].is_none() {
                let mut fb = Framebuffer::new(w, h);
                rasterize_mesh(&levels[level].mesh, &camera, [0.9, 0.78, 0.5], &mut fb);
                buffers[level] = Some(fb);
            }
            let fb = buffers[level].as_ref().expect("just rasterized");
            regions.push(oociso_render::FrameRegion::extract(
                fb,
                tiles.tile_origin(t),
                tiles.tile_size(),
            ));
        }
    }
    Reply::Msg(Message::FrameResponse {
        cache_hit,
        width: params.width,
        height: params.height,
        regions,
        trace_id,
    })
}

/// The wire parameters of one v6 progressive request, plus the dialect it
/// arrived in.
pub(crate) struct ProgressiveParams {
    pub(crate) iso: f32,
    pub(crate) lod: u16,
    pub(crate) backend: Option<u8>,
    pub(crate) trace_id: u64,
    pub(crate) version: u16,
}

/// Encode one run of progressive chunk frames for `surfaces` (in stream
/// order: the first chunk is pyramid level `top_level`, counting down one
/// per chunk). `prev` is the previously sent surface for delta continuity
/// into the run; within the run each chunk deltas against its predecessor.
/// `final_run` marks the run's last chunk `last` on the wire. Shared by
/// both serving cores so chunk framing cannot diverge between them.
#[allow(clippy::too_many_arguments)]
pub(crate) fn encode_chunk_run(
    surfaces: &[Arc<CachedSurface>],
    top_level: u16,
    cache_hit: bool,
    backend: Backend,
    trace_id: u64,
    version: u16,
    prev: Option<&Arc<CachedSurface>>,
    final_run: bool,
) -> Vec<Vec<u8>> {
    let mut frames = Vec::with_capacity(surfaces.len());
    for (i, s) in surfaces.iter().enumerate() {
        let level = top_level - i as u16;
        let last = final_run && i + 1 == surfaces.len();
        let prev_mesh = match i {
            0 => prev.map(|p| &p.mesh),
            _ => Some(&surfaces[i - 1].mesh),
        };
        frames.push(encode_mesh_chunk_frame(
            last,
            level,
            cache_hit,
            backend.id(),
            s.active_metacells,
            trace_id,
            prev_mesh,
            &s.mesh,
            version,
        ));
    }
    frames
}

/// Serve one v6 progressive request on the threaded core: admit, then write
/// chunk frames directly (coarsest first), running an admitted extraction
/// inline between the resident prefix and the fresh levels. An extraction
/// failure after chunks have gone out surfaces as a trailing `ERR_INTERNAL`
/// frame — the client discards the partial refinement cleanly.
fn serve_progressive<S: ScalarValue>(
    stream: &mut TcpStream,
    state: &Arc<State<S>>,
    p: ProgressiveParams,
    trace: &Trace,
    root: &Span,
) -> io::Result<Sent> {
    state.c.mesh_requests.inc();
    let send_msg =
        |stream: &mut TcpStream, state: &Arc<State<S>>, reply: Reply| -> io::Result<Sent> {
            let bytes = reply.finalize(state, p.version);
            send_reply(stream, state, &bytes)
        };
    if p.version < MIN_PROGRESSIVE_VERSION {
        // the decoder accepts the payload at any version; the *request* is
        // still a v6 feature — a pre-v6 frame smuggling one in is malformed
        return send_msg(
            stream,
            state,
            Reply::Msg(Message::Error {
                code: ERR_MALFORMED,
                detail: format!(
                    "progressive requests need protocol v{MIN_PROGRESSIVE_VERSION} (frame spoke v{})",
                    p.version
                ),
                retry_after_ms: None,
            }),
        );
    }
    let backend = match validate_mesh_request(state, p.lod, p.backend) {
        Ok(b) => b,
        Err(reply) => return send_msg(stream, state, reply),
    };
    let top = state.levels() - 1;
    match state.admit_progressive(p.iso, backend, p.lod, root) {
        ProgressiveAdmit::Busy { retry_after_ms } => send_msg(
            stream,
            state,
            Reply::Msg(busy_reply("extraction slots exhausted", retry_after_ms)),
        ),
        ProgressiveAdmit::Ready { levels } | ProgressiveAdmit::Degraded { resident: levels } => {
            for frame in encode_chunk_run(
                &levels, top, true, backend, p.trace_id, p.version, None, true,
            ) {
                if matches!(send_reply(stream, state, &frame)?, Sent::PeerGone) {
                    return Ok(Sent::PeerGone);
                }
            }
            Ok(Sent::Ok)
        }
        ProgressiveAdmit::Extract { resident, slot } => {
            // the cached coarse prefix streams before the extraction runs —
            // the whole point of progressive delivery
            for frame in encode_chunk_run(
                &resident, top, true, backend, p.trace_id, p.version, None, false,
            ) {
                if matches!(send_reply(stream, state, &frame)?, Sent::PeerGone) {
                    return Ok(Sent::PeerGone);
                }
            }
            let next = top - resident.len() as u16;
            match state.pyramid_for(p.iso, backend, trace) {
                Err(e) => send_msg(stream, state, internal_error_reply(&e)),
                Ok(levels) => {
                    drop(slot);
                    // `levels` is indexed by lod (0 = full); stream `next`
                    // down to the requested lod, delta-continuing from the
                    // last resident chunk
                    let run: Vec<Arc<CachedSurface>> = (p.lod..=next)
                        .rev()
                        .map(|l| levels[l as usize].clone())
                        .collect();
                    for frame in encode_chunk_run(
                        &run,
                        next,
                        false,
                        backend,
                        p.trace_id,
                        p.version,
                        resident.last(),
                        true,
                    ) {
                        if matches!(send_reply(stream, state, &frame)?, Sent::PeerGone) {
                            return Ok(Sent::PeerGone);
                        }
                    }
                    Ok(Sent::Ok)
                }
            }
        }
    }
}

/// Compute the response for one well-formed request spoken at `version`.
/// Extraction spans land in `trace`; request-level annotations hang off
/// `root`. The client's trace id (0 when untraced) is echoed on mesh and
/// frame responses; pre-v5 encoders drop it on the floor.
pub(crate) fn respond<S: ScalarValue>(
    state: &Arc<State<S>>,
    msg: Message,
    version: u16,
    trace: &Trace,
    root: &Span,
) -> Reply {
    match msg {
        Message::MeshRequest {
            iso,
            region,
            lod,
            backend,
            trace_id,
        } => {
            state.c.mesh_requests.inc();
            let backend = match validate_mesh_request(state, lod, backend) {
                Ok(b) => b,
                Err(reply) => return reply,
            };
            match state.surface(iso, backend, lod, trace, root) {
                Ok(outcome) => mesh_outcome_reply(outcome, region, backend, trace_id, version),
                Err(e) => internal_error_reply(&e),
            }
        }
        Message::FrameRequest {
            iso,
            params,
            trace_id,
        } => {
            state.c.frame_requests.inc();
            if let Some(reply) = validate_frame_request(&params) {
                return reply;
            }
            match state.all_levels(iso, trace, root) {
                Ok(FrameOutcome::Serve { levels, cache_hit }) => {
                    frame_render_reply(state, &levels, cache_hit, &params, trace_id)
                }
                Ok(FrameOutcome::Busy { retry_after_ms }) => {
                    Reply::Msg(busy_reply("extraction slots exhausted", retry_after_ms))
                }
                Err(e) => internal_error_reply(&e),
            }
        }
        Message::StatsRequest => {
            // stats payloads are version-dependent (v2 appends the per-level
            // arrays, v3 the robustness counters), so encode directly at the
            // client's version
            Reply::Encoded(encode_stats_response_frame(&state.report(), version))
        }
        Message::Ping { payload } => Reply::Msg(Message::Pong { payload }),
        // exposition text covers this server's registry, the cache counters,
        // and the process-global registry (background queue waits)
        Message::MetricsRequest => Reply::Msg(Message::MetricsResponse {
            text: state.metrics_text(),
        }),
        // id 0 = latest wire-traced request; otherwise search recent then slow
        Message::TraceRequest { id } => Reply::Msg(state.trace_reply(id)),
        // a client sending server-to-client messages is confused
        other => Reply::Msg(Message::Error {
            code: ERR_MALFORMED,
            detail: format!("unexpected client message type {}", other.msg_type()),
            retry_after_ms: None,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oociso_core::PreprocessOptions;
    use oociso_obs::{CaptureSink, Level};
    use oociso_volume::field::{FieldExt, SphereField};
    use oociso_volume::{Dims3, Volume};
    use std::sync::Arc;

    /// A [`State`] over a real (tiny) single-node database in a fresh temp
    /// directory — lets unit tests drive extraction, rebuild, and warming
    /// directly, without a socket in the way.
    fn test_state(name: &str, opts: ServeOptions) -> Arc<State<u8>> {
        let mut dir = std::env::temp_dir();
        dir.push(format!("oociso_server_unit_{}_{name}", std::process::id()));
        let vol: Volume<u8> = SphereField::centered(0.32, 128.0).sample(Dims3::cube(17));
        let db = ClusterDatabase::preprocess(
            &vol,
            &dir,
            &PreprocessOptions {
                nodes: 1,
                ..Default::default()
            },
        )
        .unwrap();
        State::new(db, &opts)
    }

    // the satellite-1 contract: pyramid re-decimations record their own
    // histogram but never sample the miss-cost EWMA — a degraded storm of
    // cheap rebuilds must not drag the ERR_BUSY retry hint below honest
    // extraction cost
    #[test]
    fn rebuilds_do_not_feed_the_retry_hint() {
        let state = test_state(
            "rebuild_hint",
            ServeOptions {
                lod_ratios: vec![0.5],
                ..Default::default()
            },
        );
        let trace = Trace::detached();
        let levels = state
            .extract_and_insert(110.0, Backend::Mc, &trace)
            .unwrap();
        assert!(
            state.miss_cost_ms.load(Ordering::Relaxed) > 0,
            "a real miss must sample the EWMA"
        );
        // pin the EWMA at a sentinel, run a rebuild, assert it is untouched
        state.miss_cost_ms.store(5000, Ordering::Relaxed);
        let rebuilt = state.rebuild_from_full(110.0, Backend::Mc, levels[0].clone(), &trace);
        assert_eq!(rebuilt.len(), 2);
        assert_eq!(
            state.miss_cost_ms.load(Ordering::Relaxed),
            5000,
            "rebuilds must not sample the miss-cost EWMA"
        );
        assert_eq!(
            state.rebuild_latency_us.snapshot().count,
            1,
            "rebuild wall time still lands in its own histogram"
        );
    }

    // the satellite-3 contract: an extraction whose result is too big to
    // cache (pass-through) still feeds the miss-cost EWMA and the
    // extract-latency histogram — the costliest extractions are exactly the
    // ones the retry hint must see
    #[test]
    fn oversized_pass_through_extractions_still_feed_the_hint() {
        let state = test_state(
            "oversized_hint",
            ServeOptions {
                cache_bytes: 1,
                ..Default::default()
            },
        );
        let trace = Trace::detached();
        let levels = state
            .extract_and_insert(110.0, Backend::Mc, &trace)
            .unwrap();
        assert!(!levels[0].mesh.is_empty(), "the sphere must triangulate");
        let cache = state.cache.lock().unwrap().stats();
        assert_eq!(
            cache.resident_entries, 0,
            "1-byte budget: every entry passed through uncached"
        );
        assert!(
            state.miss_cost_ms.load(Ordering::Relaxed) > 0,
            "pass-through extraction must sample the EWMA"
        );
        assert_eq!(
            state.extract_latency_us.snapshot().count,
            1,
            "pass-through extraction must sample extract_latency_us"
        );
    }

    // warm admission: a warm job may take a spare slot but never the last
    // one, so a single-slot server simply never warms
    #[test]
    fn warm_slot_never_takes_the_last_one() {
        let state = test_state(
            "warm_slot",
            ServeOptions {
                extraction_slots: Some(2),
                ..Default::default()
            },
        );
        let spare = state.try_warm_slot().expect("one spare slot available");
        assert!(
            state.try_warm_slot().is_none(),
            "the last slot is reserved for real traffic"
        );
        let real = state.try_slot().expect("a real request wins the last slot");
        drop(real);
        drop(spare);

        let single = test_state(
            "warm_slot_single",
            ServeOptions {
                extraction_slots: Some(1),
                ..Default::default()
            },
        );
        assert!(single.try_warm_slot().is_none(), "one slot: never warm");
        assert!(single.try_slot().is_some(), "…but real traffic is served");
    }

    // the warming pipeline end to end at the State level: a real miss
    // enqueues its scrub neighbors, running a job warms the neighbor's
    // pyramid speculatively, a later real query promotes it (counting
    // speculative_hits), and none of it samples client-visible miss
    // economics
    #[test]
    fn warm_jobs_fill_the_cache_behind_real_traffic() {
        let state = test_state(
            "warm_pipeline",
            ServeOptions {
                warm_delta: Some(4.0),
                lod_ratios: vec![0.5],
                ..Default::default()
            },
        );
        let trace = Trace::detached();
        state
            .extract_and_insert(110.0, Backend::Mc, &trace)
            .unwrap();
        let queued: Vec<(u32, u8)> = {
            let q = state.warm.as_ref().unwrap();
            q.jobs.lock().unwrap().iter().copied().collect()
        };
        assert_eq!(
            queued,
            vec![
                (106.0f32.to_bits(), Backend::Mc.id()),
                (114.0f32.to_bits(), Backend::Mc.id()),
            ],
            "a miss at v enqueues v-δ and v+δ"
        );
        // run one job by hand (no warmer thread in State-only tests), with
        // the EWMA pinned to prove warming never samples it
        state.miss_cost_ms.store(5000, Ordering::Relaxed);
        state.warm_one(114.0f32.to_bits(), Backend::Mc.id());
        assert_eq!(state.c.spec_started.get(), 1);
        assert_eq!(state.c.spec_completed.get(), 1);
        assert_eq!(state.miss_cost_ms.load(Ordering::Relaxed), 5000);
        assert_eq!(
            state.extract_latency_us.snapshot().count,
            1,
            "only the real miss samples extract_latency_us"
        );
        // the warmed pyramid is resident; the first real query promotes it
        let hit = state.cache.lock().unwrap().get(114.0, Backend::Mc.id(), 0);
        assert!(hit.is_some(), "warmed level must be resident");
        assert_eq!(state.cache.lock().unwrap().stats().speculative_hits, 1);
        // re-warming a resident isovalue is skipped, counted cancelled
        state.warm_one(114.0f32.to_bits(), Backend::Mc.id());
        assert_eq!(state.c.spec_cancelled.get(), 1);
        assert_eq!(state.c.spec_started.get(), 1, "a skip never starts");
    }

    // the chaos contract for fd starvation: the backoff counter ticks on
    // every failed accept, the structured warning fires exactly once per
    // episode, and a fresh episode warns again
    #[test]
    fn fd_exhaustion_warns_once_per_episode() {
        let sink = Arc::new(CaptureSink::new());
        let logger = Logger::new(sink.clone());
        let backoffs = Counter::new();
        let emfile = || io::Error::from_raw_os_error(24);
        assert!(fd_exhausted(&emfile()));

        let mut starved = false;
        for _ in 0..5 {
            note_fd_exhaustion(&backoffs, &logger, &emfile(), &mut starved);
        }
        assert_eq!(backoffs.get(), 5, "every failure ticks the counter");
        assert_eq!(
            sink.named("accept_backoff").len(),
            1,
            "one warn per episode"
        );

        // a successful accept resets the flag; the next starvation warns anew
        starved = false;
        note_fd_exhaustion(&backoffs, &logger, &emfile(), &mut starved);
        assert_eq!(backoffs.get(), 6);
        assert_eq!(sink.named("accept_backoff").len(), 2);
        assert_eq!(sink.count_at(Level::Warn), 2);
    }

    // the cold-start contract: with no miss samples the EWMA reads 0, and a
    // shed client must still be told to wait the documented floor — never
    // "retry in 0 ms", which would synchronize a re-storm
    #[test]
    fn retry_hint_cold_start_clamps_to_floor() {
        assert_eq!(clamp_retry_hint(0), RETRY_HINT_FLOOR_MS as u32);
        assert_eq!(clamp_retry_hint(1), RETRY_HINT_FLOOR_MS as u32);
        assert_eq!(
            clamp_retry_hint(RETRY_HINT_FLOOR_MS),
            RETRY_HINT_FLOOR_MS as u32
        );
        assert_eq!(clamp_retry_hint(500), 500);
        assert_eq!(clamp_retry_hint(u64::MAX), RETRY_HINT_CEIL_MS as u32);
    }
}
