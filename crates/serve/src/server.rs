//! The multi-threaded TCP query server.
//!
//! One accept loop, one OS thread per connection (the paper's cluster serves
//! a handful of display clients; thread-per-connection keeps the handler a
//! plain blocking loop). Every handler shares one [`oociso_core::ClusterDatabase`]
//! — extraction already fans out across node threads and per-node worker
//! pools internally, so concurrent requests ride the existing streaming
//! extraction path — plus one [`ResultCache`] behind a mutex (held only for
//! lookup/insert, never across an extraction).
//!
//! With [`ServeOptions::lod_ratios`] configured the server builds the LOD
//! pyramid once per cache-missed isovalue (post-weld, via
//! `ClusterDatabase::extract_lods`), caches every level separately, serves
//! mesh requests at their requested `lod`, and picks per-tile levels for
//! frame requests by projected screen-space error.

use crate::cache::{CachedSurface, ResultCache};
use crate::protocol::{
    encode_frame_at, encode_mesh_response_frame, encode_stats_response_frame, read_frame_limited,
    FrameIn, Message, ServerReport, ERR_BAD_LOD, ERR_INTERNAL, ERR_MALFORMED, MAX_LOD_LEVELS,
    MAX_REQUEST_PAYLOAD,
};
use oociso_cluster::LodSpec;
use oociso_core::ClusterDatabase;
use oociso_render::{rasterize_mesh, select_tile_levels, Camera, Framebuffer, TileLayout};
use oociso_volume::ScalarValue;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Result-cache byte budget (default 256 MiB).
    pub cache_bytes: u64,
    /// Extra LOD pyramid levels to build and serve, as vertex-count ratios
    /// of the full mesh (strictly decreasing, at most
    /// [`MAX_LOD_LEVELS`]` - 1` entries). Empty (the default) serves level 0
    /// only, exactly like a v1 server.
    pub lod_ratios: Vec<f64>,
    /// Screen-space error budget (pixels) for per-tile LOD selection in
    /// frame mode. Only meaningful with `lod_ratios` set.
    pub lod_tolerance_px: f32,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            cache_bytes: 256 << 20,
            lod_ratios: Vec::new(),
            lod_tolerance_px: 1.0,
        }
    }
}

/// Shared state behind every connection handler.
struct State<S: ScalarValue> {
    db: ClusterDatabase<S>,
    lods: LodSpec,
    lod_tolerance_px: f32,
    cache: Mutex<ResultCache>,
    connections: AtomicU64,
    requests: AtomicU64,
    mesh_requests: AtomicU64,
    frame_requests: AtomicU64,
    errors: AtomicU64,
    bytes_out: AtomicU64,
}

impl<S: ScalarValue> State<S> {
    /// Total levels served (1 = full resolution only).
    fn levels(&self) -> u16 {
        self.lods.levels() as u16
    }

    fn report(&self) -> ServerReport {
        let cache = self.cache.lock().expect("cache lock").stats();
        ServerReport {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            mesh_requests: self.mesh_requests.load(Ordering::Relaxed),
            frame_requests: self.frame_requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_evictions: cache.evictions,
            cache_resident_bytes: cache.resident_bytes,
            cache_resident_entries: cache.resident_entries,
            lod_hits: cache.lod_hits,
            lod_misses: cache.lod_misses,
        }
    }

    /// Extract the full pyramid for `iso` and insert every level, returning
    /// the levels in order. Runs outside the cache lock.
    fn extract_and_insert(&self, iso: f32) -> io::Result<Vec<Arc<CachedSurface>>> {
        let (chain, report) = self.db.extract_lods(iso, &self.lods)?;
        let active_metacells = report.total_active_metacells();
        let mut cache = self.cache.lock().expect("cache lock");
        Ok(chain
            .into_levels()
            .into_iter()
            .enumerate()
            .map(|(i, level)| {
                cache.insert(
                    iso,
                    i as u16,
                    CachedSurface {
                        mesh: level.mesh,
                        active_metacells,
                        world_error: level.cumulative_error.sqrt(),
                    },
                )
            })
            .collect())
    }

    /// Re-decimate the pyramid from an already-resident full-resolution
    /// mesh (deterministic, so byte-identical to the original levels) and
    /// insert the rebuilt coarse levels — the no-disk path when only they
    /// were evicted. Decimates **by reference** from the resident entry
    /// (same ladder `LodChain::build` walks: each level from the previous,
    /// targets as fractions of level 0), so the full mesh is never cloned
    /// and its cache entry is reused as level 0 untouched.
    fn rebuild_from_full(&self, iso: f32, full: Arc<CachedSurface>) -> Vec<Arc<CachedSurface>> {
        let base_vertices = full.mesh.num_vertices();
        let mut coarse: Vec<(oociso_march::IndexedMesh, f64)> = Vec::new();
        let mut cumulative = 0.0;
        for &ratio in &self.lods.ratios {
            let prev = coarse.last().map_or(&full.mesh, |(m, _)| m);
            let (mesh, stats) = oociso_march::decimate(
                prev,
                &oociso_march::DecimateOptions {
                    target_vertices: (base_vertices as f64 * ratio).ceil() as usize,
                    max_error: f64::INFINITY,
                },
            );
            cumulative += stats.max_error;
            coarse.push((mesh, cumulative));
        }
        let mut cache = self.cache.lock().expect("cache lock");
        cache.touch(iso, 0);
        let mut levels = vec![full.clone()];
        for (i, (mesh, cumulative_error)) in coarse.into_iter().enumerate() {
            levels.push(cache.insert(
                iso,
                (i + 1) as u16,
                CachedSurface {
                    mesh,
                    active_metacells: full.active_metacells,
                    world_error: cumulative_error.sqrt(),
                },
            ));
        }
        levels
    }

    /// Produce the whole pyramid for a missed request: from the resident
    /// full mesh when possible, from a fresh extraction otherwise. Runs
    /// outside the cache lock (concurrent first-queries of one isovalue may
    /// each extract — both count as misses, last insert wins — but no
    /// request ever blocks behind another's extraction).
    fn pyramid_for(&self, iso: f32) -> io::Result<Vec<Arc<CachedSurface>>> {
        let resident_full = self.cache.lock().expect("cache lock").peek(iso, 0);
        match resident_full {
            Some(full) => Ok(self.rebuild_from_full(iso, full)),
            None => self.extract_and_insert(iso),
        }
    }

    /// Level `lod` of the surface at `iso`, from cache or a fresh
    /// extraction. Exactly one cache lookup is accounted (against `lod`).
    /// Returns `(surface, cache_hit)`.
    fn surface(&self, iso: f32, lod: u16) -> io::Result<(Arc<CachedSurface>, bool)> {
        if let Some(hit) = self.cache.lock().expect("cache lock").get(iso, lod) {
            return Ok((hit, true));
        }
        let levels = self.pyramid_for(iso)?;
        Ok((levels[lod as usize].clone(), false))
    }

    /// Every pyramid level at `iso` for the frame path. The request is
    /// accounted as exactly one lookup against level 0 (what a v1 frame
    /// request cost): a hit only when the *whole* pyramid is resident, a
    /// miss otherwise — the levels are peeked first, so a partially
    /// evicted pyramid never books a hit for a request that still has to
    /// rebuild. When level 0 survived but a coarser level was evicted, the
    /// pyramid is re-decimated from the resident full mesh — deterministic,
    /// so byte-identical to the original levels — without touching disk.
    fn all_levels(&self, iso: f32) -> io::Result<(Vec<Arc<CachedSurface>>, bool)> {
        let want = self.levels() as usize;
        let resident_full = {
            let mut cache = self.cache.lock().expect("cache lock");
            let mut levels = Vec::with_capacity(want);
            for lod in 0..want {
                match cache.peek(iso, lod as u16) {
                    Some(l) => levels.push(l),
                    None => break,
                }
            }
            if levels.len() == want {
                cache.account(0, true);
                // the request used every level: refresh them all, or the
                // coarse levels a frame-heavy workload relies on would
                // decay to LRU victims despite being hot
                for lod in 0..want {
                    cache.touch(iso, lod as u16);
                }
                return Ok((levels, true));
            }
            cache.account(0, false);
            levels.into_iter().next() // level 0, if it was resident
        };
        let levels = match resident_full {
            Some(full) => self.rebuild_from_full(iso, full),
            None => self.extract_and_insert(iso)?,
        };
        Ok((levels, false))
    }
}

/// A running server: the bound address plus the accept-loop handle.
///
/// Dropping the handle without calling [`IsoServer::stop`] leaves the accept
/// loop running detached until the process exits (what the CLI's foreground
/// `serve` does by parking forever).
pub struct IsoServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_loop: Option<JoinHandle<()>>,
    report: Arc<dyn Fn() -> ServerReport + Send + Sync>,
}

impl IsoServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving
    /// `db`. Returns once the listener is bound and accepting.
    pub fn bind<S: ScalarValue>(
        db: ClusterDatabase<S>,
        addr: impl ToSocketAddrs,
        opts: ServeOptions,
    ) -> io::Result<IsoServer> {
        if opts.lod_ratios.len() >= MAX_LOD_LEVELS {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "at most {} LOD ratios (got {})",
                    MAX_LOD_LEVELS - 1,
                    opts.lod_ratios.len()
                ),
            ));
        }
        // reject malformed ladders here, not as a per-request panic deep in
        // LodChain::build: each ratio must be finite, in (0, 1), and
        // strictly decreasing
        let mut prev = 1.0f64;
        for &r in &opts.lod_ratios {
            if !r.is_finite() || r <= 0.0 || r >= prev {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!(
                        "LOD ratios must be finite, in (0, 1), strictly decreasing: {:?}",
                        opts.lod_ratios
                    ),
                ));
            }
            prev = r;
        }
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        // polling accept loop: nonblocking listener + short sleep lets
        // `stop()` take effect without a wake-up connection
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let state = Arc::new(State {
            db,
            lods: LodSpec {
                ratios: opts.lod_ratios.clone(),
            },
            lod_tolerance_px: opts.lod_tolerance_px,
            cache: Mutex::new(ResultCache::new(opts.cache_bytes)),
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            mesh_requests: AtomicU64::new(0),
            frame_requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
        });
        let report_state = state.clone();
        let loop_shutdown = shutdown.clone();
        let accept_loop = std::thread::Builder::new()
            .name("oociso-accept".to_string())
            .spawn(move || accept_loop(listener, state, loop_shutdown))?;
        Ok(IsoServer {
            addr,
            shutdown,
            accept_loop: Some(accept_loop),
            report: Arc::new(move || report_state.report()),
        })
    }

    /// The address the server actually bound (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Server counters, as a stats request would see them.
    pub fn report(&self) -> ServerReport {
        (self.report)()
    }

    /// Stop accepting and join the accept loop. Connections already being
    /// served finish their current request loop on their own threads.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_loop.take() {
            let _ = h.join();
        }
    }

    /// Block this thread forever (foreground serving).
    pub fn park(self) -> ! {
        loop {
            std::thread::park();
        }
    }
}

fn accept_loop<S: ScalarValue>(
    listener: TcpListener,
    state: Arc<State<S>>,
    shutdown: Arc<AtomicBool>,
) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                state.connections.fetch_add(1, Ordering::Relaxed);
                let state = state.clone();
                let _ = std::thread::Builder::new()
                    .name("oociso-conn".to_string())
                    .spawn(move || {
                        // connection errors (peer vanished mid-frame) end the
                        // handler; the server itself is unaffected
                        let _ = handle_connection(stream, &state);
                    });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// A computed response: either a message still to encode, or a frame
/// pre-encoded from borrowed data (the cache-hit path, which must not clone
/// the cached mesh; stats, whose payload layout is version-dependent).
enum Reply {
    Msg(Message),
    Encoded(Vec<u8>),
}

/// Serve one connection until EOF, a hard I/O error, or an unrecoverable
/// protocol violation. Requests are read under [`MAX_REQUEST_PAYLOAD`]:
/// a hostile length header is rejected before any payload allocation.
/// Every reply frame is stamped with the protocol version the request
/// spoke, so v1 clients keep parsing a v2 server's answers.
fn handle_connection<S: ScalarValue>(mut stream: TcpStream, state: &State<S>) -> io::Result<()> {
    stream.set_nodelay(true)?;
    loop {
        let frame = match read_frame_limited(&mut stream, MAX_REQUEST_PAYLOAD)? {
            None => return Ok(()), // clean EOF between frames
            Some(f) => f,
        };
        let (reply, version, close) = match frame {
            FrameIn::Ok { msg, version } => (respond(state, msg, version), version, false),
            FrameIn::Violation {
                code,
                detail,
                close,
                version,
            } => (Reply::Msg(Message::Error { code, detail }), version, close),
        };
        if matches!(reply, Reply::Msg(Message::Error { .. })) {
            state.errors.fetch_add(1, Ordering::Relaxed);
        }
        state.requests.fetch_add(1, Ordering::Relaxed);
        let frame_bytes = match reply {
            Reply::Msg(msg) => encode_frame_at(version, &msg),
            Reply::Encoded(bytes) => bytes,
        };
        stream.write_all(&frame_bytes)?;
        stream.flush()?;
        state
            .bytes_out
            .fetch_add(frame_bytes.len() as u64, Ordering::Relaxed);
        if close {
            return Ok(());
        }
    }
}

/// Largest viewport a frame request may ask for, in pixels. A framebuffer
/// is 8 B/px and the response roughly triples that (buffer + regions +
/// encoded payload), so this bounds a single well-formed request's
/// allocations to ~200 MB instead of letting a 16384² ask commit gigabytes.
const MAX_FRAME_PIXELS: usize = 8 << 20;

/// Compute the response for one well-formed request spoken at `version`.
fn respond<S: ScalarValue>(state: &State<S>, msg: Message, version: u16) -> Reply {
    match msg {
        Message::MeshRequest { iso, region, lod } => {
            state.mesh_requests.fetch_add(1, Ordering::Relaxed);
            if lod >= state.levels() {
                return Reply::Msg(Message::Error {
                    code: ERR_BAD_LOD,
                    detail: format!(
                        "lod {lod} out of range: server has {} level(s)",
                        state.levels()
                    ),
                });
            }
            match state.surface(iso, lod) {
                // no region: serialize straight from the shared cached mesh
                Ok((surface, cache_hit)) => match region {
                    None => Reply::Encoded(encode_mesh_response_frame(
                        cache_hit,
                        surface.active_metacells,
                        &surface.mesh,
                        version,
                    )),
                    Some(r) => {
                        let (lo, hi) = r.corners();
                        Reply::Msg(Message::MeshResponse {
                            cache_hit,
                            active_metacells: surface.active_metacells,
                            mesh: surface.mesh.filter_region(lo, hi),
                        })
                    }
                },
                Err(e) => Reply::Msg(Message::Error {
                    code: ERR_INTERNAL,
                    detail: format!("extraction failed: {e}"),
                }),
            }
        }
        Message::FrameRequest { iso, params } => {
            state.frame_requests.fetch_add(1, Ordering::Relaxed);
            let (w, h) = (params.width as usize, params.height as usize);
            let (cols, rows) = (params.tile_cols as usize, params.tile_rows as usize);
            if w == 0
                || h == 0
                || w.saturating_mul(h) > MAX_FRAME_PIXELS
                || cols == 0
                || rows == 0
                || w % cols != 0
                || h % rows != 0
            {
                return Reply::Msg(Message::Error {
                    code: ERR_MALFORMED,
                    detail: format!(
                        "bad viewport {w}x{h} in {cols}x{rows} tiles (pixel cap {MAX_FRAME_PIXELS})"
                    ),
                });
            }
            match state.all_levels(iso) {
                Ok((levels, cache_hit)) => {
                    let tiles = TileLayout::new(cols, rows, w, h);
                    let full = &levels[0].mesh;
                    let mut regions = Vec::with_capacity(tiles.num_tiles());
                    if full.is_empty() {
                        let fb = Framebuffer::new(w, h);
                        regions = tiles.shard(&fb);
                    } else {
                        let bounds = full.bounds();
                        let camera = Camera::orbiting(
                            &bounds,
                            params.azimuth,
                            params.elevation,
                            params.distance,
                        );
                        // one LOD level per tile by projected error; each
                        // selected level rasterizes its full framebuffer
                        // once, tiles then cut their region from their
                        // level's buffer
                        let errors: Vec<f64> = levels.iter().map(|l| l.world_error).collect();
                        let picks = select_tile_levels(
                            &tiles,
                            &camera,
                            &bounds,
                            &errors,
                            state.lod_tolerance_px,
                        );
                        let mut buffers: Vec<Option<Framebuffer>> = Vec::new();
                        buffers.resize_with(levels.len(), || None);
                        for (t, &level) in picks.iter().enumerate() {
                            if buffers[level].is_none() {
                                let mut fb = Framebuffer::new(w, h);
                                rasterize_mesh(
                                    &levels[level].mesh,
                                    &camera,
                                    [0.9, 0.78, 0.5],
                                    &mut fb,
                                );
                                buffers[level] = Some(fb);
                            }
                            let fb = buffers[level].as_ref().expect("just rasterized");
                            regions.push(oociso_render::FrameRegion::extract(
                                fb,
                                tiles.tile_origin(t),
                                tiles.tile_size(),
                            ));
                        }
                    }
                    Reply::Msg(Message::FrameResponse {
                        cache_hit,
                        width: params.width,
                        height: params.height,
                        regions,
                    })
                }
                Err(e) => Reply::Msg(Message::Error {
                    code: ERR_INTERNAL,
                    detail: format!("extraction failed: {e}"),
                }),
            }
        }
        Message::StatsRequest => {
            // stats payloads are version-dependent (v2 appends the per-level
            // arrays), so encode directly at the client's version
            Reply::Encoded(encode_stats_response_frame(&state.report(), version))
        }
        Message::Ping { payload } => Reply::Msg(Message::Pong { payload }),
        // a client sending server-to-client messages is confused
        other => Reply::Msg(Message::Error {
            code: ERR_MALFORMED,
            detail: format!("unexpected client message type {}", other.msg_type()),
        }),
    }
}
