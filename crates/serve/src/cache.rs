//! Isovalue-keyed LRU result cache.
//!
//! Interactive exploration hammers a handful of isovalues (slider scrubbing,
//! repeated frames of the same surface), so the server memoizes whole
//! extraction results keyed by the isovalue's bit pattern. The cache is
//! **byte-budgeted**, not entry-counted: meshes vary from empty to hundreds
//! of MB, and the budget is what bounds server memory. Region-restricted and
//! framebuffer-mode requests are served by filtering/rasterizing the cached
//! *full* mesh, so every request shape shares one entry per isovalue.
//!
//! Hit/miss/eviction counters are surfaced through
//! [`crate::protocol::ServerReport`] the same way extraction surfaces
//! `NodeReport` rows — observable from any client via a stats request.

use oociso_march::IndexedMesh;
use std::sync::Arc;

/// One cached extraction result (shared out to concurrent readers).
#[derive(Debug)]
pub struct CachedSurface {
    /// The full (unfiltered) isosurface at this isovalue.
    pub mesh: IndexedMesh,
    /// Active metacells the producing extraction touched (report metadata
    /// replayed to cache-hit clients).
    pub active_metacells: u64,
}

impl CachedSurface {
    /// Resident bytes of this entry (vertex + index storage).
    pub fn bytes(&self) -> u64 {
        (std::mem::size_of_val(self.mesh.positions()) + std::mem::size_of_val(self.mesh.indices()))
            as u64
    }
}

/// Cache counters (monotonic except the `resident_*` gauges).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub insertions: u64,
    pub evictions: u64,
    pub resident_bytes: u64,
    pub resident_entries: u64,
}

/// A byte-budgeted LRU map from isovalue bits to extraction results.
///
/// Recency is a simple ordered list (most recent last): entry counts stay
/// small — each entry is a whole isosurface against a byte budget — so
/// linear recency maintenance costs nothing next to one extraction.
#[derive(Debug)]
pub struct ResultCache {
    budget_bytes: u64,
    /// `(key, entry)` pairs ordered least→most recently used.
    entries: Vec<(u32, Arc<CachedSurface>)>,
    resident_bytes: u64,
    stats: CacheStats,
}

impl ResultCache {
    /// An empty cache that will hold at most `budget_bytes` of mesh data.
    pub fn new(budget_bytes: u64) -> Self {
        ResultCache {
            budget_bytes,
            entries: Vec::new(),
            resident_bytes: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// Look up `iso`, refreshing its recency on a hit.
    pub fn get(&mut self, iso: f32) -> Option<Arc<CachedSurface>> {
        let key = iso.to_bits();
        match self.entries.iter().position(|(k, _)| *k == key) {
            Some(i) => {
                let pair = self.entries.remove(i);
                let hit = pair.1.clone();
                self.entries.push(pair);
                self.stats.hits += 1;
                self.refresh_gauges();
                Some(hit)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Insert (or replace) the result for `iso`, evicting least-recently-used
    /// entries until the budget holds. An entry larger than the whole budget
    /// is passed through uncached — callers still get their `Arc`, the cache
    /// just declines to retain it.
    pub fn insert(&mut self, iso: f32, surface: CachedSurface) -> Arc<CachedSurface> {
        let key = iso.to_bits();
        let surface = Arc::new(surface);
        let bytes = surface.bytes();
        if let Some(i) = self.entries.iter().position(|(k, _)| *k == key) {
            // concurrent miss on the same isovalue: keep the newer result
            let (_, old) = self.entries.remove(i);
            self.resident_bytes -= old.bytes();
        }
        if bytes > self.budget_bytes {
            self.refresh_gauges();
            return surface;
        }
        self.stats.insertions += 1;
        self.resident_bytes += bytes;
        self.entries.push((key, surface.clone()));
        while self.resident_bytes > self.budget_bytes {
            let (_, evicted) = self.entries.remove(0);
            self.resident_bytes -= evicted.bytes();
            self.stats.evictions += 1;
        }
        self.refresh_gauges();
        surface
    }

    /// Current counters (the `resident_*` gauges are kept in sync on every
    /// mutation).
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn refresh_gauges(&mut self) {
        self.stats.resident_bytes = self.resident_bytes;
        self.stats.resident_entries = self.entries.len() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oociso_march::Vec3;

    /// A mesh of `tris` triangles: 3 fresh vertices each → 36 + 12 = 48
    /// bytes per triangle.
    fn surface(tris: usize) -> CachedSurface {
        let mut mesh = IndexedMesh::new();
        for i in 0..tris {
            let a = mesh.push_vertex(Vec3::new(i as f32, 0.0, 0.0));
            let b = mesh.push_vertex(Vec3::new(i as f32, 1.0, 0.0));
            let c = mesh.push_vertex(Vec3::new(i as f32, 0.0, 1.0));
            mesh.push_triangle(a, b, c);
        }
        CachedSurface {
            mesh,
            active_metacells: tris as u64,
        }
    }

    #[test]
    fn hit_miss_and_recency() {
        let mut c = ResultCache::new(10_000);
        assert!(c.get(1.0).is_none());
        c.insert(1.0, surface(1));
        c.insert(2.0, surface(1));
        let hit = c.get(1.0).expect("cached");
        assert_eq!(hit.active_metacells, 1);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 2));
        assert_eq!(s.resident_entries, 2);
        assert_eq!(s.resident_bytes, 2 * 48);
    }

    #[test]
    fn byte_budget_evicts_lru_order() {
        // budget fits exactly two 1-triangle meshes (48 B each)
        let mut c = ResultCache::new(96);
        c.insert(1.0, surface(1));
        c.insert(2.0, surface(1));
        // touch 1.0 so 2.0 becomes the LRU victim
        assert!(c.get(1.0).is_some());
        c.insert(3.0, surface(1));
        assert_eq!(c.stats().evictions, 1);
        assert!(c.get(2.0).is_none(), "LRU entry should have been evicted");
        assert!(c.get(1.0).is_some(), "recently used entry must survive");
        assert!(c.get(3.0).is_some());
        assert!(c.stats().resident_bytes <= 96);
    }

    #[test]
    fn oversized_entry_passes_through_uncached() {
        let mut c = ResultCache::new(100);
        let arc = c.insert(5.0, surface(10)); // 480 B > 100 B budget
        assert_eq!(arc.mesh.len(), 10, "caller still gets the surface");
        assert_eq!(c.stats().resident_entries, 0);
        assert_eq!(c.stats().insertions, 0);
        assert!(c.get(5.0).is_none());
    }

    #[test]
    fn reinsert_replaces_without_leaking_bytes() {
        let mut c = ResultCache::new(10_000);
        c.insert(1.0, surface(1));
        c.insert(1.0, surface(2)); // same key, bigger mesh
        assert_eq!(c.stats().resident_entries, 1);
        assert_eq!(c.stats().resident_bytes, 2 * 48);
        assert_eq!(c.get(1.0).unwrap().mesh.len(), 2);
    }

    #[test]
    fn distinct_isovalue_bits_are_distinct_keys() {
        let mut c = ResultCache::new(10_000);
        c.insert(100.0, surface(1));
        assert!(c.get(100.00001).is_none());
        assert!(c.get(100.0).is_some());
    }
}
