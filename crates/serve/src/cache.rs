//! Isovalue-, backend-, and LOD-level-keyed LRU result cache.
//!
//! Interactive exploration hammers a handful of isovalues (slider scrubbing,
//! repeated frames of the same surface), so the server memoizes extraction
//! results keyed by `(isovalue bit pattern, extraction backend, LOD level)`.
//! Every level of a pyramid is its own entry — a coarse level is a few
//! percent of the full mesh, so it can stay resident long after its
//! full-resolution sibling was evicted — and the two extraction backends
//! (MC, SurfaceNets) produce different geometry for the same isovalue, so
//! their entries never alias. The cache is **byte-budgeted**, not
//! entry-counted: meshes vary from empty to hundreds of MB, and the budget
//! is what bounds server memory. Region-restricted and framebuffer-mode
//! requests are served by filtering/rasterizing cached meshes, so every
//! request shape shares the per-level entries.
//!
//! Hit/miss/eviction counters — aggregate, per level, *and* per backend —
//! are surfaced through [`crate::protocol::ServerReport`] the same way
//! extraction surfaces `NodeReport` rows — observable from any client via a
//! stats request.

use crate::protocol::{MAX_LOD_LEVELS, NUM_BACKENDS};
use oociso_march::IndexedMesh;
use std::sync::Arc;

/// One cached extraction result (shared out to concurrent readers).
#[derive(Debug)]
pub struct CachedSurface {
    /// The (unfiltered) isosurface at this isovalue and LOD level.
    pub mesh: IndexedMesh,
    /// Active metacells the producing extraction touched (report metadata
    /// replayed to cache-hit clients).
    pub active_metacells: u64,
    /// World-space error gauge of this LOD level versus full resolution
    /// (`LodChain::world_error`; 0 for level 0) — what screen-space LOD
    /// selection projects.
    pub world_error: f64,
}

impl CachedSurface {
    /// Resident bytes of this entry (vertex + index storage).
    pub fn bytes(&self) -> u64 {
        (std::mem::size_of_val(self.mesh.positions()) + std::mem::size_of_val(self.mesh.indices()))
            as u64
    }
}

/// Cache counters (monotonic except the `resident_*` gauges).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub insertions: u64,
    pub evictions: u64,
    pub resident_bytes: u64,
    pub resident_entries: u64,
    /// Hits per LOD level (level 0 first); sums to `hits`.
    pub lod_hits: [u64; MAX_LOD_LEVELS],
    /// Misses per LOD level; sums to `misses`.
    pub lod_misses: [u64; MAX_LOD_LEVELS],
    /// Hits per extraction backend (indexed by backend id); sums to `hits`.
    pub backend_hits: [u64; NUM_BACKENDS],
    /// Misses per extraction backend; sums to `misses`.
    pub backend_misses: [u64; NUM_BACKENDS],
    /// Hits on entries inserted by speculative warming that had not yet
    /// been touched by real traffic — the warming engine's payoff counter
    /// (each warmed entry is counted at most once, on its first hit).
    pub speculative_hits: u64,
}

/// The cache's composite key: `(isovalue bits, backend id, LOD level)`.
type CacheKey = (u32, u8, u16);

/// A byte-budgeted LRU map from `(isovalue bits, backend id, LOD level)` to
/// extraction results.
///
/// Recency is a simple ordered list (most recent last): entry counts stay
/// small — each entry is a whole isosurface level against a byte budget —
/// so linear recency maintenance costs nothing next to one extraction.
#[derive(Debug)]
pub struct ResultCache {
    budget_bytes: u64,
    /// `(key, entry, speculative)` triples ordered least→most recently
    /// used. The flag marks entries inserted by speculative warming that no
    /// real request has touched yet; warming inserts sit *behind* real
    /// traffic's recency and are the first evicted.
    entries: Vec<(CacheKey, Arc<CachedSurface>, bool)>,
    resident_bytes: u64,
    stats: CacheStats,
}

/// Clamp a level index into the fixed per-level counter arrays (levels past
/// the last slot share it; servers cap pyramids at `MAX_LOD_LEVELS` anyway).
fn level_slot(lod: u16) -> usize {
    (lod as usize).min(MAX_LOD_LEVELS - 1)
}

/// Clamp a backend id into the fixed per-backend counter arrays (unknown
/// ids never reach the cache — the server rejects them first).
fn backend_slot(backend: u8) -> usize {
    (backend as usize).min(NUM_BACKENDS - 1)
}

impl ResultCache {
    /// An empty cache that will hold at most `budget_bytes` of mesh data.
    pub fn new(budget_bytes: u64) -> Self {
        ResultCache {
            budget_bytes,
            entries: Vec::new(),
            resident_bytes: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// Look up level `lod` of `iso` under `backend`, refreshing its recency
    /// on a hit.
    pub fn get(&mut self, iso: f32, backend: u8, lod: u16) -> Option<Arc<CachedSurface>> {
        let key = (iso.to_bits(), backend, lod);
        match self.entries.iter().position(|(k, ..)| *k == key) {
            Some(i) => {
                let mut entry = self.entries.remove(i);
                let hit = entry.1.clone();
                if entry.2 {
                    // first real touch of a warmed entry: count the payoff
                    // once and promote it to a regular resident
                    self.stats.speculative_hits += 1;
                    entry.2 = false;
                }
                self.entries.push(entry);
                self.stats.hits += 1;
                self.stats.lod_hits[level_slot(lod)] += 1;
                self.stats.backend_hits[backend_slot(backend)] += 1;
                self.refresh_gauges();
                Some(hit)
            }
            None => {
                self.stats.misses += 1;
                self.stats.lod_misses[level_slot(lod)] += 1;
                self.stats.backend_misses[backend_slot(backend)] += 1;
                None
            }
        }
    }

    /// Peek without touching recency or counters — the frame path uses this
    /// for the levels it *also* needs beyond the one the request was
    /// accounted against.
    pub fn peek(&self, iso: f32, backend: u8, lod: u16) -> Option<Arc<CachedSurface>> {
        let key = (iso.to_bits(), backend, lod);
        self.entries
            .iter()
            .find(|(k, ..)| *k == key)
            .map(|(_, e, _)| e.clone())
    }

    /// Count a lookup outcome against `backend`/`lod` without probing
    /// entries — for the frame path, whose one accounted lookup is decided
    /// only after peeking the whole pyramid (a pyramid with any level
    /// missing is one miss, not a hit on the levels that happened to be
    /// resident).
    pub fn account(&mut self, backend: u8, lod: u16, hit: bool) {
        if hit {
            self.stats.hits += 1;
            self.stats.lod_hits[level_slot(lod)] += 1;
            self.stats.backend_hits[backend_slot(backend)] += 1;
        } else {
            self.stats.misses += 1;
            self.stats.lod_misses[level_slot(lod)] += 1;
            self.stats.backend_misses[backend_slot(backend)] += 1;
        }
    }

    /// The finest **resident** level coarser than `lod` for `iso` under
    /// `backend`, probing `lod + 1..levels` in order — the
    /// graceful-degradation fallback. The levels skipped over are peeked
    /// invisibly; the level returned is booked as a regular hit (it *was*
    /// served) and refreshed in recency.
    pub fn coarser(
        &mut self,
        iso: f32,
        backend: u8,
        lod: u16,
        levels: u16,
    ) -> Option<(u16, Arc<CachedSurface>)> {
        for l in lod + 1..levels {
            if self.peek(iso, backend, l).is_some() {
                let hit = self.get(iso, backend, l).expect("peeked entry vanished");
                return Some((l, hit));
            }
        }
        None
    }

    /// Refresh an entry's recency (most recently used) without touching any
    /// counter. No-op when absent.
    pub fn touch(&mut self, iso: f32, backend: u8, lod: u16) {
        let key = (iso.to_bits(), backend, lod);
        if let Some(i) = self.entries.iter().position(|(k, ..)| *k == key) {
            let entry = self.entries.remove(i);
            self.entries.push(entry);
        }
    }

    /// Insert (or replace) the result for level `lod` of `iso` under
    /// `backend`, evicting least-recently-used entries until the budget
    /// holds. An entry larger than the whole budget is passed through
    /// uncached — callers still get their `Arc`, the cache just declines to
    /// retain it.
    pub fn insert(
        &mut self,
        iso: f32,
        backend: u8,
        lod: u16,
        surface: CachedSurface,
    ) -> Arc<CachedSurface> {
        let key = (iso.to_bits(), backend, lod);
        let surface = Arc::new(surface);
        let bytes = surface.bytes();
        if let Some(i) = self.entries.iter().position(|(k, ..)| *k == key) {
            // concurrent miss on the same isovalue: keep the newer result
            let (_, old, _) = self.entries.remove(i);
            self.resident_bytes -= old.bytes();
        }
        if bytes > self.budget_bytes {
            self.refresh_gauges();
            return surface;
        }
        self.stats.insertions += 1;
        self.resident_bytes += bytes;
        self.entries.push((key, surface.clone(), false));
        while self.resident_bytes > self.budget_bytes {
            let (_, evicted, _) = self.entries.remove(0);
            self.resident_bytes -= evicted.bytes();
            self.stats.evictions += 1;
        }
        self.refresh_gauges();
        surface
    }

    /// Insert a speculatively warmed result *behind* the recency of real
    /// traffic: the entry goes in at the cold end of the LRU order (after
    /// any older speculative entries), so it is evicted before anything a
    /// real request touched. A speculative insert never evicts real
    /// traffic to make room — when the spare budget cannot hold it even
    /// after evicting colder speculative entries, the new entry itself is
    /// dropped. An already-resident result for the key is kept untouched
    /// (real traffic may have raced the warmer and its entry is fresher in
    /// every sense).
    pub fn insert_speculative(
        &mut self,
        iso: f32,
        backend: u8,
        lod: u16,
        surface: CachedSurface,
    ) -> Arc<CachedSurface> {
        let key = (iso.to_bits(), backend, lod);
        if let Some((_, existing, _)) = self.entries.iter().find(|(k, ..)| *k == key) {
            return existing.clone();
        }
        let surface = Arc::new(surface);
        let bytes = surface.bytes();
        if bytes > self.budget_bytes {
            return surface;
        }
        // behind every real entry, but after older speculative ones, so the
        // oldest warmed result is evicted first
        let pos = self
            .entries
            .iter()
            .take_while(|(.., speculative)| *speculative)
            .count();
        self.entries.insert(pos, (key, surface.clone(), true));
        self.resident_bytes += bytes;
        self.stats.insertions += 1;
        while self.resident_bytes > self.budget_bytes {
            // victims are speculative entries only, coldest first — the
            // just-inserted entry is the last candidate and ends the loop
            match self.entries.iter().position(|(.., spec)| *spec) {
                Some(i) => {
                    let (k, evicted, _) = self.entries.remove(i);
                    self.resident_bytes -= evicted.bytes();
                    self.stats.evictions += 1;
                    if k == key {
                        break;
                    }
                }
                None => break,
            }
        }
        self.refresh_gauges();
        surface
    }

    /// Current counters (the `resident_*` gauges are kept in sync on every
    /// mutation).
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn refresh_gauges(&mut self) {
        self.stats.resident_bytes = self.resident_bytes;
        self.stats.resident_entries = self.entries.len() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oociso_march::Vec3;

    /// A mesh of `tris` triangles: 3 fresh vertices each → 36 + 12 = 48
    /// bytes per triangle.
    fn surface(tris: usize) -> CachedSurface {
        let mut mesh = IndexedMesh::new();
        for i in 0..tris {
            let a = mesh.push_vertex(Vec3::new(i as f32, 0.0, 0.0));
            let b = mesh.push_vertex(Vec3::new(i as f32, 1.0, 0.0));
            let c = mesh.push_vertex(Vec3::new(i as f32, 0.0, 1.0));
            mesh.push_triangle(a, b, c);
        }
        CachedSurface {
            mesh,
            active_metacells: tris as u64,
            world_error: 0.0,
        }
    }

    #[test]
    fn hit_miss_and_recency() {
        let mut c = ResultCache::new(10_000);
        assert!(c.get(1.0, 0, 0).is_none());
        c.insert(1.0, 0, 0, surface(1));
        c.insert(2.0, 0, 0, surface(1));
        let hit = c.get(1.0, 0, 0).expect("cached");
        assert_eq!(hit.active_metacells, 1);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 2));
        assert_eq!(s.resident_entries, 2);
        assert_eq!(s.resident_bytes, 2 * 48);
    }

    #[test]
    fn byte_budget_evicts_lru_order() {
        // budget fits exactly two 1-triangle meshes (48 B each)
        let mut c = ResultCache::new(96);
        c.insert(1.0, 0, 0, surface(1));
        c.insert(2.0, 0, 0, surface(1));
        // touch 1.0 so 2.0 becomes the LRU victim
        assert!(c.get(1.0, 0, 0).is_some());
        c.insert(3.0, 0, 0, surface(1));
        assert_eq!(c.stats().evictions, 1);
        assert!(
            c.get(2.0, 0, 0).is_none(),
            "LRU entry should have been evicted"
        );
        assert!(
            c.get(1.0, 0, 0).is_some(),
            "recently used entry must survive"
        );
        assert!(c.get(3.0, 0, 0).is_some());
        assert!(c.stats().resident_bytes <= 96);
    }

    #[test]
    fn oversized_entry_passes_through_uncached() {
        let mut c = ResultCache::new(100);
        let arc = c.insert(5.0, 0, 0, surface(10)); // 480 B > 100 B budget
        assert_eq!(arc.mesh.len(), 10, "caller still gets the surface");
        assert_eq!(c.stats().resident_entries, 0);
        assert_eq!(c.stats().insertions, 0);
        assert!(c.get(5.0, 0, 0).is_none());
    }

    #[test]
    fn reinsert_replaces_without_leaking_bytes() {
        let mut c = ResultCache::new(10_000);
        c.insert(1.0, 0, 0, surface(1));
        c.insert(1.0, 0, 0, surface(2)); // same key, bigger mesh
        assert_eq!(c.stats().resident_entries, 1);
        assert_eq!(c.stats().resident_bytes, 2 * 48);
        assert_eq!(c.get(1.0, 0, 0).unwrap().mesh.len(), 2);
    }

    #[test]
    fn distinct_isovalue_bits_are_distinct_keys() {
        let mut c = ResultCache::new(10_000);
        c.insert(100.0, 0, 0, surface(1));
        assert!(c.get(100.00001, 0, 0).is_none());
        assert!(c.get(100.0, 0, 0).is_some());
    }

    #[test]
    fn lod_levels_are_distinct_keys_with_exact_per_level_counters() {
        let mut c = ResultCache::new(10_000);
        c.insert(1.0, 0, 0, surface(4));
        c.insert(1.0, 0, 1, surface(2));
        // level 2 was never inserted: a miss on it must not shadow level 1
        assert!(c.get(1.0, 0, 2).is_none());
        assert_eq!(c.get(1.0, 0, 1).unwrap().mesh.len(), 2);
        assert_eq!(c.get(1.0, 0, 0).unwrap().mesh.len(), 4);
        let s = c.stats();
        assert_eq!(s.lod_hits, [1, 1, 0, 0]);
        assert_eq!(s.lod_misses, [0, 0, 1, 0]);
        assert_eq!(s.hits, s.lod_hits.iter().sum::<u64>());
        assert_eq!(s.misses, s.lod_misses.iter().sum::<u64>());
    }

    #[test]
    fn account_and_touch_decompose_a_lookup() {
        let mut c = ResultCache::new(96);
        c.insert(1.0, 0, 0, surface(1));
        c.insert(2.0, 0, 0, surface(1));
        // account books counters without probing entries
        c.account(0, 0, true);
        c.account(0, 2, false);
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(s.lod_hits, [1, 0, 0, 0]);
        assert_eq!(s.lod_misses, [0, 0, 1, 0]);
        // touch refreshes recency without counters: 1.0 becomes MRU, so the
        // next eviction takes 2.0
        c.touch(1.0, 0, 0);
        c.insert(3.0, 0, 0, surface(1));
        assert!(c.peek(1.0, 0, 0).is_some(), "touched entry must survive");
        assert!(c.peek(2.0, 0, 0).is_none(), "untouched entry evicted");
        assert_eq!(c.stats().hits, 1, "touch books nothing");
    }

    #[test]
    fn coarser_finds_the_finest_resident_fallback() {
        let mut c = ResultCache::new(10_000);
        // levels 0 and 1 absent, 2 and 3 resident
        c.insert(1.0, 0, 2, surface(2));
        c.insert(1.0, 0, 3, surface(1));
        let (level, hit) = c.coarser(1.0, 0, 0, 4).expect("level 2 is resident");
        assert_eq!(level, 2, "finest resident coarser level wins");
        assert_eq!(hit.mesh.len(), 2);
        // exactly one hit booked — the level served — and none for the
        // levels probed past
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 0));
        assert_eq!(s.lod_hits, [0, 0, 1, 0]);
        // nothing coarser than the coarsest resident level
        assert!(c.coarser(1.0, 0, 3, 4).is_none());
        // nothing resident at all for another isovalue
        assert!(c.coarser(2.0, 0, 0, 4).is_none());
        assert_eq!(c.stats().misses, 0, "failed probes book nothing");
    }

    #[test]
    fn peek_does_not_touch_counters_or_recency() {
        let mut c = ResultCache::new(96);
        c.insert(1.0, 0, 0, surface(1));
        c.insert(2.0, 0, 0, surface(1));
        let before = c.stats();
        assert!(c.peek(1.0, 0, 0).is_some());
        assert!(c.peek(9.0, 0, 0).is_none());
        assert_eq!(c.stats(), before, "peek is invisible to accounting");
        // peeking 1.0 must not have refreshed it: inserting a third entry
        // still evicts 1.0 as the least recently *used*
        c.insert(3.0, 0, 0, surface(1));
        assert!(c.peek(1.0, 0, 0).is_none(), "peek must not refresh recency");
    }

    #[test]
    fn speculative_inserts_sit_behind_real_recency() {
        // budget fits exactly three 1-triangle meshes
        let mut c = ResultCache::new(144);
        c.insert(1.0, 0, 0, surface(1));
        c.insert_speculative(2.0, 0, 0, surface(1));
        c.insert(3.0, 0, 0, surface(1));
        // the speculative entry is coldest even though it was inserted
        // between the two real ones: the next insert evicts it, not 1.0
        c.insert(4.0, 0, 0, surface(1));
        assert!(c.peek(2.0, 0, 0).is_none(), "warmed entry evicted first");
        assert!(c.peek(1.0, 0, 0).is_some(), "real traffic survives");
        assert!(c.peek(3.0, 0, 0).is_some());
    }

    #[test]
    fn speculative_hit_is_counted_once_then_promoted() {
        let mut c = ResultCache::new(10_000);
        c.insert_speculative(1.0, 0, 0, surface(1));
        assert_eq!(c.stats().speculative_hits, 0, "insertion is not a hit");
        assert!(c.get(1.0, 0, 0).is_some());
        assert_eq!(c.stats().speculative_hits, 1, "first touch pays off");
        assert!(c.get(1.0, 0, 0).is_some());
        let s = c.stats();
        assert_eq!(s.speculative_hits, 1, "payoff is counted exactly once");
        assert_eq!(s.hits, 2, "both lookups are still regular hits");
        // promoted: now ordinary recency — a later speculative insert is
        // evicted ahead of it
        let mut c = ResultCache::new(96);
        c.insert_speculative(1.0, 0, 0, surface(1));
        assert!(c.get(1.0, 0, 0).is_some()); // promote
        c.insert_speculative(2.0, 0, 0, surface(1));
        c.insert(3.0, 0, 0, surface(1));
        assert!(
            c.peek(1.0, 0, 0).is_some(),
            "promoted entry now outranks later speculative inserts"
        );
        assert!(
            c.peek(2.0, 0, 0).is_none(),
            "unpromoted speculative evicted"
        );
        assert!(c.peek(3.0, 0, 0).is_some());
    }

    #[test]
    fn speculative_insert_never_evicts_real_traffic() {
        // budget exactly holds the two real entries
        let mut c = ResultCache::new(96);
        c.insert(1.0, 0, 0, surface(1));
        c.insert(2.0, 0, 0, surface(1));
        let evictions_before = c.stats().evictions;
        c.insert_speculative(3.0, 0, 0, surface(1));
        assert!(c.peek(1.0, 0, 0).is_some(), "real entry survives warming");
        assert!(c.peek(2.0, 0, 0).is_some(), "real entry survives warming");
        assert!(
            c.peek(3.0, 0, 0).is_none(),
            "no spare budget: the warmed entry itself is dropped"
        );
        // colder speculative entries are fair game, though
        let mut c = ResultCache::new(96);
        c.insert_speculative(1.0, 0, 0, surface(1));
        c.insert(2.0, 0, 0, surface(1));
        c.insert_speculative(3.0, 0, 0, surface(1));
        assert!(c.peek(1.0, 0, 0).is_none(), "older speculative evicted");
        assert!(c.peek(2.0, 0, 0).is_some());
        assert!(c.peek(3.0, 0, 0).is_some());
        let _ = evictions_before;
    }

    #[test]
    fn speculative_insert_keeps_an_existing_resident_entry() {
        let mut c = ResultCache::new(10_000);
        c.insert(1.0, 0, 0, surface(2));
        let got = c.insert_speculative(1.0, 0, 0, surface(1));
        assert_eq!(got.mesh.len(), 2, "the resident (real) result wins");
        assert!(c.get(1.0, 0, 0).is_some());
        assert_eq!(
            c.stats().speculative_hits,
            0,
            "entry never became speculative"
        );
    }

    #[test]
    fn oversized_speculative_insert_passes_through() {
        let mut c = ResultCache::new(100);
        let arc = c.insert_speculative(5.0, 0, 0, surface(10)); // 480 B
        assert_eq!(arc.mesh.len(), 10);
        assert_eq!(c.stats().resident_entries, 0);
        assert!(c.peek(5.0, 0, 0).is_none());
    }

    #[test]
    fn backends_are_distinct_keys_with_exact_per_backend_counters() {
        let mut c = ResultCache::new(10_000);
        c.insert(1.0, 0, 0, surface(4));
        c.insert(1.0, 1, 0, surface(2));
        // the same (iso, lod) under the other backend must never alias
        assert_eq!(c.get(1.0, 0, 0).unwrap().mesh.len(), 4);
        assert_eq!(c.get(1.0, 1, 0).unwrap().mesh.len(), 2);
        assert!(c.get(2.0, 1, 0).is_none());
        let s = c.stats();
        assert_eq!(s.backend_hits, [1, 1]);
        assert_eq!(s.backend_misses, [0, 1]);
        assert_eq!(s.hits, s.backend_hits.iter().sum::<u64>());
        assert_eq!(s.misses, s.backend_misses.iter().sum::<u64>());
        // degradation fallback under one backend ignores the other's levels
        c.insert(3.0, 0, 2, surface(1));
        assert!(
            c.coarser(3.0, 1, 0, 4).is_none(),
            "MC's coarse level must not degrade a SurfaceNets request"
        );
        assert!(c.coarser(3.0, 0, 0, 4).is_some());
    }
}
