//! The nonblocking serving core: N epoll event loops, request pipelining,
//! bounded outbound queues, and an off-loop extraction worker pool.
//!
//! ## Ownership model
//!
//! Each reactor thread owns one `epoll` instance, an accepted share of the
//! connections, and everything about them — buffers, in-order pending
//! replies, deadlines. A connection is touched by exactly one thread for
//! its whole life (the reactor that accepted it), so per-connection state
//! needs no locks. All reactors watch the shared listener (level-triggered)
//! and drain its backlog on wakeup; whichever loop wakes first takes the
//! connection.
//!
//! ## Request lifecycle
//!
//! Bytes are read until `WouldBlock` into a per-connection buffer and
//! decoded incrementally ([`crate::protocol::decode_frame_bytes`]). Each
//! decoded request is **dispatched in arrival order**: validation, cache
//! probes, and admission control run inline on the event loop (they cost
//! microseconds), so shed/degrade decisions happen at the same instant
//! they would on a connection thread. Work that costs milliseconds —
//! extraction, pyramid rebuild, rasterization, and the encode of those
//! large replies — ships to the worker pool together with the extraction
//! slot it won; the worker posts the encoded frame to the owning reactor's
//! completion queue and rings its eventfd doorbell.
//!
//! ## Pipelining and ordering
//!
//! A client may pipeline any number of requests on one connection. Every
//! request takes a slot in the connection's pending queue at dispatch, and
//! replies are released strictly in request order — a fast cache hit
//! queued behind a slow extraction waits for it, so responses can never
//! interleave or reorder. Dispatch (and therefore admission accounting)
//! also happens in request order; only the *execution* of admitted misses
//! overlaps.
//!
//! ## Backpressure
//!
//! Completed replies enter a per-connection outbound queue written out
//! incrementally as the socket accepts bytes. When queued-but-unsent bytes
//! exceed [`crate::server::ServeOptions::outbound_budget`], the reactor
//! stops *reading* that connection (drops its `EPOLLIN` interest) until
//! the queue drains below half the budget — a client that pipelines
//! requests but never reads responses stalls itself, not the server.
//!
//! ## Equivalence with the threaded core
//!
//! Overload and fault semantics are shared with the threaded core by
//! construction: both call the same admission (`State::admit_mesh`/
//! `admit_frame`), the same extraction (`State::pyramid_for`), the same
//! reply builders, and the same counters. The chaos suite runs its
//! unmodified assertions against both cores.

#![cfg(target_os = "linux")]

use crate::cache::CachedSurface;
use crate::protocol::{
    decode_frame_bytes, encode_frame_at, FrameIn, FrameParams, FrameStep, Message, Region,
    ERR_BUSY, ERR_MALFORMED, MAX_REQUEST_PAYLOAD, MIN_PROGRESSIVE_VERSION,
};
use crate::server::{
    busy_reply, encode_chunk_run, frame_render_reply, internal_error_reply, mesh_outcome_reply,
    request_trace_id, respond, validate_frame_request, validate_mesh_request, FrameAdmit,
    MeshAdmit, MeshOutcome, ProgressiveAdmit, Reply, SlotGuard, State,
};
use oociso_exio::poll::{Event, EventFd, Interest, Poller};
use oociso_march::Backend;
use oociso_obs::{Counter, Gauge, Histogram, Span, Trace, DEFAULT_TRACE_EVENTS};
use oociso_volume::ScalarValue;
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Sizing and flow-control knobs resolved from `ServeOptions`.
pub(crate) struct ReactorConfig {
    pub reactors: usize,
    pub workers: usize,
    pub outbound_budget: usize,
}

/// Safety-net poll timeout: all real wakeups arrive via fd readiness, the
/// doorbell, or a computed deadline remainder — this only bounds the damage
/// of a hypothetical missed wakeup.
const IDLE_POLL: Duration = Duration::from_millis(1000);

/// Over-cap connections get at most this long to present the one frame
/// their `ERR_BUSY` reply is versioned from (the threaded shed path's cap).
const SHED_DEADLINE: Duration = Duration::from_secs(2);

const TOKEN_DOORBELL: u64 = 0;
const TOKEN_LISTENER: u64 = 1;
const TOKEN_FIRST_CONN: u64 = 2;

/// One reactor's cross-thread mailbox: completed jobs land here; the
/// doorbell (registered in that reactor's poller) announces them.
struct Mailbox {
    completions: Mutex<Vec<Completion>>,
    doorbell: EventFd,
}

/// An encoded reply frame coming back from the worker pool. A progressive
/// serve posts several completions for one request slot; `done` marks the
/// last one (every non-progressive job posts exactly one, done).
struct Completion {
    token: u64,
    seq: u64,
    payload: OutPayload,
    done: bool,
}

/// Everything needed to account a reply when its last byte reaches the
/// kernel — the reactor's analogue of the tail of the threaded handler.
struct ReplyMeta {
    root: Option<Span>,
    trace: Option<Trace>,
    trace_id: u64,
    /// Close the connection once this reply is flushed (protocol violation
    /// with lost framing, or a shed connection's one allowed reply).
    close_after: bool,
    /// A non-final progressive chunk: more frames of the same request
    /// follow, so per-request accounting (drain bookkeeping) waits.
    interim: bool,
}

/// An encoded reply plus its accounting.
struct OutPayload {
    bytes: Vec<u8>,
    meta: ReplyMeta,
}

/// One reply slot in a connection's in-order pending queue. One *request*
/// owns one slot even when (progressive) it answers with several frames:
/// ready frames stream out as they land, but the slot — and with it every
/// later request's reply — is released only once `done`, so replies stay
/// strictly ordered per connection.
struct Pending {
    seq: u64,
    /// Encoded frames ready to stream, oldest first.
    ready: VecDeque<OutPayload>,
    /// No more frames will arrive for this slot.
    done: bool,
}

impl Pending {
    /// A slot still waiting on a worker (or on further progressive chunks).
    fn open(seq: u64) -> Pending {
        Pending {
            seq,
            ready: VecDeque::new(),
            done: false,
        }
    }

    /// A slot answered entirely inline by one frame.
    fn answered(seq: u64, payload: OutPayload) -> Pending {
        Pending {
            seq,
            ready: VecDeque::from([payload]),
            done: true,
        }
    }
}

/// What classification decided for one request: answered entirely on the
/// event loop (one or more frames, slot done), or shipped to the worker
/// pool — possibly after streaming a resident head of progressive chunks.
enum Classified {
    Inline(Vec<OutPayload>),
    Offloaded { head: Vec<OutPayload> },
}

/// A reply frame being written out, with a write cursor.
struct OutFrame {
    bytes: Vec<u8>,
    off: usize,
    meta: ReplyMeta,
}

/// Per-connection state machine. Owned by exactly one reactor thread.
struct Conn {
    stream: TcpStream,
    read_buf: Vec<u8>,
    pending: VecDeque<Pending>,
    next_seq: u64,
    out: VecDeque<OutFrame>,
    /// Queued-but-unsent response bytes (the backpressure quantity).
    out_bytes: usize,
    /// Backpressure engaged: reads stopped until the queue drains.
    paused: bool,
    /// No further bytes will be parsed or read (EOF, violation, shed reply
    /// queued, or drain).
    stop_reading: bool,
    /// A reply marked `close_after` has been fully flushed.
    finished: bool,
    /// Peer closed its write half.
    eof: bool,
    /// Over the connection cap: gets one `ERR_BUSY` for its first frame.
    shed: bool,
    /// What the poller currently watches for this stream.
    interest: Interest,
    accepted_at: Instant,
    last_read_progress: Instant,
    last_write_progress: Instant,
    /// Start of the current between-requests gap (the idle clock).
    idle_since: Instant,
    counted_live: bool,
}

/// Work shipped to the extraction/render pool. Every variant carries the
/// request's span + trace (extraction phases land in them, exactly as on a
/// connection thread) and its reply slot coordinates.
enum Job<S: ScalarValue> {
    Mesh {
        iso: f32,
        backend: Backend,
        lod: u16,
        region: Option<Region>,
        slot: SlotGuard<S>,
    },
    FrameRender {
        levels: Vec<Arc<CachedSurface>>,
        cache_hit: bool,
        params: FrameParams,
    },
    FrameExtract {
        iso: f32,
        params: FrameParams,
        slot: SlotGuard<S>,
        resident_full: Option<Arc<CachedSurface>>,
    },
    /// The extraction tail of an admitted progressive request: the resident
    /// coarse prefix already streamed from the event loop; the worker
    /// extracts, then posts one completion per remaining chunk (levels
    /// `next_level` down to `lod`), delta-continuing from `prev`.
    Progressive {
        iso: f32,
        backend: Backend,
        lod: u16,
        slot: SlotGuard<S>,
        prev: Option<Arc<CachedSurface>>,
        next_level: u16,
    },
}

/// A job plus its routing and tracing envelope.
struct Envelope<S: ScalarValue> {
    job: Job<S>,
    mailbox: Arc<Mailbox>,
    token: u64,
    seq: u64,
    trace_id: u64,
    version: u16,
    trace: Trace,
    root: Span,
}

/// Reactor-core metrics, resolved once from the server registry.
#[derive(Clone)]
struct Meters {
    wakeups: Counter,
    loop_us: Histogram,
    offloaded: Counter,
    pauses: Counter,
    conns: Gauge,
    outbound: Gauge,
}

/// Spawn the whole reactor core: `cfg.reactors` event loops, a worker
/// pool, and a supervisor thread that joins them all (what
/// `IsoServer::drain` joins). The listener must already be nonblocking.
pub(crate) fn spawn<S: ScalarValue>(
    listener: TcpListener,
    state: Arc<State<S>>,
    cfg: ReactorConfig,
) -> io::Result<JoinHandle<()>> {
    let listener = Arc::new(listener);
    let reactors = cfg.reactors.max(1);
    let workers = if cfg.workers == 0 {
        // extraction fans out internally; a handful of workers keeps misses
        // and rasterization flowing without oversubscribing small hosts
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(2)
            .max(4)
    } else {
        cfg.workers
    };
    let meters = Meters {
        wakeups: state.metrics.counter("reactor_wakeups_total"),
        loop_us: state.metrics.histogram("reactor_loop_us"),
        offloaded: state.metrics.counter("reactor_jobs_offloaded_total"),
        pauses: state.metrics.counter("reactor_backpressure_pauses_total"),
        conns: state.metrics.gauge("reactor_connections"),
        outbound: state.metrics.gauge("outbound_queue_bytes"),
    };

    let (tx, rx) = mpsc::channel::<Envelope<S>>();
    let rx = Arc::new(Mutex::new(rx));
    let mut worker_handles = Vec::with_capacity(workers);
    for i in 0..workers {
        let rx = rx.clone();
        let state = state.clone();
        worker_handles.push(
            std::thread::Builder::new()
                .name(format!("oociso-worker-{i}"))
                .spawn(move || worker_loop(rx, state))?,
        );
    }

    let mut reactor_handles = Vec::with_capacity(reactors);
    for i in 0..reactors {
        let mailbox = Arc::new(Mailbox {
            completions: Mutex::new(Vec::new()),
            doorbell: EventFd::new()?,
        });
        // drain()/stop() ring every doorbell so parked loops react at once
        {
            let mb = mailbox.clone();
            state
                .ctl
                .wakers
                .lock()
                .expect("wakers lock")
                .push(Box::new(move || {
                    let _ = mb.doorbell.notify();
                }));
        }
        let mut reactor = Reactor {
            poller: Poller::new()?,
            listener: listener.clone(),
            accepting: true,
            state: state.clone(),
            mailbox,
            jobs: tx.clone(),
            conns: HashMap::new(),
            next_token: TOKEN_FIRST_CONN,
            budget: cfg.outbound_budget,
            meters: meters.clone(),
            fd_starved: false,
        };
        reactor.poller.register(
            &reactor.mailbox.doorbell,
            TOKEN_DOORBELL,
            Interest::READABLE,
        )?;
        reactor
            .poller
            .register(&*reactor.listener, TOKEN_LISTENER, Interest::READABLE)?;
        reactor_handles.push(
            std::thread::Builder::new()
                .name(format!("oociso-reactor-{i}"))
                .spawn(move || reactor.run())?,
        );
    }
    drop(tx); // workers exit once every reactor (sender) is gone

    std::thread::Builder::new()
        .name("oociso-accept".to_string()) // what IsoServer::drain joins
        .spawn(move || {
            for h in reactor_handles {
                let _ = h.join();
            }
            for h in worker_handles {
                let _ = h.join();
            }
        })
}

/// Pull envelopes until every reactor hung up, running each job and
/// posting its encoded reply back to the owning reactor.
fn worker_loop<S: ScalarValue>(rx: Arc<Mutex<mpsc::Receiver<Envelope<S>>>>, state: Arc<State<S>>) {
    loop {
        let env = {
            let guard = rx.lock().expect("job queue lock");
            guard.recv()
        };
        let Ok(env) = env else { return };
        run_job(env, &state);
    }
}

/// Post one completed reply frame to the owning reactor.
fn post(mailbox: &Mailbox, token: u64, seq: u64, payload: OutPayload, done: bool) {
    mailbox
        .completions
        .lock()
        .expect("completions lock")
        .push(Completion {
            token,
            seq,
            payload,
            done,
        });
    let _ = mailbox.doorbell.notify();
}

fn run_job<S: ScalarValue>(env: Envelope<S>, state: &Arc<State<S>>) {
    let Envelope {
        job,
        mailbox,
        token,
        seq,
        trace_id,
        version,
        trace,
        mut root,
    } = env;
    let job = if let Job::Progressive {
        iso,
        backend,
        lod,
        slot,
        prev,
        next_level,
    } = job
    {
        // a panicking extraction surfaces as a final ERR_INTERNAL chunk;
        // the slot guard releases during unwind or on the drop below
        let result = catch_unwind(AssertUnwindSafe(|| state.pyramid_for(iso, backend, &trace)))
            .unwrap_or_else(|_| Err(io::Error::other("extraction panicked")));
        drop(slot);
        root.field("offloaded", 1);
        match result {
            Err(e) => {
                let t_enc = Instant::now();
                let bytes = internal_error_reply(&e).finalize(state, version);
                root.annotate("encode", t_enc.elapsed(), &[("bytes", bytes.len() as u64)]);
                post(
                    &mailbox,
                    token,
                    seq,
                    OutPayload {
                        bytes,
                        meta: ReplyMeta {
                            root: Some(root),
                            trace: Some(trace),
                            trace_id,
                            close_after: false,
                            interim: false,
                        },
                    },
                    true,
                );
            }
            Ok(levels) => {
                let t_enc = Instant::now();
                let run: Vec<Arc<CachedSurface>> = (lod..=next_level)
                    .rev()
                    .map(|l| levels[l as usize].clone())
                    .collect();
                let frames = encode_chunk_run(
                    &run,
                    next_level,
                    false,
                    backend,
                    trace_id,
                    version,
                    prev.as_ref(),
                    true,
                );
                // each chunk is posted (and rung) individually so refinement
                // starts flowing before the run is fully posted
                for payload in chunk_payloads(frames, root, trace, trace_id, t_enc.elapsed()) {
                    let done = !payload.meta.interim;
                    post(&mailbox, token, seq, payload, done);
                }
            }
        }
        return;
    } else {
        job
    };
    // a panicking extraction must not strand the reply slot: the client
    // gets ERR_INTERNAL and the connection lives on (the slot guard
    // released during unwind)
    let reply = catch_unwind(AssertUnwindSafe(|| match job {
        Job::Mesh {
            iso,
            backend,
            lod,
            region,
            slot,
        } => match state.pyramid_for(iso, backend, &trace) {
            Ok(levels) => {
                drop(slot);
                mesh_outcome_reply(
                    MeshOutcome::Serve {
                        surface: levels[lod as usize].clone(),
                        cache_hit: false,
                        served_lod: lod,
                        degraded: false,
                    },
                    region,
                    backend,
                    trace_id,
                    version,
                )
            }
            Err(e) => internal_error_reply(&e),
        },
        Job::FrameRender {
            levels,
            cache_hit,
            params,
        } => frame_render_reply(state, &levels, cache_hit, &params, trace_id),
        Job::FrameExtract {
            iso,
            params,
            slot,
            resident_full,
        } => match state.complete_frame_extract(iso, resident_full, &trace) {
            Ok(levels) => {
                drop(slot);
                frame_render_reply(state, &levels, false, &params, trace_id)
            }
            Err(e) => internal_error_reply(&e),
        },
        // peeled off above; the rebinding can't narrow the type
        Job::Progressive { .. } => unreachable!("progressive jobs handled above"),
    }))
    .unwrap_or_else(|_| internal_error_reply(&io::Error::other("extraction panicked")));
    let t_enc = Instant::now();
    let bytes = reply.finalize(state, version);
    root.annotate("encode", t_enc.elapsed(), &[("bytes", bytes.len() as u64)]);
    root.field("offloaded", 1);
    post(
        &mailbox,
        token,
        seq,
        OutPayload {
            bytes,
            meta: ReplyMeta {
                root: Some(root),
                trace: Some(trace),
                trace_id,
                close_after: false,
                interim: false,
            },
        },
        true,
    );
}

/// Turn an encoded chunk run into its per-frame payloads: the request's
/// span and trace ride the *final* chunk (one request, one accounting),
/// earlier chunks are marked interim. `enc` is the wall time the encode
/// took, annotated with the run's total bytes.
fn chunk_payloads(
    frames: Vec<Vec<u8>>,
    root: Span,
    trace: Trace,
    trace_id: u64,
    enc: Duration,
) -> Vec<OutPayload> {
    let total: usize = frames.iter().map(|f| f.len()).sum();
    root.annotate("encode", enc, &[("bytes", total as u64)]);
    let n = frames.len();
    let mut root = Some(root);
    let mut trace = Some(trace);
    frames
        .into_iter()
        .enumerate()
        .map(|(i, bytes)| {
            let last = i + 1 == n;
            OutPayload {
                bytes,
                meta: ReplyMeta {
                    root: if last { root.take() } else { None },
                    trace: if last { trace.take() } else { None },
                    trace_id,
                    close_after: false,
                    interim: !last,
                },
            }
        })
        .collect()
}

/// One event-loop thread.
struct Reactor<S: ScalarValue> {
    poller: Poller,
    listener: Arc<TcpListener>,
    accepting: bool,
    state: Arc<State<S>>,
    mailbox: Arc<Mailbox>,
    jobs: mpsc::Sender<Envelope<S>>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    budget: usize,
    meters: Meters,
    fd_starved: bool,
}

impl<S: ScalarValue> Reactor<S> {
    fn run(&mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            let ctl = &self.state.ctl;
            if ctl.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let draining = ctl.draining.load(Ordering::SeqCst);
            if draining {
                self.enter_drain();
                if self.conns.is_empty() {
                    break;
                }
            }
            let timeout = self.next_deadline().min(IDLE_POLL);
            if self.poller.wait(&mut events, Some(timeout)).is_err() {
                break; // a broken epoll fd is unrecoverable
            }
            let t0 = Instant::now();
            self.meters.wakeups.inc();
            for ev in std::mem::take(&mut events) {
                match ev.token {
                    TOKEN_DOORBELL => {
                        let _ = self.mailbox.doorbell.drain();
                        self.deliver_completions();
                    }
                    TOKEN_LISTENER => self.accept_burst(),
                    token => self.service(token, ev),
                }
            }
            self.sweep_deadlines();
            self.meters.loop_us.record_duration(t0.elapsed());
        }
        // hard stop: every owned connection closes now
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for t in tokens {
            self.close(t);
        }
    }

    /// Graceful drain: stop accepting and parsing; connections close once
    /// their already-dispatched requests are answered and flushed.
    fn enter_drain(&mut self) {
        if self.accepting {
            let _ = self.poller.deregister(&*self.listener);
            self.accepting = false;
        }
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for t in tokens {
            if let Some(conn) = self.conns.get_mut(&t) {
                conn.stop_reading = true;
            }
            self.pump(t);
        }
    }

    /// Route completed jobs into their connections' pending slots.
    fn deliver_completions(&mut self) {
        let done: Vec<Completion> = {
            let mut q = self.mailbox.completions.lock().expect("completions lock");
            std::mem::take(&mut *q)
        };
        let mut touched = Vec::new();
        for c in done {
            if let Some(conn) = self.conns.get_mut(&c.token) {
                if let Some(p) = conn.pending.iter_mut().find(|p| p.seq == c.seq) {
                    p.ready.push_back(c.payload);
                    p.done |= c.done;
                    touched.push(c.token);
                }
            }
            // connection already closed: the reply is dropped (its span
            // finalizes via Drop) — same as a threaded handler finding the
            // peer gone
        }
        touched.dedup();
        for t in touched {
            self.pump(t);
        }
    }

    /// Accept until `WouldBlock` — the whole backlog in one wakeup.
    fn accept_burst(&mut self) {
        if !self.accepting {
            return;
        }
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    self.fd_starved = false;
                    self.admit(stream);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if crate::server::fd_exhausted(&e) => {
                    crate::server::note_fd_exhaustion(
                        &self.state.c.accept_backoffs,
                        &self.state.logger,
                        &e,
                        &mut self.fd_starved,
                    );
                    break; // level-triggered epoll re-reports pending accepts
                }
                Err(_) => break,
            }
        }
    }

    fn admit(&mut self, stream: TcpStream) {
        let state = &self.state;
        state.c.connections.inc();
        if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
            return;
        }
        let over = state
            .max_connections
            .is_some_and(|cap| state.ctl.live.load(Ordering::SeqCst) >= cap as u64);
        if !over {
            state.ctl.live.fetch_add(1, Ordering::SeqCst);
        }
        let token = self.next_token;
        self.next_token += 1;
        let now = Instant::now();
        let conn = Conn {
            stream,
            read_buf: Vec::new(),
            pending: VecDeque::new(),
            next_seq: 0,
            out: VecDeque::new(),
            out_bytes: 0,
            paused: false,
            stop_reading: false,
            finished: false,
            eof: false,
            shed: over,
            interest: Interest::READABLE,
            accepted_at: now,
            last_read_progress: now,
            last_write_progress: now,
            idle_since: now,
            counted_live: !over,
        };
        if self
            .poller
            .register(&conn.stream, token, Interest::READABLE)
            .is_err()
        {
            if conn.counted_live {
                state.ctl.live.fetch_sub(1, Ordering::SeqCst);
            }
            return;
        }
        self.meters.conns.add(1);
        self.conns.insert(token, conn);
    }

    /// Handle readiness for one connection.
    fn service(&mut self, token: u64, ev: Event) {
        if !self.conns.contains_key(&token) {
            return; // closed earlier in this batch
        }
        if ev.error {
            self.close(token);
            return;
        }
        if (ev.readable || ev.hangup) && !self.read_and_dispatch(token) {
            return; // closed
        }
        // pump always attempts the write-out, so ev.writable needs no
        // separate branch
        self.pump(token);
    }

    /// Read until `WouldBlock`, decode every complete frame, dispatch each
    /// in arrival order. Returns false if the connection was closed.
    fn read_and_dispatch(&mut self, token: u64) -> bool {
        let state = self.state.clone();
        let Some(conn) = self.conns.get_mut(&token) else {
            return false;
        };
        if !conn.stop_reading && !conn.paused {
            let mut chunk = [0u8; 64 * 1024];
            loop {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        conn.eof = true;
                        conn.stop_reading = true;
                        break;
                    }
                    Ok(n) => {
                        conn.read_buf.extend_from_slice(&chunk[..n]);
                        let now = Instant::now();
                        conn.last_read_progress = now;
                        conn.idle_since = now;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        self.close(token);
                        return false;
                    }
                }
            }
        }
        // decode + dispatch loop: stops at a partial frame, on pause, at a
        // violation that poisons framing, or when drain forbids new work
        let mut consumed = 0usize;
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return false;
            };
            if conn.stop_reading
                || conn.paused
                || state.ctl.draining.load(Ordering::SeqCst)
                || consumed >= conn.read_buf.len()
            {
                break;
            }
            match decode_frame_bytes(&conn.read_buf[consumed..], MAX_REQUEST_PAYLOAD) {
                FrameStep::NeedMore { .. } => break,
                FrameStep::Frame { frame, consumed: n } => {
                    consumed += n;
                    self.dispatch(token, frame);
                }
            }
        }
        match self.conns.get_mut(&token) {
            Some(conn) => {
                if consumed > 0 {
                    conn.read_buf.drain(..consumed);
                }
                if conn.stop_reading {
                    // nothing behind a poisoned/final frame is interpreted
                    conn.read_buf.clear();
                }
                true
            }
            None => false,
        }
    }

    /// Dispatch one decoded frame: inline answer or worker offload, with a
    /// reply slot reserved in request order either way.
    fn dispatch(&mut self, token: u64, frame: FrameIn) {
        let state = self.state.clone();
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        state.c.requests.inc();
        let seq = conn.next_seq;
        conn.next_seq += 1;

        if conn.shed {
            // over the connection cap: one ERR_BUSY in the client's own
            // dialect, then close — the threaded shed path, pipelined
            let version = match &frame {
                FrameIn::Ok { version, .. } => *version,
                FrameIn::Violation { version, .. } => *version,
            };
            state.c.shed.inc();
            state.c.errors.inc();
            let hint = state.retry_hint_ms();
            let bytes = encode_frame_at(
                version,
                &Message::Error {
                    code: ERR_BUSY,
                    detail: format!("connection limit reached; retry in {hint} ms"),
                    retry_after_ms: Some(hint),
                },
            );
            conn.stop_reading = true;
            conn.pending.push_back(Pending::answered(
                seq,
                OutPayload {
                    bytes,
                    meta: ReplyMeta {
                        root: None,
                        trace: None,
                        trace_id: 0,
                        close_after: true,
                        interim: false,
                    },
                },
            ));
            return;
        }

        match frame {
            FrameIn::Violation {
                code,
                detail,
                close,
                version,
            } => {
                state.c.errors.inc();
                let bytes = encode_frame_at(
                    version,
                    &Message::Error {
                        code,
                        detail,
                        retry_after_ms: None,
                    },
                );
                if close {
                    conn.stop_reading = true;
                }
                conn.pending.push_back(Pending::answered(
                    seq,
                    OutPayload {
                        bytes,
                        meta: ReplyMeta {
                            root: None,
                            trace: None,
                            trace_id: 0,
                            close_after: close,
                            interim: false,
                        },
                    },
                ));
            }
            FrameIn::Ok { msg, version } => {
                let trace_id = request_trace_id(&msg);
                let trace = if trace_id != 0 {
                    Trace::new(trace_id, DEFAULT_TRACE_EVENTS)
                } else {
                    Trace::detached()
                };
                let mut root = trace.span("request");
                root.field("msg_type", msg.msg_type() as u64);
                root.field("version", version as u64);
                conn.pending.push_back(Pending::open(seq));
                let verdict = self.classify(token, seq, msg, version, trace, root);
                if let Some(conn) = self.conns.get_mut(&token) {
                    if let Some(p) = conn.pending.iter_mut().find(|p| p.seq == seq) {
                        match verdict {
                            // offloaded: `head` (a progressive serve's
                            // resident prefix) streams now, the worker
                            // posts the rest via the mailbox
                            Classified::Offloaded { head } => p.ready.extend(head),
                            Classified::Inline(payloads) => {
                                p.ready.extend(payloads);
                                p.done = true;
                            }
                        }
                    }
                }
            }
        }
    }

    /// Decide one well-formed request: answer inline (cache hits, shed and
    /// degraded verdicts, stats/ping/metrics/trace, validation errors,
    /// fully cached progressive streams) or ship an envelope to the pool.
    #[allow(clippy::too_many_arguments)]
    fn classify(
        &mut self,
        token: u64,
        seq: u64,
        msg: Message,
        version: u16,
        trace: Trace,
        mut root: Span,
    ) -> Classified {
        let state = self.state.clone();
        let inline = |reply: Reply, mut root: Span, trace: Trace, trace_id: u64| {
            let t_enc = Instant::now();
            let bytes = reply.finalize(&state, version);
            root.annotate("encode", t_enc.elapsed(), &[("bytes", bytes.len() as u64)]);
            let _ = &mut root;
            Classified::Inline(vec![OutPayload {
                bytes,
                meta: ReplyMeta {
                    root: Some(root),
                    trace: Some(trace),
                    trace_id,
                    close_after: false,
                    interim: false,
                },
            }])
        };
        match msg {
            Message::MeshRequest {
                iso,
                region,
                lod,
                backend,
                trace_id,
            } => {
                state.c.mesh_requests.inc();
                let backend = match validate_mesh_request(&state, lod, backend) {
                    Ok(b) => b,
                    Err(reply) => return inline(reply, root, trace, trace_id),
                };
                match state.admit_mesh(iso, backend, lod, &root) {
                    MeshAdmit::Ready(outcome) => inline(
                        mesh_outcome_reply(outcome, region, backend, trace_id, version),
                        root,
                        trace,
                        trace_id,
                    ),
                    MeshAdmit::Extract { slot } => {
                        self.offload(Envelope {
                            job: Job::Mesh {
                                iso,
                                backend,
                                lod,
                                region,
                                slot,
                            },
                            mailbox: self.mailbox.clone(),
                            token,
                            seq,
                            trace_id,
                            version,
                            trace,
                            root,
                        });
                        Classified::Offloaded { head: Vec::new() }
                    }
                }
            }
            Message::ProgressiveRequest {
                iso,
                lod,
                backend,
                trace_id,
            } => {
                state.c.mesh_requests.inc();
                if version < MIN_PROGRESSIVE_VERSION {
                    return inline(
                        Reply::Msg(Message::Error {
                            code: ERR_MALFORMED,
                            detail: format!(
                                "progressive requests need protocol v{MIN_PROGRESSIVE_VERSION} (frame spoke v{version})"
                            ),
                            retry_after_ms: None,
                        }),
                        root,
                        trace,
                        trace_id,
                    );
                }
                let backend = match validate_mesh_request(&state, lod, backend) {
                    Ok(b) => b,
                    Err(reply) => return inline(reply, root, trace, trace_id),
                };
                let top = state.levels() - 1;
                match state.admit_progressive(iso, backend, lod, &root) {
                    ProgressiveAdmit::Busy { retry_after_ms } => inline(
                        Reply::Msg(busy_reply("extraction slots exhausted", retry_after_ms)),
                        root,
                        trace,
                        trace_id,
                    ),
                    ProgressiveAdmit::Ready { levels }
                    | ProgressiveAdmit::Degraded { resident: levels } => {
                        let t_enc = Instant::now();
                        let frames = encode_chunk_run(
                            &levels, top, true, backend, trace_id, version, None, true,
                        );
                        Classified::Inline(chunk_payloads(
                            frames,
                            root,
                            trace,
                            trace_id,
                            t_enc.elapsed(),
                        ))
                    }
                    ProgressiveAdmit::Extract { resident, slot } => {
                        // stream what's already cached now; the worker picks
                        // up delta continuity from the finest resident level
                        let t_enc = Instant::now();
                        let head: Vec<OutPayload> = encode_chunk_run(
                            &resident, top, true, backend, trace_id, version, None, false,
                        )
                        .into_iter()
                        .map(|bytes| OutPayload {
                            bytes,
                            meta: ReplyMeta {
                                root: None,
                                trace: None,
                                trace_id,
                                close_after: false,
                                interim: true,
                            },
                        })
                        .collect();
                        root.annotate("encode", t_enc.elapsed(), &[("head", head.len() as u64)]);
                        let next_level = top - resident.len() as u16;
                        let prev = resident.last().cloned();
                        self.offload(Envelope {
                            job: Job::Progressive {
                                iso,
                                backend,
                                lod,
                                slot,
                                prev,
                                next_level,
                            },
                            mailbox: self.mailbox.clone(),
                            token,
                            seq,
                            trace_id,
                            version,
                            trace,
                            root,
                        });
                        Classified::Offloaded { head }
                    }
                }
            }
            Message::FrameRequest {
                iso,
                params,
                trace_id,
            } => {
                state.c.frame_requests.inc();
                if let Some(reply) = validate_frame_request(&params) {
                    return inline(reply, root, trace, trace_id);
                }
                match state.admit_frame(iso, &root) {
                    FrameAdmit::Busy { retry_after_ms } => inline(
                        Reply::Msg(busy_reply("extraction slots exhausted", retry_after_ms)),
                        root,
                        trace,
                        trace_id,
                    ),
                    // rasterization costs milliseconds even on a hit: off
                    // the loop it goes, the hit accounting already booked
                    FrameAdmit::Hit(levels) => {
                        self.offload(Envelope {
                            job: Job::FrameRender {
                                levels,
                                cache_hit: true,
                                params,
                            },
                            mailbox: self.mailbox.clone(),
                            token,
                            seq,
                            trace_id,
                            version,
                            trace,
                            root,
                        });
                        Classified::Offloaded { head: Vec::new() }
                    }
                    FrameAdmit::Extract {
                        slot,
                        resident_full,
                    } => {
                        self.offload(Envelope {
                            job: Job::FrameExtract {
                                iso,
                                params,
                                slot,
                                resident_full,
                            },
                            mailbox: self.mailbox.clone(),
                            token,
                            seq,
                            trace_id,
                            version,
                            trace,
                            root,
                        });
                        Classified::Offloaded { head: Vec::new() }
                    }
                }
            }
            other => {
                // stats/ping/metrics/trace and confused client messages:
                // the shared respond() path, inline (all sub-millisecond)
                let trace_id = request_trace_id(&other);
                let reply = respond(&state, other, version, &trace, &root);
                let _ = &mut root;
                inline(reply, root, trace, trace_id)
            }
        }
    }

    fn offload(&mut self, env: Envelope<S>) {
        self.meters.offloaded.inc();
        // send fails only after every worker died (channel closed at
        // shutdown); the pending slot then simply never completes and the
        // connection closes with the server
        let _ = self.jobs.send(env);
    }

    /// Move ready in-order replies to the write queue, write until the
    /// socket blocks, account finished replies, manage backpressure and
    /// interest, and close when the connection's story ends.
    fn pump(&mut self, token: u64) {
        let state = self.state.clone();
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        // release replies in request order only: the head slot streams every
        // frame it has ready (a progressive serve's chunks flow before its
        // extraction finishes), but later slots stay blocked until the head
        // is done — responses never interleave or reorder
        while let Some(front) = conn.pending.front_mut() {
            while let Some(payload) = front.ready.pop_front() {
                conn.out_bytes += payload.bytes.len();
                self.meters.outbound.add(payload.bytes.len() as i64);
                conn.out.push_back(OutFrame {
                    bytes: payload.bytes,
                    off: 0,
                    meta: payload.meta,
                });
            }
            if !front.done {
                break;
            }
            conn.pending.pop_front();
        }
        // incremental write-out
        let mut hard_close = false;
        while let Some(front) = conn.out.front_mut() {
            match conn.stream.write(&front.bytes[front.off..]) {
                Ok(0) => {
                    hard_close = true;
                    break;
                }
                Ok(n) => {
                    front.off += n;
                    conn.out_bytes -= n;
                    self.meters.outbound.add(-(n as i64));
                    conn.last_write_progress = Instant::now();
                    if front.off == front.bytes.len() {
                        let f = conn.out.pop_front().expect("checked front");
                        finish_reply(&state, f.bytes.len(), f.meta, conn);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    hard_close = true;
                    break;
                }
            }
        }
        if hard_close {
            self.close(token);
            return;
        }
        // backpressure: pause reads over budget, resume under half
        if !conn.paused && conn.out_bytes > self.budget {
            conn.paused = true;
            self.meters.pauses.inc();
        } else if conn.paused && conn.out_bytes <= self.budget / 2 {
            conn.paused = false;
        }
        // story's end?
        let drained_out = conn.out.is_empty() && conn.pending.is_empty();
        if (conn.finished && conn.out.is_empty())
            || (conn.eof && drained_out)
            || (conn.stop_reading && drained_out && conn.read_buf.is_empty())
        {
            self.close(token);
            return;
        }
        // interest: read unless stopped/paused; write while output queued
        let want = Interest {
            readable: !conn.stop_reading && !conn.paused,
            writable: !conn.out.is_empty(),
        };
        if want != conn.interest && self.poller.modify(&conn.stream, token, want).is_ok() {
            conn.interest = want;
        }
    }

    /// Enforce per-connection deadlines (the reactor's replacement for
    /// `SO_RCVTIMEO`/`SO_SNDTIMEO`): mid-frame read stalls, write stalls,
    /// idle connections, and over-cap connections that never sent their
    /// first frame.
    fn sweep_deadlines(&mut self) {
        let now = Instant::now();
        let state = self.state.clone();
        let mut doomed: Vec<u64> = Vec::new();
        for (&token, conn) in &self.conns {
            if conn.shed {
                let cap = state
                    .read_timeout
                    .unwrap_or(SHED_DEADLINE)
                    .min(SHED_DEADLINE);
                if conn.pending.is_empty() && now.duration_since(conn.accepted_at) >= cap {
                    doomed.push(token); // never presented a frame: no counter,
                                        // exactly like the threaded shed path
                }
                continue;
            }
            // a started-but-unfinished frame counts against the read
            // deadline (slowloris); waiting pipelined work does not
            if !conn.read_buf.is_empty() && !conn.stop_reading && !conn.paused {
                if let Some(rt) = state.read_timeout {
                    if now.duration_since(conn.last_read_progress) >= rt {
                        state.c.timed_out.inc();
                        doomed.push(token);
                        continue;
                    }
                }
            }
            if !conn.out.is_empty() {
                if let Some(wt) = state.write_timeout {
                    if now.duration_since(conn.last_write_progress) >= wt {
                        // the peer stopped draining mid-reply: counted and
                        // cut — a partially written frame is never followed
                        // by another byte
                        state.c.timed_out.inc();
                        doomed.push(token);
                        continue;
                    }
                }
            }
            if conn.pending.is_empty() && conn.out.is_empty() && conn.read_buf.is_empty() {
                if let Some(idle) = state.idle_timeout {
                    if now.duration_since(conn.idle_since) >= idle {
                        state.c.timed_out.inc();
                        doomed.push(token);
                        continue;
                    }
                }
            }
        }
        for t in doomed {
            self.close(t);
        }
    }

    /// How long the next `epoll_wait` may sleep before some deadline needs
    /// enforcement.
    fn next_deadline(&self) -> Duration {
        let now = Instant::now();
        let state = &self.state;
        let mut min = IDLE_POLL;
        let mut consider = |deadline: Instant| {
            let left = deadline.saturating_duration_since(now);
            if left < min {
                min = left;
            }
        };
        for conn in self.conns.values() {
            if conn.shed {
                let cap = state
                    .read_timeout
                    .unwrap_or(SHED_DEADLINE)
                    .min(SHED_DEADLINE);
                consider(conn.accepted_at + cap);
                continue;
            }
            if !conn.read_buf.is_empty() && !conn.stop_reading && !conn.paused {
                if let Some(rt) = state.read_timeout {
                    consider(conn.last_read_progress + rt);
                }
            }
            if !conn.out.is_empty() {
                if let Some(wt) = state.write_timeout {
                    consider(conn.last_write_progress + wt);
                }
            }
            if conn.pending.is_empty() && conn.out.is_empty() && conn.read_buf.is_empty() {
                if let Some(idle) = state.idle_timeout {
                    consider(conn.idle_since + idle);
                }
            }
        }
        min
    }

    fn close(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.poller.deregister(&conn.stream);
            if conn.counted_live {
                self.state.ctl.live.fetch_sub(1, Ordering::SeqCst);
            }
            self.meters.conns.add(-1);
            if conn.out_bytes > 0 {
                self.meters.outbound.add(-(conn.out_bytes as i64));
            }
        }
    }
}

/// Account one fully written reply — byte counters, latency histogram,
/// journals, slow-query log, drain bookkeeping. The mirror of the tail of
/// the threaded `handle_connection`.
fn finish_reply<S: ScalarValue>(
    state: &Arc<State<S>>,
    frame_len: usize,
    meta: ReplyMeta,
    conn: &mut Conn,
) {
    state.c.bytes_out.add(frame_len as u64);
    conn.idle_since = Instant::now();
    if let Some(root) = meta.root {
        let total = root.finish();
        state.request_latency_us.record_duration(total);
        if let Some(trace) = &meta.trace {
            if meta.trace_id != 0 {
                state.recent.push(trace, total);
            }
            if state.slow_ms > 0 && total >= Duration::from_millis(state.slow_ms) {
                state.slow.push(trace, total);
                state.logger.warn(
                    "serve",
                    "slow_query",
                    format!("request took {} ms", total.as_millis()),
                    &[
                        ("trace_id", meta.trace_id.to_string()),
                        ("threshold_ms", state.slow_ms.to_string()),
                    ],
                );
            }
        }
    }
    if !meta.interim && state.ctl.draining.load(Ordering::SeqCst) {
        // this reply completed during the graceful drain (a progressive
        // serve counts once, on its final chunk)
        state.c.drained.inc();
    }
    if meta.close_after {
        conn.finished = true;
        conn.stop_reading = true;
    }
}
