//! Network serving layer: a real TCP query server over the out-of-core
//! isosurface database.
//!
//! The paper's cluster answers interactive isosurface queries with zero
//! communication until the final composite; this crate is the step from
//! "library reproduction" to "deployable service" — remote clients query a
//! running server over a versioned, checksummed, length-prefixed binary
//! protocol and receive bit-identical results to in-process extraction:
//!
//! * [`protocol`] — the wire format: framed messages (requests carry an
//!   isovalue, an optional region, and mesh-vs-framebuffer mode; responses
//!   carry an indexed mesh or tile frames), CRC-32 payload checksums,
//!   structured errors for version/framing violations.
//! * [`server`] — [`IsoServer`]: one shared
//!   [`oociso_core::ClusterDatabase`] behind either serving core — the
//!   classic multi-threaded accept loop (thread per connection), or, with
//!   [`ServeOptions::reactor_threads`] set, the nonblocking reactor below.
//! * [`reactor`] — the epoll event-loop core (Linux): N reactor threads
//!   each own a set of connections with per-connection read/decode →
//!   dispatch → incremental write-out state machines, request pipelining
//!   with responses in request order, bounded outbound queues
//!   (backpressure), and an extraction worker pool signalled back through
//!   an eventfd. Identical wire and overload semantics to the threaded
//!   core — the chaos suite runs against both.
//! * [`cache`] — [`ResultCache`]: an isovalue-keyed, byte-budgeted LRU of
//!   extraction results with hit/miss/eviction counters surfaced through
//!   the stats message, `NodeReport`-style.
//! * [`client`] — [`Client`]: the blocking client library behind the CLI's
//!   `query` subcommand (and the serve tests).
//! * [`transport`] — [`TcpLoopbackTransport`]: the real-socket
//!   implementation of [`oociso_render::Transport`], plus
//!   [`measure_loopback`] to calibrate
//!   [`oociso_render::InterconnectModel::loopback`] live.
//! * [`chaos`] — [`ChaosProxy`]/[`ChaosStream`]: scripted transport faults
//!   (truncation, stalls, refused connections) for the chaos test harness.
//!
//! Every server additionally owns an observability surface (`oociso-obs`):
//! a per-server metrics registry with latency histograms exposed as
//! Prometheus text via a metrics request, structured warn/info log events
//! instead of raw stderr writes, and per-request span traces — a v5 client
//! may stamp requests with a trace id, which the server echoes on the reply
//! and uses to retain the request's span tree for retrieval over the wire.
//! See `docs/observability.md` for the metric catalog and span naming.
//!
//! See `docs/serve.md` for the protocol layout, cache semantics, and
//! overload/failure behavior, and `docs/robustness.md` for the fault
//! injection matrix.

pub mod cache;
pub mod chaos;
pub mod client;
pub mod protocol;
#[cfg(target_os = "linux")]
pub mod reactor;
pub mod server;
pub mod transport;

pub use cache::{CacheStats, CachedSurface, ResultCache};
pub use chaos::{ChaosProxy, ChaosStream, ConnFault};
pub use client::{
    read_progressive_reply, Client, ClientOptions, FrameReply, MeshReply, ProgressiveUpdate,
    ServerError, TraceReply,
};
pub use protocol::{
    render_trace_events, ChunkBody, FrameParams, Message, Region, ServerReport, TraceEvent,
    ERR_BAD_BACKEND, ERR_BAD_LOD, ERR_BUSY, MAGIC, MAX_LOD_LEVELS, MIN_PROGRESSIVE_VERSION,
    MIN_VERSION, NUM_BACKENDS, VERSION,
};
pub use server::{IsoServer, ServeOptions};
pub use transport::{measure_loopback, TcpLoopbackTransport};
